#!/usr/bin/env python
"""Visualize Cannon's shift pattern from an engine event trace.

Runs the 2D algorithm on a 3x3 grid with tracing enabled and renders an
ASCII Gantt chart of each rank's counting phase: compute spans (#),
communication/waiting spans (.), one row per rank.  The staircase of
block exchanges between the sqrt(p) compute rounds is clearly visible.

The same trace is also exported as Perfetto-loadable Chrome trace-event
JSON, the interactive counterpart of the ASCII chart (open it at
https://ui.perfetto.dev).

Run:  python examples/trace_gantt.py [trace-output.json]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import count_triangles_2d
from repro.graph import rmat_graph
from repro.instrument import write_chrome_trace

WIDTH = 100


def main() -> None:
    g = rmat_graph(10, edge_factor=8, seed=1)
    res = count_triangles_2d(g, p=9, trace=True)
    run = res.extras["run"]
    print(f"count = {res.count:,}; drawing the tct phase of all 9 ranks\n")

    # Phase window: the tct phase across ranks.
    starts = [c.phases["tct"].start for c in run.clocks]
    ends = [c.phases["tct"].end for c in run.clocks]
    t0, t1 = min(starts), max(ends)
    span = t1 - t0

    def col(t: float) -> int:
        return min(WIDTH - 1, max(0, int((t - t0) / span * (WIDTH - 1))))

    rows = []
    for rank in range(run.num_ranks):
        line = [" "] * WIDTH
        # Fill the rank's tct span with '.', then overlay compute bursts.
        lo, hi = col(starts[rank]), col(ends[rank])
        for c in range(lo, hi + 1):
            line[c] = "."
        prev_t = None
        for ev in run.tracer.for_rank(rank):
            if ev.kind == "compute" and starts[rank] <= ev.t <= ends[rank]:
                # The charge advanced the clock up to ev.t; backfill its span.
                dt_cols = 1
                c_end = col(ev.t)
                for c in range(max(lo, c_end - dt_cols), c_end + 1):
                    line[c] = "#"
        rows.append("".join(line))

    print(f"time -> ({span * 1e3:.3f} simulated ms across {WIDTH} columns)")
    print("  legend: # compute burst   . waiting/communication\n")
    for rank, row in enumerate(rows):
        print(f"rank {rank} |{row}|")

    sends = run.tracer.of_kind("send")
    tct_sends = [s for s in sends if s.t >= t0]
    print(
        f"\n{len(tct_sends)} messages in the counting phase "
        f"({run.tracer.total_bytes():,} bytes total over the whole run)"
    )
    print(
        "Each vertical band of '#' is one of the sqrt(p)=3 Cannon compute "
        "rounds;\nbetween bands the U blocks shift left and the L blocks "
        "shift up."
    )

    out = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.gettempdir()) / "trace_gantt.trace.json"
    )
    write_chrome_trace(out, run)
    print(f"\nwrote Perfetto trace to {out} (open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
