#!/usr/bin/env python
"""Approximate triangle counting: accuracy vs. work.

The paper's introduction frames the field as "exact and approximate"
counting; this example runs the DOULION-style sparsification estimator on
top of the exact 2D pipeline and prints the accuracy/work trade-off for a
range of edge-keep probabilities.

Run:  python examples/approximate_counting.py
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.core import count_triangles_2d
from repro.core.approximate import estimate_with_confidence
from repro.graph import load_dataset
from repro.graph.stats import degree_summary
from repro.instrument import format_table


def main() -> None:
    g = load_dataset("g500-s13")
    print(f"dataset g500-s13: {degree_summary(g)}")
    model = paper_model()
    exact = count_triangles_2d(g, 16, model=model)
    print(f"exact count: {exact.count:,} (tct {exact.tct_time * 1e3:.3f} ms)\n")

    rows = []
    for keep in (0.7, 0.5, 0.3, 0.2):
        mean, std, runs = estimate_with_confidence(
            g, 16, keep_prob=keep, trials=5, seed=1, model=model
        )
        err = abs(mean - exact.count) / exact.count
        avg_tct = sum(r.tct_time for r in runs) / len(runs)
        rows.append(
            (
                keep,
                f"{mean:,.0f}",
                f"{err:.1%}",
                f"{std / exact.count:.1%}",
                avg_tct * 1e3,
                exact.tct_time / avg_tct,
            )
        )
    print(
        format_table(
            [
                "keep prob",
                "estimate (5-trial mean)",
                "error",
                "rel std",
                "tct (ms)",
                "speedup",
            ],
            rows,
            title="Sparsified estimation on the 2D pipeline (p=16)",
            floatfmt=".3f",
        )
    )
    print(
        "\nLower keep probabilities cut the counting work roughly "
        "quadratically\nwhile the error grows like keep_prob^-1.5 — the "
        "classic DOULION trade-off."
    )


if __name__ == "__main__":
    main()
