#!/usr/bin/env python
"""Quickstart: count triangles with the 2D distributed algorithm.

Generates a small RMAT graph, counts its triangles serially (the oracle)
and with the 2D algorithm on a 4x4 simulated-MPI grid, and prints the
phase breakdown the paper reports (preprocessing vs triangle counting).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import TC2DConfig, count_triangles_2d, rmat_graph, triangle_count_linalg
from repro.graph.stats import degree_summary


def main() -> None:
    print("Generating an RMAT graph (graph500 parameters, scale 12)...")
    g = rmat_graph(scale=12, edge_factor=16, seed=7)
    print(f"  {degree_summary(g)}")

    oracle = triangle_count_linalg(g)
    print(f"\nSerial oracle count: {oracle:,} triangles")

    print("\nRunning the 2D algorithm on a 4x4 grid (16 simulated ranks)...")
    result = count_triangles_2d(g, p=16, dataset="rmat-s12")
    print(f"  distributed count : {result.count:,}")
    print(f"  preprocessing     : {result.ppt_time * 1e3:8.3f} ms (simulated)")
    print(f"  triangle counting : {result.tct_time * 1e3:8.3f} ms (simulated)")
    print(f"  overall           : {result.overall_time * 1e3:8.3f} ms (simulated)")
    print(f"  comm share (tct)  : {result.comm_fraction_tct:.1%}")
    print(f"  map tasks         : {result.tasks_total:,.0f}")
    print(f"  hash fast builds  : {result.hash_fast_builds:,} / {result.hash_builds:,}")
    assert result.count == oracle, "distributed result must match the oracle"

    print("\nSame run without the paper's Section 5.2 optimizations...")
    plain = count_triangles_2d(
        g,
        p=16,
        cfg=TC2DConfig(doubly_sparse=False, modified_hashing=False, early_stop=False),
    )
    slowdown = plain.tct_time / result.tct_time
    print(f"  counting time grows {slowdown:.2f}x without them")
    print("\nOK: counts agree; optimizations only change the time, never the count.")


if __name__ == "__main__":
    main()
