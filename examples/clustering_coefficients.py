#!/usr/bin/env python
"""Clustering coefficients of a social-network-like graph.

The paper motivates triangle counting through the clustering coefficient
and the transitivity ratio (Section 1).  This example builds a
twitter-like graph (power-law degrees, triad formation) and a
friendster-like graph (power-law, random wiring) and contrasts their
clustering profiles, computed via the distributed triangle census on a
3x3 simulated grid.

Run:  python examples/clustering_coefficients.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import clustering_profile
from repro.graph.generators import configuration_model, powerlaw_cluster_fast
from repro.graph.stats import degree_summary
from repro.instrument import format_table


def main() -> None:
    graphs = {
        "twitter-like (triad formation)": powerlaw_cluster_fast(
            3000, 8, 0.5, seed=11
        ),
        "friendster-like (random wiring)": configuration_model(
            6000, gamma=2.4, d_min=4, seed=11
        ),
    }
    rows = []
    for name, g in graphs.items():
        print(f"{name}: {degree_summary(g)}")
        prof = clustering_profile(g, p=9)
        hubs = np.argsort(g.degrees)[-5:]
        rows.append(
            (
                name,
                prof.triangles,
                prof.average,
                prof.transitivity,
                float(prof.local[hubs].mean()),
            )
        )
    print()
    print(
        format_table(
            [
                "graph",
                "triangles",
                "avg clustering",
                "transitivity",
                "hub clustering",
            ],
            rows,
            title="Clustering profiles via the distributed 2D census (p=9)",
            floatfmt=".4f",
        )
    )
    print(
        "\nThe triad-formation graph clusters an order of magnitude more "
        "strongly,\nwhich is exactly the twitter/friendster contrast behind "
        "the paper's Table 1\n(34.8e9 vs 0.19e6 triangles at comparable "
        "edge counts)."
    )


if __name__ == "__main__":
    main()
