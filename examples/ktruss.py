#!/usr/bin/env python
"""k-truss decomposition on top of the distributed support kernel.

Truss decomposition is one of the paper's motivating applications
(Section 1, citing [20]); its inner loop is exactly the per-edge triangle
support that our 2D census computes.  This example plants a dense
community inside a sparse background graph and shows that increasing
``k`` peels away the background and recovers the community.

Run:  python examples/ktruss.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import ktruss_decomposition, max_truss
from repro.graph import Graph, erdos_renyi_gnm
from repro.instrument import format_table


def planted_community(seed: int = 4) -> tuple[Graph, set[int]]:
    """A sparse G(n, m) background with a 14-clique planted inside."""
    background = erdos_renyi_gnm(400, 1200, seed=seed)
    clique = list(range(40, 54))
    extra = np.array(
        [(u, v) for i, u in enumerate(clique) for v in clique[i + 1 :]]
    )
    edges = np.concatenate([background.edge_array(), extra])
    return Graph.from_edges(400, edges), set(clique)


def main() -> None:
    g, community = planted_community()
    print(f"graph: n={g.n} m={g.num_edges} (14-clique planted on 40..53)\n")

    rows = []
    for k in (3, 4, 6, 8, 10, 12, 14):
        truss = ktruss_decomposition(g, k, p=4)
        members = {int(v) for e in truss.edge_array() for v in e}
        inside = len(members & community)
        rows.append((k, truss.num_edges, len(members), inside))
    print(
        format_table(
            ["k", "truss edges", "vertices", "of which planted"],
            rows,
            title="k-truss peeling (support via the 2D distributed census, p=4)",
        )
    )

    kmax, truss = max_truss(g, p=4)
    members = sorted({int(v) for e in truss.edge_array() for v in e})
    print(f"\nmaximum non-empty truss: k = {kmax}")
    print(f"its vertices: {members}")
    found = set(members) == community
    print(
        "the planted 14-clique is exactly the maximal truss"
        if found
        else "note: background edges merged into the top truss this seed"
    )


if __name__ == "__main__":
    main()
