#!/usr/bin/env python
"""Strong-scaling study: sweep grid sizes like the paper's Table 2.

Counts the triangles of one dataset at every perfect-square rank count
from 16 to 169, printing runtimes, speedups and efficiencies, plus an
ASCII efficiency plot (the paper's Figure 1 for one dataset).

Run:  python examples/scaling_study.py [dataset]
      (default dataset: g500-s13; see repro.graph.dataset_names())
"""

from __future__ import annotations

import sys

from repro.bench.calibration import paper_model
from repro.core import count_triangles_2d
from repro.graph import load_dataset
from repro.graph.stats import degree_summary
from repro.instrument import ascii_chart, format_table

RANKS = (16, 25, 36, 49, 64, 81, 100, 121, 144, 169)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g500-s13"
    g = load_dataset(name)
    print(f"dataset {name}: {degree_summary(g)}\n")

    model = paper_model()
    results = []
    for p in RANKS:
        res = count_triangles_2d(g, p, model=model, dataset=name)
        results.append(res)
        print(f"  p={p:3d} done: {res.summary()}")

    base = results[0]
    rows = []
    eff_series: dict[str, list[tuple[float, float]]] = {
        "ppt": [],
        "tct": [],
        "overall": [],
    }
    for r in results:
        speedup = base.overall_time / r.overall_time
        rows.append(
            (
                r.p,
                r.ppt_time * 1e3,
                r.tct_time * 1e3,
                r.overall_time * 1e3,
                speedup,
                16 * speedup / r.p,
            )
        )
        f = base.p / r.p
        eff_series["ppt"].append((r.p, f * base.ppt_time / r.ppt_time))
        eff_series["tct"].append((r.p, f * base.tct_time / r.tct_time))
        eff_series["overall"].append((r.p, f * base.overall_time / r.overall_time))

    print()
    print(
        format_table(
            ["ranks", "ppt (ms)", "tct (ms)", "overall (ms)", "speedup", "efficiency"],
            rows,
            title=f"Strong scaling of {name} (simulated time, baseline = 16 ranks)",
        )
    )
    print()
    print(
        ascii_chart(
            eff_series,
            title=f"Efficiency vs ranks [{name}]",
            xlabel="ranks",
            ylabel="eff",
        )
    )


if __name__ == "__main__":
    main()
