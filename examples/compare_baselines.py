#!/usr/bin/env python
"""Run every distributed algorithm in the repository on one graph.

Reproduces the flavor of the paper's Tables 5-6 at example scale: the 2D
algorithm against the HavoqGT-style wedge checker and the three 1D
competitors, all on the same simulated machine so their modeled times are
directly comparable — and all required to produce the identical count.

Run:  python examples/compare_baselines.py [dataset] [p]
      (defaults: g500-s12, 16 ranks)
"""

from __future__ import annotations

import sys

from repro.baselines import (
    count_triangles_aop,
    count_triangles_havoq,
    count_triangles_psp,
    count_triangles_surrogate,
)
from repro.bench.calibration import paper_model
from repro.core import count_triangles_2d, count_triangles_summa
from repro.graph import load_dataset, triangle_count_linalg
from repro.graph.stats import degree_summary
from repro.instrument import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g500-s12"
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    g = load_dataset(name)
    print(f"dataset {name}: {degree_summary(g)}")
    oracle = triangle_count_linalg(g)
    print(f"serial oracle: {oracle:,} triangles\n")

    model = paper_model()
    import math

    q = math.isqrt(p)
    runs = [
        ("2D Cannon (this paper)", count_triangles_2d(g, p, model=model)),
        ("SUMMA rectangular", count_triangles_summa(g, max(1, q // 1), p // max(1, q), model=model)),
        ("AOP (1D, replicated)", count_triangles_aop(g, p, model=model)),
        ("Surrogate (1D, push)", count_triangles_surrogate(g, p, model=model)),
        ("OPT-PSP (1D, blocked)", count_triangles_psp(g, p, model=model)),
        ("Havoq (wedge check)", count_triangles_havoq(g, p, model=model)),
    ]
    rows = []
    for label, res in runs:
        status = "ok" if res.count == oracle else "WRONG"
        rows.append(
            (
                label,
                res.count,
                status,
                res.ppt_time * 1e3,
                res.tct_time * 1e3,
                res.overall_time * 1e3,
            )
        )
    print(
        format_table(
            ["algorithm", "count", "check", "prep (ms)", "count (ms)", "total (ms)"],
            rows,
            title=f"All algorithms on {name} at p={p} (simulated milliseconds)",
            floatfmt=".3f",
        )
    )
    fastest = min(runs, key=lambda kv: kv[1].overall_time)
    print(f"\nfastest overall: {fastest[0]}")


if __name__ == "__main__":
    main()
