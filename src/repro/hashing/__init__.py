"""Hash-map machinery for map-based set intersection.

The 2D algorithm intersects adjacency-list fragments by hashing one list
and probing it with the other (Section 3.1 of the paper).  This package
provides the open-addressing map (:class:`BlockHashMap`) with the paper's
"modified hashing routine for sparser vertices": fragments short enough to
be collision-free are inserted with a direct ``key & mask`` placement and
probed with a single vectorized compare, skipping linear probing entirely
(Section 5.2).
"""

from repro.hashing.hashmap import BlockHashMap, HashStats

__all__ = ["BlockHashMap", "HashStats"]
