"""Open-addressing hash map for adjacency-fragment intersection.

One :class:`BlockHashMap` is allocated per 2D block sweep and reused for
every row (the paper reuses the map across all tasks sharing a row, and we
additionally avoid clearing it between rows with a generation-stamp
array).  Two build/lookup modes exist:

* **probed** — multiplicative (Fibonacci) hashing with linear probing; the
  baseline mode.
* **fast (direct-mask)** — the paper's "modified hashing routine for
  sparser vertices": when the fragment is no longer than the table and its
  ``key & mask`` slots happen to be pairwise distinct, keys are placed by a
  single bitwise AND and probed with one vectorized compare, with no
  probing loop at all.  After 2D decomposition most fragments are ~1/√p of
  an adjacency list, so this path dominates at scale — which is exactly why
  the optimization's benefit grows with the rank count (Section 7.3).

All operation counting is *logical* (one step per insert/probe plus one per
collision-resolution hop), independent of how numpy vectorizes the work, so
the simulated-time model sees what a C implementation would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_EMPTY = np.int64(-1)
#: Fibonacci hashing multiplier (golden ratio in 64-bit fixed point).
_FIB = np.uint64(0x9E3779B97F4A7C15)


@dataclass
class HashStats:
    """Cumulative operation counts for one map's lifetime.

    ``insert_steps``/``lookup_steps`` include one step per key plus one per
    collision hop, so ``insert_steps - inserts`` is the number of collision
    resolutions (zero on the fast path by construction).
    """

    builds: int = 0
    fast_builds: int = 0
    inserts: int = 0
    insert_steps: int = 0
    lookups: int = 0
    lookup_steps: int = 0

    def merge(self, other: "HashStats") -> None:
        self.builds += other.builds
        self.fast_builds += other.fast_builds
        self.inserts += other.inserts
        self.insert_steps += other.insert_steps
        self.lookups += other.lookups
        self.lookup_steps += other.lookup_steps


def _next_pow2(x: int) -> int:
    p = 1
    while p < x:
        p <<= 1
    return p


def fib_hash(keys: np.ndarray, shift: int) -> np.ndarray:
    """Vectorized Fibonacci (multiplicative) hash to table slots.

    ``shift`` is ``64 - log2(capacity)`` — use :attr:`BlockHashMap.shift`
    so external probing loops (the batched kernel backend) land on the
    same slots as the map itself.
    """
    with np.errstate(over="ignore"):
        return (
            (np.asarray(keys, dtype=np.int64).astype(np.uint64) * _FIB)
            >> np.uint64(shift)
        ).astype(np.int64)


class BlockHashMap:
    """Reusable integer-key hash table sized for one block's rows.

    Parameters
    ----------
    capacity:
        Table size; rounded up to a power of two (minimum 4).
    """

    def __init__(self, capacity: int):
        self.capacity = max(4, _next_pow2(capacity))
        self.mask = np.int64(self.capacity - 1)
        self._shift = np.uint64(64 - int(self.mask).bit_length())
        self._table = np.full(self.capacity, _EMPTY, dtype=np.int64)
        self._stamp = np.zeros(self.capacity, dtype=np.int64)
        self._gen = 0
        self._fast_mode = False
        self._size = 0
        self.stats = HashStats()

    # -- building -----------------------------------------------------------

    def build(self, keys: np.ndarray, allow_fast: bool = True) -> bool:
        """(Re)populate the map with ``keys`` (distinct non-negative ints).

        Returns True when the direct-mask fast path was used.  The previous
        contents are invalidated in O(1) via the generation stamp.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        if n > self.capacity:
            raise ValueError(
                f"cannot build: {n} keys exceed capacity {self.capacity}"
            )
        self._gen += 1
        self._size = n
        self.stats.builds += 1
        self.stats.inserts += n
        if n == 0:
            self._fast_mode = True
            self.stats.fast_builds += 1
            return True

        if allow_fast:
            slots = keys & self.mask
            # "No collision" heuristic check: slots pairwise distinct.
            if len(np.unique(slots)) == n:
                self._table[slots] = keys
                self._stamp[slots] = self._gen
                self._fast_mode = True
                self.stats.fast_builds += 1
                self.stats.insert_steps += n
                return True

        # Probed build: Fibonacci hash + linear probing.
        self._fast_mode = False
        positions, steps = self.probed_layout(keys)
        self._table[positions] = keys
        self._stamp[positions] = self._gen
        self.stats.insert_steps += steps
        return False

    def probed_layout(self, keys: np.ndarray) -> tuple[np.ndarray, int]:
        """Final slot of each key and the logical step count of a probed
        build of ``keys`` into an empty table, without touching the map.

        This is the sequential insert-with-linear-probing walk itself —
        :meth:`build` applies it to the live table, and the batched kernel
        backend replays collision-prone rows through it so its counters
        stay bit-identical to the row-wise reference.  The walk runs on a
        plain Python set (a fresh generation starts from an empty table,
        so only slots taken by this build block a probe) instead of numpy
        scalar reads.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        cap = self.capacity
        shift = int(self._shift)
        slots = fib_hash(keys, shift)
        if len(np.unique(slots)) == n:
            # Pairwise-distinct initial slots: no insert ever lands on an
            # occupied slot (regardless of order), so the walk is the
            # identity and costs exactly one step per key.
            return slots, n
        steps = 0
        occupied: set[int] = set()
        positions: list[int] = []
        for key, pos in zip(keys.tolist(), slots.tolist()):
            steps += 1
            while pos in occupied:
                pos = (pos + 1) % cap
                steps += 1
            occupied.add(pos)
            positions.append(pos)
        idx = np.fromiter(positions, dtype=np.int64, count=n)
        return idx, steps

    # -- querying -----------------------------------------------------------

    def lookup_many(self, queries: np.ndarray) -> tuple[int, int]:
        """Count how many of ``queries`` are present.

        Returns ``(hits, steps)`` where steps is the logical probe count
        (also accumulated into :attr:`stats`).
        """
        queries = np.asarray(queries, dtype=np.int64)
        nq = len(queries)
        self.stats.lookups += nq
        if nq == 0 or self._size == 0:
            self.stats.lookup_steps += nq
            return 0, nq
        if self._fast_mode:
            slots = queries & self.mask
            hits = int(
                np.count_nonzero(
                    (self._stamp[slots] == self._gen)
                    & (self._table[slots] == queries)
                )
            )
            self.stats.lookup_steps += nq
            return hits, nq

        # Probed lookup, vectorized round by round: each round resolves the
        # queries whose current slot is empty (miss) or matches (hit).
        with np.errstate(over="ignore"):
            pos = ((queries.astype(np.uint64) * _FIB) >> self._shift).astype(
                np.int64
            )
        alive = np.ones(nq, dtype=bool)
        hits = 0
        steps = 0
        for _round in range(self.capacity + 1):
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                break
            p = pos[idx]
            steps += idx.size
            occupied = self._stamp[p] == self._gen
            match = occupied & (self._table[p] == queries[idx])
            hits += int(np.count_nonzero(match))
            resolved = match | ~occupied
            alive[idx[resolved]] = False
            pos[idx[~resolved]] = (p[~resolved] + 1) & self.mask
        self.stats.lookup_steps += steps
        return hits, steps

    def contains(self, key: int) -> bool:
        """Scalar membership test (tests and small utilities)."""
        hits, _ = self.lookup_many(np.array([key], dtype=np.int64))
        return hits == 1

    def hit_mask(self, queries: np.ndarray) -> np.ndarray:
        """Boolean membership mask for ``queries`` (used by listing
        extensions; charges the same logical step counts as
        :meth:`lookup_many`)."""
        queries = np.asarray(queries, dtype=np.int64)
        nq = len(queries)
        self.stats.lookups += nq
        out = np.zeros(nq, dtype=bool)
        if nq == 0 or self._size == 0:
            self.stats.lookup_steps += nq
            return out
        if self._fast_mode:
            slots = queries & self.mask
            out = (self._stamp[slots] == self._gen) & (
                self._table[slots] == queries
            )
            self.stats.lookup_steps += nq
            return out
        with np.errstate(over="ignore"):
            pos = ((queries.astype(np.uint64) * _FIB) >> self._shift).astype(
                np.int64
            )
        alive = np.ones(nq, dtype=bool)
        steps = 0
        for _round in range(self.capacity + 1):
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                break
            p = pos[idx]
            steps += idx.size
            occupied = self._stamp[p] == self._gen
            match = occupied & (self._table[p] == queries[idx])
            out[idx[match]] = True
            resolved = match | ~occupied
            alive[idx[resolved]] = False
            pos[idx[~resolved]] = (p[~resolved] + 1) & self.mask
        self.stats.lookup_steps += steps
        return out

    @property
    def is_fast_mode(self) -> bool:
        """Whether the current contents were built with the direct-mask
        fast path."""
        return self._fast_mode

    @property
    def shift(self) -> int:
        """Right-shift of the Fibonacci hash (``64 - log2(capacity)``)."""
        return int(self._shift)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlockHashMap(capacity={self.capacity}, size={self._size}, "
            f"fast={self._fast_mode})"
        )
