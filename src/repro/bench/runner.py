"""Shared sweep runner with in-process memoization.

Table 2, Figures 1-3 and Tables 3-4 all consume the same
(dataset x rank-count) grid of 2D-algorithm runs; running it once and
sharing the results keeps the full benchmark suite's wall time sane.

When ``REPRO_STORE_DIR`` is set, runs additionally read/write the
on-disk preprocessing cache (:mod:`repro.graph.store`), so repeated
benchmark invocations across *processes* skip the ppt phase too.  Tables
that report preprocessing cost stay honest: a warm hit replays the ppt
statistics the cold run recorded, which — the engine being deterministic
— are bit-identical to what a fresh run would measure.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.calibration import paper_model
from repro.core import TC2DConfig, TriangleCountResult, count_triangles_2d
from repro.graph.datasets import load_dataset
from repro.simmpi import MachineModel

_CACHE: dict[tuple, TriangleCountResult] = {}


def _store():
    """The shared on-disk store, or ``None`` when ``REPRO_STORE_DIR`` is
    unset (opt-in: plain test runs must not write to the user's home)."""
    from repro.graph.store import store_from_env

    return store_from_env()


def _cfg_key(cfg: TC2DConfig) -> tuple:
    return (
        cfg.enumeration,
        cfg.doubly_sparse,
        cfg.modified_hashing,
        cfg.early_stop,
        cfg.blob_serialization,
        cfg.initial_cyclic,
        cfg.degree_reorder,
        cfg.hashmap_slack,
    )


def run_point(
    dataset: str,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    seed: int = 0,
) -> TriangleCountResult:
    """One memoized 2D-algorithm run on a named dataset."""
    cfg = cfg if cfg is not None else TC2DConfig()
    model = model if model is not None else paper_model()
    key = (dataset, p, seed, _cfg_key(cfg), _model_key(model))
    if key not in _CACHE:
        graph = load_dataset(dataset, seed=seed)
        _CACHE[key] = count_triangles_2d(
            graph, p, cfg=cfg, model=model, dataset=dataset, cache=_store()
        )
    return _CACHE[key]


def _model_key(model: MachineModel) -> tuple:
    cache = model.cache
    return (
        model.alpha,
        model.beta,
        model.send_overhead,
        None
        if cache is None
        else (cache.cache_bytes, cache.max_penalty, cache.saturate_ratio),
    )


def sweep(
    dataset: str,
    ranks: Iterable[int],
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    seed: int = 0,
) -> list[TriangleCountResult]:
    """Run (or fetch) the 2D algorithm across a rank grid."""
    return [run_point(dataset, p, cfg=cfg, model=model, seed=seed) for p in ranks]


def clear_sweep_cache() -> None:
    """Drop memoized results (tests that tweak global state use this)."""
    _CACHE.clear()
