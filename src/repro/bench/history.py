"""Append-only benchmark run database and regression gate.

``RunHistory`` is a JSONL file — one row per (suite, case) measurement,
stamped with host metadata so rows from different machines are
distinguishable.  Rows come from telemetry records
(:func:`row_from_telemetry`) or bench reports
(:func:`rows_from_bench`); ``repro history append`` writes them,
``repro history list`` shows them, and ``repro history check`` gates
the newest rows against a committed baseline file.

Baseline format (``BENCH_baseline.json``)::

    {"schema": 1, "kind": "repro-bench-baseline",
     "entries": [{"suite": "count", "case": "g500-s14-p16",
                  "metrics": {"count": {"rule": "equal", "value": 123}}}]}

Rules: ``equal`` (exact match — determinism gates), ``min`` / ``max``
(absolute bounds), ``max_ratio`` (measured <= ref * ratio — perf
gates with headroom for machine noise).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.instrument.telemetry import host_metadata

HISTORY_SCHEMA = 1


class RunHistory:
    """Append-only JSONL run database (one JSON object per line)."""

    def __init__(self, path: Any):
        self.path = Path(path)

    def append(self, rows: list[dict[str, Any]]) -> int:
        """Append ``rows``, stamping schema + host; returns rows written."""
        if not rows:
            return 0
        host = host_metadata()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            for row in rows:
                out = dict(row)
                out.setdefault("schema", HISTORY_SCHEMA)
                out.setdefault("host", host)
                fh.write(json.dumps(out, sort_keys=True, default=str) + "\n")
        return len(rows)

    def rows(self) -> list[dict[str, Any]]:
        """All rows in file order; skips blank/corrupt lines (an
        interrupted append must not poison the whole database)."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict):
                out.append(doc)
        return out

    def latest(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Newest row per (suite, case)."""
        latest: dict[tuple[str, str], dict[str, Any]] = {}
        for row in self.rows():
            key = (str(row.get("suite", "")), str(row.get("case", "")))
            latest[key] = row
        return latest


def row_from_telemetry(record: dict[str, Any]) -> dict[str, Any]:
    """One history row from a telemetry record (``repro count
    --telemetry`` output)."""
    mem = record.get("memory") or {}
    return {
        "suite": "count",
        "case": f"{record.get('dataset') or 'graph'}-p{record.get('p')}",
        "executor": record.get("executor"),
        "digest": record.get("digest"),
        "metrics": {
            "count": record.get("count"),
            "wall_s": record.get("wall_s"),
            "virtual_makespan_s": record.get("virtual_makespan_s"),
            "peak_rss_bytes": mem.get("peak_rss_bytes"),
        },
    }


def _metrics(entry: dict[str, Any], **extra: Any) -> dict[str, Any]:
    out = {
        k: entry[k]
        for k in ("best_s", "best_ms", "wall_s", "peak_rss_bytes")
        if entry.get(k) is not None
    }
    out.update({k: v for k, v in extra.items() if v is not None})
    return out


def rows_from_bench(report: dict[str, Any]) -> list[dict[str, Any]]:
    """History rows from a parallelbench / kernelbench report.

    One row per timed entry: ``<case>-seq`` / ``<case>-w<N>`` for the
    superstep-executor sweep, ``<case>-<backend>`` for the kernel
    microbenchmark.  Unknown suites fall back to one row per case with
    whatever scalar timing fields are present.
    """
    suite = str(report.get("suite") or report.get("kind") or "bench")
    rows: list[dict[str, Any]] = []
    for case in report.get("cases") or []:
        name = case.get("name")
        if name is None:
            continue
        if suite == "parallel-superstep":
            seq = case.get("sequential") or {}
            rows.append(
                {
                    "suite": suite,
                    "case": f"{name}-seq",
                    "metrics": _metrics(seq, count=case.get("triangles")),
                }
            )
            for w, row in sorted((case.get("parallel") or {}).items()):
                pool = row.get("pool") or {}
                wall = pool.get("wall_s") or 0.0
                overhead = (
                    (
                        (pool.get("serialize_s") or 0.0)
                        + (pool.get("dispatch_s") or 0.0)
                    )
                    / wall
                    if wall > 0.0
                    else None
                )
                entry: dict[str, Any] = {
                    "suite": suite,
                    "case": f"{name}-w{w}",
                    "metrics": _metrics(
                        row,
                        speedup=row.get("speedup_vs_sequential"),
                        pool_overhead_frac=overhead,
                    ),
                }
                if report.get("dispatch") is not None:
                    entry["dispatch"] = report["dispatch"]
                rows.append(entry)
        elif suite == "kernel-backends":
            for backend, timing in sorted(
                (case.get("backends") or {}).items()
            ):
                rows.append(
                    {
                        "suite": suite,
                        "case": f"{name}-{backend}",
                        "metrics": _metrics(
                            timing,
                            count=case.get("triangles"),
                            peak_rss_bytes=case.get("peak_rss_bytes"),
                        ),
                    }
                )
        elif suite == "serve":
            cold, warm = case.get("cold") or {}, case.get("warm") or {}
            mixed = case.get("mixed") or {}
            rows.append(
                {
                    "suite": suite,
                    "case": f"{name}-cold",
                    "digest": case.get("digest"),
                    "metrics": _metrics(
                        {},
                        count=case.get("triangles"),
                        p50_s=cold.get("p50_s"),
                        p99_s=cold.get("p99_s"),
                    ),
                }
            )
            rows.append(
                {
                    "suite": suite,
                    "case": f"{name}-warm",
                    "metrics": _metrics(
                        {},
                        p50_s=warm.get("p50_s"),
                        p99_s=warm.get("p99_s"),
                        warm_speedup_p50=case.get("warm_speedup_p50"),
                    ),
                }
            )
            rows.append(
                {
                    "suite": suite,
                    "case": f"{name}-mixed",
                    "metrics": _metrics(
                        {},
                        throughput_rps=mixed.get("throughput_rps"),
                        hit_ratio=mixed.get("hit_ratio"),
                        p99_s=mixed.get("p99_s"),
                    ),
                }
            )
        elif suite == "autotune":
            # One row per measured candidate, shaped exactly as
            # repro.core.autotune._history_makespans consumes them
            # ({dataset}-{alg}-p{p} / virtual_makespan_s), so appending
            # this report feeds measured ground truth back to the
            # planner; plus one -auto row carrying the plan quality.
            for key, cand in sorted((case.get("candidates") or {}).items()):
                rows.append(
                    {
                        "suite": suite,
                        "case": f"{name}-{key}",
                        "metrics": _metrics(
                            cand,
                            count=cand.get("count"),
                            virtual_makespan_s=cand.get(
                                "virtual_makespan_s"
                            ),
                            predicted_s=cand.get("predicted_s"),
                        ),
                    }
                )
            rows.append(
                {
                    "suite": suite,
                    "case": f"{name}-auto",
                    "metrics": _metrics(
                        {},
                        chosen=case.get("chosen"),
                        best_measured=case.get("best_measured"),
                        ratio_vs_best=case.get("ratio_vs_best"),
                    ),
                }
            )
        else:
            rows.append(
                {
                    "suite": suite,
                    "case": str(name),
                    "metrics": _metrics(case, count=case.get("triangles")),
                }
            )
    if suite == "serve" and report.get("overload"):
        over = report["overload"]
        rows.append(
            {
                "suite": suite,
                "case": "overload",
                "metrics": _metrics(
                    {},
                    rejected_total=over.get("rejected_total"),
                    accepted=over.get("accepted"),
                    capacity=over.get("capacity"),
                    queue_depth_max=over.get("queue_depth_max"),
                ),
            }
        )
    return rows


def check_history(
    rows: dict[tuple[str, str], dict[str, Any]],
    baseline: dict[str, Any],
) -> list[str]:
    """Gate newest history rows against a baseline; returns failures.

    Every baseline entry must have a matching row — a silently missing
    case is itself a regression (the suite stopped measuring it).
    """
    failures: list[str] = []
    if baseline.get("kind") != "repro-bench-baseline":
        return [f"baseline: unexpected kind {baseline.get('kind')!r}"]
    for entry in baseline.get("entries") or []:
        suite, case = str(entry.get("suite")), str(entry.get("case"))
        row = rows.get((suite, case))
        if row is None:
            failures.append(f"{suite}/{case}: no history row found")
            continue
        measured = row.get("metrics") or {}
        for metric, rule in (entry.get("metrics") or {}).items():
            got = measured.get(metric)
            if got is None:
                failures.append(
                    f"{suite}/{case}: metric {metric!r} missing from row"
                )
                continue
            kind = rule.get("rule", "equal")
            if kind == "equal":
                if got != rule.get("value"):
                    failures.append(
                        f"{suite}/{case}: {metric}={got!r} != "
                        f"expected {rule.get('value')!r}"
                    )
            elif kind == "min":
                if float(got) < float(rule.get("value", 0.0)):
                    failures.append(
                        f"{suite}/{case}: {metric}={got} < "
                        f"min {rule.get('value')}"
                    )
            elif kind == "max":
                if float(got) > float(rule.get("value", 0.0)):
                    failures.append(
                        f"{suite}/{case}: {metric}={got} > "
                        f"max {rule.get('value')}"
                    )
            elif kind == "max_ratio":
                ref = float(rule.get("ref", 0.0))
                limit = ref * float(rule.get("max_ratio", 1.0))
                if float(got) > limit:
                    failures.append(
                        f"{suite}/{case}: {metric}={got} > "
                        f"{rule.get('max_ratio')}x ref {ref} (= {limit:.6g})"
                    )
            else:
                failures.append(
                    f"{suite}/{case}: unknown rule {kind!r} for {metric}"
                )
    return failures


def load_baseline(path: Any) -> dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    return doc
