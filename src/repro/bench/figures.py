"""Builders for the paper's figures (1-3) on the scaled datasets.

Figures are rendered as ASCII charts plus the underlying series, so the
benchmark output is both human-readable and machine-checkable.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.calibration import bench_ranks, paper_model
from repro.bench.runner import sweep
from repro.bench.tables import BIG_DATASET, TABLE2_DATASETS
from repro.instrument.report import ascii_chart


def fig1_efficiency(
    datasets: Sequence[str] = TABLE2_DATASETS,
    ranks: Sequence[int] | None = None,
) -> tuple[str, dict]:
    """Figure 1: efficiency (16*T16 / (p*Tp)) of ppt, tct and overall time
    versus rank count, one panel per dataset."""
    ranks = list(ranks) if ranks else list(bench_ranks())
    model = paper_model()
    panels = []
    data: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for ds in datasets:
        results = sweep(ds, ranks, model=model)
        base = results[0]
        series = {"ppt": [], "tct": [], "overall": []}
        for r in results:
            f = base.p / r.p
            series["ppt"].append((r.p, f * base.ppt_time / r.ppt_time))
            series["tct"].append((r.p, f * base.tct_time / r.tct_time))
            series["overall"].append((r.p, f * base.overall_time / r.overall_time))
        data[ds] = series
        panels.append(
            ascii_chart(
                series,
                title=f"Figure 1 (scaled) [{ds}]: efficiency vs ranks "
                "(baseline: 4x4 grid)",
                xlabel="ranks",
                ylabel="eff",
            )
        )
    return "\n\n".join(panels), data


def fig2_op_rate(
    dataset: str = BIG_DATASET, ranks: Sequence[int] | None = None
) -> tuple[str, dict]:
    """Figure 2: aggregate operation rate (kOps/s of simulated time) of the
    preprocessing and counting phases versus rank count."""
    ranks = list(ranks) if ranks else list(bench_ranks())
    model = paper_model()
    results = sweep(dataset, ranks, model=model)
    series = {
        "ppt": [(r.p, r.op_rate_kops("ppt")) for r in results],
        "tct": [(r.p, r.op_rate_kops("tct")) for r in results],
    }
    chart = ascii_chart(
        series,
        title=f"Figure 2 (scaled) [{dataset}]: operation rate (kOps/s) vs ranks",
        xlabel="ranks",
        ylabel="kOps/s",
    )
    return chart, series


def fig3_comm_fraction(
    dataset: str = BIG_DATASET, ranks: Sequence[int] | None = None
) -> tuple[str, dict]:
    """Figure 3: percentage of phase time spent communicating vs ranks."""
    ranks = list(ranks) if ranks else list(bench_ranks())
    model = paper_model()
    results = sweep(dataset, ranks, model=model)
    series = {
        "ppt": [(r.p, 100.0 * r.comm_fraction_ppt) for r in results],
        "tct": [(r.p, 100.0 * r.comm_fraction_tct) for r in results],
    }
    chart = ascii_chart(
        series,
        title=(
            f"Figure 3 (scaled) [{dataset}]: communication share of phase "
            "time (%) vs ranks"
        ),
        xlabel="ranks",
        ylabel="% comm",
    )
    return chart, series
