"""Out-of-core preprocessing benchmark with a gated peak-RSS ceiling.

Measures what the external-memory pipeline (:mod:`repro.graph.external`)
actually buys: the ability to preprocess and count a graph much larger
than the memory the process holds resident.  Produces a
machine-readable artifact (``BENCH_outofcore.json`` by default) with
three kinds of evidence:

* **Parity cases** — the out-of-core pipeline must produce *bit-identical*
  triangle counts and artifact digests vs. the in-memory pipeline across
  grid sizes and the degree-reorder toggle.  Run in-process (no memory
  claims, just correctness).
* **A ratio case** — one graph whose on-disk edge bytes are at least
  ``RATIO_TARGET`` (10×) the configured ``chunk_bytes`` budget,
  preprocessed out of core.  Peak RSS is measured in **child
  processes** (``resource.ru_maxrss`` is a lifetime high-water mark, so
  the parent's own allocations would pollute it) and reported as deltas
  over a control child that performs the same imports but touches no
  graph.

The pipeline's memory story has two regimes, measured by two children:
the *streaming* stages (ingest, external sort/merge, degrees, reorder,
translate + 2D route) hold only ``O(chunk_bytes)``, while the final
per-rank *assembly* additionally holds one rank's ``O(m/p)`` working
set — exactly the per-node memory the paper's algorithm needs on a real
cluster, so it is gated against that bound rather than hidden.

Gates (``--check`` exits 1 when violated)
-----------------------------------------
``stream_ceiling`` / ``rss_ratio``
    The streaming-stages child (``stop_after="translate"``) must stay
    under ``STREAM_FLOOR + PRE_CHUNK_MULT * chunk_bytes`` — bounded by
    the *budget*, not the graph — and ``graph_bytes / stream_delta``
    must reach ``RSS_RATIO_TARGET`` (10×): the graph is an order of
    magnitude larger than the memory held while chewing through it.
    This is the honest paper-scale claim — these stages are where the
    in-memory pipeline needs O(m) resident and the external one does
    not.
``preprocess_ceiling``
    The full preprocessing child (streaming + assembly) must stay under
    ``PRE_FLOOR + PRE_CHUNK_MULT * chunk_bytes + RANK_MULT *
    rank_pair_bytes`` where ``rank_pair_bytes = 32 * m / p`` (one
    rank's received U+L coordinate pairs).  The multiplier covers the
    CSR build's sort temporaries.
``count_ceiling``
    The counting child's RSS delta must stay under ``COUNT_FLOOR +
    PRE_CHUNK_MULT * chunk_bytes + COUNT_STORE_MULT * store_bytes``.
    Counting simulates all ``p`` ranks in one process, so the resident
    high water legitimately includes the per-rank blocks — but they
    arrive as mmap views of the store files (reclaimable page cache,
    charged against ``store_bytes``), never as a second in-heap copy of
    the edge list.  A regression that reintroduces full-blob copies
    blows this ceiling.

Run it as a module::

    python -m repro.bench.oocbench            # full-size ratio case
    python -m repro.bench.oocbench --smoke    # CI-sized subset
    python -m repro.bench.oocbench --check    # exit 1 on gate violation
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any

#: Artifact schema.
SCHEMA = 1

#: The ratio-case graph must be at least this many times larger (on-disk
#: edge bytes) than the configured ``chunk_bytes`` budget.
RATIO_TARGET = 10.0

#: ``graph_bytes / preprocess_rss_delta`` must reach this.
RSS_RATIO_TARGET = 10.0

#: RSS deltas are floored at this when computing the ratio, so a working
#: set that hides entirely under the interpreter's import-time baseline
#: reports a conservative lower bound instead of a silly million-x.
RSS_DELTA_FLOOR = 1 << 20

#: Chunk-budget multiplier shared by every ceiling: concurrent
#: chunk-sized numpy temporaries during the external merge (inputs,
#: output, argsort scratch).
PRE_CHUNK_MULT = 8.0

#: Streaming-stages ceiling floor: degree histogram, per-rank write
#: buffers, allocator slack.
STREAM_FLOOR = 24 << 20

#: Full-preprocess ceiling: adds one rank's received U+L pairs
#: (``32 * m / p`` bytes) times this multiplier (CSR sort temporaries).
RANK_MULT = 10.0
PRE_FLOOR = 48 << 20

#: Counting ceiling: floor + chunk multiplier + store multiplier (the
#: mmap-resident per-rank block files; >1 covers the exchange copies the
#: simulated rotation makes on top of the mapped originals).  A
#: regression that reintroduces a full in-heap blob copy adds roughly
#: one more ``store_bytes`` of residency, which still bursts through
#: this ceiling with margin.
COUNT_STORE_MULT = 3.5
COUNT_FLOOR = 64 << 20

#: Bytes per edge in the binary REDGE format (two little-endian int64).
EDGE_BYTES = 16


# -- deterministic skewed graph generation (streamed, bounded memory) -------


def write_skewed_graph(
    path: Path, n: int, m: int, seed: int = 7, batch: int = 1 << 19
) -> int:
    """Stream ``m`` skewed random edges into a REDGE file; returns bytes.

    Endpoints are drawn as ``floor(n * r^2)`` so low-numbered vertices
    act as hubs (degree skew exercises the reorder path and produces a
    healthy triangle count).  Generation is batched — this function
    never holds more than ``batch`` edges resident, so the parent
    process stays honest even though its RSS is not part of any gate.
    Self loops and duplicates are the pipeline's job to drop.
    """
    import numpy as np

    from repro.graph.external import BinaryEdgeWriter

    rng = np.random.default_rng(seed)
    with BinaryEdgeWriter(path, n) as writer:
        left = m
        while left > 0:
            k = min(batch, left)
            r = rng.random((k, 2))
            writer.write((n * r * r).astype(np.int64))
            left -= k
    return path.stat().st_size


def _load_redge(path: Path):
    """In-memory load of a REDGE file (the comparison path)."""
    import numpy as np

    from repro.graph import Graph
    from repro.graph.external import read_binary_header

    header = read_binary_header(path)
    if header is None:
        raise ValueError(f"{path} is not a REDGE file")
    n, m = header
    pairs = np.fromfile(path, dtype="<i8", offset=24).reshape(m, 2)
    return Graph.from_edges(n, pairs)


# -- child processes (isolated peak-RSS measurements) ------------------------


def _child_main(args: argparse.Namespace) -> int:
    """Run one measured workload and print a single JSON line.

    ``ru_maxrss`` is a per-process lifetime high-water mark, so each
    measurement gets its own interpreter; the ``control`` mode performs
    the same imports (numpy + the repro stack) without touching a graph,
    giving the baseline the parent subtracts out.
    """
    from repro.core.config import TC2DConfig  # noqa: F401 - shared baseline
    from repro.graph.external import (  # noqa: F401 - shared baseline
        count_triangles_oocore,
        external_preprocess,
    )
    from repro.graph.store import GraphStore
    from repro.instrument.telemetry import peak_rss_bytes

    out: dict[str, Any] = {}
    cfg = TC2DConfig()
    if args.child == "control":
        pass
    elif args.child in ("preprocess", "stream"):
        info = external_preprocess(
            Path(args.graph),
            GraphStore(args.store_dir),
            args.ranks,
            cfg=cfg,
            chunk_bytes=args.chunk_bytes,
            stop_after="translate" if args.child == "stream" else None,
        )
        out.update(
            digest=info["digest"], n=info["n"], m=info["m"],
            spilled_bytes=info["spilled_bytes"], reused=info["reused"],
        )
    elif args.child == "count":
        res = count_triangles_oocore(
            Path(args.graph),
            args.ranks,
            cfg=cfg,
            store=GraphStore(args.store_dir),
            chunk_bytes=args.chunk_bytes,
        )
        info = res.extras["out_of_core"]
        out.update(
            count=int(res.count), digest=info["digest"],
            store_hit=bool(res.extras.get("cache", {}).get("hit")),
            mapped_ranks=res.extras.get("cache", {}).get("mapped_ranks"),
        )
    elif args.child == "inmem":
        from repro.core.tc2d import count_triangles_2d

        g = _load_redge(Path(args.graph))
        res = count_triangles_2d(g, args.ranks, cfg)
        out.update(count=int(res.count))
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown child mode {args.child!r}")
    out["peak_rss_bytes"] = peak_rss_bytes()
    print(json.dumps(out, sort_keys=True))
    return 0


def _run_child(mode: str, **kw: Any) -> dict[str, Any]:
    """Spawn one measurement child and return its JSON result."""
    cmd = [sys.executable, "-m", "repro.bench.oocbench", "--child", mode]
    for key, val in kw.items():
        if val is not None:
            cmd += [f"--{key.replace('_', '-')}", str(val)]
    t0 = time.perf_counter()
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=dict(os.environ)
    )
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"oocbench child {mode!r} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
        )
    doc = json.loads(proc.stdout.strip().splitlines()[-1])
    doc["wall_s"] = round(wall, 6)
    return doc


# -- the bench ----------------------------------------------------------------


def _parity_cases(smoke: bool) -> list[dict[str, Any]]:
    """In-process OOC vs in-memory parity across grids x reorder."""
    from repro.core.config import TC2DConfig
    from repro.core.tc2d import count_triangles_2d
    from repro.graph import rmat_graph
    from repro.graph.external import count_triangles_oocore
    from repro.graph.io import write_edge_list

    scale = 9 if smoke else 10
    graph = rmat_graph(scale, seed=5)
    rows: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="repro-oocbench-") as td:
        path = Path(td) / "parity.txt"
        write_edge_list(graph, path)
        for p in (4, 9):
            for reorder in (True, False):
                cfg = TC2DConfig(degree_reorder=reorder)
                ref = count_triangles_2d(graph, p, cfg)
                res = count_triangles_oocore(
                    path, p, cfg=cfg, workdir=td,
                    chunk_bytes=1 << 16, store=Path(td) / "store",
                )
                info = res.extras["out_of_core"]
                rows.append(
                    {
                        "name": f"parity-rmat{scale}-p{p}-"
                        f"{'reorder' if reorder else 'noreorder'}",
                        "p": p,
                        "degree_reorder": reorder,
                        "triangles": int(ref.count),
                        "ooc_triangles": int(res.count),
                        "digest": info["digest"],
                        "count_match": int(ref.count) == int(res.count),
                    }
                )
                print(
                    f"{rows[-1]['name']:<34} inmem={ref.count} "
                    f"ooc={res.count} match={rows[-1]['count_match']}",
                    file=sys.stderr,
                )
    return rows


def _dir_bytes(root: Path) -> int:
    return sum(f.stat().st_size for f in root.rglob("*") if f.is_file())


def _ratio_case(
    smoke: bool, workdir: Path, chunk_bytes: int | None = None
) -> dict[str, Any]:
    """The gated big-graph case: generate, preprocess, count, measure."""
    if smoke:
        n, m, p = 1 << 17, 1 << 20, 4
        chunk = chunk_bytes or (1 << 19)  # 512 KiB vs a 16 MiB graph
    else:
        n, m, p = 1 << 20, 1 << 22, 9
        chunk = chunk_bytes or (4 << 20)  # 4 MiB vs a 64 MiB graph
    graph_path = workdir / "ratio.redge"
    store_dir = workdir / "store"
    graph_bytes = write_skewed_graph(graph_path, n, m)
    print(
        f"ratio case: n={n} m={m} graph={graph_bytes / 2**20:.1f} MiB "
        f"chunk={chunk / 2**20:.2f} MiB p={p}",
        file=sys.stderr,
    )
    control = _run_child("control")
    stream = _run_child(
        "stream", graph=graph_path, store_dir=workdir / "probe-store",
        ranks=p, chunk_bytes=chunk,
    )
    pre = _run_child(
        "preprocess", graph=graph_path, store_dir=store_dir,
        ranks=p, chunk_bytes=chunk,
    )
    store_bytes = _dir_bytes(store_dir)
    count = _run_child(
        "count", graph=graph_path, store_dir=store_dir,
        ranks=p, chunk_bytes=chunk,
    )
    inmem = _run_child("inmem", graph=graph_path, ranks=p)
    base = control["peak_rss_bytes"]
    stream_delta = max(0, stream["peak_rss_bytes"] - base)
    pre_delta = max(0, pre["peak_rss_bytes"] - base)
    count_delta = max(0, count["peak_rss_bytes"] - base)
    inmem_delta = max(0, inmem["peak_rss_bytes"] - base)
    rank_pair_bytes = 32 * m // p
    case = {
        "name": f"ratio-n{n}-m{m}-p{p}",
        "p": p,
        "n": n,
        "m": m,
        "graph_bytes": graph_bytes,
        "chunk_bytes": chunk,
        "store_bytes": store_bytes,
        "triangles": count["count"],
        "count_match": count["count"] == inmem["count"],
        "digest": count["digest"],
        "wall_s": round(pre["wall_s"] + count["wall_s"], 6),
        # Headline figure for history rows: the warm count's footprint
        # (the streaming delta is routinely 0 — that is the point —
        # so it makes a useless trend line).
        "peak_rss_bytes": count_delta,
        "control": control,
        "stream": {
            **stream,
            "rss_delta_bytes": stream_delta,
            "ceiling_bytes": int(STREAM_FLOOR + PRE_CHUNK_MULT * chunk),
        },
        "preprocess": {
            **pre,
            "rss_delta_bytes": pre_delta,
            "ceiling_bytes": int(
                PRE_FLOOR + PRE_CHUNK_MULT * chunk
                + RANK_MULT * rank_pair_bytes
            ),
        },
        "count": {
            **count,
            "rss_delta_bytes": count_delta,
            "ceiling_bytes": int(
                COUNT_FLOOR + PRE_CHUNK_MULT * chunk
                + COUNT_STORE_MULT * store_bytes
            ),
        },
        "inmem": {**inmem, "rss_delta_bytes": inmem_delta},
        "graph_to_chunk_ratio": round(graph_bytes / chunk, 3),
        "graph_to_rss_ratio": round(
            graph_bytes / max(RSS_DELTA_FLOOR, stream_delta), 3
        ),
    }
    print(
        f"stream delta={stream_delta / 2**20:.1f} MiB "
        f"(ceiling {case['stream']['ceiling_bytes'] / 2**20:.1f}) | "
        f"preprocess delta={pre_delta / 2**20:.1f} MiB "
        f"(ceiling {case['preprocess']['ceiling_bytes'] / 2**20:.1f}) | "
        f"count delta={count_delta / 2**20:.1f} MiB "
        f"(ceiling {case['count']['ceiling_bytes'] / 2**20:.1f}) | "
        f"inmem delta={inmem_delta / 2**20:.1f} MiB | "
        f"graph/rss={case['graph_to_rss_ratio']:.1f}x "
        f"match={case['count_match']}",
        file=sys.stderr,
    )
    return case


def run_bench(
    smoke: bool = False,
    chunk_bytes: int | None = None,
    workdir: str | None = None,
) -> dict[str, Any]:
    """Run parity + ratio cases and return the JSON-serializable report."""
    from repro.instrument.telemetry import host_metadata

    cases = _parity_cases(smoke)
    if workdir is not None:
        Path(workdir).mkdir(parents=True, exist_ok=True)
        cases.append(_ratio_case(smoke, Path(workdir), chunk_bytes))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-oocbench-") as td:
            cases.append(_ratio_case(smoke, Path(td), chunk_bytes))
    return {
        "schema": SCHEMA,
        "suite": "outofcore",
        "mode": "smoke" if smoke else "full",
        "ratio_target": RATIO_TARGET,
        "rss_ratio_target": RSS_RATIO_TARGET,
        "host": host_metadata(),
        "cases": cases,
    }


def check_regressions(report: dict[str, Any]) -> list[str]:
    """Gate a report; returns human-readable failures (empty = pass)."""
    failures: list[str] = []
    ratio_target = float(report.get("ratio_target") or RATIO_TARGET)
    rss_target = float(report.get("rss_ratio_target") or RSS_RATIO_TARGET)
    saw_ratio_case = False
    for case in report.get("cases") or []:
        name = case.get("name", "?")
        if not case.get("count_match", False):
            failures.append(
                f"{name}: out-of-core count diverged from in-memory "
                f"({case.get('ooc_triangles', case.get('triangles'))} vs "
                f"reference)"
            )
        if "graph_bytes" not in case:
            continue  # parity-only case
        saw_ratio_case = True
        gb, cb = case["graph_bytes"], case["chunk_bytes"]
        if gb < ratio_target * cb:
            failures.append(
                f"{name}: graph {gb} bytes < {ratio_target}x chunk budget "
                f"{cb} bytes — the case no longer demonstrates out-of-core"
            )
        stream = case.get("stream") or {}
        sdelta = int(stream.get("rss_delta_bytes", 0))
        sceiling = int(
            stream.get("ceiling_bytes")
            or STREAM_FLOOR + PRE_CHUNK_MULT * cb
        )
        if sdelta > sceiling:
            failures.append(
                f"{name}: streaming-stages RSS delta {sdelta} > ceiling "
                f"{sceiling} (chunk_bytes={cb})"
            )
        if gb < rss_target * max(RSS_DELTA_FLOOR, sdelta):
            failures.append(
                f"{name}: graph/RSS ratio "
                f"{gb / max(RSS_DELTA_FLOOR, sdelta):.2f}x < {rss_target}x "
                f"(graph {gb} bytes, streaming delta {sdelta} bytes)"
            )
        pre = case.get("preprocess") or {}
        delta = int(pre.get("rss_delta_bytes", 0))
        ceiling = int(
            pre.get("ceiling_bytes")
            or PRE_FLOOR + PRE_CHUNK_MULT * cb
            + RANK_MULT * 32 * int(case.get("m", 0)) / max(1, case.get("p", 1))
        )
        if delta > ceiling:
            failures.append(
                f"{name}: preprocess RSS delta {delta} > ceiling {ceiling} "
                f"(chunk_bytes={cb})"
            )
        cnt = case.get("count") or {}
        cdelta = int(cnt.get("rss_delta_bytes", 0))
        cceiling = int(
            cnt.get("ceiling_bytes")
            or COUNT_FLOOR + PRE_CHUNK_MULT * cb
            + COUNT_STORE_MULT * int(case.get("store_bytes", 0))
        )
        if cdelta > cceiling:
            failures.append(
                f"{name}: count RSS delta {cdelta} > ceiling {cceiling}"
            )
        if cnt and not cnt.get("store_hit", False):
            failures.append(
                f"{name}: counting child missed the store entry the "
                "preprocessing child just wrote"
            )
    if not saw_ratio_case:
        failures.append("report has no ratio case (gates never ran)")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.oocbench",
        description="out-of-core preprocessing benchmark (gated peak RSS)",
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI-sized graph instead of the full ratio case",
    )
    ap.add_argument(
        "--chunk-bytes", type=int, default=None,
        help="override the ratio case's chunk budget",
    )
    ap.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep the generated graph/store here instead of a temp dir",
    )
    ap.add_argument(
        "--out", default="BENCH_outofcore.json",
        help="output JSON path ('-' for stdout only)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 when any memory/parity gate fails",
    )
    ap.add_argument(
        "--history", default=None, metavar="DB",
        help="also append this run's rows to the given history JSONL",
    )
    # -- hidden child plumbing (one measurement per interpreter) --
    ap.add_argument("--child", choices=("control", "stream", "preprocess",
                                        "count", "inmem"),
                    help=argparse.SUPPRESS)
    ap.add_argument("--graph", help=argparse.SUPPRESS)
    ap.add_argument("--store-dir", help=argparse.SUPPRESS)
    ap.add_argument("--ranks", type=int, default=4, help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.child:
        return _child_main(args)

    report = run_bench(
        smoke=args.smoke, chunk_bytes=args.chunk_bytes, workdir=args.workdir
    )
    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.history:
        from repro.bench.history import RunHistory, rows_from_bench

        n = RunHistory(args.history).append(rows_from_bench(report))
        print(f"appended {n} rows to {args.history}", file=sys.stderr)

    if args.check:
        failures = check_regressions(report)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print(
            "check passed: out-of-core pipeline within memory gates",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
