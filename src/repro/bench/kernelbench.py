"""Wall-clock microbenchmark harness for the intersection-kernel backends.

Times ``count_block_pair`` on realistic (task, U, L) block triples cut
from RMAT graphs — the same construction the pytest-benchmark suite in
``benchmarks/test_kernel_micro.py`` uses — and writes a machine-readable
regression artifact (``BENCH_kernels.json`` by default).

Timing methodology: the backends of a case are measured *interleaved*
(round-robin, best-of-N) rather than back to back, so CPU frequency
drift and scheduler noise hit every backend equally; the best-of
repetitions make the numbers approach the noise floor from above.  The
harness also cross-checks that every backend returns the same triangle
count and :class:`KernelStats` before trusting any timing.

Run it as a module::

    python -m repro.bench.kernelbench            # full sweep
    python -m repro.bench.kernelbench --smoke    # CI-sized subset
    python -m repro.bench.kernelbench --check    # exit 1 on regression
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.core.blocks import Block, build_block
from repro.core.config import TC2DConfig
from repro.core.kernels import available_backends, get_backend
from repro.graph import rmat_graph
from repro.instrument.telemetry import host_metadata, peak_rss_bytes

__all__ = [
    "SCHEMA",
    "BACKENDS",
    "CHECK_TOLERANCE",
    "BenchCase",
    "host_metadata",  # moved to repro.instrument.telemetry; re-exported
    "make_block_triple",
    "run_bench",
    "check_regressions",
    "main",
]

#: Artifact schema.  2 added ``host`` metadata and the
#: ``registered_backends`` registry snapshot so numbers from different
#: machines (or different backend sets) are never compared blindly.
#: 3 adds per-backend total ``wall_s`` and per-case ``peak_rss_bytes``
#: (process high-water mark after the case ran).
SCHEMA = 3

#: Backends timed by default ("auto" adds only dispatch overhead on top
#: of whichever concrete backend it picks, so it is not timed separately).
BACKENDS = ("row", "batch")

#: The regression gate: ``--check`` fails when batch is slower than
#: ``row * CHECK_TOLERANCE`` on any case (tolerance absorbs timer noise
#: on tiny smoke cases).
CHECK_TOLERANCE = 1.10


def _bench_graph(scale: int, seed: int):
    """The RMAT input graph, via the on-disk graph cache when
    ``REPRO_STORE_DIR`` is set (generation dominates small-case setup)."""
    from repro.graph.store import store_from_env

    store = store_from_env()
    if store is None:
        return rmat_graph(scale, seed=seed)
    key = store.graph_key("kernelbench-rmat", scale, 16, seed)
    g = store.load_graph(key)
    if g is None:
        g = rmat_graph(scale, seed=seed)
        store.save_graph(key, g)
    return g


def make_block_triple(
    scale: int, q: int, seed: int = 2, residue: tuple[int, int] = (0, 0)
) -> tuple[Block, Block, Block]:
    """A realistic (task, U, L) triple: block ``residue`` of the 2D cyclic
    split of an RMAT graph's upper triangle over a ``q x q`` grid."""
    g = _bench_graph(scale, seed)
    U = g.upper_csr()
    rows, cols = U.to_coo()
    rx, ry = residue
    sel = (rows % q == rx) & (cols % q == ry)
    nb = (g.n + q - 1) // q
    u_blk = build_block("U-row", rx, ry, nb, nb, rows[sel] // q, cols[sel] // q)
    l_blk = build_block("L-col", rx, ry, nb, nb, rows[sel] // q, cols[sel] // q)
    t_blk = build_block("task", rx, ry, nb, nb, cols[sel] // q, rows[sel] // q)
    return t_blk, u_blk, l_blk


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One (graph, grid, toggles) point of the sweep."""

    name: str
    scale: int
    q: int
    cfg: TC2DConfig = TC2DConfig()

    def blocks(self) -> tuple[Block, Block, Block]:
        return make_block_triple(self.scale, self.q)


#: The standard sweep.  "rmat11-q3" is *the* acceptance case (the same
#: triple as the pytest-benchmark fixture); the others probe scaling and
#: the toggles' interaction with the vectorized path.
CASES = (
    BenchCase("rmat11-q3", 11, 3),
    BenchCase("rmat12-q3", 12, 3),
    BenchCase("rmat13-q4", 13, 4),
    BenchCase(
        "rmat11-q3-probed",
        11,
        3,
        TC2DConfig(modified_hashing=False),
    ),
    BenchCase(
        "rmat11-q3-noearlystop",
        11,
        3,
        TC2DConfig(early_stop=False),
    ),
)

SMOKE_CASES = (
    BenchCase("rmat9-q3-smoke", 9, 3),
    BenchCase("rmat10-q3-smoke", 10, 3),
)


def _time_case(
    case: BenchCase, backends: tuple[str, ...], reps: int
) -> dict[str, Any]:
    t_blk, u_blk, l_blk = case.blocks()
    fns = {b: get_backend(b) for b in backends}

    # Contract check before any timing: identical stats across backends.
    stats = {
        b: dataclasses.asdict(fn(t_blk, u_blk, l_blk, case.cfg))
        for b, fn in fns.items()
    }
    ref = stats[backends[0]]
    for b, st in stats.items():
        if st != ref:
            raise AssertionError(
                f"{case.name}: backend {b!r} diverges from "
                f"{backends[0]!r}: {st} != {ref}"
            )

    best = {b: float("inf") for b in backends}
    total = {b: 0.0 for b in backends}
    for _rep in range(reps):
        for b in backends:  # interleaved so noise hits all backends alike
            fn = fns[b]
            t0 = time.perf_counter()
            fn(t_blk, u_blk, l_blk, case.cfg)
            dt = time.perf_counter() - t0
            best[b] = min(best[b], dt)
            total[b] += dt

    timings = {
        b: {"best_ms": best[b] * 1e3, "reps": reps, "wall_s": total[b]}
        for b in backends
    }
    out: dict[str, Any] = {
        "name": case.name,
        "scale": case.scale,
        "q": case.q,
        "toggles": {
            "modified_hashing": case.cfg.modified_hashing,
            "early_stop": case.cfg.early_stop,
            "doubly_sparse": case.cfg.doubly_sparse,
        },
        "task_nnz": int(t_blk.nnz),
        "u_nnz": int(u_blk.nnz),
        "triangles": int(ref["triangles"]),
        "tasks": int(ref["tasks"]),
        "backends": timings,
        # Process high-water mark after the case ran; monotone across
        # cases, so per-case deltas only attribute growth, not reuse.
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if "row" in best and "batch" in best and best["batch"] > 0:
        out["speedup_batch_vs_row"] = best["row"] / best["batch"]
    return out


def run_bench(
    smoke: bool = False,
    reps: int = 15,
    backends: tuple[str, ...] = BACKENDS,
) -> dict[str, Any]:
    """Run the sweep and return the JSON-serializable report."""
    cases = SMOKE_CASES if smoke else CASES
    results = []
    for case in cases:
        res = _time_case(case, backends, reps)
        results.append(res)
        spd = res.get("speedup_batch_vs_row")
        spd_txt = f"  batch speedup {spd:.2f}x" if spd else ""
        timing_txt = "  ".join(
            f"{b}={res['backends'][b]['best_ms']:.3f}ms" for b in backends
        )
        print(f"{case.name:<24} {timing_txt}{spd_txt}", file=sys.stderr)
    return {
        "schema": SCHEMA,
        "suite": "kernel-backends",
        "mode": "smoke" if smoke else "full",
        "reps": reps,
        "host": host_metadata(),
        "registered_backends": list(available_backends()),
        "cases": results,
    }


def check_regressions(report: dict[str, Any]) -> list[str]:
    """Regression gate: batch must not be slower than row on any case.

    Reads defensively so artifacts written by older schemas (without
    ``wall_s``/``peak_rss_bytes``) still check cleanly.
    """
    failures = []
    for case in report.get("cases") or []:
        t = case.get("backends") or {}
        if "row" not in t or "batch" not in t:
            continue
        row_ms, batch_ms = t["row"]["best_ms"], t["batch"]["best_ms"]
        if batch_ms > row_ms * CHECK_TOLERANCE:
            failures.append(
                f"{case['name']}: batch {batch_ms:.3f}ms > "
                f"row {row_ms:.3f}ms * {CHECK_TOLERANCE}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.kernelbench",
        description="microbenchmark the intersection-kernel backends",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small CI-sized cases instead of the full sweep",
    )
    ap.add_argument(
        "--reps", type=int, default=15, help="best-of repetitions per case"
    )
    ap.add_argument(
        "--out",
        default="BENCH_kernels.json",
        help="output JSON path ('-' for stdout only)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when batch is slower than row on any case",
    )
    ap.add_argument(
        "--history",
        default=None,
        metavar="DB",
        help="also append this run's rows to the given history JSONL "
        "(see `repro history`)",
    )
    args = ap.parse_args(argv)

    report = run_bench(smoke=args.smoke, reps=args.reps)
    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.history:
        from repro.bench.history import RunHistory, rows_from_bench

        n = RunHistory(args.history).append(rows_from_bench(report))
        print(f"appended {n} rows to {args.history}", file=sys.stderr)

    if args.check:
        failures = check_regressions(report)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("check passed: batch >= row on every case", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
