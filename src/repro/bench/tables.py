"""Builders for the paper's tables (1-6) on the scaled datasets.

Each ``tableN`` function runs (or fetches memoized) experiments, returns a
``(text, data)`` pair, and asserts nothing: shape assertions live in the
benchmark tests so failures carry context.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import (
    count_triangles_aop,
    count_triangles_havoq,
    count_triangles_psp,
    count_triangles_surrogate,
)
from repro.bench.calibration import bench_ranks, paper_model
from repro.bench.paper_reference import DATASET_ANALOGUE
from repro.bench.runner import run_point, sweep
from repro.core import TC2DConfig
from repro.graph.datasets import load_dataset
from repro.graph.stats import triangle_count_linalg
from repro.instrument.report import format_table

#: Datasets standing in for the paper's Table 2 rows (s28, s29, twitter,
#: friendster).
TABLE2_DATASETS: tuple[str, ...] = (
    "g500-s14",
    "g500-s15",
    "twitter-like",
    "friendster-like",
)

#: The largest synthetic graph (the paper uses g500-s29 for Tables 3-4 and
#: Figures 2-3); ours is its scaled analogue.
BIG_DATASET = "g500-s15"

#: Table 5 datasets (paper: s26, s27, s28, twitter, friendster).
TABLE5_DATASETS: tuple[str, ...] = (
    "g500-s12",
    "g500-s13",
    "g500-s14",
    "twitter-like",
    "friendster-like",
)


def table1(datasets: Sequence[str] | None = None) -> tuple[str, list[dict]]:
    """Table 1: dataset summary (vertices, edges, triangles) with the
    paper analogue each dataset stands in for."""
    names = list(datasets) if datasets else list(TABLE5_DATASETS) + ["g500-s15"]
    rows = []
    data = []
    seen = set()
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        g = load_dataset(name)
        tri = triangle_count_linalg(g)
        analogue = DATASET_ANALOGUE.get(name, "-")
        rows.append((name, g.n, g.num_edges, tri, analogue))
        data.append(
            {
                "dataset": name,
                "vertices": g.n,
                "edges": g.num_edges,
                "triangles": tri,
                "paper_analogue": analogue,
            }
        )
    text = format_table(
        ["graph", "#vertices", "#edges", "#triangles", "paper analogue"],
        rows,
        title="Table 1 (scaled): datasets used in the experiments",
    )
    return text, data


def table2(
    datasets: Sequence[str] = TABLE2_DATASETS,
    ranks: Sequence[int] | None = None,
) -> tuple[str, list[dict]]:
    """Table 2: ppt/tct/overall simulated runtimes and relative speedups
    over the 16-rank baseline, for every dataset and rank count."""
    ranks = list(ranks) if ranks else list(bench_ranks())
    model = paper_model()
    rows = []
    data = []
    for ds in datasets:
        results = sweep(ds, ranks, model=model)
        base = results[0]
        for r in results:
            row = {
                "dataset": ds,
                "ranks": r.p,
                "expected_speedup": r.p / base.p,
                "ppt_ms": r.ppt_time * 1e3,
                "ppt_speedup": base.ppt_time / r.ppt_time,
                "tct_ms": r.tct_time * 1e3,
                "tct_speedup": base.tct_time / r.tct_time,
                "overall_ms": r.overall_time * 1e3,
                "overall_speedup": base.overall_time / r.overall_time,
                "count": r.count,
            }
            data.append(row)
            rows.append(
                (
                    ds if r is results[0] else "",
                    r.p,
                    row["expected_speedup"],
                    row["ppt_ms"],
                    row["ppt_speedup"],
                    row["tct_ms"],
                    row["tct_speedup"],
                    row["overall_ms"],
                    row["overall_speedup"],
                )
            )
    text = format_table(
        [
            "dataset",
            "ranks",
            "expected",
            "ppt (ms)",
            "ppt x",
            "tct (ms)",
            "tct x",
            "overall (ms)",
            "overall x",
        ],
        rows,
        title=(
            "Table 2 (scaled): parallel performance, 16-169 simulated MPI "
            "ranks (simulated milliseconds; speedups relative to 16 ranks)"
        ),
    )
    return text, data


def table3(
    dataset: str = BIG_DATASET, ranks: Sequence[int] = (25, 36)
) -> tuple[str, list[dict]]:
    """Table 3: triangle-counting load imbalance (max/avg per-rank compute
    time over the shifts) at 25 and 36 ranks."""
    model = paper_model()
    rows = []
    data = []
    for p in ranks:
        r = run_point(dataset, p, model=model)
        per_rank: dict[int, float] = {}
        for rec in r.shift_records:
            per_rank[rec.rank] = per_rank.get(rec.rank, 0.0) + rec.compute_seconds
        times = list(per_rank.values())
        mx = max(times)
        avg = sum(times) / len(times)
        imb = mx / avg if avg > 0 else 1.0
        rows.append((p, mx * 1e3, avg * 1e3, imb))
        data.append(
            {"ranks": p, "max_ms": mx * 1e3, "avg_ms": avg * 1e3, "imbalance": imb}
        )
    text = format_table(
        ["ranks", "maximum runtime (ms)", "average runtime (ms)", "load imbalance"],
        rows,
        title=(
            f"Table 3 (scaled): {dataset} per-rank counting compute time and "
            "load imbalance"
        ),
        floatfmt=".3f",
    )
    return text, data


def table4(
    dataset: str = BIG_DATASET, ranks: Sequence[int] = (16, 25, 36)
) -> tuple[str, list[dict]]:
    """Table 4: growth of map-intersection task counts with rank count."""
    model = paper_model()
    rows = []
    data = []
    prev = None
    for p in ranks:
        r = run_point(dataset, p, model=model)
        tasks = int(r.tasks_total)
        growth = "" if prev is None else f"{(tasks - prev) / prev:.0%}"
        rows.append((p, tasks, growth))
        data.append({"ranks": p, "tasks": tasks, "growth": growth})
        prev = tasks
    text = format_table(
        ["ranks used", "task counts", "increase vs previous"],
        rows,
        title=f"Table 4 (scaled): {dataset} map-intersection task growth",
    )
    return text, data


def table5(
    datasets: Sequence[str] = TABLE5_DATASETS,
    p_ours: int = 169,
    p_havoq: int = 169,
) -> tuple[str, list[dict]]:
    """Table 5: 2D algorithm vs the HavoqGT-style wedge-checking baseline.

    Paper setup: Havoq on 1152 cores vs the 2D algorithm on 169; we give
    both the same simulated rank count, which only favors the baseline.
    """
    model = paper_model()
    rows = []
    data = []
    for ds in datasets:
        ours = run_point(ds, p_ours, model=model)
        g = load_dataset(ds)
        hv = count_triangles_havoq(g, p_havoq, model=model, dataset=ds)
        if hv.count != ours.count:
            raise AssertionError(
                f"havoq and tc2d disagree on {ds}: {hv.count} vs {ours.count}"
            )
        speedup = (hv.ppt_time + hv.tct_time) / ours.tct_time
        rows.append(
            (
                ds,
                hv.ppt_time * 1e3,
                hv.tct_time * 1e3,
                ours.tct_time * 1e3,
                speedup,
            )
        )
        data.append(
            {
                "dataset": ds,
                "havoq_2core_ms": hv.ppt_time * 1e3,
                "havoq_wedge_ms": hv.tct_time * 1e3,
                "ours_tct_ms": ours.tct_time * 1e3,
                "speedup": speedup,
                "wedges": hv.extras.get("wedges_total", 0),
            }
        )
    text = format_table(
        [
            "dataset",
            "2core time (ms)",
            "wedge counting (ms)",
            "our runtime (ms)",
            "speedup obtained",
        ],
        rows,
        title=(
            "Table 5 (scaled): comparison with the HavoqGT-style wedge "
            "baseline (simulated ms)"
        ),
        floatfmt=".3f",
    )
    return text, data


def table6(
    dataset: str = "twitter-like",
    p_ours: int = 169,
    p_1d: int = 196,
    p_psp: int = 64,
) -> tuple[str, list[dict]]:
    """Table 6: twitter-graph comparison against the 1D competitors.

    Paper setup: AOP/Surrogate on 200 cores, OPT-PSP on 2048; we run the
    1D baselines at 196 ranks (nearest square-ish analogue of 200) and
    OPT-PSP at a reduced count (its ring is O(p) rounds).
    """
    model = paper_model()
    g = load_dataset(dataset)
    graph_bytes = int(g.adj.indices.nbytes + g.adj.indptr.nbytes)
    ours = run_point(dataset, p_ours, model=model)
    competitors = [
        ("Our work (2D)", ours.overall_time, p_ours, ours.count, 1.0),
    ]
    aop = count_triangles_aop(g, p_1d, model=model, dataset=dataset)
    aop_repl = 1.0 + aop.extras["ghost_bytes_total"] / graph_bytes
    competitors.append(("AOP [1]", aop.overall_time, p_1d, aop.count, aop_repl))
    sur = count_triangles_surrogate(g, p_1d, model=model, dataset=dataset)
    competitors.append(("Surrogate [1]", sur.overall_time, p_1d, sur.count, 1.0))
    psp = count_triangles_psp(g, p_psp, model=model, dataset=dataset)
    competitors.append(("OPT-PSP [10]", psp.overall_time, p_psp, psp.count, 1.0))
    for name, _t, _p, count, _r in competitors:
        if count != ours.count:
            raise AssertionError(f"{name} disagrees: {count} vs {ours.count}")
    rows = [
        (name, t * 1e3, p, f"{repl:.1f}x")
        for (name, t, p, _c, repl) in competitors
    ]
    data = [
        {
            "algorithm": name,
            "runtime_ms": t * 1e3,
            "ranks": p,
            "memory_replication": repl,
        }
        for (name, t, p, _c, repl) in competitors
    ]
    text = format_table(
        ["algorithm", "runtime (ms)", "ranks used", "graph replication"],
        rows,
        title=(
            f"Table 6 (scaled): {dataset} runtime vs 1D distributed-memory "
            "approaches (simulated ms).  AOP's replication column is the "
            "aggregate (owned + ghost) storage relative to one graph copy — "
            "the memory overhead that gates it at the paper's scale"
        ),
        floatfmt=".3f",
    )
    return text, data


def ablation_table(
    dataset: str = BIG_DATASET, ranks: Sequence[int] = (16, 100)
) -> tuple[str, list[dict]]:
    """Section 7.3: triangle-counting-time reduction from each
    optimization, at a small and a large rank count."""
    model = paper_model()
    rows = []
    data = []
    base_cfg = TC2DConfig()
    for p in ranks:
        base = run_point(dataset, p, cfg=base_cfg, model=model)
        for label, cfg in TC2DConfig.ablations().items():
            if cfg == base_cfg:
                continue
            variant = run_point(dataset, p, cfg=cfg, model=model)
            if variant.count != base.count:
                raise AssertionError(f"{label} changed the count on {dataset}")
            # Reduction achieved BY the optimization = how much slower the
            # variant without it is, relative to the variant.
            reduction = 1.0 - base.tct_time / variant.tct_time
            rows.append(
                (p, label, base.tct_time * 1e3, variant.tct_time * 1e3, f"{reduction:.1%}")
            )
            data.append(
                {
                    "ranks": p,
                    "variant": label,
                    "baseline_tct_ms": base.tct_time * 1e3,
                    "variant_tct_ms": variant.tct_time * 1e3,
                    "reduction": reduction,
                }
            )
    text = format_table(
        [
            "ranks",
            "variant (feature disabled)",
            "tct all-on (ms)",
            "tct variant (ms)",
            "reduction from feature",
        ],
        rows,
        title=(
            f"Section 7.3 (scaled): {dataset} optimization ablations "
            "(how much each optimization reduces the counting time)"
        ),
        floatfmt=".3f",
    )
    return text, data
