"""Headline numbers from the paper, for side-by-side reporting.

Only the values needed to judge whether our reproduction preserves each
experiment's *shape* are recorded (who wins, by what factor, where trends
bend); EXPERIMENTS.md pairs these with our measured values.
"""

from __future__ import annotations

#: Table 2, speedups at 169 ranks relative to 16 ranks (expected: 10.56).
PAPER_TABLE2_SPEEDUP_169 = {
    "g500-s28": {"ppt": 4.94, "tct": 7.22, "overall": 6.59},
    "g500-s29": {"ppt": 6.04, "tct": 7.18, "overall": 6.93},
    "twitter": {"ppt": 1.92, "tct": 5.91, "overall": 3.39},
    "friendster": {"ppt": 2.90, "tct": 3.24, "overall": 3.06},
}

#: Table 2, overall speedups at 25 ranks (ideal 1.56; super-linear cases).
PAPER_TABLE2_SPEEDUP_25 = {
    "g500-s28": 1.39,
    "g500-s29": 1.90,
    "twitter": 1.63,
    "friendster": 1.44,
}

#: Table 3: per-shift load imbalance for g500-s29.
PAPER_TABLE3_IMBALANCE = {25: 1.05, 36: 1.14}

#: Table 4: map-intersection task counts for g500-s29 and their growth.
PAPER_TABLE4_TASKS = {
    16: 33_907_905_131,
    25: 42_360_246_067,
    36: 50_801_950_709,
}
PAPER_TABLE4_GROWTH = {25: 0.25, 36: 0.20}

#: Section 7.3 ablations (reduction of tct runtime by each optimization).
PAPER_ABLATIONS = {
    "doubly_sparse": {16: 0.10, 100: 0.15},
    "modified_hashing": {16: 0.012, 100: 0.087},
    "jik_vs_ijk": 0.728,  # tct runtime decrease using jik instead of ijk
}

#: Table 5: our-runtime vs Havoq runtime (2core + wedge) and speedups.
PAPER_TABLE5 = {
    "g500-s26": {"havoq": 1.59 + 239.64, "ours": 20.35, "speedup": 11.9},
    "g500-s27": {"havoq": 3.37 + 576.45, "ours": 41.93, "speedup": 13.7},
    "g500-s28": {"havoq": 7.32 + 1395.11, "ours": 79.82, "speedup": 14.6},
    "twitter": {"havoq": 1.88 + 124.72, "ours": 18.52, "speedup": 6.2},
    "friendster": {"havoq": 3.29 + 24.75, "ours": 29.43, "speedup": None},
}

#: Table 6: fastest twitter runtimes (seconds) and cores used.
PAPER_TABLE6 = {
    "Our work": (51.7, 169),
    "AOP": (564.0, 200),
    "Surrogate": (739.8, 200),
    "OPT-PSP": (23.14, 2048),
}

#: Map from our scaled dataset names to the paper's dataset names.
DATASET_ANALOGUE = {
    "g500-s12": "g500-s26",
    "g500-s13": "g500-s27",
    "g500-s14": "g500-s28",
    "g500-s15": "g500-s29",
    "g500-s16": "g500-s29",
    "twitter-like": "twitter",
    "friendster-like": "friendster",
}
