"""Section 5.4 cost-analysis verification.

The paper derives per-rank time complexities for the two phases:

* preprocessing: ``T_pre ~ p + m/p + n/p + log p + dmax + dmax*log p``
* counting:      ``T_tc  ~ d_avg * (n/sqrt(p)) * (d_avg/sqrt(p) + 1)``

This module evaluates those formulas for a dataset across a rank sweep,
fits the single free scale constant per phase by least squares against
the measured (simulated) times, and reports the agreement, letting the
benchmark assert that the analytical model explains the measured scaling
— which is precisely the role Section 7.1 gives the analysis ("in light
of the analysis presented in Section 5.4, this scaling behavior was
expected").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.counts import TriangleCountResult
from repro.graph.csr import Graph


def predict_ppt_shape(n: int, m: int, dmax: int, p: int) -> float:
    """Unscaled T_pre(p) from the paper's preprocessing cost terms."""
    logp = math.log2(max(2, p))
    return p + m / p + n / p + logp + dmax + dmax * logp


def predict_tct_shape(n: int, m: int, davg: float, p: int) -> float:
    """Unscaled T_tc(p) from the paper's counting cost term."""
    q = math.sqrt(p)
    return davg * (n / q) * (davg / q + 1.0)


@dataclass(frozen=True)
class CostFit:
    """Least-squares fit of one phase's analytical shape to measurements.

    Attributes
    ----------
    phase:
        ``"ppt"`` or ``"tct"``.
    scale:
        Fitted constant (seconds per shape unit).
    correlation:
        Pearson correlation between predicted and measured times over the
        sweep (1.0 = the analysis explains the scaling perfectly).
    max_ratio_error:
        Worst-case ``max(pred/meas, meas/pred)`` after scaling.
    points:
        ``(p, measured_seconds, predicted_seconds)`` rows.
    """

    phase: str
    scale: float
    correlation: float
    max_ratio_error: float
    points: list[tuple[int, float, float]]


def fit_phase(
    graph: Graph, results: list[TriangleCountResult], phase: str
) -> CostFit:
    """Fit one phase's analytical shape to a sweep of results."""
    n, m = graph.n, graph.num_edges
    degs = graph.degrees
    dmax = int(degs.max()) if n else 0
    davg = float(degs.mean()) if n else 0.0
    shapes = []
    measured = []
    for r in results:
        if phase == "ppt":
            shapes.append(predict_ppt_shape(n, m, dmax, r.p))
            measured.append(r.ppt_time)
        elif phase == "tct":
            shapes.append(predict_tct_shape(n, m, davg, r.p))
            measured.append(r.tct_time)
        else:
            raise ValueError(f"unknown phase {phase!r}")
    shapes_arr = np.asarray(shapes)
    meas_arr = np.asarray(measured)
    scale = float((shapes_arr @ meas_arr) / (shapes_arr @ shapes_arr))
    pred = scale * shapes_arr
    if len(results) > 1 and meas_arr.std() > 0 and pred.std() > 0:
        corr = float(np.corrcoef(pred, meas_arr)[0, 1])
    else:
        corr = 1.0
    ratios = np.maximum(pred / meas_arr, meas_arr / pred)
    return CostFit(
        phase=phase,
        scale=scale,
        correlation=corr,
        max_ratio_error=float(ratios.max()),
        points=[
            (r.p, float(t), float(q))
            for r, t, q in zip(results, meas_arr, pred)
        ],
    )
