"""Load generator + regression gate for the serve front end.

Drives a real in-process :class:`~repro.serve.server.ServeServer`
(ephemeral port, actual HTTP round trips) with concurrent client
threads and measures the serve-level contract:

* **cold** — distinct seeds, every request a fresh digest; p50/p99
  includes graph load, preprocessing and the counting run.
* **warm** — one canonical request repeated across clients; p50/p99 is
  the result-cache fast path, the headline of the serve layer.
* **mixed** — configurable hit/miss mix with Zipf-skewed tenants;
  reports sustained throughput and the served hit ratio.
* **overload** — a second, deliberately tiny service (capacity
  ``max_inflight + max_queue``) hit with a 4x burst; admission control
  must *reject* (typed, counted) rather than queue unboundedly.

Writes ``BENCH_serve.json`` and with ``--check`` gates (exit 1 on
violation):

* warm p50 at least ``--warm-speedup-gate`` (default 10x) below cold p50;
* served counts bit-identical between the cold and warm paths;
* every overload rejection typed, accepted <= capacity, queue depth
  bounded by ``max_queue``.

Usage::

    python -m repro.bench.servebench --mode smoke --check   # CI
    python -m repro.bench.servebench --mode full            # BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from typing import Any

from repro.instrument.telemetry import host_metadata
from repro.serve import ServeClient, ServeConfig, ServeRejected
from repro.serve.server import run_server

#: Per-mode defaults: (dataset, ranks, cold_n, warm_n, mixed_n, clients).
MODES = {
    "smoke": ("g500-s12", 16, 3, 40, 30, 4),
    "full": ("g500-s13", 16, 5, 200, 120, 8),
}

#: Burst multiple over the tiny service's capacity in the overload phase.
OVERLOAD_FACTOR = 4


def _pctl(data: list[float], q: float) -> float | None:
    if not data:
        return None
    data = sorted(data)
    return data[min(len(data) - 1, max(0, int(round(q * (len(data) - 1)))))]


class _Server:
    """An in-process serve endpoint on an ephemeral port."""

    def __init__(self, config: ServeConfig):
        self.port: int | None = None
        self._ready = threading.Event()

        def announce(server: Any) -> None:
            self.port = server.port
            self._ready.set()

        self._thread = threading.Thread(
            target=run_server,
            args=(config,),
            kwargs={"port": 0, "announce": announce},
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("serve endpoint did not start")

    def client(self, timeout: float = 600.0) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout=timeout)

    def stop(self) -> None:
        self.client().shutdown()
        self._thread.join(timeout=60)


def _fanout(n: int, clients: int, fn: Any) -> list[Any]:
    """Run ``fn(i)`` for i in range(n) across ``clients`` threads; returns
    results in submission order (exceptions propagate)."""
    results: list[Any] = [None] * n
    errors: list[BaseException] = []
    it = iter(range(n))
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                i = next(it, None)
            if i is None:
                return
            try:
                results[i] = fn(i)
            except BaseException as exc:  # noqa: BLE001 - collected below
                errors.append(exc)
                return

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


def run_bench(args: argparse.Namespace) -> dict[str, Any]:
    """Execute every phase and assemble the report."""
    dataset, ranks, cold_n, warm_n, mixed_n, clients = MODES[args.mode]
    if args.dataset:
        dataset = args.dataset
    if args.ranks:
        ranks = args.ranks
    if args.requests:
        cold_n = max(1, args.requests // 10)
        warm_n = args.requests
        mixed_n = args.requests
    if args.clients:
        clients = args.clients
    base = {"kind": "count", "dataset": dataset, "ranks": ranks}
    rng = random.Random(args.seed)

    server = _Server(
        ServeConfig(
            max_inflight=args.max_inflight,
            max_queue=max(64, mixed_n),
            tenant_quota=max(32, mixed_n),
            executor=args.executor,
            workers=args.workers,
        )
    )
    try:
        c = server.client()

        # -- cold: fresh digest per request --------------------------------
        cold_lat: list[float] = []
        for i in range(cold_n):
            t0 = time.perf_counter()
            doc = c.submit({**base, "seed": 1000 + i}, tenant="bench-cold")
            cold_lat.append(time.perf_counter() - t0)
            assert doc["result"]["served"] == "cold", doc["result"]["served"]

        # -- canonical request: one cold, then the warm sweep --------------
        t0 = time.perf_counter()
        first = c.submit(base, tenant="bench-warm")
        cold_lat.append(time.perf_counter() - t0)
        canonical = first["result"]
        assert canonical["served"] == "cold"

        def warm_once(_i: int) -> float:
            t0 = time.perf_counter()
            doc = c.submit(base, tenant="bench-warm")
            lat = time.perf_counter() - t0
            assert doc["result"]["served"] == "warm"
            assert doc["result"]["count"] == canonical["count"]
            assert doc["result"]["digest"] == canonical["digest"]
            return lat

        warm_lat = _fanout(warm_n, clients, warm_once)

        # -- mixed traffic with tenant skew --------------------------------
        tenants = [f"tenant-{i}" for i in range(args.tenants)]
        weights = [1.0 / (i + 1) ** args.skew for i in range(args.tenants)]
        plan = []
        for i in range(mixed_n):
            hit = rng.random() < args.hit_ratio
            spec = dict(base) if hit else {**base, "seed": 5000 + i}
            plan.append((spec, rng.choices(tenants, weights)[0]))

        served = {"warm": 0, "cold": 0}
        tenant_counts: dict[str, int] = {}
        count_lock = threading.Lock()

        def mixed_once(i: int) -> float:
            spec, tenant = plan[i]
            t0 = time.perf_counter()
            doc = c.submit(spec, tenant=tenant)
            lat = time.perf_counter() - t0
            with count_lock:
                served[doc["result"]["served"]] += 1
                tenant_counts[tenant] = tenant_counts.get(tenant, 0) + 1
            return lat

        t_mix = time.perf_counter()
        mixed_lat = _fanout(mixed_n, clients, mixed_once)
        mixed_wall = time.perf_counter() - t_mix
        stats = c.stats()
        metrics_text = c.metrics()
    finally:
        server.stop()

    # -- overload burst against a deliberately tiny service ----------------
    tiny = ServeConfig(max_inflight=1, max_queue=2, tenant_quota=64)
    capacity = tiny.max_inflight + tiny.max_queue
    burst = OVERLOAD_FACTOR * capacity
    over = _Server(tiny)
    try:
        oc = over.client()
        rejected: dict[str, int] = {}
        accepted = 0
        acc_lock = threading.Lock()

        def flood(i: int) -> None:
            nonlocal accepted
            try:
                oc.submit(
                    {**base, "seed": 9000 + i},
                    tenant=f"flood-{i % 4}",
                    wait=False,
                )
            except ServeRejected as exc:
                with acc_lock:
                    rejected[exc.reason] = rejected.get(exc.reason, 0) + 1
            else:
                with acc_lock:
                    accepted += 1

        _fanout(burst, burst, flood)
        over_stats = oc.stats()
    finally:
        over.stop()

    warm_p50, cold_p50 = _pctl(warm_lat, 0.5), _pctl(cold_lat, 0.5)
    name = f"{dataset}-p{ranks}"
    return {
        "kind": "repro-serve-bench",
        "suite": "serve",
        "mode": args.mode,
        "host": host_metadata(),
        "config": {
            "clients": clients,
            "max_inflight": args.max_inflight,
            "executor": args.executor,
            "hit_ratio_target": args.hit_ratio,
            "tenants": args.tenants,
            "skew": args.skew,
            "overload": {"capacity": capacity, "burst": burst},
        },
        "cases": [
            {
                "name": name,
                "triangles": canonical["count"],
                "digest": canonical["digest"],
                "machine_fingerprint": canonical["machine_fingerprint"],
                "cold": {
                    "n": len(cold_lat),
                    "p50_s": cold_p50,
                    "p99_s": _pctl(cold_lat, 0.99),
                },
                "warm": {
                    "n": len(warm_lat),
                    "p50_s": warm_p50,
                    "p99_s": _pctl(warm_lat, 0.99),
                },
                "warm_speedup_p50": (
                    cold_p50 / warm_p50 if warm_p50 and cold_p50 else None
                ),
                "mixed": {
                    "n": mixed_n,
                    "wall_s": mixed_wall,
                    "throughput_rps": (
                        mixed_n / mixed_wall if mixed_wall > 0 else None
                    ),
                    "p50_s": _pctl(mixed_lat, 0.5),
                    "p99_s": _pctl(mixed_lat, 0.99),
                    "served": served,
                    "hit_ratio": served["warm"] / max(1, sum(served.values())),
                    "tenants": dict(sorted(tenant_counts.items())),
                },
            }
        ],
        "server_stats": {
            k: stats.get(k)
            for k in (
                "completed", "rejected", "queue_depth_max", "hit_ratio",
                "warm_p50_s", "cold_p50_s",
            )
        },
        "metrics_scrape_lines": len(metrics_text.splitlines()),
        "overload": {
            "burst": burst,
            "capacity": capacity,
            "accepted": accepted,
            "rejected": dict(sorted(rejected.items())),
            "rejected_total": sum(rejected.values()),
            "queue_depth_max": over_stats.get("queue_depth_max"),
        },
    }


def check_report(
    report: dict[str, Any], warm_speedup_gate: float
) -> list[str]:
    """Gate a servebench report; returns human-readable failures."""
    failures: list[str] = []
    for case in report.get("cases") or []:
        name = case.get("name")
        speedup = case.get("warm_speedup_p50")
        if speedup is None or speedup < warm_speedup_gate:
            failures.append(
                f"{name}: warm p50 speedup {speedup} < gate "
                f"{warm_speedup_gate}x over cold p50"
            )
        mixed = case.get("mixed") or {}
        if not mixed.get("served", {}).get("warm"):
            failures.append(f"{name}: mixed phase produced no warm hits")
    over = report.get("overload") or {}
    if not over.get("rejected_total"):
        failures.append("overload: no typed rejections under 4x burst")
    unknown = set(over.get("rejected") or {}) - {
        "queue_full", "tenant_quota", "shutting_down"
    }
    if unknown:
        failures.append(f"overload: unknown rejection reasons {unknown}")
    if over.get("accepted", 0) > over.get("capacity", 0):
        failures.append(
            f"overload: accepted {over.get('accepted')} jobs > capacity "
            f"{over.get('capacity')} (queue not bounded)"
        )
    qmax = over.get("queue_depth_max")
    if qmax is not None and qmax > over.get("capacity", 0):
        failures.append(f"overload: queue depth {qmax} exceeded capacity")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="servebench", description=__doc__.splitlines()[0]
    )
    ap.add_argument("--mode", choices=sorted(MODES), default="smoke")
    ap.add_argument("--clients", type=int, default=0,
                    help="override the mode's concurrent client count")
    ap.add_argument("--dataset", default=None,
                    help="override the mode's dataset (registry name or "
                    "edge-list path)")
    ap.add_argument("--ranks", type=int, default=0,
                    help="override the mode's rank count")
    ap.add_argument("--requests", type=int, default=0,
                    help="override the warm/mixed request counts "
                    "(cold gets 1/10th)")
    ap.add_argument("--max-inflight", type=int, default=2,
                    dest="max_inflight")
    ap.add_argument("--executor", choices=["sequential", "parallel"],
                    default="sequential")
    ap.add_argument("--workers", type=int, default=0)
    ap.add_argument("--hit-ratio", type=float, default=0.7, dest="hit_ratio",
                    help="target fraction of warm requests in mixed traffic")
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--skew", type=float, default=1.0,
                    help="Zipf exponent of the tenant popularity skew")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_serve.json")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless the serve gates hold")
    ap.add_argument("--warm-speedup-gate", type=float, default=10.0,
                    dest="warm_speedup_gate")
    args = ap.parse_args(argv)

    report = run_bench(args)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    with open(args.out, "w") as fh:
        fh.write(text)
    case = report["cases"][0]
    print(
        f"servebench [{args.mode}] {case['name']}: "
        f"cold p50 {case['cold']['p50_s'] * 1e3:.1f}ms, "
        f"warm p50 {case['warm']['p50_s'] * 1e3:.2f}ms "
        f"({case['warm_speedup_p50']:.0f}x), "
        f"mixed {case['mixed']['throughput_rps']:.0f} req/s "
        f"hit {case['mixed']['hit_ratio']:.0%}; "
        f"overload {report['overload']['rejected_total']}/"
        f"{report['overload']['burst']} rejected",
        file=sys.stderr,
    )
    print(f"[report written to {args.out}]", file=sys.stderr)
    if args.check:
        failures = check_report(report, args.warm_speedup_gate)
        if failures:
            for f in failures:
                print(f"CHECK FAILED: {f}", file=sys.stderr)
            return 1
        print("check passed: serve gates hold", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
