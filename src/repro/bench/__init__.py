"""Experiment harness regenerating every table and figure of the paper.

Per-experiment entry points live in :mod:`repro.bench.tables` and
:mod:`repro.bench.figures`; the shared parameter-sweep runner (with
in-process memoization so the Table 2 sweep feeds Figures 1-3 and
Tables 3-4 without re-running) is :mod:`repro.bench.runner`, and the
machine-model calibration used by all experiments is
:mod:`repro.bench.calibration`.
"""

from repro.bench.calibration import paper_model, PAPER_RANKS, bench_ranks
from repro.bench.runner import sweep, run_point, clear_sweep_cache

__all__ = [
    "PAPER_RANKS",
    "bench_ranks",
    "clear_sweep_cache",
    "paper_model",
    "run_point",
    "sweep",
]
