"""Wall-clock benchmark of the parallel superstep executor.

Runs the full 2D pipeline end to end — same graph, same config — under
the sequential executor and under :class:`~repro.simmpi.parallel.
SuperstepPool` at several worker counts, and writes a machine-readable
artifact (``BENCH_parallel.json`` by default).  Every parallel run's
triangle count is cross-checked against the sequential run before any
timing is trusted: the executor is only allowed to change wall time.

One pool per worker count is created up front and reused across every
case and repetition, so worker spawn cost (which the design amortizes
across engine runs) is paid once, exactly as a real driver would pay it.

Honest numbers on shared machines
---------------------------------
Speedup from process-level parallelism is bounded by the CPUs the OS
actually grants this process (``host.usable_cpus`` in the artifact —
containers often pin far fewer cores than ``os.cpu_count()`` reports).
The ``--check`` gate is therefore core-aware:

* when the host grants at least as many CPUs as the largest worker
  count, the paper-style target applies — the largest case (scale >= 13)
  must reach ``TARGET_SPEEDUP`` at 4+ workers;
* when it does not (e.g. a 1-core CI box, where real speedup is
  physically impossible), the gate degrades to an overhead bound: the
  parallel executor must stay within ``OVERHEAD_TOLERANCE`` of
  sequential, and counts must still match bit-for-bit.

A core-limited host is never silent about it: ``run_bench`` prints a
loud ``WARNING`` to stderr and stamps ``core_limited`` / ``warnings``
into the artifact, and ``--check`` prints exactly which speedup gates
it skipped (and why) instead of quietly passing.

In ``--dispatch amortized`` mode (the default) the report also records
each parallel entry's :class:`~repro.simmpi.parallel.PoolStats` delta,
and — under the same core-aware condition as the speedup gate — checks
that the non-execute overhead (serialize + dispatch) stays within
``OVERHEAD_FRACTION`` of the pool's dispatch wall: amortization is the
whole point of the mode, so regressing it is a failure even when the
count and speedup still pass.

Run it as a module::

    python -m repro.bench.parallelbench            # full sweep
    python -m repro.bench.parallelbench --smoke    # CI-sized subset
    python -m repro.bench.parallelbench --check    # exit 1 on regression
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.core.config import DISPATCH_MODES, TC2DConfig
from repro.core.tc2d import count_triangles_2d
from repro.graph import rmat_graph
from repro.instrument.telemetry import (
    _stats_delta,
    host_metadata,
    peak_rss_bytes,
)
from repro.simmpi.parallel import SuperstepPool

#: Artifact schema (shares the host-metadata convention of
#: ``BENCH_kernels.json``).  2 added total ``wall_s`` and
#: ``peak_rss_bytes`` to every sequential/parallel entry; 3 adds the
#: report-level ``dispatch`` / ``core_limited`` / ``warnings`` fields
#: and a per-parallel-entry ``pool`` stats delta.  ``--check`` still
#: reads schema-1/2 artifacts (every new field is optional).
SCHEMA = 3

#: Worker counts swept by default.
WORKERS = (1, 2, 4)

#: ``--check``: required speedup at >=4 workers on the largest case when
#: the host grants at least that many CPUs.
TARGET_SPEEDUP = 2.0

#: ``--check`` fallback when the host grants fewer CPUs than workers:
#: the parallel executor may not be more than this factor slower than
#: sequential (shm memcpy + IPC overhead bound; generous because smoke
#: cases are tiny and overhead-dominated by construction).
OVERHEAD_TOLERANCE = 10.0

#: ``--check`` (amortized dispatch, same core-aware condition as the
#: speedup gate): non-execute pool overhead — serialize + dispatch — may
#: claim at most this fraction of the pool's dispatch wall.
OVERHEAD_FRACTION = 0.20


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One (graph, rank count) point of the sweep."""

    name: str
    scale: int
    p: int
    seed: int = 2
    cfg: TC2DConfig = TC2DConfig()


#: The standard sweep; "rmat13-p16" is the acceptance case (scale >= 13).
CASES = (
    BenchCase("rmat11-p9", 11, 9),
    BenchCase("rmat12-p9", 12, 9),
    BenchCase("rmat13-p16", 13, 16),
)

SMOKE_CASES = (
    BenchCase("rmat9-p4-smoke", 9, 4),
    BenchCase("rmat10-p9-smoke", 10, 9),
)


def _best_of(fn, reps: int) -> tuple[float, float, Any]:
    """Best-of-``reps`` and total wall time of ``fn()`` plus its (last)
    result."""
    best = float("inf")
    total = 0.0
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        total += dt
    return best, total, out


def _run_case(
    case: BenchCase,
    workers: tuple[int, ...],
    reps: int,
    pools: dict[int, SuperstepPool],
    store: Any = None,
    dispatch: str = "amortized",
) -> dict[str, Any]:
    graph = rmat_graph(case.scale, seed=case.seed)
    seq_cfg = case.cfg.replace(executor="sequential")

    seq_s, seq_total, seq_res = _best_of(
        lambda: count_triangles_2d(graph, case.p, seq_cfg, cache=store), reps
    )
    out: dict[str, Any] = {
        "name": case.name,
        "scale": case.scale,
        "p": case.p,
        "triangles": int(seq_res.count),
        "sequential": {
            "best_s": seq_s,
            "reps": reps,
            "wall_s": seq_total,
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "parallel": {},
    }
    for w in workers:
        cfg = case.cfg.replace(
            executor="parallel", workers=w, dispatch=dispatch
        )
        before = pools[w].stats_snapshot()
        par_s, par_total, par_res = _best_of(
            lambda: count_triangles_2d(
                graph, case.p, cfg, superstep=pools[w], cache=store
            ),
            reps,
        )
        pool_delta = _stats_delta(pools[w].stats_snapshot(), before)
        pool_delta.pop("worker_busy_s", None)
        match = int(par_res.count) == int(seq_res.count)
        speedup = seq_s / par_s if par_s > 0 else 0.0
        out["parallel"][str(w)] = {
            "best_s": par_s,
            "reps": reps,
            "wall_s": par_total,
            "peak_rss_bytes": peak_rss_bytes(),
            "count_match": match,
            "speedup_vs_sequential": speedup,
            "pool": pool_delta,
        }
        print(
            f"{case.name:<18} w={w}  seq={seq_s:.3f}s  par={par_s:.3f}s  "
            f"speedup={speedup:.2f}x  match={match}",
            file=sys.stderr,
        )
    return out


def run_bench(
    smoke: bool = False,
    reps: int = 3,
    workers: tuple[int, ...] = WORKERS,
    store_dir: str | None = None,
    dispatch: str = "amortized",
) -> dict[str, Any]:
    """Run the sweep and return the JSON-serializable report.

    With ``store_dir`` every run shares one preprocessing cache
    (:mod:`repro.graph.store`): the first repetition warms it, every
    later one skips the ppt phase, so the measured wall times isolate the
    executor-under-test (tct) instead of re-paying identical setup.
    Counts and virtual clocks are unaffected — cached and fresh runs are
    bit-identical by construction.
    """
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
        )
    cases = SMOKE_CASES if smoke else CASES
    from repro.graph.store import store_from_env

    # --store wins; $REPRO_STORE_DIR opts in when the flag is absent
    # (the same resolution rule as chaos, servebench and the serve layer).
    store = store_from_env(store_dir)
    host = host_metadata()
    usable = int(host.get("usable_cpus") or 1)
    warnings: list[str] = []
    if usable < max(workers):
        warnings.append(
            f"host grants only {usable} usable CPU(s) for a sweep up to "
            f"{max(workers)} workers — wall-clock speedups below are "
            "core-limited and NOT representative of the executor; the "
            "--check speedup gate degrades to an overhead bound"
        )
        print(f"WARNING: {warnings[0]}", file=sys.stderr)
    # amortized residency is a rank-side protocol atop the batched
    # transport, so the pools themselves only distinguish perjob/batched.
    pool_mode = "perjob" if dispatch == "perjob" else "batched"
    pools = {
        w: SuperstepPool(workers=w, dispatch_mode=pool_mode)
        for w in workers
    }
    try:
        results = [
            _run_case(c, workers, reps, pools, store=store, dispatch=dispatch)
            for c in cases
        ]
    finally:
        for pool in pools.values():
            pool.shutdown()
    return {
        "schema": SCHEMA,
        "suite": "parallel-superstep",
        "mode": "smoke" if smoke else "full",
        "dispatch": dispatch,
        "reps": reps,
        "workers": list(workers),
        "host": host,
        "core_limited": usable < max(workers),
        "warnings": warnings,
        "cases": results,
    }


def check_regressions(
    report: dict[str, Any], notes: list[str] | None = None
) -> list[str]:
    """Core-aware regression gate (see the module docstring).

    Reads defensively so schema-1/2 artifacts (without ``wall_s``/
    ``peak_rss_bytes``/``pool``) still check cleanly.  When ``notes`` is
    given, every *skipped* speedup gate appends a human-readable line
    explaining why — the gate never degrades silently.
    """
    failures: list[str] = []
    usable = int((report.get("host") or {}).get("usable_cpus", 1))
    amortized = report.get("dispatch", "amortized") == "amortized"
    for case in report.get("cases") or []:
        seq_s = (case.get("sequential") or {}).get("best_s", 0.0)
        for w_str, row in (case.get("parallel") or {}).items():
            w = int(w_str)
            tag = f"{case['name']} (workers={w})"
            if not row["count_match"]:
                failures.append(f"{tag}: parallel count diverged")
                continue
            gated = w >= 4 and usable >= w and case["scale"] >= 13
            if gated:
                if row["speedup_vs_sequential"] < TARGET_SPEEDUP:
                    failures.append(
                        f"{tag}: speedup "
                        f"{row['speedup_vs_sequential']:.2f}x < "
                        f"{TARGET_SPEEDUP}x (host grants {usable} CPUs)"
                    )
            else:
                if notes is not None:
                    why = (
                        f"host grants {usable} < {w} CPUs"
                        if usable < w
                        else f"case below gate size (workers={w}, "
                        f"scale={case['scale']})"
                    )
                    notes.append(
                        f"{tag}: speedup gate SKIPPED ({why}); "
                        "overhead bound applied instead"
                    )
                if row["best_s"] > seq_s * OVERHEAD_TOLERANCE:
                    failures.append(
                        f"{tag}: parallel {row['best_s']:.3f}s > "
                        f"sequential {seq_s:.3f}s * {OVERHEAD_TOLERANCE} "
                        f"(host grants {usable} CPUs)"
                    )
            pool = row.get("pool") or {}
            wall = float(pool.get("wall_s") or 0.0)
            if amortized and gated and wall > 0.0:
                nonexec = float(pool.get("serialize_s") or 0.0) + float(
                    pool.get("dispatch_s") or 0.0
                )
                if nonexec > OVERHEAD_FRACTION * wall:
                    failures.append(
                        f"{tag}: amortized non-execute overhead "
                        f"{nonexec:.3f}s > {OVERHEAD_FRACTION:.0%} of "
                        f"pool wall {wall:.3f}s"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.parallelbench",
        description="benchmark the parallel superstep executor",
    )
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small CI-sized cases instead of the full sweep",
    )
    ap.add_argument(
        "--reps", type=int, default=3, help="best-of repetitions per run"
    )
    ap.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(WORKERS),
        help="worker counts to sweep (default: 1 2 4)",
    )
    ap.add_argument(
        "--dispatch",
        choices=DISPATCH_MODES,
        default="amortized",
        help="parallel dispatch mode to benchmark (default: amortized)",
    )
    ap.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="share a preprocessing cache across runs/reps (first rep "
        "warms it, later reps skip the ppt phase; counts unchanged)",
    )
    ap.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="output JSON path ('-' for stdout only)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on count divergence or core-aware speedup regression",
    )
    ap.add_argument(
        "--history",
        default=None,
        metavar="DB",
        help="also append this run's rows to the given history JSONL "
        "(see `repro history`)",
    )
    args = ap.parse_args(argv)

    report = run_bench(
        smoke=args.smoke,
        reps=args.reps,
        workers=tuple(args.workers),
        store_dir=args.store,
        dispatch=args.dispatch,
    )
    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        print(text, end="")
    else:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)

    if args.history:
        from repro.bench.history import RunHistory, rows_from_bench

        n = RunHistory(args.history).append(rows_from_bench(report))
        print(f"appended {n} rows to {args.history}", file=sys.stderr)

    if args.check:
        notes: list[str] = []
        failures = check_regressions(report, notes=notes)
        for n in notes:
            print(f"NOTE: {n}", file=sys.stderr)
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("check passed: parallel executor within gate", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
