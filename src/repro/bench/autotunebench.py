"""Auto-tuner quality benchmark + regression gate.

For every dataset in the sweep the harness runs BOTH sides of the
auto-tuner's bet:

* the **plan** — :func:`repro.core.autotune.plan_run` with model-only
  predictions (no history), exactly what ``repro count --auto`` uses;
* every **candidate** — each tc2d/coveredge × grid combination is
  actually executed and its measured virtual makespan recorded.

The headline metric per dataset is ``ratio_vs_best``: the chosen plan's
measured virtual makespan over the best measured candidate (the
hand-picked optimum).  A perfect tuner scores 1.0; the CI gate
(``--check``) fails when any dataset exceeds ``--ratio-gate``
(default 1.25 — the auto plan must stay within 25% of the best
hand-picked configuration).

Candidate rows feed back into the planner: ``repro history append
--bench BENCH_autotune.json`` records one ``{dataset}-{alg}-p{p}`` row
per measured candidate with a ``virtual_makespan_s`` metric, which is
precisely the shape :func:`repro.core.autotune.plan_run` consumes via
``history=`` to override its model with ground truth.

Usage::

    python -m repro.bench.autotunebench --smoke --check   # CI gate
    python -m repro.bench.autotunebench                   # full sweep
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.bench.calibration import paper_model
from repro.core import (
    TC2DConfig,
    count_triangles_2d,
    count_triangles_coveredge,
)
from repro.core.autotune import collect_signals, plan_run
from repro.graph.datasets import load_dataset
from repro.instrument.telemetry import host_metadata

#: (datasets, rank candidates) per mode.  Smoke stays small enough for
#: CI; the full sweep covers the scaled registry at the paper's grids.
MODES: dict[str, tuple[tuple[str, ...], int]] = {
    "smoke": (("g500-s12", "twitter-like"), 9),
    "full": (("g500-s12", "g500-s13", "twitter-like", "friendster-like"), 16),
}

_DRIVERS = {
    "tc2d": count_triangles_2d,
    "coveredge": count_triangles_coveredge,
}


def _measure(g, algorithm: str, p: int, seed: int, model) -> dict[str, Any]:
    """Run one candidate; returns measured virtual/wall time + count."""
    cfg = TC2DConfig(algorithm=algorithm, seed=seed)
    t0 = time.perf_counter()
    res = _DRIVERS[algorithm](g, p, cfg=cfg, model=model)
    wall = time.perf_counter() - t0
    return {
        "count": res.count,
        "virtual_makespan_s": res.extras["makespan"],
        "wall_s": wall,
    }


def bench_dataset(
    dataset: str, max_p: int, seed: int, model
) -> dict[str, Any]:
    """Plan + measure every candidate for one dataset."""
    g = load_dataset(dataset, seed=seed)
    signals = collect_signals(g, seed=seed)
    plan = plan_run(
        signals=signals, model=model, dataset=dataset, cores=1,
        max_p=max_p, seed=seed,
    )
    candidates: dict[str, dict[str, Any]] = {}
    counts = set()
    for key in sorted(plan.predicted):
        alg, _, ps = key.rpartition("-p")
        candidates[key] = {
            "predicted_s": plan.predicted[key],
            **_measure(g, alg, int(ps), seed, model),
        }
        counts.add(candidates[key]["count"])
    chosen = f"{plan.algorithm}-p{plan.p}"
    best = min(
        candidates, key=lambda k: (candidates[k]["virtual_makespan_s"], k)
    )
    best_s = candidates[best]["virtual_makespan_s"]
    return {
        "name": dataset,
        "chosen": chosen,
        "best_measured": best,
        "ratio_vs_best": (
            candidates[chosen]["virtual_makespan_s"] / best_s
            if best_s > 0 else 1.0
        ),
        "counts_agree": len(counts) == 1,
        "triangles": candidates[chosen]["count"],
        "plan": plan.to_dict(),
        "candidates": candidates,
    }


def run_bench(args: argparse.Namespace) -> dict[str, Any]:
    datasets, max_p = MODES["smoke" if args.smoke else "full"]
    if args.dataset:
        datasets = tuple(args.dataset)
    if args.max_p:
        max_p = args.max_p
    model = paper_model()
    cases = [
        bench_dataset(ds, max_p, args.seed, model) for ds in datasets
    ]
    return {
        "kind": "repro-autotune-bench",
        "suite": "autotune",
        "mode": "smoke" if args.smoke else "full",
        "host": host_metadata(),
        "config": {
            "max_p": max_p,
            "seed": args.seed,
            "ratio_gate": args.ratio_gate,
            "model_fingerprint": model.fingerprint(),
        },
        "cases": cases,
    }


def check_report(report: dict[str, Any], ratio_gate: float) -> list[str]:
    """Gate an autotunebench report; returns human-readable failures."""
    failures: list[str] = []
    cases = report.get("cases") or []
    if not cases:
        failures.append("report has no cases")
    for case in cases:
        name = case.get("name")
        ratio = case.get("ratio_vs_best")
        if ratio is None or ratio > ratio_gate:
            failures.append(
                f"{name}: auto plan {case.get('chosen')} is {ratio}x the "
                f"best measured candidate {case.get('best_measured')} "
                f"(gate {ratio_gate}x)"
            )
        if not case.get("counts_agree"):
            failures.append(
                f"{name}: candidates disagree on the triangle count"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="autotunebench", description=__doc__.splitlines()[0]
    )
    ap.add_argument("--smoke", action="store_true",
                    help="small dataset/grid sweep for CI")
    ap.add_argument("--dataset", action="append", default=[],
                    help="override the sweep's datasets (repeatable)")
    ap.add_argument("--max-p", type=int, default=0, dest="max_p",
                    help="override the sweep's largest rank count")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="BENCH_autotune.json")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless every auto plan is within the gate")
    ap.add_argument("--ratio-gate", type=float, default=1.25,
                    dest="ratio_gate",
                    help="max allowed measured ratio of auto vs best "
                    "hand-picked candidate (default: 1.25)")
    args = ap.parse_args(argv)

    report = run_bench(args)
    with open(args.out, "w") as fh:
        fh.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for case in report["cases"]:
        print(
            f"autotunebench {case['name']}: chose {case['chosen']}, "
            f"best {case['best_measured']}, "
            f"ratio {case['ratio_vs_best']:.3f}x",
            file=sys.stderr,
        )
    print(f"[report written to {args.out}]", file=sys.stderr)
    if args.check:
        failures = check_report(report, args.ratio_gate)
        if failures:
            for f in failures:
                print(f"CHECK FAILED: {f}", file=sys.stderr)
            return 1
        print(
            f"check passed: auto within {args.ratio_gate}x of best "
            "hand-picked on every dataset",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
