"""Machine-model calibration for the benchmark suite.

The paper's evaluation machine is 29 dual-socket Haswell nodes; its graphs
have 1e9-8.6e9 edges.  Our reproduction runs graphs ~2e4 times smaller, so
using nominal cluster constants (alpha ~ 2us) would make the fixed
per-message latency dominate everything, as if the paper had run its
biggest machine on a toy graph.  :func:`paper_model` therefore scales the
communication constants down by roughly the dataset-size ratio, keeping
the *ratio* of computation to communication per rank in the regime the
paper's experiments occupy.  The cache model is sized so that per-rank
working sets straddle the cache boundary between p=16 and p=36, which is
what produces the paper's super-linear speedups at 25 ranks
(Section 7.1, Figure 2).

Calibration result against the paper's Table 2 (g500 analogues, 169 vs 16
ranks): overall speedup ~7.1 (paper: 6.59-6.93), tct speedup ~9.7 (paper:
7.18-7.22), ppt speedup ~2.9 (paper: 4.94-6.04), super-linear overall
speedup at 25 ranks ~1.78 (paper: 1.90), comm fraction monotonically
increasing in p (paper Figure 3).
"""

from __future__ import annotations

import os

from repro.simmpi import CacheModel, MachineModel

#: The rank counts of the paper's Table 2 (perfect squares 16..169).
PAPER_RANKS: tuple[int, ...] = (16, 25, 36, 49, 64, 81, 100, 121, 144, 169)

#: Reduced grid used when REPRO_BENCH_QUICK is set.
QUICK_RANKS: tuple[int, ...] = (16, 25, 49, 100, 169)


def bench_ranks() -> tuple[int, ...]:
    """Rank list for sweeps: the paper's ten grid sizes, or a 5-point
    subset when the ``REPRO_BENCH_QUICK`` environment variable is set."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return QUICK_RANKS
    return PAPER_RANKS


def paper_model() -> MachineModel:
    """The calibrated machine model used by every benchmark.

    * ``alpha`` / ``send_overhead`` scaled so the preprocessing
      all-to-all's ``p`` latency term stays subordinate to its ``m/p``
      volume term over the swept range, as it is at the paper's scale;
    * ``beta`` = 10 GB/s links;
    * cache: 450 KiB boundary with a gentle (1.8x) DRAM penalty, placing
      the cache-fit transition between the 16- and 36-rank working sets of
      the *largest* dataset only — which reproduces the paper's Table 2
      pattern where g500-s29 is super-linear at 25 ranks (1.90x) while
      g500-s28 and the real-world graphs are not (1.39-1.63x).
    """
    return MachineModel(
        alpha=1e-8,
        beta=1.0 / 10e9,
        send_overhead=2e-9,
        cache=CacheModel(
            cache_bytes=450 * 1024, max_penalty=1.8, saturate_ratio=2.5
        ),
    )
