"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered scaled datasets with their statistics.
``count``
    Count triangles of a named dataset or an edge-list file with any of
    the implemented algorithms.
``census``
    Triangle enumeration summary: count, clustering, transitivity, top
    vertices by triangle participation.
``profile``
    Run a traced counting pass and print the observability report:
    per-phase breakdown with imbalance factor and comm fraction, hottest
    communication pairs, wait-for edges, critical path.
``bench``
    Regenerate one of the paper's tables/figures
    (table1..table6, fig1, fig2, fig3, ablations).
``chaos``
    Seeded fault-injection sweep with checkpoint/restart recovery
    (forwards to ``python -m repro.resilience.chaos``).
``store``
    Manage the content-addressed preprocessing cache
    (``list`` / ``verify`` / ``prune`` / ``warm``; see docs/datasets.md).
``diff``
    Compare two telemetry records produced by ``count --telemetry``
    (per-phase wall/virtual deltas, pool buckets, memory).
``history``
    Append-only benchmark run database: ``append`` telemetry records or
    bench reports, ``list`` rows, ``check`` the newest rows against a
    committed baseline (the CI regression gate).
``autotune``
    Cost-model plan table for a dataset — the machinery behind
    ``count --auto`` (see docs/autotune.md).
``serve`` / ``submit``
    Multi-tenant counting service over a shared store, and its client
    (see docs/serve.md).

One ``--seed`` governs everything derived from randomness: the scaled
dataset generators (via ``--seed`` on ``count``/``profile``/``census``),
the kernels (via ``TC2DConfig.seed``) and the chaos fault plans.

``count`` and ``profile`` also accept ``--trace FILE`` to export a
Perfetto-loadable Chrome trace-event JSON of the run, and
``--telemetry FILE`` to record a structured telemetry record
(phases, memory, GC, pool buckets; see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.graph.csr import Graph


def _load_graph(spec: str, seed: int) -> Graph:
    from repro.graph.datasets import REGISTRY, load_dataset
    from repro.graph.io import read_edge_list

    if spec in REGISTRY:
        return load_dataset(spec, seed=seed)
    path = Path(spec)
    if path.exists():
        return read_edge_list(path)
    raise SystemExit(
        f"unknown dataset {spec!r} (not in the registry and not a file); "
        f"registered: {', '.join(REGISTRY)}"
    )


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.bench.tables import table1
    from repro.graph.datasets import dataset_names

    text, _ = table1(dataset_names())
    print(text)
    return 0


def _dataset_spec(args: argparse.Namespace) -> str:
    """Resolve the positional dataset / ``--graph`` alias (exactly one)."""
    positional = getattr(args, "dataset", None)
    flagged = getattr(args, "graph", None)
    if positional and flagged:
        raise SystemExit("give the dataset either positionally or via --graph")
    spec = positional or flagged
    if not spec:
        raise SystemExit("a dataset is required (positionally or via --graph)")
    return spec


def _cache_arg(args: argparse.Namespace):
    """Resolve ``--cache``/``--store`` into the driver's ``cache=`` value."""
    store_dir = getattr(args, "store", None)
    if store_dir:
        return store_dir
    return True if getattr(args, "cache", False) else None


def _print_cache_status(res) -> None:
    """One line saying whether the run hit or warmed the store."""
    info = res.extras.get("cache")
    if not info:
        return
    if info["hit"]:
        print(
            f"cache: hit {info['digest'][:12]} "
            f"({info['nbytes']:,} bytes loaded; preprocessing skipped)"
        )
    else:
        state = "stored" if info.get("stored") else "not stored"
        print(f"cache: miss {info['digest'][:12]} (artifact {state})")


def _start_telemetry(args: argparse.Namespace):
    """Create + start a Telemetry session when ``--telemetry FILE`` was
    given (tc2d/coveredge only — the other algorithms don't plumb it
    through)."""
    out = getattr(args, "telemetry", None)
    if not out:
        return None
    if args.algorithm not in ("tc2d", "coveredge"):
        raise SystemExit(
            "--telemetry is implemented for -a tc2d and -a coveredge only"
        )
    from repro.instrument import Telemetry

    tele = Telemetry(crash_dir=Path(out).parent)
    tele.start()
    args._telemetry_obj = tele
    return tele


def _finish_telemetry(args: argparse.Namespace, tele, res) -> None:
    """Stop the session, write the record JSON and print its report."""
    import json

    from repro.instrument import telemetry_report

    tele.stop()
    record = res.extras.get("telemetry")
    if record is None:  # pragma: no cover - driver always summarizes
        print("note: run produced no telemetry record")
        return
    out = Path(args.telemetry)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2, sort_keys=True, default=str))
    print(f"wrote telemetry record to {out}")
    print()
    print(telemetry_report(record))


def _count_out_of_core(args: argparse.Namespace, spec: str, cfg, trace_on: bool) -> int:
    """``count``/``profile`` body for ``--out-of-core``: the graph is
    never materialized in this process, so the usual load-then-count
    flow (and anything needing the whole graph, like ``--verify``)
    does not apply."""
    from repro.bench.calibration import paper_model
    from repro.graph.datasets import REGISTRY
    from repro.graph.external import DEFAULT_CHUNK_BYTES, count_triangles_oocore

    if args.algorithm != "tc2d":
        raise SystemExit("--out-of-core is implemented for -a tc2d only")
    if getattr(args, "verify", False):
        raise SystemExit(
            "--verify materializes the whole graph in memory; "
            "it cannot be combined with --out-of-core"
        )
    path = Path(spec)
    if spec in REGISTRY or not path.exists():
        raise SystemExit(
            "--out-of-core needs an edge-list file path "
            "(registry datasets are generated in memory anyway)"
        )
    tele = _start_telemetry(args)
    res = count_triangles_oocore(
        path,
        args.ranks,
        cfg,
        store=_cache_arg(args),
        chunk_bytes=cfg.memory_budget or DEFAULT_CHUNK_BYTES,
        model=paper_model(),
        trace=trace_on,
        dataset=spec,
        telemetry=tele,
    )
    info = res.extras["out_of_core"]
    state = "reused store entry" if info["reused"] else "external preprocessing"
    print(
        f"out-of-core: {state} {info['digest'][:12]} "
        f"n={info['n']:,} m={info['m']:,} "
        f"chunk={info['chunk_bytes']:,}B spilled={info['spilled_bytes']:,}B"
    )
    _print_cache_status(res)
    print(res.summary())
    if tele is not None:
        _finish_telemetry(args, tele, res)
    _emit_observability(args, res)
    return 0


#: Count-command flags whose explicit use pins the corresponding
#: auto-tuner plan field (``--auto`` never overrides a pinned flag).
_PLAN_FLAG_DESTS = {
    "--ranks": "p",
    "-p": "p",
    "--algorithm": "algorithm",
    "-a": "algorithm",
    "--kernel": "kernel_backend",
    "--executor": "executor",
    "--workers": "workers",
    "--dispatch": "dispatch",
}


def _count_parser() -> argparse.ArgumentParser:
    """The ``count`` subparser out of the real argparse tree (shared with
    the doc-link linter, which validates documented invocations)."""
    parser = build_parser()
    for act in parser._actions:
        if isinstance(act, argparse._SubParsersAction):
            return act.choices["count"]
    raise RuntimeError("count subparser not found")  # pragma: no cover


def _pinned_from_argv(argv) -> set[str]:
    """Plan fields the user pinned by spelling the flag on the command
    line (exact, ``--flag=value``, unambiguous-prefix and ``-p16``-style
    spellings all count, mirroring argparse's own matching)."""
    longs = sorted(
        {
            s
            for act in _count_parser()._actions
            for s in act.option_strings
            if s.startswith("--")
        }
    )
    pinned: set[str] = set()
    for tok in argv:
        if not tok.startswith("-") or tok == "--":
            continue
        name = tok.split("=", 1)[0]
        if name.startswith("--"):
            matches = (
                [name]
                if name in longs
                else [s for s in longs if s.startswith(name)]
            )
            if len(matches) != 1:
                continue
            name = matches[0]
        else:
            name = name[:2]  # short flag, possibly glued to its value
        dest = _PLAN_FLAG_DESTS.get(name)
        if dest:
            pinned.add(dest)
    return pinned


def _apply_auto_plan(args: argparse.Namespace, g: Graph, spec: str):
    """``count --auto``: plan the run and fold the unpinned fields back
    into ``args`` (the normal dispatch below then just runs the plan)."""
    import os

    from repro.bench.calibration import paper_model
    from repro.core.autotune import plan_run

    fields = _pinned_from_argv(getattr(args, "_argv", None) or ())
    source = {
        "p": args.ranks,
        "algorithm": args.algorithm,
        "kernel_backend": args.kernel,
        "executor": args.executor,
        "workers": args.workers,
        "dispatch": args.dispatch,
    }
    pinned = {f: source[f] for f in fields}
    if pinned.get("algorithm") not in (None, "tc2d", "coveredge"):
        raise SystemExit(
            "--auto plans the grid algorithms (tc2d, coveredge); drop "
            f"--auto to run -a {pinned['algorithm']}"
        )
    plan = plan_run(
        g,
        model=paper_model(),
        pinned=pinned,
        dataset=spec,
        cores=os.cpu_count() or 1,
        max_p=args.auto_max_p,
        seed=args.seed,
    )
    args.ranks, args.algorithm = plan.p, plan.algorithm
    args.kernel, args.executor = plan.kernel_backend, plan.executor
    args.workers, args.dispatch = plan.workers, plan.dispatch
    extra = f"; pinned: {', '.join(plan.pinned)}" if plan.pinned else ""
    print(
        f"auto: -a {plan.algorithm} -p {plan.p} "
        f"--kernel {plan.kernel_backend} --executor {plan.executor} "
        f"--dispatch {plan.dispatch} (predicted {plan.predicted_s:.6f}s "
        f"over {len(plan.predicted)} candidates{extra})"
    )
    return plan


def _cmd_autotune(args: argparse.Namespace) -> int:
    """Print the auto-tuner's candidate table (optionally measured)."""
    import os

    from repro.bench.calibration import paper_model
    from repro.core import (
        TC2DConfig,
        count_triangles_2d,
        count_triangles_coveredge,
    )
    from repro.core.autotune import format_plan_table, plan_run
    from repro.graph.stats import degree_summary

    g = _load_graph(args.dataset, args.seed)
    print(f"{args.dataset}: {degree_summary(g)}")
    model = paper_model()
    plan = plan_run(
        g,
        model=model,
        dataset=args.dataset,
        history=args.history,
        cores=args.cores or (os.cpu_count() or 1),
        max_p=args.max_p,
        seed=args.seed,
    )
    measured: dict[str, float] = {}
    if args.measure:
        drivers = {
            "tc2d": count_triangles_2d,
            "coveredge": count_triangles_coveredge,
        }
        for key in sorted(plan.predicted):
            alg, _, ps = key.rpartition("-p")
            res = drivers[alg](
                g, int(ps), TC2DConfig(algorithm=alg), model=model,
                dataset=args.dataset,
            )
            measured[key] = res.extras["makespan"]
    print(format_plan_table(plan, measured))
    if measured:
        best = min(measured, key=lambda k: (measured[k], k))
        chosen = f"{plan.algorithm}-p{plan.p}"
        ratio = measured[chosen] / measured[best] if measured[best] > 0 else 1.0
        print(f"auto vs best measured ({best}): {ratio:.3f}x")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.baselines import (
        count_triangles_aop,
        count_triangles_havoq,
        count_triangles_psp,
        count_triangles_surrogate,
    )
    from repro.bench.calibration import paper_model
    from repro.core import (
        TC2DConfig,
        count_triangles_2d,
        count_triangles_coveredge,
        count_triangles_summa,
    )
    from repro.graph.stats import degree_summary, triangle_count_linalg

    spec = _dataset_spec(args)
    auto_plan = None
    g = None
    if getattr(args, "auto", False):
        if args.out_of_core:
            raise SystemExit(
                "--auto inspects the whole graph; it cannot be combined "
                "with --out-of-core"
            )
        g = _load_graph(spec, args.seed)
        auto_plan = _apply_auto_plan(args, g, spec)
    trace_on = bool(args.trace or args.profile)
    if trace_on and args.algorithm not in ("tc2d", "summa", "coveredge"):
        raise SystemExit(
            "--trace/--profile need the simulated grid algorithms "
            "(-a tc2d, -a coveredge or -a summa)"
        )
    cfg = TC2DConfig(
        algorithm=(
            args.algorithm if args.algorithm in ("tc2d", "coveredge")
            else "tc2d"
        ),
        enumeration=args.enumeration,
        doubly_sparse=not args.no_doubly_sparse,
        modified_hashing=not args.no_modified_hashing,
        early_stop=not args.no_early_stop,
        blob_serialization=not args.no_blob,
        kernel_backend=args.kernel,
        executor=args.executor,
        workers=args.workers,
        dispatch=args.dispatch,
        offload_ppt=not args.no_offload_ppt,
        real_timeout=args.real_timeout,
        seed=args.seed,
        out_of_core=args.out_of_core,
        memory_budget=args.chunk_bytes,
    )
    if args.out_of_core:
        return _count_out_of_core(args, spec, cfg, trace_on)
    if g is None:
        g = _load_graph(spec, args.seed)
    print(f"{spec}: {degree_summary(g)}")
    model = paper_model()
    if args.executor == "parallel" and args.algorithm not in (
        "tc2d", "coveredge"
    ):
        raise SystemExit(
            "--executor parallel is implemented for -a tc2d and "
            "-a coveredge only"
        )
    cache = _cache_arg(args)
    if cache is not None and args.algorithm not in ("tc2d", "coveredge"):
        raise SystemExit(
            "--cache/--store are implemented for -a tc2d and "
            "-a coveredge only"
        )
    tele = _start_telemetry(args)
    if args.algorithm == "tc2d":
        res = count_triangles_2d(
            g, args.ranks, cfg=cfg, model=model, trace=trace_on, dataset=spec,
            cache=cache, telemetry=tele,
        )
        _print_cache_status(res)
    elif args.algorithm == "coveredge":
        res = count_triangles_coveredge(
            g, args.ranks, cfg=cfg, model=model, trace=trace_on, dataset=spec,
            cache=cache, telemetry=tele,
        )
        _print_cache_status(res)
    elif args.algorithm == "summa":
        pr = max(1, int(args.ranks**0.5))
        while args.ranks % pr:
            pr -= 1
        res = count_triangles_summa(
            g, pr, args.ranks // pr, cfg=cfg, model=model, trace=trace_on,
            dataset=spec,
        )
    elif args.algorithm == "aop":
        res = count_triangles_aop(g, args.ranks, model=model)
    elif args.algorithm == "surrogate":
        res = count_triangles_surrogate(g, args.ranks, model=model)
    elif args.algorithm == "psp":
        res = count_triangles_psp(g, args.ranks, model=model)
    elif args.algorithm == "havoq":
        res = count_triangles_havoq(g, args.ranks, model=model)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {args.algorithm}")

    if auto_plan is not None:
        res.extras["autotune"] = auto_plan.to_dict()
    print(res.summary())
    if tele is not None:
        _finish_telemetry(args, tele, res)
    _emit_observability(args, res)
    if args.verify:
        want = triangle_count_linalg(g)
        status = "OK" if want == res.count else f"MISMATCH (oracle: {want:,})"
        print(f"verification vs linear-algebra oracle: {status}")
        if want != res.count:
            return 1
    return 0


def _backend_label(res) -> str | None:
    """Human-readable kernel-backend label for the profile report, e.g.
    ``"batch"`` or ``"auto (batch×36, row×12)"``."""
    backend = res.extras.get("kernel_backend")
    if not backend:
        return None
    uses = res.extras.get("kernel_backend_uses") or {}
    if uses and (backend == "auto" or len(uses) > 1):
        detail = ", ".join(f"{k}×{v}" for k, v in sorted(uses.items()))
        return f"{backend} ({detail})"
    return backend


def _emit_observability(args: argparse.Namespace, res) -> None:
    """Write the Perfetto trace and/or print the profile report."""
    from repro.instrument import profile_report, write_chrome_trace

    run = res.extras.get("run")
    if run is None:
        return
    if getattr(args, "trace", None):
        worker_spans = None
        if getattr(args, "trace_workers", False):
            worker_spans = res.extras.get("worker_spans")
            if not worker_spans:
                print(
                    "note: --trace-workers given but the run recorded no "
                    "worker spans (sequential executor?)"
                )
        counters = None
        tele = getattr(args, "_telemetry_obj", None)
        if tele is not None:
            from repro.instrument import counter_samples

            counters = counter_samples(tele.recorder.events()) or None
        try:
            write_chrome_trace(
                args.trace, run, worker_spans=worker_spans, counters=counters
            )
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace}: {exc}")
        print(
            f"wrote Perfetto trace to {args.trace} "
            "(open at https://ui.perfetto.dev)"
        )
    if getattr(args, "profile", False):
        print()
        print(
            profile_report(
                run,
                top_waits=getattr(args, "top_waits", 10),
                matrix=getattr(args, "matrix", False),
                kernel_backend=_backend_label(res),
            )
        )


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.calibration import paper_model
    from repro.core import (
        TC2DConfig,
        count_triangles_2d,
        count_triangles_coveredge,
        count_triangles_summa,
    )

    spec = _dataset_spec(args)
    cfg = TC2DConfig(
        algorithm=(
            args.algorithm if args.algorithm in ("tc2d", "coveredge")
            else "tc2d"
        ),
        kernel_backend=args.kernel,
        executor=args.executor,
        workers=args.workers,
        dispatch=args.dispatch,
        offload_ppt=not args.no_offload_ppt,
        real_timeout=args.real_timeout,
        seed=args.seed,
        out_of_core=args.out_of_core,
        memory_budget=args.chunk_bytes,
    )
    if args.out_of_core:
        args.profile = True
        return _count_out_of_core(args, spec, cfg, trace_on=True)
    g = _load_graph(spec, args.seed)
    if args.executor == "parallel" and args.algorithm not in (
        "tc2d", "coveredge",
    ):
        raise SystemExit(
            "--executor parallel is implemented for -a tc2d and "
            "-a coveredge only"
        )
    cache = _cache_arg(args)
    if cache is not None and args.algorithm not in ("tc2d", "coveredge"):
        raise SystemExit(
            "--cache/--store are implemented for -a tc2d and -a coveredge only"
        )
    tele = _start_telemetry(args)
    if args.algorithm == "tc2d":
        res = count_triangles_2d(
            g, args.ranks, cfg=cfg, model=paper_model(), trace=True,
            dataset=spec, cache=cache, telemetry=tele,
        )
        _print_cache_status(res)
    elif args.algorithm == "coveredge":
        res = count_triangles_coveredge(
            g, args.ranks, cfg=cfg, model=paper_model(), trace=True,
            dataset=spec, cache=cache, telemetry=tele,
        )
        _print_cache_status(res)
    else:
        pr = max(1, int(args.ranks**0.5))
        while args.ranks % pr:
            pr -= 1
        res = count_triangles_summa(
            g, pr, args.ranks // pr, cfg=cfg, model=paper_model(), trace=True,
            dataset=spec,
        )
    print(res.summary())
    if tele is not None:
        _finish_telemetry(args, tele, res)
    args.profile = True
    _emit_observability(args, res)
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.apps import clustering_profile
    from repro.bench.calibration import paper_model
    from repro.core.listing import triangle_census_2d

    g = _load_graph(args.dataset, args.seed)
    census = triangle_census_2d(g, args.ranks, model=paper_model())
    prof = clustering_profile(g, p=args.ranks, model=paper_model())
    print(f"triangles      : {census.count:,}")
    print(f"transitivity   : {prof.transitivity:.6f}")
    print(f"avg clustering : {prof.average:.6f}")
    top = np.argsort(census.vertex_triangles)[-args.top :][::-1]
    print(f"top {args.top} vertices by triangle participation:")
    for v in top:
        print(
            f"  vertex {int(v):>8}  triangles={int(census.vertex_triangles[v]):>8}"
            f"  degree={int(g.degrees[v])}"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Delegate to the chaos harness (same as ``python -m
    repro.resilience.chaos``) so the fault-injection sweep is reachable
    from the main CLI with the shared ``--seed`` convention.

    Dispatched directly from :func:`main` (before argparse) because
    ``nargs=REMAINDER`` after a subparser mis-parses leading ``--flags``;
    this handler only runs for ``repro chaos --help``-style discovery.
    """
    from repro.resilience.chaos import main as chaos_main

    forwarded = args.chaos_args
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return chaos_main(forwarded)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures, tables

    builders = {
        "table1": lambda: tables.table1(),
        "table2": lambda: tables.table2(),
        "table3": lambda: tables.table3(),
        "table4": lambda: tables.table4(),
        "table5": lambda: tables.table5(),
        "table6": lambda: tables.table6(),
        "ablations": lambda: tables.ablation_table(),
        "fig1": lambda: figures.fig1_efficiency(),
        "fig2": lambda: figures.fig2_op_rate(),
        "fig3": lambda: figures.fig3_comm_fraction(),
    }
    if args.experiment not in builders:
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(builders)}"
        )
    text, _ = builders[args.experiment]()
    print(text)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Manage the content-addressed preprocessing cache."""
    from repro.graph.store import GraphStore

    store = GraphStore(args.dir) if args.dir else GraphStore()

    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"store at {store.root}: empty")
            return 0
        print(f"store at {store.root}: {len(entries)} entries")
        for e in entries:
            if "error" in e:
                print(f"  {e['digest'][:12]}  BROKEN: {e['error']}")
                continue
            g = e["graph"]
            print(
                f"  {e['digest'][:12]}  {e['source'] or '(unnamed)':<18} "
                f"p={e['p']:<3} n={g.get('n'):<8} m={g.get('m'):<9} "
                f"{e['nbytes']:>12,} bytes  "
                f"models={len(e['recorded_models'])}"
            )
        return 0

    if args.action == "verify":
        problems = store.verify(args.digest)
        if problems:
            for pb in problems:
                print(f"PROBLEM: {pb}")
            return 1
        n = 1 if args.digest else len(store.digests())
        print(f"store at {store.root}: {n} entries verified, no problems")
        return 0

    if args.action == "prune":
        removed = store.prune(args.digest)
        print(f"store at {store.root}: removed {removed} entries")
        return 0

    if args.action == "ingest":
        if not args.input:
            raise SystemExit("store ingest needs --input FILE (edge list)")
        from repro.core.config import TC2DConfig
        from repro.graph.external import DEFAULT_CHUNK_BYTES, external_preprocess

        cfg = TC2DConfig()
        chunk = args.chunk_bytes or DEFAULT_CHUNK_BYTES
        for p in args.ranks:
            info = external_preprocess(
                args.input, store, p, cfg, chunk_bytes=chunk
            )
            state = "already present" if info["reused"] else "ingested"
            print(
                f"ingest {args.input} p={p}: {info['digest'][:12]} {state}; "
                f"n={info['n']:,} m={info['m']:,} "
                f"spilled={info['spilled_bytes']:,}B"
            )
        return 0

    if args.action == "warm":
        if not args.dataset:
            raise SystemExit("store warm needs at least one --dataset")
        from repro.bench.calibration import paper_model
        from repro.graph.datasets import REGISTRY, DatasetRegistry

        registry = DatasetRegistry(REGISTRY, store=store)
        model = paper_model()
        for name in args.dataset:
            for p in args.ranks:
                res = registry.warm(name, p, model=model, seed=args.seed)
                info = res.extras.get("cache", {})
                state = "hit (already warm)" if info.get("hit") else "stored"
                print(
                    f"warm {name} p={p}: {info.get('digest', '')[:12]} "
                    f"{state}; {res.count:,} triangles"
                )
        return 0

    raise SystemExit(f"unknown store action {args.action!r}")


def _cmd_diff(args: argparse.Namespace) -> int:
    """Compare two telemetry records (``repro diff A B``)."""
    import json

    from repro.instrument.diffing import diff_records, load_record, render_diff

    try:
        a = load_record(args.a)
        b = load_record(args.b)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    d = diff_records(a, b)
    if args.json:
        print(json.dumps(d, indent=2, sort_keys=True, default=str))
    else:
        print(render_diff(d))
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    """Append to / list / regression-check the benchmark run database."""
    import json

    from repro.bench.history import (
        RunHistory,
        check_history,
        load_baseline,
        row_from_telemetry,
        rows_from_bench,
    )

    db = RunHistory(args.db)

    if args.action == "append":
        rows: list[dict] = []
        try:
            for path in args.record:
                doc = json.loads(Path(path).read_text())
                if doc.get("kind") != "repro-telemetry":
                    raise SystemExit(
                        f"{path}: not a telemetry record "
                        f"(kind={doc.get('kind')!r})"
                    )
                rows.append(row_from_telemetry(doc))
            for path in args.bench:
                rows.extend(rows_from_bench(json.loads(Path(path).read_text())))
        except OSError as exc:
            raise SystemExit(str(exc))
        if not rows:
            raise SystemExit("history append needs --record and/or --bench")
        n = db.append(rows)
        print(f"appended {n} rows to {db.path}")
        return 0

    if args.action == "list":
        rows = db.rows()
        if not rows:
            print(f"history at {db.path}: empty")
            return 0
        print(f"history at {db.path}: {len(rows)} rows")
        for row in rows:
            metrics = row.get("metrics") or {}
            parts = ", ".join(
                f"{k}={metrics[k]}" for k in sorted(metrics)
                if metrics[k] is not None
            )
            print(
                f"  {row.get('suite', '?'):<18} {row.get('case', '?'):<22} "
                f"{parts}"
            )
        return 0

    if args.action == "check":
        if not args.baseline:
            raise SystemExit("history check needs --baseline FILE")
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
        failures = check_history(db.latest(), baseline)
        n = len(baseline.get("entries") or [])
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}")
            print(f"history check: {len(failures)} failures ({n} entries)")
            return 1
        print(f"history check: OK ({n} baseline entries)")
        return 0

    raise SystemExit(f"unknown history action {args.action!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio triangle-counting service until shutdown."""
    from repro.serve import ServeConfig
    from repro.serve.server import run_server

    config = ServeConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        store=args.store,
        executor=args.executor,
        workers=args.workers,
        dispatch="amortized" if args.dispatch == "amortized" else args.dispatch,
        real_timeout=args.real_timeout,
    )

    def announce(server) -> None:
        print(f"repro serve listening on http://{server.host}:{server.port}")
        print(
            f"  executor={config.executor} max_inflight={config.max_inflight} "
            f"max_queue={config.max_queue} tenant_quota={config.tenant_quota}"
        )
        sys.stdout.flush()

    run_server(config, host=args.host, port=args.port, announce=announce)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running serve endpoint and print the result."""
    import json

    from repro.serve import ServeClient, ServeError, ServeRejected

    request: dict = {
        "kind": args.kind,
        "dataset": args.dataset,
        "ranks": args.ranks,
        "seed": args.seed,
        "enumeration": args.enumeration,
    }
    if args.kind == "ktruss":
        request["k"] = args.k
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        doc = client.submit(
            request,
            tenant=args.tenant,
            wait=not args.no_wait,
            progress=args.progress,
        )
    except ServeRejected as exc:
        print(f"rejected: {exc.reason} ({exc.body.get('detail', '')})")
        return 2
    except ServeError as exc:
        print(f"error: HTTP {exc.status}: {exc.body}")
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if doc.get("state") in ("done", "queued", "running") else 1
    if args.no_wait:
        print(f"{doc['id']}  state={doc['state']}")
        return 0
    if doc.get("state") != "done":
        print(f"{doc['id']}  state={doc['state']}  error={doc.get('error')}")
        return 1
    result = doc["result"]
    for ev in doc.get("events", []):
        print(f"  [{ev['t_s']:9.4f}s] {ev['kind']}"
              + (f" {ev.get('name', '')}" if ev.get("name") else ""))
    served = result.get("served")
    line = f"{result.get('count', result.get('truss_edges'))}"
    print(f"{args.kind} {args.dataset} p={args.ranks}: {line}  [{served}]")
    print(f"  digest   {result['digest']}")
    print(f"  machine  {result['machine_fingerprint']}")
    virt = result.get("virtual")
    if virt:
        print(
            f"  virtual  ppt {virt['ppt_s']:.4f}s  tct {virt['tct_s']:.4f}s"
        )
    print(f"  wall     {doc.get('latency_s', 0.0):.4f}s")
    return 0


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    """Preprocessing-cache knobs shared by ``count`` and ``profile``."""
    p.add_argument(
        "--cache",
        action="store_true",
        help="load/store preprocessed blocks in the default graph store "
        "($REPRO_STORE_DIR or ~/.cache/repro/store); a hit skips the ppt "
        "phase with bit-identical results (see docs/datasets.md)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="like --cache but with an explicit store root directory",
    )


def _add_ooc_flags(p: argparse.ArgumentParser) -> None:
    """Out-of-core pipeline knobs shared by ``count`` and ``profile``."""
    p.add_argument(
        "--out-of-core",
        action="store_true",
        dest="out_of_core",
        help="preprocess via the external-memory pipeline "
        "(repro.graph.external): the edge-list file streams through "
        "disk-spilled sorted runs, peak memory bounded by --chunk-bytes "
        "instead of graph size; bit-identical counts and store entries",
    )
    p.add_argument(
        "--chunk-bytes",
        type=int,
        default=0,
        dest="chunk_bytes",
        help="spill-chunk memory budget in bytes for --out-of-core "
        "(0 = default, 64 MiB); tuning knob only, never changes results",
    )


def _add_executor_flags(p: argparse.ArgumentParser) -> None:
    """Superstep-executor knobs shared by ``count`` and ``profile``."""
    p.add_argument(
        "--executor",
        choices=["sequential", "parallel"],
        default="sequential",
        help="superstep executor: run each Cannon epoch's kernels inline "
        "(sequential) or on a shared-memory worker pool (parallel); "
        "identical results, clocks and traces either way",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for --executor parallel (0 = cpu count)",
    )
    p.add_argument(
        "--dispatch",
        choices=["perjob", "batched", "amortized"],
        default="amortized",
        help="parallel-executor dispatch strategy: one future per "
        "rank-epoch kernel (perjob), workers-sized batch futures "
        "(batched), or batches plus resident-arena block blobs "
        "published once per run (amortized, default); bit-identical "
        "results in every mode",
    )
    p.add_argument(
        "--no-offload-ppt",
        action="store_true",
        dest="no_offload_ppt",
        help="keep preprocessing hot phases (counting sort, block "
        "assembly) on the scheduler thread instead of the worker pool",
    )
    p.add_argument(
        "--real-timeout",
        type=float,
        default=600.0,
        dest="real_timeout",
        help="wall-clock seconds before a wedged rank/worker fails the "
        "run (default 600)",
    )
    p.add_argument(
        "--trace-workers",
        action="store_true",
        dest="trace_workers",
        help="with --trace: merge the pool's wall-clock worker spans into "
        "the export as an extra process track",
    )
    p.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record a structured telemetry JSON (phases, memory, GC, "
        "pool buckets) to FILE and print its report; with --trace, "
        "counter tracks (RSS, queue depth) are merged into the export",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2D parallel triangle counting (Tom & Karypis, ICPP 2019) "
        "on a simulated distributed-memory machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered datasets").set_defaults(
        fn=_cmd_datasets
    )

    c = sub.add_parser("count", help="count triangles of a dataset/file")
    c.add_argument(
        "dataset", nargs="?", help="registry name or edge-list file path"
    )
    c.add_argument(
        "--graph", help="dataset name/path (alternative to the positional)"
    )
    c.add_argument("--ranks", "-p", type=int, default=16)
    c.add_argument(
        "--algorithm",
        "-a",
        choices=["tc2d", "coveredge", "summa", "aop", "surrogate", "psp",
                 "havoq"],
        default="tc2d",
    )
    c.add_argument(
        "--auto",
        action="store_true",
        help="pick algorithm/grid/kernel/executor with the cost-model "
        "auto-tuner (explicitly spelled flags stay pinned; see "
        "docs/autotune.md)",
    )
    c.add_argument(
        "--auto-max-p", type=int, default=64, dest="auto_max_p",
        help="largest rank count --auto may plan (default: 64)",
    )
    c.add_argument("--enumeration", choices=["jik", "ijk"], default="jik")
    c.add_argument(
        "--kernel",
        choices=["auto", "row", "batch"],
        default="auto",
        help="intersection-kernel backend (identical results; wall time "
        "only)",
    )
    c.add_argument("--no-doubly-sparse", action="store_true")
    c.add_argument("--no-modified-hashing", action="store_true")
    c.add_argument("--no-early-stop", action="store_true")
    c.add_argument("--no-blob", action="store_true")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--verify", action="store_true", help="check against the serial oracle"
    )
    c.add_argument(
        "--trace",
        metavar="FILE",
        help="export a Perfetto/Chrome trace-event JSON of the run",
    )
    c.add_argument(
        "--profile",
        action="store_true",
        help="print the per-phase/imbalance/comm observability report",
    )
    _add_cache_flags(c)
    _add_executor_flags(c)
    _add_ooc_flags(c)
    c.set_defaults(fn=_cmd_count)

    pr = sub.add_parser(
        "profile", help="traced run + full observability report"
    )
    pr.add_argument(
        "dataset", nargs="?", help="registry name or edge-list file path"
    )
    pr.add_argument(
        "--graph", help="dataset name/path (alternative to the positional)"
    )
    pr.add_argument("--ranks", "-p", type=int, default=16)
    pr.add_argument(
        "--algorithm", "-a", choices=["tc2d", "coveredge", "summa"],
        default="tc2d",
    )
    pr.add_argument(
        "--kernel",
        choices=["auto", "row", "batch"],
        default="auto",
        help="intersection-kernel backend (identical results; wall time "
        "only)",
    )
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument(
        "--trace",
        metavar="FILE",
        help="also export a Perfetto/Chrome trace-event JSON",
    )
    pr.add_argument(
        "--top-waits", type=int, default=10, dest="top_waits",
        help="rows in the wait-for table",
    )
    pr.add_argument(
        "--matrix",
        action="store_true",
        help="include the dense rank-to-rank message matrix",
    )
    _add_cache_flags(pr)
    _add_executor_flags(pr)
    _add_ooc_flags(pr)
    pr.set_defaults(fn=_cmd_profile)

    s = sub.add_parser("census", help="triangle census / clustering summary")
    s.add_argument("dataset")
    s.add_argument("--ranks", "-p", type=int, default=4)
    s.add_argument("--top", type=int, default=5)
    s.add_argument("--seed", type=int, default=0)
    s.set_defaults(fn=_cmd_census)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault-injection sweep with checkpoint/restart recovery",
        description="All arguments are forwarded to "
        "`python -m repro.resilience.chaos` (see its --help).",
    )
    ch.add_argument(
        "chaos_args", nargs=argparse.REMAINDER,
        help="arguments for the chaos harness (e.g. --smoke --out DIR)",
    )
    ch.set_defaults(fn=_cmd_chaos)

    st = sub.add_parser(
        "store",
        help="manage the content-addressed preprocessing cache",
        description="List, verify, prune or warm the graph store "
        "(see docs/datasets.md for the layout and digest rules).",
    )
    st.add_argument(
        "action", choices=["list", "verify", "prune", "warm", "ingest"],
        help="list entries / crc-verify blobs / remove entries / "
        "preprocess datasets into the store / stream an edge-list file "
        "into the store out-of-core",
    )
    st.add_argument(
        "--dir", default=None,
        help="store root (default: $REPRO_STORE_DIR or ~/.cache/repro/store)",
    )
    st.add_argument(
        "--digest", default=None,
        help="restrict verify/prune to one entry (full digest)",
    )
    st.add_argument(
        "--dataset", action="append", default=[],
        help="dataset to warm (repeatable); registry names only",
    )
    st.add_argument(
        "--ranks", "-p", type=int, nargs="+", default=[16],
        help="rank counts to warm each dataset at (default: 16)",
    )
    st.add_argument("--seed", type=int, default=0)
    st.add_argument(
        "--input", default=None, metavar="FILE",
        help="edge-list file for `ingest` (text or binary REDGE format)",
    )
    st.add_argument(
        "--chunk-bytes", type=int, default=0, dest="chunk_bytes",
        help="spill-chunk memory budget in bytes for `ingest` "
        "(0 = default, 64 MiB)",
    )
    st.set_defaults(fn=_cmd_store)

    d = sub.add_parser(
        "diff",
        help="compare two telemetry records",
        description="Diff two records written by `count --telemetry` "
        "(per-phase wall/virtual deltas, pool buckets, memory); warns "
        "when the runs are keyed by different store digests or "
        "machine-model fingerprints.",
    )
    d.add_argument("a", help="reference telemetry record (JSON)")
    d.add_argument("b", help="new telemetry record (JSON)")
    d.add_argument(
        "--json", action="store_true", help="emit the structured diff as JSON"
    )
    d.set_defaults(fn=_cmd_diff)

    h = sub.add_parser(
        "history",
        help="append-only benchmark run database + regression gate",
        description="append: add rows from telemetry records/bench "
        "reports; list: show rows; check: gate the newest row per "
        "(suite, case) against a committed baseline file.",
    )
    h.add_argument("action", choices=["append", "list", "check"])
    h.add_argument(
        "--db", default="BENCH_history.jsonl",
        help="history JSONL path (default: BENCH_history.jsonl)",
    )
    h.add_argument(
        "--record", action="append", default=[], metavar="FILE",
        help="telemetry record to append (repeatable)",
    )
    h.add_argument(
        "--bench", action="append", default=[], metavar="FILE",
        help="parallelbench/kernelbench report to append (repeatable)",
    )
    h.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON for `check` (e.g. BENCH_baseline.json)",
    )
    h.set_defaults(fn=_cmd_history)

    sv = sub.add_parser(
        "serve",
        help="run the async triangle-counting service",
        description="HTTP front end over a shared superstep pool: "
        "canonicalized requests, warm result cache keyed by the store "
        "digest, bounded admission-controlled cold queue, progress "
        "streaming and a /metrics scrape endpoint (see docs/serve.md).",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=2, dest="max_inflight",
        help="cold jobs executing concurrently (dispatcher threads)",
    )
    sv.add_argument(
        "--max-queue", type=int, default=8, dest="max_queue",
        help="bound on queued cold jobs; beyond it submissions are "
        "rejected with reason=queue_full",
    )
    sv.add_argument(
        "--tenant-quota", type=int, default=4, dest="tenant_quota",
        help="max admitted cold jobs per tenant (reason=tenant_quota)",
    )
    sv.add_argument(
        "--store", metavar="DIR", default=None,
        help="preprocessing store root (default: $REPRO_STORE_DIR, else "
        "no on-disk cache; the warm result cache works regardless)",
    )
    sv.add_argument(
        "--executor", choices=["sequential", "parallel"],
        default="sequential",
        help="cold-run superstep executor; parallel shares one "
        "long-lived worker pool across every request",
    )
    sv.add_argument("--workers", type=int, default=0)
    sv.add_argument(
        "--dispatch", choices=["perjob", "batched", "amortized"],
        default="amortized",
    )
    sv.add_argument(
        "--real-timeout", type=float, default=600.0, dest="real_timeout"
    )
    sv.set_defaults(fn=_cmd_serve)

    sm = sub.add_parser(
        "submit",
        help="submit one job to a running `repro serve`",
    )
    sm.add_argument("dataset", help="registry name or edge-list file path")
    sm.add_argument("--host", default="127.0.0.1")
    sm.add_argument("--port", type=int, default=8787)
    sm.add_argument(
        "--kind", choices=["count", "census", "ktruss"], default="count"
    )
    sm.add_argument("--ranks", "-p", type=int, default=16)
    sm.add_argument("--seed", type=int, default=0)
    sm.add_argument("--enumeration", choices=["jik", "ijk"], default="jik")
    sm.add_argument("--k", type=int, default=3, help="k for --kind ktruss")
    sm.add_argument("--tenant", default="default")
    sm.add_argument(
        "--no-wait", action="store_true", dest="no_wait",
        help="return the job id immediately instead of the result",
    )
    sm.add_argument(
        "--progress", action="store_true",
        help="print the job's streamed phase events",
    )
    sm.add_argument("--timeout", type=float, default=600.0)
    sm.add_argument("--json", action="store_true")
    sm.set_defaults(fn=_cmd_submit)

    b = sub.add_parser("bench", help="regenerate a paper table/figure")
    b.add_argument(
        "experiment",
        help="table1..table6, fig1, fig2, fig3 or ablations",
    )
    b.set_defaults(fn=_cmd_bench)

    at = sub.add_parser(
        "autotune",
        help="cost-model plan (algorithm × grid × kernel) for a dataset",
        description="Collect cheap graph signals, predict the virtual "
        "makespan of every tc2d/coveredge × grid candidate, and print the "
        "ranked table (see docs/autotune.md). With --measure every "
        "candidate is also run so predictions can be compared to "
        "measured virtual times.",
    )
    at.add_argument("dataset", help="registry name or edge-list file path")
    at.add_argument(
        "--max-p", type=int, default=16, dest="max_p",
        help="largest rank count to consider (default: 16)",
    )
    at.add_argument(
        "--measure",
        action="store_true",
        help="run every candidate and print measured virtual makespans",
    )
    at.add_argument("--seed", type=int, default=0)
    at.add_argument(
        "--cores", type=int, default=0,
        help="physical cores assumed for the executor choice "
        "(0 = this machine)",
    )
    at.add_argument(
        "--history", default=None, metavar="FILE",
        help="run-history JSONL (repro history) whose measured makespans "
        "override the model's predictions",
    )
    at.set_defaults(fn=_cmd_autotune)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "chaos":
        # Forward verbatim (see _cmd_chaos for why argparse is bypassed).
        from repro.resilience.chaos import main as chaos_main

        rest = argv[1:]
        if rest and rest[0] == "--":
            rest = rest[1:]
        return chaos_main(rest)
    args = build_parser().parse_args(argv)
    args._argv = argv  # count --auto: detect explicitly pinned flags
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
