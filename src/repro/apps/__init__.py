"""Applications built on the triangle kernels (the paper's Section 1
motivations): clustering coefficients, transitivity, and k-truss
decomposition."""

from repro.apps.clustering import clustering_profile, ClusteringProfile
from repro.apps.ktruss import ktruss_decomposition, max_truss

__all__ = [
    "ClusteringProfile",
    "clustering_profile",
    "ktruss_decomposition",
    "max_truss",
]
