"""Clustering coefficients and transitivity via the distributed census.

The paper's Section 1 names the clustering coefficient and the
transitivity ratio as the canonical consumers of triangle counts.  This
module computes both from one :func:`~repro.core.listing.triangle_census_2d`
run, so the heavy lifting happens on the simulated distributed pipeline
rather than serially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TC2DConfig
from repro.core.listing import triangle_census_2d
from repro.graph.csr import Graph
from repro.graph.stats import wedge_count
from repro.simmpi import MachineModel


@dataclass(frozen=True)
class ClusteringProfile:
    """Clustering metrics of a graph.

    Attributes
    ----------
    triangles:
        Global triangle count.
    local:
        Per-vertex local clustering coefficient (0 where degree < 2).
    average:
        Mean of the local coefficients (Watts-Strogatz clustering).
    transitivity:
        Global transitivity ratio ``3 * triangles / wedges``.
    """

    triangles: int
    local: np.ndarray
    average: float
    transitivity: float


def clustering_profile(
    graph: Graph,
    p: int = 4,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
) -> ClusteringProfile:
    """Compute local/average clustering and transitivity using the 2D
    distributed triangle census on ``p`` simulated ranks."""
    census = triangle_census_2d(graph, p, cfg=cfg, model=model)
    d = graph.degrees.astype(np.float64)
    wedges_per_vertex = d * (d - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        local = np.where(
            wedges_per_vertex > 0,
            census.vertex_triangles / np.maximum(wedges_per_vertex, 1e-300),
            0.0,
        )
    w = wedge_count(graph)
    transitivity = 3.0 * census.count / w if w else 0.0
    average = float(local.mean()) if graph.n else 0.0
    return ClusteringProfile(
        triangles=census.count,
        local=local,
        average=average,
        transitivity=transitivity,
    )
