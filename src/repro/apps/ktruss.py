"""k-truss decomposition driven by the distributed support kernel.

A k-truss is the maximal subgraph in which every edge participates in at
least ``k - 2`` triangles.  The classic algorithm alternates computing
edge supports with peeling under-supported edges; the paper cites truss
decomposition [20] as a direct consumer of its counting kernel, and the
support computation here *is* the 2D distributed census
(:func:`~repro.core.listing.triangle_census_2d`).

The peeling loop recomputes supports on the shrunken graph each round
(support recomputation is the dominant cost in distributed truss codes;
incremental maintenance is a serial-side optimization we deliberately
skip to keep every heavy step on the distributed kernel).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TC2DConfig
from repro.core.listing import triangle_census_2d
from repro.graph.csr import Graph
from repro.simmpi import MachineModel


def ktruss_decomposition(
    graph: Graph,
    k: int,
    p: int = 4,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    max_rounds: int = 1_000,
) -> Graph:
    """Return the k-truss of ``graph`` (possibly empty).

    ``k >= 2``; the 2-truss is the graph itself minus nothing (every edge
    trivially has support >= 0).
    """
    if k < 2:
        raise ValueError("k-truss is defined for k >= 2")
    current = graph
    if k == 2:
        return current
    threshold = k - 2
    for _round in range(max_rounds):
        if current.num_edges == 0:
            return current
        census = triangle_census_2d(current, p, cfg=cfg, model=model)
        weak = census.edge_support < threshold
        if not weak.any():
            return current
        keep_edges = census.edges[~weak]
        current = Graph.from_edges(current.n, keep_edges)
    raise RuntimeError("k-truss peeling failed to converge")


def max_truss(
    graph: Graph,
    p: int = 4,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
) -> tuple[int, Graph]:
    """Largest ``k`` for which the k-truss is non-empty, and that truss.

    Walks k upward reusing each (k)-truss as the starting point of the
    (k+1)-truss computation, as truss decompositions do.
    """
    k = 2
    best = graph
    current = graph
    while current.num_edges > 0:
        best, k = current, k
        nxt = ktruss_decomposition(current, k + 1, p=p, cfg=cfg, model=model)
        if nxt.num_edges == 0:
            return k, best
        current = nxt
        k += 1
    return max(2, k - 1), best
