"""Exception types raised by the simulated-MPI runtime."""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all simulated-MPI runtime errors."""


class DeadlockError(SimMPIError):
    """Raised when every unfinished rank is blocked and no message can
    unblock any of them.

    The message includes a per-rank description of what each blocked rank
    is waiting for, which is usually enough to spot mismatched tags or a
    collective call that only a subset of ranks entered.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        lines = [f"  rank {r}: {why}" for r, why in sorted(blocked.items())]
        super().__init__(
            "simulated MPI deadlock: all unfinished ranks are blocked\n"
            + "\n".join(lines)
        )


class RankFailedError(SimMPIError):
    """Raised (on the driver) when a rank program raised an exception.

    The original exception is attached as ``__cause__`` and the failing
    rank id is available as :attr:`rank`.
    """

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(
            f"rank {rank} raised {type(original).__name__}: {original}"
        )


class CollectiveMismatchError(SimMPIError):
    """Raised when ranks disagree about a collective operation, e.g. one
    rank calls ``bcast`` while its peer calls ``allreduce``, or roots
    differ."""


class InvalidRankError(SimMPIError):
    """Raised when a ``dest``/``source``/``root`` argument is outside the
    communicator."""

    def __init__(self, what: str, value: int, size: int):
        super().__init__(
            f"{what}={value} is not a valid rank for a communicator of size {size}"
        )
