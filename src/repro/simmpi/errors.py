"""Exception types raised by the simulated-MPI runtime."""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all simulated-MPI runtime errors."""


class DeadlockError(SimMPIError):
    """Raised when every unfinished rank is blocked and no message can
    unblock any of them.

    The message includes a per-rank description of what each blocked rank
    is waiting for, which is usually enough to spot mismatched tags or a
    collective call that only a subset of ranks entered.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        lines = [f"  rank {r}: {why}" for r, why in sorted(blocked.items())]
        super().__init__(
            "simulated MPI deadlock: all unfinished ranks are blocked\n"
            + "\n".join(lines)
        )


class RankFailedError(SimMPIError):
    """Raised (on the driver) when a rank program raised an exception.

    The original exception is attached as ``__cause__`` and the failing
    rank id is available as :attr:`rank`.
    """

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(
            f"rank {rank} raised {type(original).__name__}: {original}"
        )


class RankCrashError(SimMPIError):
    """Raised inside a rank program by an injected crash fault.

    Models a process failure at a named fault site (a phase boundary or a
    Cannon shift step).  The resilience layer catches the resulting
    :class:`RankFailedError` on the driver and restarts the run from the
    latest complete checkpoint; without a recovery driver the crash aborts
    the run like any other rank failure.
    """

    def __init__(self, rank: int, site: str):
        self.rank = rank
        self.site = site
        super().__init__(f"injected crash on rank {rank} at {site!r}")


class BlobChecksumError(SimMPIError, ValueError):
    """Raised when a deserialized block blob fails its crc32 check.

    Subclasses ``ValueError`` so callers that treat any malformed blob as
    a value error keep working; subclasses :class:`SimMPIError` so the
    resilience layer can classify it as a (possibly injected) transport
    corruption and restart from a checkpoint.
    """

    def __init__(self, expected: int, actual: int):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"block blob checksum mismatch: header says crc32=0x{expected:08x}, "
            f"payload hashes to 0x{actual:08x} (corrupted in transit?)"
        )


class WorkerCrashError(SimMPIError):
    """Raised by the superstep pool when a parallel worker fails.

    Covers the three ways a real worker can go wrong: the process died
    (``BrokenProcessPool``), the job raised an exception inside the
    worker, or no result arrived within the real-time budget.  The
    original failure (when there is one) is attached as ``__cause__``;
    :attr:`rank` names the virtual rank whose job was in flight.

    Subclasses :class:`SimMPIError` so drivers that already classify
    engine failures (the resilience layer, the chaos harness) treat a
    worker crash like any other runtime failure instead of an anonymous
    ``concurrent.futures`` internal.
    """

    def __init__(self, rank: int, why: str):
        self.rank = rank
        super().__init__(f"superstep worker failed (rank {rank} job): {why}")


class ResilienceExhaustedError(SimMPIError):
    """Raised by the recovery driver when a run keeps failing after the
    restart budget (``RecoveryPolicy.max_restarts``) is spent."""

    def __init__(self, attempts: int, last: BaseException):
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"run still failing after {attempts} attempts; last error: "
            f"{type(last).__name__}: {last}"
        )


class CollectiveMismatchError(SimMPIError):
    """Raised when ranks disagree about a collective operation, e.g. one
    rank calls ``bcast`` while its peer calls ``allreduce``, or roots
    differ."""


class InvalidRankError(SimMPIError):
    """Raised when a ``dest``/``source``/``root`` argument is outside the
    communicator."""

    def __init__(self, what: str, value: int, size: int):
        super().__init__(
            f"{what}={value} is not a valid rank for a communicator of size {size}"
        )
