"""Reduction operators for simulated-MPI collectives.

Operators work on any values supporting the underlying binary operation;
numpy arrays reduce elementwise, which is what the distributed counting
sort in :mod:`repro.core.preprocess` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative binary reduction operator.

    Parameters
    ----------
    name:
        Human-readable name used in traces and error messages.
    fn:
        Binary function combining two values into one.
    """

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce(self, values: list[Any]) -> Any:
        """Left-fold ``values`` (at least one) with the operator."""
        if not values:
            raise ValueError(f"cannot {self.name}-reduce an empty list")
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc


def _sum(a: Any, b: Any) -> Any:
    return a + b


def _prod(a: Any, b: Any) -> Any:
    return a * b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _band(a: Any, b: Any) -> Any:
    return a & b


def _bor(a: Any, b: Any) -> Any:
    return a | b


SUM = ReduceOp("sum", _sum)
PROD = ReduceOp("prod", _prod)
MAX = ReduceOp("max", _max)
MIN = ReduceOp("min", _min)
BAND = ReduceOp("band", _band)
BOR = ReduceOp("bor", _bor)
