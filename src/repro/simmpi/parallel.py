"""Shared-memory parallel superstep executor for the SPMD engine.

The engine's cooperative scheduler runs one virtual rank at a time, which
keeps execution deterministic but leaves every core except one idle.  The
paper's Cannon schedule, however, makes each shift epoch's per-rank
counting kernels *data-independent* (the Eq. 6 residue invariant pins
every operand before any kernel runs), so the heavy compute of one epoch
is an embarrassingly parallel batch.  :class:`SuperstepPool` exploits
exactly that structure:

* a rank program calls :meth:`~repro.simmpi.engine.RankContext.offload`
  at a compute site, handing the pool its input arrays and a picklable
  ``meta`` dict, and blocks (in *real* time only — the virtual clock
  never sees the pool);
* when the scheduler finds no runnable rank, it drains the pool: every
  pending job is dispatched to a persistent ``multiprocessing`` worker
  pool and the results are collected **in rank order**;
* the submitting ranks resume one at a time under the normal
  deterministic schedule and apply their results (charges, tracer
  events, count deltas) exactly as the sequential executor would.

Because the pool only ever computes *pure functions of the submitted
bytes* and every state mutation happens rank-side under the sequential
scheduler, counts, virtual clocks, counters, traces and profile reports
are bit-identical to a sequential run — the pool can only change wall
time.

Zero-copy transport
-------------------
Input arrays travel through one ``multiprocessing.shared_memory`` arena
segment that is reused (grow-only) across dispatches, so an epoch's
operand blobs cost one ``memcpy`` into the arena and **no pickling of
array payloads**.  Workers map the segment once and rebuild zero-copy
views; only the small result dicts come back through the pickle channel.
Large *results* can ride the same transport in reverse: a worker entry
returns :func:`pack_result_arrays` (a fresh shm segment owned by the
parent after :func:`take_result_arrays`), so preprocessing offloads do
not pickle megabyte outputs either.

Batched dispatch
----------------
Submitting one executor future per rank costs one pickle round-trip per
job — measurably dominant when kernels are small (the fine-grained
communication failure mode; cf. communication agglomeration in
Sanders & Uhl).  With ``dispatch_mode="batched"`` (the default) a drain
coalesces the pending jobs into at most ``workers`` round-robin batches
and submits **one future per batch**; a worker runs its batch back to
back and returns the whole result list in one pickle reply.  Per-job
failure attribution survives batching: an entry that raises is caught
in the worker and reported per job, so :class:`WorkerCrashError` still
names the exact rank (a dead worker process or a timeout is attributed
to every rank of the batch it was running).  ``dispatch_mode="perjob"``
keeps the one-future-per-job behavior.

Resident blocks
---------------
Arrays that are reused across many dispatches (the shift-invariant task
block; under ``--dispatch amortized`` also the travelling U/L blobs,
whose *content* is pinned by the Eq. 6 residue invariant even as their
location rotates) can be published once with
:meth:`SuperstepPool.put_resident` and referenced in later submissions
by a :class:`Resident` key instead of re-copying the bytes every epoch.
Residents live at the front of the arena segment (they survive arena
growth — the region is copied to the new segment before the old one is
unlinked) and are dropped by :meth:`SuperstepPool.reset`, which bumps
``resident_generation`` so stale keys cannot alias across engine runs.

A resident may also be **file-backed**
(:meth:`SuperstepPool.put_resident_file`): instead of copying bytes into
the arena, the slot records ``(path, offset, dtype, count)`` into an
immutable on-disk file — a store rank file served by
:class:`~repro.graph.store.MappedRankFile` — and each worker ``mmap``\ s
the file once and rebuilds read-only views on demand.  Warm cache-hit
runs publish their U/L/task blobs this way: the block bytes go straight
from the page cache into the kernels without ever being copied through
the parent process or the arena.

Worker lifecycle (spawn, not fork)
----------------------------------
Workers are started with the explicit ``spawn`` context: each worker is
a fresh interpreter that re-imports the job's entry module, so
module-level registries (e.g. the kernel-backend registry, which
registers ``"row"``/``"batch"`` at import time) are rebuilt from scratch
instead of inheriting an arbitrary fork-time snapshot of the parent —
the parent's tracer, engine state and any half-initialized globals never
leak into workers.  Code that mutates module state beyond import-time
registration (e.g. ``register_backend`` of a custom backend) must pass a
``worker_init`` entry point so every worker replays that registration;
see :func:`SuperstepPool.__init__`.

A worker that dies (or an entry that raises) surfaces as the typed
:class:`~repro.simmpi.errors.WorkerCrashError` on the driver, never as a
hang or a silent partial result.
"""

from __future__ import annotations

import importlib
import mmap
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.simmpi.errors import SimMPIError, WorkerCrashError

#: Smallest arena allocation; grow-only doubling starts here.
_MIN_ARENA_BYTES = 1 << 16

#: Slot alignment inside the arena (int64 payloads want 8-byte offsets).
_ALIGN = 8


def _resolve_entry(entry: str) -> Callable:
    """Import ``"package.module:function"`` and return the function.

    Entry points are strings (not callables) because jobs cross a process
    boundary: the worker re-imports the module in its own interpreter,
    which is what makes ``spawn`` workers immune to unpicklable closures.
    """
    mod_name, sep, fn_name = entry.partition(":")
    if not sep or not mod_name or not fn_name:
        raise ValueError(
            f"entry must look like 'package.module:function', got {entry!r}"
        )
    fn = getattr(importlib.import_module(mod_name), fn_name, None)
    if fn is None:
        raise ValueError(f"module {mod_name!r} has no attribute {fn_name!r}")
    return fn


@dataclass(frozen=True)
class WorkerSpan:
    """Real wall-time extent of one job on one pool worker.

    Unlike the engine's virtual-time spans these are *wall-clock* and
    therefore nondeterministic; they live outside the
    :class:`~repro.simmpi.tracing.Tracer` so default trace exports stay
    bit-identical across executors, and are merged into the Perfetto
    export only on request (``--trace-workers``).

    Times are ``time.perf_counter`` seconds relative to the pool's
    creation; on Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is
    comparable across the parent and its workers.
    """

    worker: int  # worker process pid
    rank: int  # virtual rank the job was submitted for
    label: str  # display label, e.g. "kernel:batch"
    begin: float
    end: float
    dispatch: int  # which drain of the pool this job rode in

    @property
    def duration(self) -> float:
        return self.end - self.begin


@dataclass
class PoolStats:
    """Cumulative wall-clock accounting of a pool's dispatches.

    The four bucket timers **partition** each :meth:`SuperstepPool.
    dispatch` call's wall time — ``serialize_s`` (arena packing, incl.
    job-list prep), ``dispatch_s`` (future submission), ``execute_s``
    (blocked in ``Future.result``) and ``collect_s`` (result/span
    bookkeeping) sum to ``wall_s`` up to float rounding — so a telemetry
    report can attribute *all* of the pool's real cost, not sample it.

    Counters are cumulative over the pool's lifetime (pools are reused
    across engine runs); per-run views subtract a
    :meth:`SuperstepPool.stats_snapshot` taken at run begin.  ``*_peak``
    fields are high-water marks and pass through deltas unchanged.
    """

    dispatches: int = 0
    jobs: int = 0
    batches: int = 0  # futures submitted (== jobs under "perjob")
    wall_s: float = 0.0
    serialize_s: float = 0.0
    dispatch_s: float = 0.0
    execute_s: float = 0.0
    collect_s: float = 0.0
    payload_bytes: int = 0  # transient bytes memcpy'd into the arena
    payload_peak: int = 0  # largest single-dispatch transient payload
    queue_peak: int = 0  # most jobs pending at any dispatch
    resident_puts: int = 0  # put_resident calls (writes into the arena)
    resident_hits: int = 0  # job inputs served from a resident slot
    resident_bytes: int = 0  # bytes written by put_resident
    #: Per-worker busy seconds (pid -> sum of job durations).
    worker_busy_s: dict[int, float] = field(default_factory=dict)

    def as_dict(self, arena_capacity: int = 0) -> dict[str, Any]:
        """JSON-serializable snapshot (telemetry-record ``pool`` field)."""
        return {
            "dispatches": self.dispatches,
            "jobs": self.jobs,
            "batches": self.batches,
            "wall_s": self.wall_s,
            "serialize_s": self.serialize_s,
            "dispatch_s": self.dispatch_s,
            "execute_s": self.execute_s,
            "collect_s": self.collect_s,
            "payload_bytes": self.payload_bytes,
            "payload_peak": self.payload_peak,
            "queue_peak": self.queue_peak,
            "resident_puts": self.resident_puts,
            "resident_hits": self.resident_hits,
            "resident_bytes": self.resident_bytes,
            "arena_capacity_bytes": arena_capacity,
            "worker_busy_s": {str(k): v for k, v in self.worker_busy_s.items()},
        }


@dataclass(frozen=True)
class Resident:
    """Marker usable in a :meth:`SuperstepPool.submit` ``arrays`` sequence:
    "this input is the resident slot published under ``key``" — the bytes
    were written into the arena by an earlier
    :meth:`~SuperstepPool.put_resident` and are *not* re-copied.

    Keys are arbitrary hashables; rank programs use structured tuples
    such as ``("task", rank)`` or ``("U", x, inner_residue)``.
    """

    key: Any


@dataclass(frozen=True)
class _JobDesc:
    """Worker-side description of one job (small and picklable)."""

    shm_name: str
    #: Per-array slot: a 3-tuple ``(byte offset, dtype string, element
    #: count)`` into the arena, or a 4-tuple ``(path, byte offset, dtype
    #: string, element count)`` into an immutable on-disk file that the
    #: worker memory-maps (file-backed residents).
    slots: tuple[tuple, ...]
    entry: str
    meta: dict
    #: Virtual rank the job belongs to (per-job failure attribution when
    #: several jobs ride one batch future).
    rank: int = -1


@dataclass
class _PendingJob:
    """Parent-side record of one submitted-but-undispatched job.

    ``arrays`` elements are either contiguous ndarrays (copied into the
    arena's transient region at dispatch) or :class:`Resident` markers
    (resolved to already-written slots, zero copies).
    """

    rank: int
    entry: str
    arrays: tuple[Any, ...]
    meta: dict
    label: str


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class _ShmArena:
    """One grow-only shared-memory segment reused across dispatches.

    Growing allocates a fresh segment (shm cannot be resized in place)
    and unlinks the old one; workers notice the new name on their next
    job and drop their stale mapping.  ``allocations`` counts segment
    (re)creations so tests can assert steady-state reuse.

    The first ``resident_used`` bytes are the **resident region**: slots
    written once via :meth:`SuperstepPool.put_resident` and referenced
    across many dispatches.  Growth preserves it — the bytes are copied
    into the new segment at the same offsets, so resident slot records
    stay valid across reallocations.  Transient per-dispatch payloads
    pack after it.
    """

    def __init__(self) -> None:
        self.shm: shared_memory.SharedMemory | None = None
        self.capacity = 0
        self.allocations = 0
        self.resident_used = 0

    def ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        if self.shm is None or nbytes > self.capacity:
            cap = max(_MIN_ARENA_BYTES, self.capacity)
            while cap < nbytes:
                cap *= 2
            old = self.shm
            self.shm = None
            new = shared_memory.SharedMemory(create=True, size=cap)
            if old is not None and self.resident_used:
                # Keep published resident slots valid: same offsets, new
                # segment.  Only the resident prefix carries state across
                # dispatches; transient bytes are dead after each drain.
                new.buf[: self.resident_used] = old.buf[: self.resident_used]
            self._release(old)
            self.shm = new
            self.capacity = cap
            self.allocations += 1
        assert self.shm is not None
        return self.shm

    @staticmethod
    def _release(shm: shared_memory.SharedMemory | None) -> None:
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view pinned by a frame
            pass  # unlink below still frees the name; mapping dies later
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        if self.shm is not None:
            self._release(self.shm)
            self.shm = None
            self.capacity = 0
            self.resident_used = 0


# ---------------------------------------------------------------------------
# worker side (runs in spawned interpreters)
# ---------------------------------------------------------------------------

#: Arena mappings held by this worker, keyed by segment name.  At most one
#: live entry: a new name means the parent's arena grew and the old
#: segment is already unlinked, so stale mappings are closed eagerly.
_WORKER_SHM: dict[str, shared_memory.SharedMemory] = {}


def _worker_initializer(worker_init: str | None) -> None:
    """Per-worker startup hook (runs once in each spawned interpreter).

    ``worker_init`` is an optional ``"module:function"`` entry called with
    no arguments.  This is the documented place to replay module-state
    mutations that ``spawn`` does not inherit — most importantly
    registering custom kernel backends
    (:func:`repro.core.kernels.register_backend`), which only exist in
    the parent unless every worker re-registers them.
    """
    if worker_init:
        _resolve_entry(worker_init)()


def _attach_arena(name: str) -> shared_memory.SharedMemory:
    shm = _WORKER_SHM.get(name)
    if shm is None:
        for stale in list(_WORKER_SHM):
            _WORKER_SHM.pop(stale).close()
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = shm
    return shm


#: Read-only mmaps of file-backed resident files held by this worker,
#: keyed by path.  Store rank files are immutable (written once, then
#: only renamed), so a mapping never goes stale; at most a handful of
#: files are live per run, so no eviction is needed.
_WORKER_MMAPS: dict[str, mmap.mmap] = {}


def _attach_file(path: str) -> mmap.mmap:
    mm = _WORKER_MMAPS.get(path)
    if mm is None:
        with open(path, "rb") as fh:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        _WORKER_MMAPS[path] = mm
    return mm


def _run_job(desc: _JobDesc) -> dict[str, Any]:
    """Execute one job in a worker: map the arena, rebuild zero-copy
    array views, run the entry, return its (picklable) result plus the
    job's wall-time extent.

    The entry receives ``(arrays, meta)`` where ``arrays`` are read-only
    views into the shared segment; it must treat them as immutable inputs
    and must not keep references past its return (the parent reuses the
    arena for the next dispatch).
    """
    t0 = time.perf_counter()
    shm = _attach_arena(desc.shm_name)
    arrays = []
    for slot in desc.slots:
        if len(slot) == 4:  # file-backed resident: map, don't copy
            path, off, dt, count = slot
            arrays.append(
                np.frombuffer(
                    _attach_file(path), dtype=np.dtype(dt), count=count,
                    offset=off,
                )
            )
        else:
            off, dt, count = slot
            arrays.append(
                np.frombuffer(
                    shm.buf, dtype=np.dtype(dt), count=count, offset=off
                )
            )
    fn = _resolve_entry(desc.entry)
    result = fn(arrays, desc.meta)
    del arrays  # release the exported buffer before the next arena swap
    return {
        "result": result,
        "t0": t0,
        "t1": time.perf_counter(),
        "worker": os.getpid(),
    }


def _run_job_batch(descs: Sequence[_JobDesc]) -> list[dict[str, Any]]:
    """Execute a batch of jobs back to back in one worker (one pickle
    round-trip for the whole list — the communication-agglomeration move
    that makes small kernels worth dispatching at all).

    Per-job exceptions are caught and returned as ``{"error", "rank"}``
    records instead of poisoning the batch future, so the parent can
    attribute the failure to the exact rank even though several ranks
    shared the future.  (A worker *death* still breaks the future; the
    parent then blames every rank of the batch.)
    """
    out: list[dict[str, Any]] = []
    for desc in descs:
        try:
            out.append(_run_job(desc))
        except BaseException as exc:
            out.append(
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "rank": desc.rank,
                }
            )
    return out


#: Key under which :func:`pack_result_arrays` nests its descriptor in a
#: job's result dict.
RESULT_SHM_KEY = "__shm_arrays__"


def pack_result_arrays(arrays: Sequence[np.ndarray]) -> dict[str, Any]:
    """Worker-side: ship large result arrays through shared memory.

    Writes ``arrays`` into a **fresh** shm segment (the job's input arena
    belongs to the parent and is reused immediately) and returns a small
    picklable descriptor for :func:`take_result_arrays`.  Ownership of
    the segment transfers to the parent: this process unregisters it from
    its own ``resource_tracker`` so the parent's unlink is the single
    teardown and worker exit does not double-free the name.

    Use this for entries whose outputs are megabytes (preprocessing's
    relabeling tables and block blobs) — returning them through the
    pickle channel would serialize the payload twice.
    """
    total = sum(_aligned(int(a.nbytes)) for a in arrays)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass
    buf = np.frombuffer(shm.buf, dtype=np.uint8)
    slots: list[tuple[int, str, int, tuple[int, ...]]] = []
    offset = 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        buf[offset : offset + a.nbytes] = a.reshape(-1).view(np.uint8)
        slots.append((offset, str(a.dtype), a.size, tuple(a.shape)))
        offset += _aligned(int(a.nbytes))
    del buf  # release the exported view before close()
    name = shm.name
    shm.close()
    return {RESULT_SHM_KEY: {"name": name, "slots": slots}}


def take_result_arrays(result: dict[str, Any]) -> list[np.ndarray]:
    """Parent-side: adopt a :func:`pack_result_arrays` payload.

    Copies the arrays out of the worker's segment, then closes and
    unlinks it — the descriptor is single-use.
    """
    desc = result[RESULT_SHM_KEY]
    shm = shared_memory.SharedMemory(name=desc["name"])
    try:
        out = []
        for off, dt, count, shape in desc["slots"]:
            dtype = np.dtype(dt)
            arr = np.frombuffer(
                shm.buf, dtype=dtype, count=count, offset=off
            ).copy()
            out.append(arr.reshape(shape))
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    return out


def _crash_for_tests(arrays: Sequence[np.ndarray], meta: dict) -> None:
    """Job entry that kills its worker process (crash-path tests only)."""
    os._exit(int(meta.get("code", 17)))


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class SuperstepPool:
    """Persistent spawn-context worker pool with a shared-memory arena.

    Parameters
    ----------
    workers:
        Worker process count; ``0`` means ``os.cpu_count()``.
    timeout:
        Real seconds to wait for any single job result before declaring
        the pool wedged (:class:`WorkerCrashError`); engines override it
        per dispatch with their own ``real_timeout``.
    worker_init:
        Optional ``"module:function"`` entry replayed once in every
        spawned worker (see :func:`_worker_initializer`); required when
        jobs depend on parent-side module-state mutations such as custom
        kernel-backend registrations.
    dispatch_mode:
        ``"batched"`` (default) coalesces each drain's pending jobs into
        at most ``workers`` round-robin batches, one future + one pickle
        round-trip per batch; ``"perjob"`` submits one future per job
        (the pre-batching behavior, kept for A/B measurement).  Results
        and their rank ordering are identical either way.

    The pool outlives individual engine runs: the resilient restart
    driver and benchmark harnesses attach one pool to many engines, so
    worker spawn cost and arena allocations amortize across runs.  Use
    it as a context manager (or call :meth:`shutdown`) to release the
    workers and unlink the arena.
    """

    #: Valid ``dispatch_mode`` values.
    DISPATCH_MODES = ("perjob", "batched")

    def __init__(
        self,
        workers: int = 0,
        *,
        timeout: float = 600.0,
        worker_init: str | None = None,
        dispatch_mode: str = "batched",
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = cpu count)")
        if dispatch_mode not in self.DISPATCH_MODES:
            raise ValueError(
                f"dispatch_mode must be one of {self.DISPATCH_MODES}, "
                f"got {dispatch_mode!r}"
            )
        self.workers = workers or (os.cpu_count() or 1)
        self.timeout = timeout
        self.worker_init = worker_init
        self.dispatch_mode = dispatch_mode
        # Explicit spawn context: see the module docstring for why fork
        # is never safe here (inherited registries, tracer state, locks).
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=get_context("spawn"),
            initializer=_worker_initializer,
            initargs=(worker_init,),
        )
        self._arena = _ShmArena()
        self._pending: dict[int, _PendingJob] = {}
        self._results: dict[int, Any] = {}
        self._spans: list[WorkerSpan] = []
        #: Resident slots: key -> (offset, dtype str, element count) for
        #: arena slots, or (path, offset, dtype str, element count) for
        #: file-backed slots (see :meth:`put_resident_file`).
        self._resident: dict[Any, tuple] = {}
        self.resident_generation = 0
        self._t0 = time.perf_counter()
        self.dispatches = 0
        self.jobs_run = 0
        self.stats = PoolStats()
        self._telemetry: Any = None

    # -- bookkeeping --------------------------------------------------------

    @property
    def arena_allocations(self) -> int:
        """Shared-memory segment (re)creations so far (reuse metric)."""
        return self._arena.allocations

    def attach_telemetry(self, telemetry: Any) -> None:
        """Attach a :class:`~repro.instrument.telemetry.Telemetry` session
        (duck-typed: anything with ``note(kind, **detail)``) so queue
        depth, arena occupancy, per-job latency and crashes record into
        its flight recorder.  :attr:`stats` accumulates either way —
        telemetry only adds the event stream."""
        self._telemetry = telemetry

    def stats_snapshot(self) -> dict[str, Any]:
        """JSON-serializable copy of :attr:`stats` (plus current arena
        capacity).  Take one at run begin to compute per-run deltas."""
        return self.stats.as_dict(arena_capacity=self._arena.capacity)

    def pending(self) -> bool:
        """Whether any submitted job is waiting for a dispatch."""
        return bool(self._pending)

    def has_result(self, rank: int) -> bool:
        return rank in self._results

    def take_result(self, rank: int) -> Any:
        return self._results.pop(rank)

    def drain_spans(self) -> list[WorkerSpan]:
        """Worker spans recorded since the last drain (and forget them)."""
        spans, self._spans = self._spans, []
        return spans

    def reset(self) -> None:
        """Drop pending jobs, unclaimed results and resident slots (start
        of an engine run, or teardown of an aborted one).  Workers and the
        arena segment persist; residents must be republished because a new
        run's blocks share nothing with the last run's."""
        self._pending.clear()
        self._results.clear()
        self.invalidate_residents()

    # -- resident slots -----------------------------------------------------

    def put_resident(self, key: Any, array: np.ndarray) -> None:
        """Write ``array`` into the arena's resident region under ``key``.

        The bytes are copied **once, now**; later :meth:`submit` calls
        reference them with ``Resident(key)`` at zero copy cost.
        Re-publishing an existing key with the same byte size overwrites
        the slot in place; a different size allocates a fresh slot (the
        old bytes are dead until :meth:`invalidate_residents`).  Slots do
        not survive :meth:`reset` — the generation counter bumps so
        cross-run aliasing is structurally impossible.
        """
        if self._executor is None:
            raise SimMPIError("superstep pool is shut down")
        arr = np.ascontiguousarray(array)
        slot = self._resident.get(key)
        if slot is not None and slot[1:] == (str(arr.dtype), arr.size):
            offset = slot[0]
            shm = self._arena.ensure(self._arena.resident_used)
        else:
            offset = _aligned(self._arena.resident_used)
            shm = self._arena.ensure(offset + max(int(arr.nbytes), 1))
            self._arena.resident_used = offset + int(arr.nbytes)
            self._resident[key] = (offset, str(arr.dtype), arr.size)
        buf = np.frombuffer(shm.buf, dtype=np.uint8)
        buf[offset : offset + arr.nbytes] = arr.reshape(-1).view(np.uint8)
        del buf
        self.stats.resident_puts += 1
        self.stats.resident_bytes += int(arr.nbytes)
        if self._telemetry is not None:
            self._telemetry.note(
                "pool.resident",
                key=repr(key),
                nbytes=int(arr.nbytes),
                used_bytes=self._arena.resident_used,
                generation=self.resident_generation,
            )

    def put_resident_file(
        self, key: Any, slot: tuple[str, int, str, int]
    ) -> None:
        """Publish a **file-backed** resident slot under ``key``.

        ``slot`` is ``(path, byte offset, dtype string, element count)``
        into a file that must stay byte-immutable while published (store
        rank files qualify: they are written once via atomic rename and
        never modified).  Nothing is copied anywhere — each worker
        ``mmap``\\ s the file on first use and rebuilds read-only views,
        so the bytes travel page cache → kernel with zero parent-side
        copies.  Shares the key namespace, generation semantics and
        :meth:`reset` lifecycle with :meth:`put_resident`.
        """
        if self._executor is None:
            raise SimMPIError("superstep pool is shut down")
        path, offset, dtype_str, count = slot
        nbytes = int(count) * np.dtype(dtype_str).itemsize
        self._resident[key] = (str(path), int(offset), str(dtype_str), int(count))
        self.stats.resident_puts += 1
        self.stats.resident_bytes += nbytes
        if self._telemetry is not None:
            self._telemetry.note(
                "pool.resident",
                key=repr(key),
                nbytes=nbytes,
                storage="file",
                generation=self.resident_generation,
            )

    def has_resident(self, key: Any) -> bool:
        """Whether ``key`` is currently published in the resident region."""
        return key in self._resident

    def invalidate_residents(self) -> None:
        """Drop every resident slot and bump :attr:`resident_generation`.

        The arena segment itself persists (capacity is reused); only the
        slot directory empties, so a ``Resident`` reference to a dropped
        key fails loudly at the next submit instead of silently reading
        stale bytes.
        """
        self._resident.clear()
        self._arena.resident_used = 0
        self.resident_generation += 1

    # -- the superstep ------------------------------------------------------

    def submit(
        self,
        rank: int,
        entry: str,
        arrays: Sequence[Any],
        meta: dict | None = None,
        label: str = "",
    ) -> None:
        """Queue one job for ``rank``; it runs at the next :meth:`dispatch`.

        ``entry`` is a ``"module:function"`` string resolved *in the
        worker*; it is called as ``entry(arrays, meta)`` and must return
        a picklable value containing no views into the input arrays.

        ``arrays`` elements may be ndarrays (copied into the arena at
        dispatch) or :class:`Resident` markers referencing slots already
        published with :meth:`put_resident` — an unpublished key is
        rejected here, before the rank parks on the result.
        """
        if self._executor is None:
            raise SimMPIError("superstep pool is shut down")
        if rank in self._pending or rank in self._results:
            raise SimMPIError(
                f"rank {rank} already has a superstep job in flight"
            )
        _resolve_entry(entry)  # fail fast in the parent on a bad entry
        packed: list[Any] = []
        for a in arrays:
            if isinstance(a, Resident):
                if a.key not in self._resident:
                    raise SimMPIError(
                        f"rank {rank} references unpublished resident "
                        f"block {a.key!r} (generation "
                        f"{self.resident_generation})"
                    )
                packed.append(a)
            else:
                packed.append(np.ascontiguousarray(a))
        self._pending[rank] = _PendingJob(
            rank=rank,
            entry=entry,
            arrays=tuple(packed),
            meta=dict(meta or {}),
            label=label or entry,
        )
        depth = len(self._pending)
        if depth > self.stats.queue_peak:
            self.stats.queue_peak = depth
        if self._telemetry is not None:
            self._telemetry.note(
                "pool.queue", depth=depth, rank=rank, label=label or entry
            )

    def dispatch(self, timeout: float | None = None) -> list[int]:
        """Run every pending job concurrently; return the served ranks.

        Transient arrays are packed into the arena after the resident
        region, :class:`Resident` references resolve to their published
        slots (zero copies), and — under ``dispatch_mode="batched"`` —
        the jobs are grouped round-robin into at most ``workers`` batch
        futures.  Results are recorded **in rank order** so the caller's
        wake-up sequence is deterministic regardless of batching.  Any
        worker death, in-job exception or timeout raises
        :class:`WorkerCrashError` naming the failing rank (a dead worker
        or timeout names the whole batch; pending state is cleared so
        the owning engine can abort cleanly).
        """
        if self._executor is None:
            raise SimMPIError("superstep pool is shut down")
        if not self._pending:
            return []
        # Bucket accounting (see PoolStats): t_start..t_packed is
        # serialize, ..t_submitted is dispatch, the Future.result waits
        # sum to execute, and the remaining collection-loop time is
        # collect — a partition of this call's wall time.
        t_start = time.perf_counter()
        jobs = [self._pending[r] for r in sorted(self._pending)]
        limit = self.timeout if timeout is None else timeout

        base = _aligned(self._arena.resident_used)
        total = sum(
            _aligned(int(a.nbytes))
            for job in jobs
            for a in job.arrays
            if not isinstance(a, Resident)
        )
        shm = self._arena.ensure(max(base + total, 1))
        buf = np.frombuffer(shm.buf, dtype=np.uint8)
        offset = base
        resident_hits = 0
        descs: list[_JobDesc] = []
        for job in jobs:
            slots: list[tuple] = []
            for a in job.arrays:
                if isinstance(a, Resident):
                    slot = self._resident.get(a.key)
                    if slot is None:
                        del buf
                        raise SimMPIError(
                            f"rank {job.rank} references unpublished "
                            f"resident block {a.key!r}"
                        )
                    slots.append(slot)
                    resident_hits += 1
                    continue
                flat = a.reshape(-1).view(np.uint8)
                buf[offset : offset + a.nbytes] = flat
                slots.append((offset, str(a.dtype), a.size))
                offset += _aligned(int(a.nbytes))
            descs.append(
                _JobDesc(
                    shm_name=shm.name,
                    slots=tuple(slots),
                    entry=job.entry,
                    meta=job.meta,
                    rank=job.rank,
                )
            )
        # Drop the packing view *before* anything can raise: a propagating
        # exception keeps this frame alive in its traceback, and a live
        # numpy view into the segment would make shm.close() fail with
        # BufferError at shutdown.
        del buf
        t_packed = time.perf_counter()
        if self._telemetry is not None:
            self._telemetry.note(
                "pool.arena",
                used_bytes=base + total,
                resident_bytes=self._arena.resident_used,
                capacity_bytes=self._arena.capacity,
                allocations=self._arena.allocations,
                jobs=len(jobs),
            )

        # Round-robin grouping keeps batch sizes within one of each
        # other; "perjob" degenerates to singleton batches.
        nbatches = (
            len(jobs)
            if self.dispatch_mode == "perjob"
            else min(self.workers, len(jobs))
        )
        groups = [
            list(range(i, len(jobs), nbatches)) for i in range(nbatches)
        ]
        futures = [
            (idxs, self._executor.submit(_run_job_batch, [descs[i] for i in idxs]))
            for idxs in groups
        ]
        t_submitted = time.perf_counter()
        outs: dict[int, dict[str, Any]] = {}
        execute_s = 0.0
        served: list[int] = []
        try:
            for idxs, fut in futures:
                batch_ranks = [jobs[i].rank for i in idxs]
                t_wait = time.perf_counter()
                try:
                    batch_out = fut.result(timeout=limit)
                except BrokenProcessPool as exc:
                    reason = (
                        "worker process died mid-job "
                        f"(batch ranks {batch_ranks})"
                    )
                    self._note_crash(batch_ranks[0], reason)
                    raise WorkerCrashError(batch_ranks[0], reason) from exc
                except FutureTimeoutError as exc:
                    reason = (
                        f"no result within {limit}s of real time "
                        f"(worker wedged? batch ranks {batch_ranks})"
                    )
                    self._note_crash(batch_ranks[0], reason)
                    raise WorkerCrashError(batch_ranks[0], reason) from exc
                except Exception as exc:
                    reason = f"job raised {type(exc).__name__}: {exc}"
                    self._note_crash(batch_ranks[0], reason)
                    raise WorkerCrashError(batch_ranks[0], reason) from exc
                execute_s += time.perf_counter() - t_wait
                for i, out in zip(idxs, batch_out):
                    if "error" in out:
                        # The entry raised inside the worker; the batch
                        # survived, so attribution is exact.
                        reason = f"job raised {out['error']}"
                        self._note_crash(out.get("rank", jobs[i].rank), reason)
                        raise WorkerCrashError(
                            out.get("rank", jobs[i].rank), reason
                        )
                    outs[i] = out
            # All futures resolved; record results/spans in rank order so
            # downstream bookkeeping is batching-invariant.
            for i, job in enumerate(jobs):
                out = outs[i]
                self._results[job.rank] = out["result"]
                self._spans.append(
                    WorkerSpan(
                        worker=out["worker"],
                        rank=job.rank,
                        label=job.label,
                        begin=out["t0"] - self._t0,
                        end=out["t1"] - self._t0,
                        dispatch=self.dispatches,
                    )
                )
                served.append(job.rank)
                self.jobs_run += 1
                busy = out["t1"] - out["t0"]
                self.stats.worker_busy_s[out["worker"]] = (
                    self.stats.worker_busy_s.get(out["worker"], 0.0) + busy
                )
                if self._telemetry is not None:
                    # Dispatch latency: submission to worker start (IPC +
                    # queueing in the executor), comparable because
                    # perf_counter is CLOCK_MONOTONIC across processes.
                    self._telemetry.note(
                        "pool.job",
                        rank=job.rank,
                        label=job.label,
                        worker=out["worker"],
                        dispatch=self.dispatches,
                        latency_s=out["t0"] - t_submitted,
                        exec_s=busy,
                    )
        finally:
            self._pending.clear()
        t_end = time.perf_counter()
        st = self.stats
        st.dispatches += 1
        st.jobs += len(served)
        st.batches += len(futures)
        st.wall_s += t_end - t_start
        st.serialize_s += t_packed - t_start
        st.dispatch_s += t_submitted - t_packed
        st.execute_s += execute_s
        st.collect_s += (t_end - t_submitted) - execute_s
        st.payload_bytes += total
        st.resident_hits += resident_hits
        if total > st.payload_peak:
            st.payload_peak = total
        if self._telemetry is not None:
            self._telemetry.note(
                "pool.dispatch",
                dispatch=self.dispatches,
                jobs=len(served),
                batches=len(futures),
                wall_s=t_end - t_start,
                serialize_s=t_packed - t_start,
                dispatch_s=t_submitted - t_packed,
                execute_s=execute_s,
                collect_s=(t_end - t_submitted) - execute_s,
                payload_bytes=total,
                resident_hits=resident_hits,
            )
        self.dispatches += 1
        return served

    def _note_crash(self, rank: int, reason: str) -> None:
        """Record a worker crash into the attached telemetry (if any)
        before the typed error propagates — the driver's crash dump then
        carries the failing dispatch's event trail."""
        if self._telemetry is not None:
            self._telemetry.note("pool.crash", rank=rank, reason=reason)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and unlink the arena (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._arena.close()
        self._pending.clear()
        self._results.clear()
        self._resident.clear()

    def __enter__(self) -> "SuperstepPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.shutdown()
        except Exception:
            pass
