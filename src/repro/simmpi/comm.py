"""Communicator API for simulated-MPI rank programs.

Mirrors the lowercase (generic Python object) mpi4py interface: ``send`` /
``recv`` / ``sendrecv`` plus the collectives the triangle-counting code
needs (``barrier``, ``bcast``, ``reduce``, ``allreduce``, ``gather``,
``allgather``, ``scatter``, ``alltoall``, ``exscan``, ``scan``) and
``split`` for building row/column communicators on the processor grid.

Collectives are implemented *on top of* point-to-point messages (binomial
trees, dissemination barrier, pairwise exchange), so their simulated cost
emerges from the same alpha-beta model as everything else instead of being
a separate formula.  Every internal message carries a small envelope
``(op-name, sequence-number)`` that is verified on receipt, turning
mismatched collective calls into a :class:`CollectiveMismatchError` instead
of silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.simmpi.errors import CollectiveMismatchError, InvalidRankError
from repro.simmpi.reduceops import ReduceOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import Engine

#: Wildcard ``source`` for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard ``tag`` for :meth:`Comm.recv`.
ANY_TAG = -1

#: Tag reserved for collective-internal messages (user tags must be >= 0).
_COLL_TAG = -2
_ENVELOPE = "__simmpi_coll__"


@dataclass(frozen=True)
class Status:
    """Receive status: who sent the message and with which tag."""

    source: int
    tag: int


def _next_pow2(x: int) -> int:
    p = 1
    while p < x:
        p <<= 1
    return p


class Comm:
    """A communicator over an ordered group of world ranks.

    Attributes
    ----------
    rank:
        This process's rank *within the communicator*.
    size:
        Number of members.
    comm_id:
        Hashable identity used to isolate this communicator's message
        matching from every other communicator's.
    """

    def __init__(
        self,
        engine: "Engine",
        world_rank: int,
        members: list[int],
        comm_id: Any,
    ):
        self.engine = engine
        self._world_rank = world_rank
        self.members = list(members)
        self.comm_id = comm_id
        self.rank = self.members.index(world_rank)
        self.size = len(self.members)
        self._coll_seq = 0
        self._split_seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Comm(id={self.comm_id!r}, rank={self.rank}/{self.size}, "
            f"world={self._world_rank})"
        )

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def _check_rank(self, what: str, r: int) -> None:
        if not (0 <= r < self.size):
            raise InvalidRankError(what, r, self.size)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to communicator rank ``dest`` (eager/buffered)."""
        self._check_rank("dest", dest)
        if tag < 0:
            raise ValueError("user message tags must be >= 0")
        self.engine.post_send(
            self._world_rank, self.members[dest], tag, self.comm_id, obj
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        return_status: bool = False,
    ) -> Any:
        """Blocking receive; returns the payload (and a :class:`Status` when
        ``return_status`` is true)."""
        if source != ANY_SOURCE:
            self._check_rank("source", source)
            world_src = self.members[source]
        else:
            world_src = ANY_SOURCE
        payload, src_world, got_tag = self.engine.wait_recv(
            self._world_rank, world_src, tag, self.comm_id
        )
        if return_status:
            return payload, Status(source=self.members.index(src_world), tag=got_tag)
        return payload

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (safe here because sends are eager)."""
        self.send(sendobj, dest, tag=sendtag)
        return self.recv(source=source, tag=recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a matching queued message."""
        world_src = self.members[source] if source != ANY_SOURCE else ANY_SOURCE
        return self.engine.probe(self._world_rank, world_src, tag, self.comm_id)

    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Non-blocking send; returns a completed-at-post Request."""
        from repro.simmpi.requests import isend as _isend

        return _isend(self, obj, dest, tag=tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking receive; returns a Request to ``wait``/``test``."""
        from repro.simmpi.requests import irecv as _irecv

        return _irecv(self, source, tag)

    # ------------------------------------------------------------------
    # collective plumbing
    # ------------------------------------------------------------------

    def _coll_send(self, dest: int, seq: int, op: str, data: Any) -> None:
        # Scans suffix the op with the round distance ("scan1", "scan2", ...)
        # for matching; strip digits so accounting groups by the user-facing
        # collective name.
        base_op = op.rstrip("0123456789")
        nbytes = self.engine.post_send(
            self._world_rank,
            self.members[dest],
            _COLL_TAG,
            self.comm_id,
            (_ENVELOPE, seq, op, data),
            coll_op=base_op,
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            ctx = self.engine.context(self._world_rank)
            tracer.emit(
                ctx.clock.now, self._world_rank, "collective",
                op=base_op, peer=self.members[dest], nbytes=nbytes,
            )

    def _coll_recv(self, source: int, seq: int, op: str) -> Any:
        payload, src_world, _tag = self.engine.wait_recv(
            self._world_rank, self.members[source], _COLL_TAG, self.comm_id
        )
        if (
            not isinstance(payload, tuple)
            or len(payload) != 4
            or payload[0] != _ENVELOPE
        ):
            raise CollectiveMismatchError(
                f"rank {self.rank} received a non-collective message from rank "
                f"{self.members.index(src_world)} inside collective {op!r}"
            )
        _, got_seq, got_op, data = payload
        if got_op != op or got_seq != seq:
            raise CollectiveMismatchError(
                f"collective mismatch on rank {self.rank}: expected "
                f"{op!r}#{seq}, got {got_op!r}#{got_seq} from rank "
                f"{self.members.index(src_world)} (did every member call the "
                "same collective in the same order?)"
            )
        return data

    def _next_seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: log2(size) rounds of pairwise tokens."""
        if self.size == 1:
            return
        seq = self._next_seq()
        k = 1
        while k < self.size:
            dst = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            self._coll_send(dst, seq, "barrier", None)
            self._coll_recv(src, seq, "barrier")
            k <<= 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast from ``root``; returns the object on
        every rank."""
        self._check_rank("root", root)
        if self.size == 1:
            return obj
        seq = self._next_seq()
        vr = (self.rank - root) % self.size
        if vr != 0:
            lsb = vr & (-vr)
            parent = ((vr - lsb) + root) % self.size
            obj = self._coll_recv(parent, seq, "bcast")
        else:
            lsb = _next_pow2(self.size)
        k = lsb >> 1
        while k >= 1:
            child = vr + k
            if child < self.size:
                self._coll_send((child + root) % self.size, seq, "bcast", obj)
            k >>= 1
        return obj

    def reduce(self, value: Any, op: ReduceOp, root: int = 0) -> Any:
        """Binomial-tree reduction to ``root``; non-roots return ``None``."""
        self._check_rank("root", root)
        seq = self._next_seq()
        vr = (self.rank - root) % self.size
        lsb = (vr & (-vr)) if vr != 0 else _next_pow2(self.size)
        acc = value
        k = 1
        while k < lsb and vr + k < self.size:
            child_acc = self._coll_recv((vr + k + root) % self.size, seq, "reduce")
            acc = op(acc, child_acc)
            k <<= 1
        if vr != 0:
            parent = ((vr - lsb) + root) % self.size
            self._coll_send(parent, seq, "reduce", acc)
            return None
        return acc

    def allreduce(self, value: Any, op: ReduceOp) -> Any:
        """Reduce to rank 0, then broadcast the result to everyone."""
        acc = self.reduce(value, op, root=0)
        return self.bcast(acc, root=0)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into a rank-ordered list at ``root``."""
        self._check_rank("root", root)
        seq = self._next_seq()
        if self.rank != root:
            self._coll_send(root, seq, "gather", obj)
            return None
        out: list[Any] = [None] * self.size
        out[root] = obj
        for r in range(self.size):
            if r != root:
                out[r] = self._coll_recv(r, seq, "gather")
        return out

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0 then broadcast the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``objs[i]`` (given at ``root``) to rank ``i``."""
        self._check_rank("root", root)
        seq = self._next_seq()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter root needs a sequence of exactly {self.size} items"
                )
            for r in range(self.size):
                if r != root:
                    self._coll_send(r, seq, "scatter", objs[r])
            return objs[root]
        return self._coll_recv(root, seq, "scatter")

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: rank ``i`` sends ``objs[j]`` to rank
        ``j`` and receives a list indexed by source rank.

        Implemented as ``size - 1`` pairwise exchange steps, matching the
        paper's description of the preprocessing all-to-all as point-to-point
        send/receive pairs (its ``p + m/p`` term in the cost analysis).
        """
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} send items")
        seq = self._next_seq()
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for k in range(1, self.size):
            dst = (self.rank + k) % self.size
            src = (self.rank - k) % self.size
            self._coll_send(dst, seq, "alltoall", objs[dst])
            out[src] = self._coll_recv(src, seq, "alltoall")
        return out

    # mpi4py spells the object-interface version of alltoallv the same way.
    alltoallv = alltoall

    def scan(self, value: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction: rank r gets op-fold of ranks <= r.

        Hillis-Steele recursive doubling: log2(size) rounds, so a
        counting-sort offset computation costs ``dmax * log p`` — the term
        the paper's preprocessing analysis (Section 5.4) assumes.
        """
        seq = self._next_seq()
        partial = value
        k = 1
        while k < self.size:
            if self.rank + k < self.size:
                self._coll_send(self.rank + k, seq, f"scan{k}", partial)
            if self.rank - k >= 0:
                incoming = self._coll_recv(self.rank - k, seq, f"scan{k}")
                partial = op(incoming, partial)
            k <<= 1
        return partial

    def exscan(self, value: Any, op: ReduceOp) -> Any:
        """Exclusive prefix reduction: rank r gets op-fold of ranks < r.

        Rank 0 receives ``None`` (as in MPI, where its result is
        undefined).  Implemented as an inclusive scan followed by a
        single-hop shift, keeping the log-depth of :meth:`scan`.
        """
        partial = self.scan(value, op)
        seq = self._next_seq()
        if self.rank < self.size - 1:
            self._coll_send(self.rank + 1, seq, "exscan-shift", partial)
        if self.rank > 0:
            return self._coll_recv(self.rank - 1, seq, "exscan-shift")
        return None

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Comm":
        """Partition the communicator by ``color``; order groups by
        ``(key, rank)`` as MPI_Comm_split does."""
        if key is None:
            key = self.rank
        self._split_seq += 1
        triples = self.allgather((color, key, self.rank))
        mine = sorted(
            (k, r) for (c, k, r) in triples if c == color
        )
        members = [self.members[r] for (_k, r) in mine]
        child_id = ("split", self.comm_id, self._split_seq, color)
        return Comm(self.engine, self._world_rank, members, child_id)

    def dup(self) -> "Comm":
        """Duplicate the communicator with a fresh matching namespace."""
        self._split_seq += 1
        child_id = ("dup", self.comm_id, self._split_seq)
        return Comm(self.engine, self._world_rank, list(self.members), child_id)
