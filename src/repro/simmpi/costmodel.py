"""Machine cost model mapping messages and operation counts to seconds.

The model is a LogGP-style postal model for communication plus per-kind
operation rates for computation:

* a point-to-point message of ``b`` bytes delivered from a sender at virtual
  time ``t_s`` to a receiver posting its receive at ``t_r`` completes at
  ``max(t_r, t_s + alpha + beta * b)``;
* a compute section that reports ``n`` operations of ``kind`` advances the
  local clock by ``n / rate(kind) * cache_factor(working_set)``.

The optional :class:`CacheModel` charges a penalty once a rank's working set
exceeds its cache share.  In the paper's experiments this is what produces
the super-linear speedup region at small rank counts (Section 7.1): with
more ranks, per-rank blocks shrink until they fit in aggregate cache.

Rates below are calibrated so that a single simulated Haswell-era core
counts triangles at the same order of magnitude as the paper's per-core
throughput; absolute values only set the unit of the reported seconds, the
scaling *shape* is independent of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

#: Default per-kind operation rates, in operations per second.  Kinds are
#: free-form strings; kernels pick names from this table (unknown kinds fall
#: back to ``default_rate``).
DEFAULT_RATES: dict[str, float] = {
    # triangle counting phase
    "hash_insert": 150e6,  # probed (multiplicative-hash) map inserts
    "hash_insert_fast": 210e6,  # direct-bitmask inserts (no probing)
    "hash_probe": 130e6,  # probed lookups (incl. collision hops)
    "hash_probe_fast": 160e6,  # single-compare lookups in fast-mode maps
    "task": 220e6,  # per (j, i) task dispatch overhead
    "row_visit": 150e6,  # row iteration step (indptr touch, likely cold)
    # preprocessing phase
    "scan": 450e6,  # linear passes over adjacency data
    "sort": 160e6,  # comparison/count-sort steps
    "csr_build": 300e6,  # writing CSR/DCSR entries
    "relabel": 350e6,  # applying a permutation to adjacency entries
    # wedge-based baselines (HavoqGT-style)
    "wedge_gen": 250e6,  # emitting one directed wedge
    "edge_check": 120e6,  # one remote-edge closure lookup
    # resilience: checkpoint serialization to local storage, bytes/second
    "checkpoint_io": 1.5e9,
    # graph store: reading a preprocessed artifact back from local storage
    # (page-cache-warm reads, hence faster than checkpoint writes), bytes/s
    "cache_io": 4.0e9,
    # generic
    "op": 200e6,
}


@dataclass(frozen=True)
class CacheModel:
    """Multiplicative penalty applied to compute once the working set no
    longer fits in the modelled last-level cache.

    The factor ramps linearly from 1.0 (working set fits) up to
    ``max_penalty`` (working set at or beyond ``saturate_ratio`` times the
    cache size), mirroring the smooth DRAM-bound degradation real kernels
    show.
    """

    cache_bytes: float = 8 * 2**20
    max_penalty: float = 2.2
    saturate_ratio: float = 16.0

    def factor(self, working_set_bytes: float | None) -> float:
        """Return the compute multiplier for a given working-set size."""
        if working_set_bytes is None or working_set_bytes <= self.cache_bytes:
            return 1.0
        ratio = working_set_bytes / self.cache_bytes
        if ratio >= self.saturate_ratio:
            return self.max_penalty
        # Linear interpolation in log-space between fit (1x) and saturated.
        t = np.log(ratio) / np.log(self.saturate_ratio)
        return float(1.0 + t * (self.max_penalty - 1.0))


@dataclass(frozen=True)
class MachineModel:
    """Cost model for a homogeneous distributed-memory machine.

    Parameters
    ----------
    alpha:
        Per-message latency in seconds (MPI eager-path latency).
    beta:
        Per-byte transfer time in seconds (inverse bandwidth).
    rates:
        Mapping from operation-kind name to operations/second.
    default_rate:
        Rate used for kinds absent from ``rates``.
    cache:
        Optional cache penalty model; ``None`` disables cache effects.
    send_overhead:
        CPU time the *sender* spends injecting one message (the ``o`` of
        LogP); charged to the sender's clock on every send.
    """

    alpha: float = 2.0e-6
    beta: float = 1.0 / 6.0e9
    rates: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))
    default_rate: float = 200e6
    cache: CacheModel | None = field(default_factory=CacheModel)
    send_overhead: float = 0.5e-6

    def rate(self, kind: str) -> float:
        """Operations per second for ``kind``."""
        return float(self.rates.get(kind, self.default_rate))

    def compute_time(
        self, kind: str, count: float, working_set_bytes: float | None = None
    ) -> float:
        """Seconds of compute for ``count`` operations of ``kind``."""
        if count < 0:
            raise ValueError(f"negative operation count: {count}")
        t = count / self.rate(kind)
        if self.cache is not None:
            t *= self.cache.factor(working_set_bytes)
        return t

    def transfer_time(self, nbytes: float) -> float:
        """Wire time (latency + serialization) for one message."""
        return self.alpha + self.beta * max(0.0, nbytes)

    def replace(self, **kwargs: Any) -> "MachineModel":
        """Return a copy with some fields replaced."""
        from dataclasses import replace as _replace

        return _replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Short stable hash of every constant that affects reported times.

        The graph store keys its recorded phase statistics by this value:
        the simulation is deterministic, so two runs under models with the
        same fingerprint measure identical phase times, and a warm-cache
        run may replay the recorded ppt cost of the cold run that wrote
        the entry.
        """
        import hashlib
        import json

        cache = (
            None
            if self.cache is None
            else [
                self.cache.cache_bytes,
                self.cache.max_penalty,
                self.cache.saturate_ratio,
            ]
        )
        payload = json.dumps(
            [
                self.alpha,
                self.beta,
                self.send_overhead,
                self.default_rate,
                sorted(self.rates.items()),
                cache,
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def payload_nbytes(obj: Any) -> int:
    """Estimate the serialized size of a message payload in bytes.

    numpy arrays and ``bytes`` report their exact buffer size; containers
    are traversed recursively with a small per-element envelope, mirroring
    what pickling small Python objects costs.  The estimate only feeds the
    cost model; it never affects correctness.
    """
    if obj is None:
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj) + 33
    if isinstance(obj, (bool, int, float, complex, np.integer, np.floating)):
        return 32
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace")) + 49
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 56 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 64 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Dataclass-like objects with __dict__ or __slots__.
    if hasattr(obj, "nbytes_estimate"):
        return int(obj.nbytes_estimate())
    if hasattr(obj, "__dict__"):
        return 64 + sum(payload_nbytes(v) for v in vars(obj).values())
    return 64
