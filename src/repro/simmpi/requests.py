"""Non-blocking communication: isend / irecv and request completion.

mpi4py-style: ``comm.isend``/``comm.irecv`` return :class:`Request`
handles completed via ``wait``/``test``; :func:`wait_all` completes a
batch.  In this engine sends are eager, so ``isend`` completes
immediately (its wait is a no-op); ``irecv`` defers both the matching and
the virtual-time wait until completion, which lets a rank post several
receives and overlap their arrival — the semantics overlap-capable MPI
codes rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.simmpi.comm import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.comm import Comm


class Request:
    """Handle for an outstanding non-blocking operation."""

    def wait(self) -> Any:
        """Block (virtually) until complete; returns the payload for
        receives, ``None`` for sends."""
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, payload-or-None)``."""
        raise NotImplementedError


class SendRequest(Request):
    """Eager sends complete at post time; the handle is for symmetry."""

    def wait(self) -> None:
        return None

    def test(self) -> tuple[bool, Any]:
        return True, None


class RecvRequest(Request):
    """Deferred receive: matching happens at :meth:`wait`/:meth:`test`.

    Multiple outstanding ``irecv`` requests on the same (source, tag)
    complete in post order, as MPI requires.
    """

    def __init__(self, comm: "Comm", source: int, tag: int):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._payload = self._comm.recv(source=self._source, tag=self._tag)
            self._done = True
        return self._payload

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._payload
        if self._comm.probe(source=self._source, tag=self._tag):
            return True, self.wait()
        return False, None


def wait_all(requests: list[Request]) -> list[Any]:
    """Complete every request, returning their payloads in order."""
    return [r.wait() for r in requests]


def isend(comm: "Comm", obj: Any, dest: int, tag: int = 0) -> Request:
    """Non-blocking send (eager: completes immediately)."""
    comm.send(obj, dest, tag=tag)
    return SendRequest()


def irecv(
    comm: "Comm", source: int = ANY_SOURCE, tag: int = ANY_TAG
) -> RecvRequest:
    """Non-blocking receive; complete with ``.wait()`` or ``.test()``."""
    return RecvRequest(comm, source, tag)
