"""Optional event tracing for simulated-MPI runs.

A :class:`Tracer` records timestamped events (sends, receives, compute
charges, phase boundaries) that tests and the ``trace_gantt`` example use to
visualize Cannon's shift pattern.  Tracing is off by default; it costs one
list append per event when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One traced runtime event.

    Attributes
    ----------
    t:
        Virtual time at which the event completed on ``rank``.
    rank:
        Rank the event is charged to.
    kind:
        Event type: ``"send"``, ``"recv"``, ``"compute"``, ``"phase_begin"``,
        ``"phase_end"``, ``"collective"``.
    detail:
        Free-form payload (peer rank, tag, byte count, op counts, ...).
    """

    t: float
    rank: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Accumulates :class:`TraceEvent` records for a run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def emit(self, t: float, rank: int, kind: str, **detail: Any) -> None:
        """Record one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(t=t, rank=rank, kind=kind, detail=detail))

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Return all events whose kind is one of ``kinds``, in time order."""
        sel = [e for e in self.events if e.kind in kinds]
        sel.sort(key=lambda e: (e.t, e.rank))
        return sel

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """Return all events charged to ``rank`` in recording order."""
        return [e for e in self.events if e.rank == rank]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def total_bytes(self, kinds: Iterable[str] = ("send",)) -> int:
        """Sum the ``nbytes`` detail over events of the given kinds."""
        ks = set(kinds)
        return sum(
            int(e.detail.get("nbytes", 0)) for e in self.events if e.kind in ks
        )
