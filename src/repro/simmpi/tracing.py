"""Event and span tracing for simulated-MPI runs.

A :class:`Tracer` records two complementary views of a run:

* **flat events** (:class:`TraceEvent`) — instantaneous, timestamped
  records (sends, receives, compute charges, phase boundaries,
  collective summaries) appended in engine-deterministic order;
* **spans** (:class:`Span`) — intervals with a begin and end virtual
  time, nested per rank (phases contain compute bursts, send overheads
  and receive waits), which are what the Perfetto/Chrome exporter and
  the wait-for analysis consume.

Tracing is off by default.  When disabled, :meth:`Tracer.emit` and
:meth:`Tracer.span_begin` return immediately without allocating anything,
so instrumented hot paths cost one attribute check per call site (call
sites additionally guard on :attr:`Tracer.enabled` to skip building the
detail dict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One traced runtime event.

    Attributes
    ----------
    t:
        Virtual time at which the event completed on ``rank``.
    rank:
        Rank the event is charged to.
    kind:
        Event type: ``"send"``, ``"recv"``, ``"compute"``, ``"phase_begin"``,
        ``"phase_end"``, ``"collective"``, ``"fault"`` (injected fault;
        ``detail["fault"]`` names the fault kind).
    detail:
        Free-form payload (peer rank, tag, byte count, op counts, ...).
    """

    t: float
    rank: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One traced interval on one rank's timeline.

    Attributes
    ----------
    rank:
        Rank whose timeline the span belongs to.
    cat:
        Span category: ``"phase"``, ``"compute"`` or ``"comm"``.
    name:
        Display label (phase name, op kind, ``"send"``/``"wait"``).
    begin, end:
        Virtual-time extent.  ``end`` is filled by :meth:`Tracer.span_end`
        (it equals ``begin`` while the span is still open).
    depth:
        Nesting depth on the rank's span stack at open time (0 = top level).
    detail:
        Free-form payload (peer rank, byte count, op counts, ...).
    """

    rank: int
    cat: str
    name: str
    begin: float
    end: float
    depth: int
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Virtual seconds covered by the span."""
        return self.end - self.begin


class Tracer:
    """Accumulates :class:`TraceEvent` and :class:`Span` records for a run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        #: Closed spans in close order (deterministic given the engine's
        #: deterministic scheduling).
        self.spans: list[Span] = []
        self._stacks: dict[int, list[Span]] = {}

    # -- flat events --------------------------------------------------------

    def emit(self, t: float, rank: int, kind: str, **detail: Any) -> None:
        """Record one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(t=t, rank=rank, kind=kind, detail=detail))

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Return all events whose kind is one of ``kinds``, in time order."""
        sel = [e for e in self.events if e.kind in kinds]
        sel.sort(key=lambda e: (e.t, e.rank))
        return sel

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """Return all events charged to ``rank`` in recording order."""
        return [e for e in self.events if e.rank == rank]

    def faults(self) -> list[TraceEvent]:
        """All injected-fault events in time order (empty for clean runs)."""
        return self.of_kind("fault")

    # -- spans --------------------------------------------------------------

    def span_begin(
        self, t: float, rank: int, cat: str, name: str, **detail: Any
    ) -> Span | None:
        """Open a nested span on ``rank``'s timeline.

        Returns the open :class:`Span` (pass it to :meth:`span_end`), or
        ``None`` when tracing is disabled — :meth:`span_end` accepts
        ``None``, so call sites need no extra branch.
        """
        if not self.enabled:
            return None
        stack = self._stacks.setdefault(rank, [])
        span = Span(
            rank=rank, cat=cat, name=name, begin=t, end=t,
            depth=len(stack), detail=detail,
        )
        stack.append(span)
        return span

    def span_end(self, t: float, span: Span | None) -> None:
        """Close ``span`` (must be the innermost open span of its rank)."""
        if span is None:
            return
        stack = self._stacks.get(span.rank)
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span_end({span.name!r}) does not match the innermost open "
                f"span of rank {span.rank}"
            )
        stack.pop()
        span.end = t
        self.spans.append(span)

    def span_point(
        self, begin: float, end: float, rank: int, cat: str, name: str,
        **detail: Any,
    ) -> None:
        """Record an already-closed span covering ``[begin, end]``.

        Used by call sites that know the extent up front (a compute charge,
        a send overhead, a receive wait) and need no nesting bookkeeping.
        """
        if self.enabled:
            depth = len(self._stacks.get(rank, ()))
            self.spans.append(
                Span(rank=rank, cat=cat, name=name, begin=begin, end=end,
                     depth=depth, detail=detail)
            )

    def spans_for_rank(self, rank: int) -> list[Span]:
        """All closed spans of ``rank`` in close order."""
        return [s for s in self.spans if s.rank == rank]

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (should be empty after a run)."""
        return [s for stack in self._stacks.values() for s in stack]

    # -- maintenance / aggregation ------------------------------------------

    def clear(self) -> None:
        """Drop all recorded events and spans."""
        self.events.clear()
        self.spans.clear()
        self._stacks.clear()

    def total_bytes(self, kinds: Iterable[str] = ("send",)) -> int:
        """Sum the ``nbytes`` detail over events of the given kinds.

        ``"send"`` covers every wire message, including the point-to-point
        messages collectives are built from; ``"collective"`` sums the
        per-collective summaries (bytes a rank pushed into ``bcast``,
        ``alltoall``, ...) without double-counting their underlying sends.
        """
        ks = set(kinds)
        return sum(
            int(e.detail.get("nbytes", 0)) for e in self.events if e.kind in ks
        )

    def collective_bytes(self) -> dict[str, int]:
        """Bytes sent inside each collective op, keyed by op name."""
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind == "collective":
                op = str(e.detail.get("op", "?"))
                out[op] = out.get(op, 0) + int(e.detail.get("nbytes", 0))
        return out
