"""SPMD execution engine: virtual ranks, scheduling, message delivery.

The engine runs ``p`` rank programs on ``p`` real threads, but only one
thread executes at any moment: a rank runs until it blocks on communication
(or finishes), then hands control back to the scheduler, which resumes the
next runnable rank in round-robin order.  This gives normal blocking-style
rank code (no generators, no async) while keeping execution fully
deterministic and immune to GIL scheduling noise.

Virtual time: every rank owns a :class:`~repro.simmpi.clock.RankClock`.
Sends are eager (buffered): the sender pays only a small injection overhead
and the message is stamped with its wire arrival time
``sender_now + alpha + beta * nbytes``.  A receive completes at
``max(receiver_now, arrival)``; any gap is accounted as communication
(waiting) time, which is exactly what the paper's Figure 3 measures.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.simmpi.clock import PhaseStats, RankClock
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, Comm
from repro.simmpi.costmodel import MachineModel, payload_nbytes
from repro.simmpi.errors import (
    DeadlockError,
    RankCrashError,
    RankFailedError,
    SimMPIError,
)
from repro.simmpi.tracing import Tracer

_NEW, _READY, _RUNNING, _BLOCKED, _FINISHED, _FAILED = range(6)


class _Abort(BaseException):
    """Injected into parked rank threads to unwind them after a failure.

    Derives from ``BaseException`` so user-level ``except Exception``
    handlers cannot swallow it.
    """


@dataclass
class _Message:
    """An in-flight (delivered-but-unreceived) message."""

    seq: int
    src: int
    dst: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: int
    arrival: float


class _RankState:
    """Book-keeping for one virtual rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self.state = _NEW
        self.resume = threading.Event()
        self.thread: threading.Thread | None = None
        self.mailbox: list[_Message] = []
        self.blocked_on: str = ""
        self.result: Any = None
        self.error: BaseException | None = None


@dataclass
class RunResult:
    """Outcome of one :meth:`Engine.run` call.

    Attributes
    ----------
    returns:
        Per-rank return values of the program, indexed by rank.
    clocks:
        Per-rank :class:`RankClock` with final times and phase stats.
    counters:
        Per-rank operation counters (``kind -> count``) accumulated by
        :meth:`RankContext.charge`.
    tracer:
        The run's :class:`Tracer` (empty unless tracing was enabled).
    """

    returns: list[Any]
    clocks: list[RankClock]
    counters: list[dict[str, float]]
    tracer: Tracer
    mem_peaks: list[int] = field(default_factory=list)

    @property
    def num_ranks(self) -> int:
        return len(self.returns)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished."""
        return max(c.now for c in self.clocks)

    def phase_names(self) -> list[str]:
        """All phase names recorded by any rank, sorted."""
        names: set[str] = set()
        for c in self.clocks:
            names.update(c.phases)
        return sorted(names)

    def phase_stats(self, name: str) -> list[PhaseStats]:
        """Per-rank stats for phase ``name`` (only ranks that entered it)."""
        return [c.phases[name] for c in self.clocks if name in c.phases]

    def phase_time(self, name: str) -> float:
        """Reported wall time of a phase: latest end minus earliest start,
        the way an MPI program timed around barriers reports it."""
        stats = self.phase_stats(name)
        if not stats:
            raise KeyError(f"no rank recorded phase {name!r}")
        return max(s.end for s in stats) - min(s.start for s in stats)

    def phase_comm_fraction(self, name: str) -> float:
        """Aggregate fraction of phase time spent in communication."""
        stats = self.phase_stats(name)
        comm = sum(s.comm for s in stats)
        compute = sum(s.compute for s in stats)
        total = comm + compute
        return comm / total if total > 0 else 0.0

    def counter_total(self, kind: str) -> float:
        """Sum of one operation counter over all ranks."""
        return sum(c.get(kind, 0.0) for c in self.counters)


class RankContext:
    """Per-rank handle passed to the SPMD program.

    Exposes the rank id, the world communicator, the virtual clock, and the
    instrumentation entry points (:meth:`charge`, :meth:`phase`).
    """

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.num_ranks = engine.num_ranks
        self.clock = RankClock(rank)
        self.counters: dict[str, float] = {}
        self.comm = Comm(engine, rank, list(range(engine.num_ranks)), comm_id=0)
        self.mem_bytes = 0
        self.mem_peak = 0
        #: Open telemetry phase frames: ``[name, enter_wall, parked_s]``.
        #: Parked time (this rank waiting while others run — see
        #: ``Engine._yield_to_scheduler``) is subtracted at phase exit so
        #: the reported wall time is *executing* wall time, immune to the
        #: scheduler's serialized phase interleaving across ranks.
        self._tele_frames: list[list] = []

    def alloc_mem(self, nbytes: int) -> None:
        """Account ``nbytes`` of live data structures on this rank.

        The engine does not police real allocations; algorithms call this
        (and :meth:`free_mem`) around their long-lived structures so the
        per-rank memory high-water mark — the paper's memory-scalability
        argument for Cannon's pattern — can be reported.
        """
        self.mem_bytes += int(nbytes)
        if self.mem_bytes > self.mem_peak:
            self.mem_peak = self.mem_bytes

    def free_mem(self, nbytes: int) -> None:
        """Release ``nbytes`` previously accounted via :meth:`alloc_mem`."""
        self.mem_bytes = max(0, self.mem_bytes - int(nbytes))

    @property
    def model(self) -> MachineModel:
        return self.engine.model

    @property
    def tracer(self) -> Tracer:
        return self.engine.tracer

    def charge(
        self, kind: str, count: float, working_set_bytes: float | None = None
    ) -> None:
        """Account ``count`` operations of ``kind`` as local compute.

        Advances the virtual clock by the model's compute time and
        accumulates the raw count in :attr:`counters` (Table 4 / Figure 2
        read these counters, so kernels must charge *logical* operation
        counts, independent of how the Python implementation vectorizes).
        """
        if count == 0:
            return
        dt = self.engine.model.compute_time(kind, count, working_set_bytes)
        t0 = self.clock.now
        self.clock.advance_compute(dt)
        self.counters[kind] = self.counters.get(kind, 0.0) + count
        tr = self.engine.tracer
        if tr.enabled:
            tr.emit(self.clock.now, self.rank, "compute", op=kind, count=count)
            tr.span_point(
                t0, self.clock.now, self.rank, "compute", kind, count=count
            )

    def fault_point(self, site: str) -> None:
        """Consult the engine's fault injector at a named execution site.

        Rank programs call this at phase boundaries and shift steps (the
        engine itself calls it at every :meth:`phase` begin) so a seeded
        :class:`~repro.resilience.faults.FaultPlan` can stall or crash the
        rank there.  A no-op (one attribute check) when no injector is
        installed.  Injected stalls advance the virtual clock; injected
        crashes raise :class:`RankCrashError`, which surfaces on the driver
        as a :class:`RankFailedError` for the recovery layer to catch.
        """
        inj = self.engine.faults
        if inj is None:
            return
        act = inj.at_point(self.rank, site)
        if act is None:
            return
        tr = self.engine.tracer
        if act.kind == "stall":
            t0 = self.clock.now
            self.clock.advance_compute(act.delay)
            if tr.enabled:
                tr.emit(
                    self.clock.now, self.rank, "fault", fault="stall",
                    site=site, delay=act.delay,
                )
                tr.span_point(
                    t0, self.clock.now, self.rank, "fault", "fault:stall",
                    site=site,
                )
        elif act.kind == "crash":
            if tr.enabled:
                tr.emit(
                    self.clock.now, self.rank, "fault", fault="crash", site=site
                )
                tr.span_point(
                    self.clock.now, self.clock.now, self.rank, "fault",
                    "fault:crash", site=site,
                )
            raise RankCrashError(self.rank, site)
        else:  # pragma: no cover - plan validation rejects other kinds
            raise SimMPIError(f"unknown point-fault kind {act.kind!r}")

    def offload(
        self,
        entry: str,
        arrays: Any,
        meta: dict | None = None,
        label: str = "",
    ) -> Any:
        """Run ``entry(arrays, meta)`` on the engine's superstep pool.

        Blocks this virtual rank in *real* time only: the job is queued,
        the rank parks, and once the scheduler has run every other rank
        to its own blocking point the whole batch executes concurrently
        on the pool's worker processes (see
        :mod:`repro.simmpi.parallel`).  The virtual clock does not
        advance — callers account the returned result's logical cost
        with :meth:`charge` exactly as they would for inline compute, so
        offloading is invisible to virtual time, counters and traces.

        Requires a pool attached at engine construction
        (``Engine(..., superstep=pool)``); raises
        :class:`~repro.simmpi.errors.SimMPIError` otherwise.
        """
        return self.engine.offload_rank(self.rank, entry, arrays, meta, label)

    def put_resident(self, key: Any, array: Any) -> None:
        """Publish ``array`` into the superstep pool's resident arena
        region under ``key`` (see
        :meth:`repro.simmpi.parallel.SuperstepPool.put_resident`).

        Later :meth:`offload` calls reference the slot with
        ``Resident(key)`` instead of re-shipping the bytes — the
        amortized-dispatch move for inputs whose content is invariant
        across epochs.  Publishing is a real-time-only side effect: the
        virtual clock, counters and traces never see it.  Requires a
        pool attached at engine construction.
        """
        pool = self.engine.superstep
        if pool is None:
            raise SimMPIError(
                "no superstep pool attached to this engine; construct it "
                "with Engine(..., superstep=SuperstepPool(...)) or use the "
                "sequential executor"
            )
        pool.put_resident(key, array)

    def put_resident_file(self, key: Any, slot: Any) -> None:
        """Publish a **file-backed** resident slot under ``key`` (see
        :meth:`repro.simmpi.parallel.SuperstepPool.put_resident_file`).

        ``slot`` is ``(path, byte offset, dtype string, element count)``
        into an immutable file; workers mmap it instead of receiving a
        copy through the arena — how warm cache-hit runs serve their
        store-resident block blobs with zero parent-side copies.
        """
        pool = self.engine.superstep
        if pool is None:
            raise SimMPIError(
                "no superstep pool attached to this engine; construct it "
                "with Engine(..., superstep=SuperstepPool(...)) or use the "
                "sequential executor"
            )
        pool.put_resident_file(key, slot)

    def has_resident(self, key: Any) -> bool:
        """Whether ``key`` is published on the pool (False without one)."""
        pool = self.engine.superstep
        return pool is not None and pool.has_resident(key)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseStats]:
        """Scope a named timing phase (nestable)."""
        self.fault_point(f"phase:{name}")
        tr = self.engine.tracer
        tele = self.engine.telemetry
        ph = self.clock.phase_begin(name)
        span = None
        if tr.enabled:
            tr.emit(self.clock.now, self.rank, "phase_begin", name=ph.name)
            span = tr.span_begin(self.clock.now, self.rank, "phase", ph.name)
        if tele is not None:
            self._tele_frames.append([ph.name, time.perf_counter(), 0.0])
        try:
            yield ph
        finally:
            self.clock.phase_end(ph)
            if tr.enabled:
                tr.span_end(self.clock.now, span)
                tr.emit(self.clock.now, self.rank, "phase_end", name=ph.name)
            if tele is not None and self._tele_frames:
                fname, t_enter, parked = self._tele_frames.pop()
                tele.phase_exit(
                    self.rank, fname, time.perf_counter() - t_enter - parked
                )


class Engine:
    """Deterministic single-process SPMD engine.

    Parameters
    ----------
    num_ranks:
        Number of virtual ranks (``p``).
    model:
        Machine cost model; defaults to :class:`MachineModel()`.
    trace:
        When true, record a full event trace (see :class:`Tracer`).  A
        :class:`Tracer` *instance* is adopted as-is — callers that want
        live span callbacks (e.g. the serve layer's progress streaming)
        pass a subclass overriding :meth:`Tracer.span_end`.
    real_timeout:
        Real (wall-clock) seconds the scheduler will wait for a rank thread
        to respond before declaring the run wedged.  This is a safety net
        for engine bugs, not part of the simulation.
    fault_injector:
        Optional deterministic fault injector (duck-typed; see
        :class:`~repro.resilience.faults.FaultInjector` for the reference
        implementation).  The engine consults it at two kinds of site:

        * ``on_send(src, dst, tag, comm_id, nbytes, payload)`` for every
          wire message; a returned action with ``kind`` ``"drop"``,
          ``"delay"`` (extra ``action.delay`` seconds of wire latency),
          ``"dup"`` (deliver twice) or ``"corrupt"`` (deliver
          ``action.payload`` instead) perturbs the delivery;
        * ``at_point(rank, site)`` at named execution sites
          (:meth:`RankContext.fault_point`); ``"stall"`` advances the
          rank's clock by ``action.delay``, ``"crash"`` raises
          :class:`RankCrashError`.

        Every injected fault is emitted through the tracer as a ``"fault"``
        event plus a ``cat="fault"`` span, so faults are visible in the
        Perfetto export and attributable in the comm matrix.
    telemetry:
        Optional :class:`~repro.instrument.telemetry.Telemetry` session.
        When attached, every :meth:`RankContext.phase` exit reports its
        *executing* wall time (scheduler-parked time subtracted) into the
        session's flight recorder and per-phase accumulators.  ``None``
        (the default) costs one attribute check per phase and per yield;
        virtual clocks, counters and traces are bit-identical either way
        (telemetry only observes real time, never simulated state).
    superstep:
        Optional :class:`~repro.simmpi.parallel.SuperstepPool`.  When
        attached, rank programs may call :meth:`RankContext.offload` to
        fan pure compute jobs out to real worker processes: jobs queue
        while ranks run, and the scheduler drains the pool whenever no
        rank is runnable, so an epoch's data-independent jobs execute
        concurrently without perturbing virtual time or determinism.
        The pool is *borrowed*, never owned: it survives (and is reused
        across) engine runs, and the caller shuts it down.
    """

    def __init__(
        self,
        num_ranks: int,
        model: MachineModel | None = None,
        trace: bool = False,
        real_timeout: float = 600.0,
        fault_injector: Any = None,
        superstep: Any = None,
        telemetry: Any = None,
    ):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.model = model if model is not None else MachineModel()
        if isinstance(trace, Tracer):
            self.tracer = trace
        else:
            self.tracer = Tracer(enabled=bool(trace))
        self.real_timeout = real_timeout
        self.faults = fault_injector
        self.superstep = superstep
        self.telemetry = telemetry
        self._states: list[_RankState] = []
        self._ctxs: list[RankContext] = []
        self._sched_evt = threading.Event()
        self._seq = itertools.count()
        self._aborting = False
        self._running_rank: int = -1

    # ------------------------------------------------------------------
    # driver side
    # ------------------------------------------------------------------

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> RunResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank.

        Returns a :class:`RunResult`; raises :class:`RankFailedError` if any
        rank program raised, or :class:`DeadlockError` if all unfinished
        ranks blocked with no message able to unblock them.
        """
        self._states = [_RankState(r) for r in range(self.num_ranks)]
        self._ctxs = [RankContext(self, r) for r in range(self.num_ranks)]
        self._aborting = False
        self._sched_evt.clear()  # may be left set by an aborted prior run
        if self.superstep is not None:
            # Jobs of an aborted earlier run must not leak into this one.
            self.superstep.reset()

        for st in self._states:
            st.thread = threading.Thread(
                target=self._thread_main,
                args=(st, program, args, kwargs),
                name=f"simmpi-rank-{st.rank}",
                daemon=True,
            )
            st.state = _READY
            st.thread.start()

        try:
            self._schedule_loop()
        finally:
            if any(st.state not in (_FINISHED, _FAILED) for st in self._states):
                self._abort_parked_ranks()
            for st in self._states:
                if st.thread is not None:
                    st.thread.join(timeout=self.real_timeout)

        failed = [st for st in self._states if st.state == _FAILED]
        if failed:
            st = failed[0]
            assert st.error is not None
            raise RankFailedError(st.rank, st.error) from st.error

        return RunResult(
            returns=[st.result for st in self._states],
            clocks=[ctx.clock for ctx in self._ctxs],
            counters=[ctx.counters for ctx in self._ctxs],
            tracer=self.tracer,
            mem_peaks=[ctx.mem_peak for ctx in self._ctxs],
        )

    def _schedule_loop(self) -> None:
        cursor = 0
        while True:
            nxt = self._pick_runnable(cursor)
            if nxt is None and self.superstep is not None and self.superstep.pending():
                # Superstep barrier: every rank that could run has either
                # finished, blocked on a receive, or parked behind an
                # offloaded job — the pending batch is as large as it can
                # get, so this is the moment real parallelism happens.
                # dispatch() serves results in rank order; the served
                # ranks rejoin the deterministic round-robin schedule.
                for r in self.superstep.dispatch(timeout=self.real_timeout):
                    st = self._states[r]
                    if st.state == _BLOCKED:
                        st.state = _READY
                continue
            if nxt is None:
                unfinished = {
                    st.rank: st.blocked_on or "blocked"
                    for st in self._states
                    if st.state not in (_FINISHED, _FAILED)
                }
                if not unfinished:
                    return  # all done
                self._abort_parked_ranks()
                raise DeadlockError(unfinished)
            st = self._states[nxt]
            cursor = (nxt + 1) % self.num_ranks
            st.state = _RUNNING
            self._running_rank = st.rank
            st.resume.set()
            if not self._sched_evt.wait(timeout=self.real_timeout):
                raise SimMPIError(
                    f"rank {st.rank} did not yield within {self.real_timeout}s "
                    "of real time; the run is wedged"
                )
            self._sched_evt.clear()
            if any(s.state == _FAILED for s in self._states):
                self._abort_parked_ranks()
                return

    def _pick_runnable(self, cursor: int) -> int | None:
        for off in range(self.num_ranks):
            r = (cursor + off) % self.num_ranks
            if self._states[r].state == _READY:
                return r
        return None

    def _abort_parked_ranks(self) -> None:
        self._aborting = True
        for st in self._states:
            if st.state not in (_FINISHED, _FAILED):
                st.resume.set()

    # ------------------------------------------------------------------
    # rank-thread side
    # ------------------------------------------------------------------

    def _thread_main(
        self,
        st: _RankState,
        program: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        # Park until the scheduler hands us the execution token.
        st.resume.wait()
        st.resume.clear()
        if self._aborting:
            st.state = _FAILED if st.error else _FINISHED
            self._sched_evt.set()
            return
        try:
            st.result = program(self._ctxs[st.rank], *args, **kwargs)
            st.state = _FINISHED
        except _Abort:
            st.state = _FINISHED
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            st.error = exc
            st.state = _FAILED
        self._sched_evt.set()

    def _yield_to_scheduler(self, st: _RankState) -> None:
        """Hand the execution token back and park until rescheduled.

        With telemetry attached, the park duration is added to every open
        phase frame of this rank so phase exits can report executing wall
        time: the engine serializes rank execution, so without this
        correction a phase's wall time would mostly measure *other ranks*
        running (e.g. after the cache barrier, rank 0 executes its whole
        first tct epoch before rank 1 leaves its empty ppt phase).
        """
        tele = self.telemetry
        t_park = time.perf_counter() if tele is not None else 0.0
        self._sched_evt.set()
        st.resume.wait()
        st.resume.clear()
        if tele is not None:
            parked = time.perf_counter() - t_park
            for frame in self._ctxs[st.rank]._tele_frames:
                frame[2] += parked
        if self._aborting:
            raise _Abort()

    def _block(self, rank: int, why: str) -> None:
        """Mark ``rank`` blocked and yield; returns once rescheduled."""
        st = self._states[rank]
        st.state = _BLOCKED
        st.blocked_on = why
        self._yield_to_scheduler(st)
        st.blocked_on = ""

    # ------------------------------------------------------------------
    # messaging primitives (called from rank threads via Comm)
    # ------------------------------------------------------------------

    def post_send(
        self,
        src: int,
        dst: int,
        tag: int,
        comm_id: int,
        payload: Any,
        coll_op: str | None = None,
    ) -> int:
        """Eagerly deliver a message into ``dst``'s mailbox.

        LogGP-style accounting: the *sender* pays the injection overhead
        plus the byte serialization time (its NIC pushes the bytes out
        one message at a time, so back-to-back sends serialize), and the
        message then arrives one wire latency (alpha) later.  Returns the
        byte size used for accounting.  ``coll_op`` labels messages sent
        from inside a collective so trace consumers can attribute wire
        traffic to ``bcast``/``alltoall``/... instead of raw sends.
        """
        ctx = self._ctxs[src]
        nbytes = payload_nbytes(payload)
        t0 = ctx.clock.now
        ctx.clock.advance_comm(self.model.send_overhead + self.model.beta * nbytes)
        arrival = ctx.clock.now + self.model.alpha
        seq = next(self._seq)
        copies = 1
        fault = (
            self.faults.on_send(src, dst, tag, comm_id, nbytes, payload)
            if self.faults is not None
            else None
        )
        if fault is not None:
            # The sender already paid its full injection cost above: from
            # its point of view the send succeeded, the network misbehaves.
            if self.tracer.enabled:
                self.tracer.emit(
                    ctx.clock.now, src, "fault", fault=fault.kind, site="send",
                    dst=dst, tag=tag, nbytes=nbytes, seq=seq,
                )
                self.tracer.span_point(
                    t0, ctx.clock.now, src, "fault", f"fault:{fault.kind}",
                    dst=dst, nbytes=nbytes,
                )
            if fault.kind == "drop":
                return nbytes  # vanished on the wire; no delivery
            if fault.kind == "delay":
                arrival += fault.delay
            elif fault.kind == "corrupt":
                payload = fault.payload
            elif fault.kind == "dup":
                copies = 2
            else:
                raise SimMPIError(f"unknown message-fault kind {fault.kind!r}")
        dst_state = self._states[dst]
        for i in range(copies):
            dst_state.mailbox.append(
                _Message(
                    seq=seq if i == 0 else next(self._seq),
                    src=src,
                    dst=dst,
                    tag=tag,
                    comm_id=comm_id,
                    payload=payload,
                    nbytes=nbytes,
                    arrival=arrival,
                )
            )
        if self.tracer.enabled:
            if coll_op is None:
                self.tracer.emit(
                    ctx.clock.now, src, "send", dst=dst, tag=tag, nbytes=nbytes,
                    arrival=arrival, seq=seq,
                )
            else:
                self.tracer.emit(
                    ctx.clock.now, src, "send", dst=dst, tag=tag, nbytes=nbytes,
                    arrival=arrival, seq=seq, coll=coll_op,
                )
            self.tracer.span_point(
                t0, ctx.clock.now, src, "comm",
                coll_op if coll_op is not None else "send",
                dst=dst, nbytes=nbytes, seq=seq,
            )
        # A parked receiver might now have a match; let it re-check.
        if dst_state.state == _BLOCKED:
            dst_state.state = _READY
        return nbytes

    def wait_recv(
        self, rank: int, source: int, tag: int, comm_id: int
    ) -> tuple[Any, int, int]:
        """Blocking receive; returns ``(payload, actual_source, actual_tag)``.

        Matching follows MPI semantics: the earliest-sent message from a
        matching (source, tag, communicator) is delivered; per-pair order is
        never overtaken.  Waiting time (gap between the receive post and the
        message's wire arrival) is charged as communication.
        """
        st = self._states[rank]
        ctx = self._ctxs[rank]
        while True:
            idx = self._match(st.mailbox, source, tag, comm_id)
            if idx is not None:
                msg = st.mailbox.pop(idx)
                waited = ctx.clock.wait_until(msg.arrival)
                if self.tracer.enabled:
                    self.tracer.emit(
                        ctx.clock.now, rank, "recv", src=msg.src, tag=msg.tag,
                        nbytes=msg.nbytes, waited=waited, seq=msg.seq,
                    )
                    if waited > 0:
                        self.tracer.span_point(
                            ctx.clock.now - waited, ctx.clock.now, rank,
                            "comm", "wait", src=msg.src, nbytes=msg.nbytes,
                            seq=msg.seq,
                        )
                return msg.payload, msg.src, msg.tag
            self._block(
                rank,
                f"recv(source={'ANY' if source == ANY_SOURCE else source}, "
                f"tag={'ANY' if tag == ANY_TAG else tag}, comm={comm_id})",
            )

    @staticmethod
    def _match(
        mailbox: list[_Message], source: int, tag: int, comm_id: int
    ) -> int | None:
        best: int | None = None
        best_seq = -1
        for i, m in enumerate(mailbox):
            if m.comm_id != comm_id:
                continue
            if source != ANY_SOURCE and m.src != source:
                continue
            if tag != ANY_TAG and m.tag != tag:
                continue
            if best is None or m.seq < best_seq:
                best, best_seq = i, m.seq
        return best

    def offload_rank(
        self,
        rank: int,
        entry: str,
        arrays: Any,
        meta: dict | None,
        label: str,
    ) -> Any:
        """Queue a superstep job for ``rank`` and park it until the result
        is in (see :meth:`RankContext.offload` for the contract)."""
        pool = self.superstep
        if pool is None:
            raise SimMPIError(
                "no superstep pool attached to this engine; construct it "
                "with Engine(..., superstep=SuperstepPool(...)) or use the "
                "sequential executor"
            )
        pool.submit(rank, entry, arrays, meta, label=label)
        # An eager message delivery can wake this rank before its result
        # exists (post_send marks any blocked destination runnable), so
        # re-park until the dispatch that serves this rank has happened.
        while not pool.has_result(rank):
            self._block(rank, f"superstep({label or entry})")
        return pool.take_result(rank)

    def probe(self, rank: int, source: int, tag: int, comm_id: int) -> bool:
        """Non-blocking check whether a matching message is queued."""
        return self._match(self._states[rank].mailbox, source, tag, comm_id) is not None

    def context(self, rank: int) -> RankContext:
        """The :class:`RankContext` of ``rank`` (used by :class:`Comm`)."""
        return self._ctxs[rank]
