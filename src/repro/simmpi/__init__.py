"""Deterministic simulated-MPI runtime for SPMD rank programs.

This package substitutes for a real MPI installation: it runs ``p`` virtual
ranks inside a single process, each executing an unmodified SPMD rank
program against a :class:`~repro.simmpi.comm.Comm` whose API mirrors the
lowercase (generic-object) mpi4py interface.  Communication and computation
are accounted against per-rank *virtual clocks* using a pluggable
:class:`~repro.simmpi.costmodel.MachineModel`, so experiments report
simulated seconds that reflect the message/operation profile of the
algorithm rather than single-core wall time.

Typical usage::

    from repro.simmpi import Engine, MachineModel

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send({"hello": 1}, dest=1)
        elif ctx.rank == 1:
            print(ctx.comm.recv(source=0))
        return ctx.rank

    result = Engine(num_ranks=4).run(program)
    assert result.returns == [0, 1, 2, 3]

Determinism: the engine sequentializes rank execution (one runnable rank at
a time, scheduled in a fixed order), so given seeded inputs two runs produce
bit-identical results, counters and clocks.
"""

from repro.simmpi.costmodel import CacheModel, MachineModel
from repro.simmpi.clock import PhaseStats, RankClock
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, Comm
from repro.simmpi.engine import Engine, RankContext, RunResult
from repro.simmpi.errors import (
    BlobChecksumError,
    CollectiveMismatchError,
    DeadlockError,
    RankCrashError,
    RankFailedError,
    ResilienceExhaustedError,
    SimMPIError,
    WorkerCrashError,
)
from repro.simmpi.parallel import Resident, SuperstepPool, WorkerSpan
from repro.simmpi.reduceops import BAND, BOR, MAX, MIN, PROD, SUM, ReduceOp
from repro.simmpi.tracing import Span, TraceEvent, Tracer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BlobChecksumError",
    "BOR",
    "CacheModel",
    "CollectiveMismatchError",
    "Comm",
    "DeadlockError",
    "Engine",
    "MachineModel",
    "MAX",
    "MIN",
    "PhaseStats",
    "PROD",
    "RankClock",
    "RankContext",
    "RankCrashError",
    "RankFailedError",
    "ReduceOp",
    "ResilienceExhaustedError",
    "RunResult",
    "SimMPIError",
    "Span",
    "SUM",
    "Resident",
    "SuperstepPool",
    "TraceEvent",
    "Tracer",
    "WorkerCrashError",
    "WorkerSpan",
]
