"""Per-rank virtual clocks with phase-scoped compute/communication split.

Every rank owns a :class:`RankClock`.  Kernels advance it through
``advance_compute``; the communication layer advances it through
``advance_comm`` (send overheads) and ``wait_until`` (receive completion,
whose waiting time is what the paper's Figure 3 calls communication time).

Phases ("ppt", "tct", per-shift spans, ...) are tracked with a stack so the
triangle-counting phase can nest per-shift sub-phases; each phase records
how much of its span was compute vs communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseStats:
    """Aggregated timing for one named phase on one rank.

    Attributes
    ----------
    name:
        Phase label, e.g. ``"tct"`` or ``"tct/shift3"``.
    compute:
        Seconds the rank spent computing inside the phase.
    comm:
        Seconds spent in communication (send overhead + waiting on
        receives/collectives) inside the phase.
    start, end:
        Virtual-time span of the phase.
    """

    name: str
    compute: float = 0.0
    comm: float = 0.0
    start: float = 0.0
    end: float = 0.0

    @property
    def elapsed(self) -> float:
        """Total virtual seconds from phase start to end."""
        return self.end - self.start

    @property
    def comm_fraction(self) -> float:
        """Fraction of accounted time spent communicating (0 if idle)."""
        total = self.compute + self.comm
        return self.comm / total if total > 0 else 0.0


class RankClock:
    """Virtual clock for one rank.

    The clock only moves forward.  All mutation goes through the three
    ``advance_*``/``wait_until`` methods so that phase accounting can never
    drift from the clock itself.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._now = 0.0
        self._phase_stack: list[PhaseStats] = []
        self.phases: dict[str, PhaseStats] = {}

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- mutation ---------------------------------------------------------

    def advance_compute(self, dt: float) -> None:
        """Advance by ``dt`` seconds of computation."""
        if dt < 0:
            raise ValueError(f"negative compute time {dt}")
        self._now += dt
        for ph in self._phase_stack:
            ph.compute += dt

    def advance_comm(self, dt: float) -> None:
        """Advance by ``dt`` seconds of communication overhead."""
        if dt < 0:
            raise ValueError(f"negative comm time {dt}")
        self._now += dt
        for ph in self._phase_stack:
            ph.comm += dt

    def wait_until(self, t: float) -> float:
        """Block (virtually) until time ``t``; waiting counts as comm.

        Returns the waiting time actually charged (0 when ``t`` is in the
        past, which is the common case for an eagerly delivered message).
        """
        dt = t - self._now
        if dt <= 0:
            return 0.0
        self._now = t
        for ph in self._phase_stack:
            ph.comm += dt
        return dt

    # -- phases -----------------------------------------------------------

    def phase_begin(self, name: str) -> PhaseStats:
        """Open a (possibly nested) phase; returns its stats record."""
        full = name
        if self._phase_stack:
            full = f"{self._phase_stack[-1].name}/{name}"
        ph = PhaseStats(name=full, start=self._now, end=self._now)
        self._phase_stack.append(ph)
        return ph

    def phase_end(self, ph: PhaseStats) -> PhaseStats:
        """Close ``ph`` (must be the innermost open phase)."""
        if not self._phase_stack or self._phase_stack[-1] is not ph:
            raise RuntimeError(
                f"phase_end({ph.name!r}) does not match the innermost open phase"
            )
        self._phase_stack.pop()
        ph.end = self._now
        prior = self.phases.get(ph.name)
        if prior is None:
            self.phases[ph.name] = ph
        else:
            # Same-named phase re-entered (e.g. repeated shifts): accumulate.
            prior.compute += ph.compute
            prior.comm += ph.comm
            prior.end = ph.end
        return ph
