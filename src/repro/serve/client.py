"""Thin stdlib HTTP client for the serve API.

Used by ``repro submit``, the servebench load generator and the
integration tests.  Pure ``http.client`` — one connection per call,
no retries by default (admission control *wants* the caller to see
rejections).  :meth:`ServeClient.submit` can opt into bounded backoff
that honors the server's ``Retry-After`` hint.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any


class ServeError(RuntimeError):
    """Non-2xx response from the serve API (other than a rejection)."""

    def __init__(self, status: int, body: dict[str, Any] | str):
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServeRejected(ServeError):
    """Typed admission-control rejection (HTTP 429/503).

    ``reason`` mirrors :class:`repro.serve.service.AdmissionError`:
    ``queue_full``, ``tenant_quota`` or ``shutting_down``.
    ``retry_after`` is the server's backoff hint in seconds (from the
    ``Retry-After`` header, falling back to the body's
    ``retry_after_s``), or ``None`` when the server sent neither.
    """

    def __init__(
        self,
        status: int,
        body: dict[str, Any],
        retry_after: float | None = None,
    ):
        super().__init__(status, body)
        self.reason = body.get("reason", "rejected")
        if retry_after is None:
            retry_after = body.get("retry_after_s")
        self.retry_after = None if retry_after is None else float(retry_after)


class ServeClient:
    """Synchronous client for one serve endpoint.

    >>> client = ServeClient("127.0.0.1", 8787)
    >>> client.submit({"kind": "count", "dataset": "g500-s12",
    ...                "ranks": 16}, wait=True)["result"]["count"]
    ... # doctest: +SKIP
    """

    def __init__(self, host: str, port: int, timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Response headers (lower-cased names) of the most recent
        #: :meth:`request` round trip.
        self.last_headers: dict[str, str] = {}

    # -- raw transport ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, Any]:
        """One HTTP round trip; JSON bodies are decoded when possible.

        Response headers land in :attr:`last_headers`.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            hdrs = {"Content-Type": "application/json", **(headers or {})}
            conn.request(method, path, body=payload, headers=hdrs)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        self.last_headers = {k.lower(): v for k, v in resp.getheaders()}
        try:
            doc = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = raw.decode(errors="replace")
        return resp.status, doc

    def _checked(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Any:
        status, doc = self.request(method, path, body, headers)
        if status in (429, 503) and isinstance(doc, dict) and "reason" in doc:
            raise ServeRejected(status, doc, self._header_retry_after())
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    def _header_retry_after(self) -> float | None:
        raw = self.last_headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:
            return None

    # -- API ---------------------------------------------------------------

    def health(self) -> bool:
        """True when the server answers ``/healthz``."""
        try:
            status, _ = self.request("GET", "/healthz")
        except OSError:
            return False
        return status == 200

    def metrics(self) -> str:
        """Raw Prometheus-style text from ``/metrics``."""
        status, doc = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, doc)
        return doc if isinstance(doc, str) else json.dumps(doc)

    def stats(self) -> dict[str, Any]:
        """Service snapshot from ``/v1/stats``."""
        return self._checked("GET", "/v1/stats")

    def submit(
        self,
        request: dict[str, Any],
        tenant: str = "default",
        wait: bool = True,
        progress: bool = False,
        retries: int = 0,
        max_backoff: float = 60.0,
    ) -> dict[str, Any]:
        """Submit one job; raises :class:`ServeRejected` on admission
        rejection.  ``wait=True`` blocks for the terminal job document,
        ``wait=False`` returns the 202 acknowledgement immediately.

        ``retries > 0`` opts into backoff on capacity rejections
        (``queue_full``/``tenant_quota``): each attempt sleeps the
        server's ``Retry-After`` hint (capped at ``max_backoff``) before
        resubmitting.  ``shutting_down`` rejections never retry — the
        server is going away, waiting cannot help — and the final
        rejection always propagates."""
        body = dict(request)
        body["wait"] = wait
        if progress:
            body["progress"] = True
        attempts = max(0, int(retries))
        while True:
            try:
                return self._checked(
                    "POST", "/v1/jobs", body, headers={"X-Tenant": tenant}
                )
            except ServeRejected as exc:
                if attempts <= 0 or exc.reason == "shutting_down":
                    raise
                attempts -= 1
                time.sleep(min(max_backoff, exc.retry_after or 1.0))

    def job(self, job_id: str) -> dict[str, Any]:
        """Status/result document for one job id."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, since: int = 0, timeout: float = 0.0
    ) -> dict[str, Any]:
        """Long-poll the job's progress events starting at ``since``."""
        return self._checked(
            "GET", f"/v1/jobs/{job_id}/events?since={since}&timeout={timeout}"
        )

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        try:
            self._checked("POST", "/v1/shutdown")
        except OSError:
            pass
