"""Thin stdlib HTTP client for the serve API.

Used by ``repro submit``, the servebench load generator and the
integration tests.  Pure ``http.client`` — one connection per call,
no retries (admission control *wants* the caller to see rejections).
"""

from __future__ import annotations

import http.client
import json
from typing import Any


class ServeError(RuntimeError):
    """Non-2xx response from the serve API (other than a rejection)."""

    def __init__(self, status: int, body: dict[str, Any] | str):
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServeRejected(ServeError):
    """Typed admission-control rejection (HTTP 429/503).

    ``reason`` mirrors :class:`repro.serve.service.AdmissionError`:
    ``queue_full``, ``tenant_quota`` or ``shutting_down``.
    """

    def __init__(self, status: int, body: dict[str, Any]):
        super().__init__(status, body)
        self.reason = body.get("reason", "rejected")


class ServeClient:
    """Synchronous client for one serve endpoint.

    >>> client = ServeClient("127.0.0.1", 8787)
    >>> client.submit({"kind": "count", "dataset": "g500-s12",
    ...                "ranks": 16}, wait=True)["result"]["count"]
    ... # doctest: +SKIP
    """

    def __init__(self, host: str, port: int, timeout: float = 600.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw transport ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, Any]:
        """One HTTP round trip; JSON bodies are decoded when possible."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            hdrs = {"Content-Type": "application/json", **(headers or {})}
            conn.request(method, path, body=payload, headers=hdrs)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = raw.decode(errors="replace")
        return resp.status, doc

    def _checked(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> Any:
        status, doc = self.request(method, path, body, headers)
        if status in (429, 503) and isinstance(doc, dict) and "reason" in doc:
            raise ServeRejected(status, doc)
        if status >= 400:
            raise ServeError(status, doc)
        return doc

    # -- API ---------------------------------------------------------------

    def health(self) -> bool:
        """True when the server answers ``/healthz``."""
        try:
            status, _ = self.request("GET", "/healthz")
        except OSError:
            return False
        return status == 200

    def metrics(self) -> str:
        """Raw Prometheus-style text from ``/metrics``."""
        status, doc = self.request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, doc)
        return doc if isinstance(doc, str) else json.dumps(doc)

    def stats(self) -> dict[str, Any]:
        """Service snapshot from ``/v1/stats``."""
        return self._checked("GET", "/v1/stats")

    def submit(
        self,
        request: dict[str, Any],
        tenant: str = "default",
        wait: bool = True,
        progress: bool = False,
    ) -> dict[str, Any]:
        """Submit one job; raises :class:`ServeRejected` on admission
        rejection.  ``wait=True`` blocks for the terminal job document,
        ``wait=False`` returns the 202 acknowledgement immediately."""
        body = dict(request)
        body["wait"] = wait
        if progress:
            body["progress"] = True
        return self._checked(
            "POST", "/v1/jobs", body, headers={"X-Tenant": tenant}
        )

    def job(self, job_id: str) -> dict[str, Any]:
        """Status/result document for one job id."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, since: int = 0, timeout: float = 0.0
    ) -> dict[str, Any]:
        """Long-poll the job's progress events starting at ``since``."""
        return self._checked(
            "GET", f"/v1/jobs/{job_id}/events?since={since}&timeout={timeout}"
        )

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        try:
            self._checked("POST", "/v1/shutdown")
        except OSError:
            pass
