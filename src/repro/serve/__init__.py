"""Async multi-tenant triangle-counting service (``repro serve``).

Layers:

* :mod:`repro.serve.service` — transport-agnostic core: request
  canonicalization onto the store digest, a warm result cache, a
  bounded admission-controlled cold-job queue over a shared
  :class:`~repro.simmpi.parallel.SuperstepPool`, live progress events
  from the span tracer, serve-level metrics.
* :mod:`repro.serve.server` — raw-asyncio HTTP/1.1 front end
  (``/healthz``, ``/metrics``, ``/v1/jobs``, ``/v1/stats``,
  ``/v1/shutdown``).
* :mod:`repro.serve.client` — stdlib client used by ``repro submit``,
  tests and the :mod:`repro.bench.servebench` load generator.
"""

from repro.serve.client import ServeClient, ServeError, ServeRejected
from repro.serve.server import ServeServer, run_server
from repro.serve.service import (
    AdmissionError,
    Job,
    ServeConfig,
    ServeMetrics,
    TriangleService,
    normalize_request,
    request_key,
)

__all__ = [
    "AdmissionError",
    "Job",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeMetrics",
    "ServeRejected",
    "ServeServer",
    "TriangleService",
    "normalize_request",
    "request_key",
    "run_server",
]
