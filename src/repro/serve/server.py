"""Asyncio-streams HTTP/1.1 front end for :class:`TriangleService`.

Deliberately framework-free — raw ``asyncio.start_server`` plus a
minimal request parser, because the repo bakes in no web dependencies.
The protocol surface is small and JSON-first:

==========================================  =================================
``GET  /healthz``                           liveness probe
``GET  /metrics``                           Prometheus-style text scrape
``GET  /v1/stats``                          service snapshot (JSON)
``POST /v1/jobs``                           submit; ``?wait=1`` blocks for
                                            the result, else 202 + job id
``GET  /v1/jobs/<id>``                      job status/result
``GET  /v1/jobs/<id>/events``               progress long-poll
                                            (``?since=N&timeout=T``)
``POST /v1/shutdown``                       graceful drain + exit
==========================================  =================================

Admission rejections surface as **429** (or **503** while draining)
with a typed JSON body (``{"error": "rejected", "reason": "queue_full"
| "tenant_quota" | "shutting_down", "retry_after_s": <float>}``) and a
``Retry-After`` header derived from the current queue depth, so
well-behaved clients back off for roughly as long as the backlog needs
to drain; malformed requests as 400.  Blocking operations
(result waits, event long-polls) run in worker threads via
``asyncio.to_thread`` so one slow client never stalls the accept loop.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import AdmissionError, ServeConfig, TriangleService

#: Cap on request body size (a job spec is tiny; anything bigger is abuse).
MAX_BODY = 1 << 20

_REASON_STATUS = {"queue_full": 429, "tenant_quota": 429, "shutting_down": 503}


class ServeServer:
    """One listening HTTP server bound to one :class:`TriangleService`.

    Usage::

        server = ServeServer(ServeConfig(...), host="127.0.0.1", port=0)
        asyncio.run(server.serve_forever())      # or .start()/.stop()

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one after :meth:`start`.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        service: TriangleService | None = None,
    ):
        self.host = host
        self.port = port
        self.service = service or TriangleService(config)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (resolves :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start, run until ``/v1/shutdown`` (or cancellation), then drain."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Close the listener and drain the service (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.service.close, True)

    # -- connection handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            # Handlers return (status, ctype, payload) plus an optional
            # fourth element of extra response headers.
            routed = await self._route(method, target, headers, body)
            status, ctype, payload = routed[:3]
            extra = routed[3] if len(routed) > 3 else None
        except asyncio.IncompleteReadError:
            return
        except Exception as exc:  # noqa: BLE001 - connection boundary
            status, ctype, payload, extra = 500, "application/json", _jbytes(
                {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"}
            ), None
        try:
            writer.write(_response_bytes(status, ctype, payload, extra))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> tuple:
        """Dispatch one parsed request to its handler.

        Returns ``(status, content_type, payload)`` with an optional
        fourth element of extra response headers.
        """
        url = urlsplit(target)
        path, query = url.path.rstrip("/") or "/", parse_qs(url.query)
        if method == "GET" and path == "/healthz":
            return 200, "application/json", _jbytes({"ok": True})
        if method == "GET" and path == "/metrics":
            text = self.service.metrics.render()
            return 200, "text/plain; version=0.0.4", text.encode()
        if method == "GET" and path == "/v1/stats":
            return 200, "application/json", _jbytes(self.service.stats())
        if method == "POST" and path == "/v1/jobs":
            return await self._submit(headers, body, query)
        if method == "GET" and path.startswith("/v1/jobs/"):
            return await self._job_get(path, query)
        if method == "POST" and path == "/v1/shutdown":
            self._shutdown.set()
            return 200, "application/json", _jbytes({"draining": True})
        return 404, "application/json", _jbytes(
            {"error": "not_found", "path": path}
        )

    async def _submit(
        self, headers: dict[str, str], body: bytes, query: dict
    ) -> tuple:
        try:
            doc = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, "application/json", _jbytes(
                {"error": "bad_request", "detail": f"invalid JSON: {exc}"}
            )
        tenant = str(
            doc.pop("tenant", None) or headers.get("x-tenant", "default")
        )
        wait = bool(doc.pop("wait", False)) or _flag(query, "wait")
        progress = bool(doc.pop("progress", False))
        try:
            job = self.service.submit(doc, tenant=tenant)
        except AdmissionError as exc:
            body_doc: dict[str, Any] = {
                "error": "rejected", "reason": exc.reason,
                "detail": exc.detail,
            }
            extra: dict[str, str] | None = None
            if exc.retry_after is not None:
                body_doc["retry_after_s"] = exc.retry_after
                # Retry-After is integer seconds; round up so a 0.3 s
                # hint never collapses to an immediate retry storm.
                extra = {"Retry-After": str(math.ceil(exc.retry_after))}
            return (
                _REASON_STATUS.get(exc.reason, 429),
                "application/json",
                _jbytes(body_doc),
                extra,
            )
        except ValueError as exc:
            return 400, "application/json", _jbytes(
                {"error": "bad_request", "detail": str(exc)}
            )
        if wait:
            await asyncio.to_thread(
                job.wait, self.service.config.real_timeout
            )
            doc_out = job.to_dict(events_since=0 if progress else None)
            status = 200 if job.state == "done" else 500
            return status, "application/json", _jbytes(doc_out)
        return 202, "application/json", _jbytes(job.to_dict())

    async def _job_get(self, path: str, query: dict) -> tuple[int, str, bytes]:
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', ('events')]
        job = self.service.job(parts[3]) if len(parts) > 3 else None
        if job is None:
            return 404, "application/json", _jbytes(
                {"error": "not_found", "job": parts[3] if len(parts) > 3 else ""}
            )
        if len(parts) == 5 and parts[4] == "events":
            since = int(query.get("since", ["0"])[0])
            timeout = min(30.0, float(query.get("timeout", ["0"])[0]))
            events = await asyncio.to_thread(job.wait_events, since, timeout)
            return 200, "application/json", _jbytes(
                {"id": job.id, "state": job.state, "since": since,
                 "events": events}
            )
        if len(parts) != 4:
            return 404, "application/json", _jbytes({"error": "not_found"})
        return 200, "application/json", _jbytes(job.to_dict())


def _flag(query: dict, name: str) -> bool:
    val = query.get(name, ["0"])[0].lower()
    return val in ("1", "true", "yes")


def _jbytes(doc: Any) -> bytes:
    return json.dumps(doc, sort_keys=True).encode()


_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int,
    ctype: str,
    payload: bytes,
    headers: dict[str, str] | None = None,
) -> bytes:
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra}"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request (method, target, headers, body)."""
    line = await reader.readline()
    if not line.strip():
        return None
    try:
        method, target, _version = line.decode().split(None, 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = min(MAX_BODY, int(headers.get("content-length", "0") or 0))
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def run_server(
    config: ServeConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Any = None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    ``announce(server)`` is called once the port is bound — the CLI uses
    it to print the listening address; tests use it to capture the
    ephemeral port.
    """

    async def _main() -> None:
        server = ServeServer(config, host=host, port=port)
        await server.start()
        if announce is not None:
            announce(server)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
