"""The multi-tenant triangle-counting service core (no I/O here).

:class:`TriangleService` is the transport-agnostic heart of
``repro serve``: it validates and canonicalizes job requests, answers
warm requests instantly from a digest-keyed result cache, and schedules
cold runs onto a small dispatcher thread pool with **admission control**
— a bounded queue, a per-tenant quota and typed
:class:`AdmissionError` rejections instead of unbounded buffering.

Design points (see ``docs/serve.md`` for the full story):

* **Canonicalization.**  Every request normalizes to a sorted-JSON
  canonical form; count/census/ktruss runs are keyed by the *same*
  content digest the preprocessing store uses
  (:func:`repro.graph.store.artifact_digest`), so a served result's
  provenance names exactly the artifact ``repro count --cache`` would
  hit, and two textually different but semantically equal requests share
  one cache line.
* **Warm fast path.**  A repeated request returns the cached result
  without touching the engine, the queue or the quotas — the only cost
  is a dict lookup, which is what makes warm p50 latency orders of
  magnitude below cold p50.
* **Shared pool.**  With ``executor="parallel"`` one long-lived
  :class:`~repro.simmpi.parallel.SuperstepPool` is shared by every cold
  run (worker spawn cost amortizes across requests); the engine resets
  it per run and the resident-arena generation bump isolates tenants.
* **Progress.**  Cold runs execute under a live
  :class:`~repro.simmpi.tracing.Tracer` subclass that forwards
  phase-span closures into the job's event log while the run is still
  executing, so clients can stream progress.
* **Honest results.**  Every result carries provenance: the artifact
  digest, the machine-model fingerprint, cold/warm, measured wall time
  and the simulated virtual times — and a served count is bit-identical
  to ``repro count`` for the same request (same config path, same
  model).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.simmpi.tracing import Span, Tracer

#: Request kinds the service accepts.
JOB_KINDS = ("count", "census", "ktruss")

#: Serve-layer API schema (stamped into every job/result payload).
SERVE_SCHEMA = 1


class AdmissionError(RuntimeError):
    """A request was rejected by admission control (typed, counted).

    ``reason`` is one of ``"queue_full"`` (the bounded cold-job queue is
    at capacity), ``"tenant_quota"`` (this tenant already has its quota
    of admitted jobs in flight) or ``"shutting_down"`` (the service is
    draining).  The HTTP layer maps it to a 429-style response; the
    caller is expected to back off and retry.

    ``retry_after`` is the service's backoff hint in seconds — derived
    from the current queue depth and observed cold latency, it estimates
    when capacity will next free up.  The HTTP layer turns it into a
    ``Retry-After`` header.
    """

    def __init__(
        self, reason: str, detail: str = "", retry_after: float | None = None
    ):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail or reason
        self.retry_after = retry_after


@dataclass
class ServeConfig:
    """Everything that shapes one service instance.

    Attributes
    ----------
    max_inflight:
        Dispatcher threads — cold jobs executing concurrently.
    max_queue:
        Bound on *admitted but not yet running* cold jobs; submissions
        beyond it are rejected with ``reason="queue_full"``.
    tenant_quota:
        Max admitted (queued + running) cold jobs per tenant; beyond it
        submissions reject with ``reason="tenant_quota"``.
    store:
        Preprocessing-store root (``None`` disables the on-disk cache;
        warm *result* caching works regardless).
    executor / workers / dispatch:
        Superstep-executor knobs for cold runs; ``"parallel"`` creates
        one shared :class:`~repro.simmpi.parallel.SuperstepPool` for the
        service's lifetime.
    result_cache_size:
        LRU capacity of the in-memory digest-keyed result cache.
    default_ranks:
        Rank count when a request omits ``ranks``.
    """

    max_inflight: int = 2
    max_queue: int = 8
    tenant_quota: int = 4
    store: str | Path | None = None
    executor: str = "sequential"
    workers: int = 0
    dispatch: str = "amortized"
    result_cache_size: int = 256
    default_ranks: int = 16
    real_timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        if self.executor not in ("sequential", "parallel"):
            raise ValueError(f"unknown executor {self.executor!r}")


class Job:
    """One submitted request's lifecycle record (thread-safe).

    States move ``queued -> running -> done | failed``; warm hits are
    born ``done``.  ``events`` is an append-only log with monotonically
    increasing ``seq`` numbers; :meth:`wait_events` long-polls it.
    """

    def __init__(self, job_id: str, tenant: str, request: dict[str, Any]):
        self.id = job_id
        self.tenant = tenant
        self.request = request
        self.state = "queued"
        self.warm = False
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.t_submit = time.perf_counter()
        self.t_started: float | None = None
        self.t_finished: float | None = None
        self.events: list[dict[str, Any]] = []
        self._cond = threading.Condition()

    # -- event log ----------------------------------------------------------

    def add_event(self, kind: str, **detail: Any) -> None:
        """Append one progress event and wake any long-pollers."""
        with self._cond:
            self.events.append(
                {
                    "seq": len(self.events),
                    "t_s": round(time.perf_counter() - self.t_submit, 6),
                    "kind": kind,
                    **detail,
                }
            )
            self._cond.notify_all()

    def wait_events(
        self, since: int = 0, timeout: float = 0.0
    ) -> list[dict[str, Any]]:
        """Events with ``seq >= since``; blocks up to ``timeout`` seconds
        for news when none are ready and the job is still moving."""
        deadline = time.perf_counter() + max(0.0, timeout)
        with self._cond:
            while (
                len(self.events) <= since
                and self.state in ("queued", "running")
                and time.perf_counter() < deadline
            ):
                self._cond.wait(timeout=min(0.25, timeout or 0.25))
            return list(self.events[since:])

    # -- state transitions (service-internal) -------------------------------

    def _finish(self, state: str, result: dict | None, error: str | None) -> None:
        with self._cond:
            self.state = state
            self.result = result
            self.error = error
            self.t_finished = time.perf_counter()
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True if it did."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while self.state in ("queued", "running"):
                rem = None if deadline is None else deadline - time.perf_counter()
                if rem is not None and rem <= 0:
                    return False
                self._cond.wait(timeout=rem if rem is not None else 0.5)
            return True

    @property
    def latency_s(self) -> float | None:
        """Submit-to-terminal wall latency (includes queue wait)."""
        if self.t_finished is None:
            return None
        return self.t_finished - self.t_submit

    def to_dict(self, events_since: int | None = None) -> dict[str, Any]:
        """JSON view of the job (optionally with its event tail)."""
        doc: dict[str, Any] = {
            "schema": SERVE_SCHEMA,
            "id": self.id,
            "tenant": self.tenant,
            "request": self.request,
            "state": self.state,
            "warm": self.warm,
            "latency_s": self.latency_s,
            "num_events": len(self.events),
        }
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        if events_since is not None:
            doc["events"] = list(self.events[events_since:])
        return doc


class _JobTracer(Tracer):
    """Span tracer that streams phase closures into a job's event log.

    The engine serializes rank execution, so :meth:`span_end` runs on
    one rank thread at a time; the job's condition lock makes the append
    safe regardless.  Only top-level ``phase`` spans and ``cache`` load
    points become events — kernel/comm microspans stay in the trace.
    """

    def __init__(self, job: Job):
        super().__init__(enabled=True)
        self._job = job

    def span_end(self, t: float, span: Span | None) -> None:
        super().span_end(t, span)
        if span is not None and span.cat == "phase" and span.depth == 0:
            self._job.add_event(
                "phase",
                rank=span.rank,
                name=span.name,
                virtual_s=round(span.duration, 9),
            )

    def span_point(
        self, begin: float, end: float, rank: int, cat: str, name: str,
        **detail: Any,
    ) -> None:
        super().span_point(begin, end, rank, cat, name, **detail)
        if cat == "cache":
            self._job.add_event(
                "cache_load", rank=rank, nbytes=int(detail.get("nbytes", 0))
            )


class ServeMetrics:
    """Serve-level counters, gauges and latency quantiles (thread-safe).

    Rendered by :meth:`render` in a Prometheus-style text format for the
    ``/metrics`` scrape endpoint, and by :meth:`snapshot` as JSON for
    ``/v1/stats`` and the bench harness.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = {"warm": 0, "cold": 0}
        self.failed = 0
        self.rejected: dict[str, int] = {}
        self.queue_depth = 0
        self.inflight = 0
        self.queue_depth_max = 0
        self._latency: dict[str, deque] = {
            "warm": deque(maxlen=8192),
            "cold": deque(maxlen=2048),
        }
        #: Aggregate simulated seconds per engine phase across cold runs
        #: (the RunMetrics view of everything this service executed).
        self.phase_virtual_s: dict[str, float] = {}
        #: Aggregate operation counters across cold runs.
        self.ops_total: dict[str, float] = {}
        self.last_imbalance: dict[str, float] = {}

    # -- updates ------------------------------------------------------------

    def note_submit(self) -> None:
        with self._lock:
            self.submitted += 1

    def note_reject(self, reason: str) -> None:
        with self._lock:
            self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def note_queue(self, depth: int, inflight: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.inflight = inflight
            self.queue_depth_max = max(self.queue_depth_max, depth)

    def note_done(self, klass: str, latency_s: float) -> None:
        with self._lock:
            self.completed[klass] = self.completed.get(klass, 0) + 1
            self._latency.setdefault(klass, deque(maxlen=2048)).append(latency_s)

    def note_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def note_run(self, result: Any) -> None:
        """Fold one cold run's phase/counter registry into the totals."""
        with self._lock:
            for name, t in (("ppt", result.ppt_time), ("tct", result.tct_time)):
                self.phase_virtual_s[name] = (
                    self.phase_virtual_s.get(name, 0.0) + float(t)
                )
            for src in (result.counters_ppt, result.counters_tct):
                for k, v in src.items():
                    self.ops_total[k] = self.ops_total.get(k, 0.0) + float(v)
            run = result.extras.get("run")
            if run is not None:
                from repro.instrument.metrics import RunMetrics

                rm = RunMetrics.from_run(run)
                for pm in rm.phases:
                    if pm.name in ("ppt", "tct", "cache"):
                        self.last_imbalance[pm.name] = float(pm.imbalance)

    # -- views --------------------------------------------------------------

    def percentile(self, klass: str, q: float) -> float | None:
        """Latency quantile ``q`` in [0, 1] for class ``"warm"``/``"cold"``."""
        with self._lock:
            data = sorted(self._latency.get(klass, ()))
        if not data:
            return None
        idx = min(len(data) - 1, max(0, int(round(q * (len(data) - 1)))))
        return data[idx]

    def hit_ratio(self) -> float | None:
        """Warm completions over all completions (None before traffic)."""
        with self._lock:
            warm = self.completed.get("warm", 0)
            total = warm + self.completed.get("cold", 0)
        return (warm / total) if total else None

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable state for ``/v1/stats`` and the bench."""
        with self._lock:
            snap = {
                "submitted": self.submitted,
                "completed": dict(self.completed),
                "failed": self.failed,
                "rejected": dict(self.rejected),
                "queue_depth": self.queue_depth,
                "queue_depth_max": self.queue_depth_max,
                "inflight": self.inflight,
                "phase_virtual_s": dict(self.phase_virtual_s),
                "last_imbalance": dict(self.last_imbalance),
            }
        snap["hit_ratio"] = self.hit_ratio()
        for klass in ("warm", "cold"):
            snap[f"{klass}_p50_s"] = self.percentile(klass, 0.50)
            snap[f"{klass}_p99_s"] = self.percentile(klass, 0.99)
        return snap

    def render(self) -> str:
        """Prometheus-style text exposition of every metric."""
        lines: list[str] = []

        def emit(name: str, value: Any, **labels: str) -> None:
            if value is None:
                return
            lab = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            lines.append(f"repro_serve_{name}{{{lab}}} {value}" if lab
                         else f"repro_serve_{name} {value}")

        with self._lock:
            emit("jobs_submitted_total", self.submitted)
            for klass, n in sorted(self.completed.items()):
                emit("jobs_completed_total", n, **{"class": klass})
            emit("jobs_failed_total", self.failed)
            for reason, n in sorted(self.rejected.items()):
                emit("jobs_rejected_total", n, reason=reason)
            emit("queue_depth", self.queue_depth)
            emit("queue_depth_max", self.queue_depth_max)
            emit("inflight", self.inflight)
            for phase, t in sorted(self.phase_virtual_s.items()):
                emit("phase_virtual_seconds_total", f"{t:.9f}", phase=phase)
            for kind, v in sorted(self.ops_total.items()):
                emit("ops_total", int(v), kind=kind)
            for phase, f in sorted(self.last_imbalance.items()):
                emit("last_run_imbalance", f"{f:.6f}", phase=phase)
        for klass in ("warm", "cold"):
            for q in (0.5, 0.9, 0.99):
                v = self.percentile(klass, q)
                if v is not None:
                    lines.append(
                        f'repro_serve_latency_seconds{{class="{klass}",'
                        f'quantile="{q}"}} {v:.9f}'
                    )
        hr = self.hit_ratio()
        if hr is not None:
            lines.append(f"repro_serve_hit_ratio {hr:.6f}")
        return "\n".join(lines) + "\n"


def normalize_request(doc: dict[str, Any], default_ranks: int = 16) -> dict:
    """Validate a raw request and return its canonical form.

    Raises :class:`ValueError` on anything malformed — unknown kind,
    unknown field, non-square rank count, missing dataset.  The
    canonical form is what gets digested, so field order and defaults
    can never split the cache.
    """
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    allowed = {"kind", "dataset", "ranks", "seed", "k", "enumeration",
               "tenant", "wait", "progress"}
    unknown = set(doc) - allowed
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    kind = str(doc.get("kind", "count"))
    if kind not in JOB_KINDS:
        raise ValueError(f"kind must be one of {JOB_KINDS}, got {kind!r}")
    dataset = doc.get("dataset")
    if not dataset or not isinstance(dataset, str):
        raise ValueError("request needs a dataset (registry name or path)")
    ranks = int(doc.get("ranks", default_ranks))
    enumeration = str(doc.get("enumeration", "jik"))
    if enumeration not in ("jik", "ijk"):
        raise ValueError("enumeration must be 'jik' or 'ijk'")
    from repro.core.grid import ProcessorGrid

    ProcessorGrid.for_ranks(ranks)  # raises on non-square
    out: dict[str, Any] = {
        "kind": kind,
        "dataset": dataset,
        "ranks": ranks,
        "seed": int(doc.get("seed", 0)),
        "enumeration": enumeration,
    }
    if kind == "ktruss":
        k = int(doc.get("k", 3))
        if k < 2:
            raise ValueError("ktruss needs k >= 2")
        out["k"] = k
    elif "k" in doc:
        raise ValueError("field 'k' is only valid for kind='ktruss'")
    from repro.graph.datasets import REGISTRY

    if dataset not in REGISTRY:
        path = Path(dataset)
        if not path.exists():
            raise ValueError(
                f"unknown dataset {dataset!r} (not in the registry and not "
                "a file)"
            )
        # File-backed graphs fold content identity (size, mtime) into the
        # canonical form so an edited file can never serve a stale result.
        st = path.stat()
        out["file"] = {"size": st.st_size, "mtime_ns": st.st_mtime_ns}
    return out


def request_key(spec: dict[str, Any]) -> str:
    """Canonical cache key of a normalized request."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


class TriangleService:
    """Admission-controlled, warm-cached triangle-counting service.

    Transport-agnostic: the asyncio HTTP front end
    (:mod:`repro.serve.server`) and in-process users (tests, the bench
    harness) both drive this API:

    >>> svc = TriangleService(ServeConfig(max_inflight=1))
    >>> job = svc.submit({"kind": "count", "dataset": "g500-s12",
    ...                   "ranks": 9}, tenant="alice")
    >>> job.wait(); job.result["count"]          # doctest: +SKIP

    Call :meth:`close` (or use as a context manager) to drain in-flight
    jobs and release the worker pool.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = ServeMetrics()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._queued = 0
        self._inflight = 0
        self._tenant_admitted: dict[str, int] = {}
        self._results: OrderedDict[str, dict] = OrderedDict()
        self._graphs: OrderedDict[Any, tuple[Any, str]] = OrderedDict()
        self._closing = False
        self._seq = 0
        self._queue: queue.Queue = queue.Queue()
        from repro.bench.calibration import paper_model

        self._model = paper_model()
        self._model_fp = self._model.fingerprint()
        from repro.graph.store import store_from_env

        self._store = store_from_env(self.config.store)
        self._pool = None
        self._pool_lock = threading.Lock()
        if self.config.executor == "parallel":
            from repro.simmpi.parallel import SuperstepPool

            self._pool = SuperstepPool(
                workers=self.config.workers,
                timeout=self.config.real_timeout,
                dispatch_mode=(
                    "perjob" if self.config.dispatch == "perjob" else "batched"
                ),
            )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.config.max_inflight)
        ]
        for t in self._workers:
            t.start()

    # -- public API ---------------------------------------------------------

    def submit(self, request: dict[str, Any], tenant: str = "default") -> Job:
        """Canonicalize, admission-check and enqueue (or instantly answer)
        one request.

        Returns the :class:`Job` — terminal already on a warm hit.
        Raises :class:`ValueError` for malformed requests and
        :class:`AdmissionError` for typed capacity rejections.
        """
        self.metrics.note_submit()
        spec = normalize_request(request, self.config.default_ranks)
        key = request_key(spec)
        with self._lock:
            if self._closing:
                self.metrics.note_reject("shutting_down")
                raise AdmissionError(
                    "shutting_down",
                    "service is draining",
                    retry_after=self._retry_after_locked(),
                )
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)  # LRU touch
                job = self._new_job_locked(tenant, spec)
                job.warm = True
                result = dict(cached)
                result["served"] = "warm"
                job.add_event("warm_hit", digest=result.get("digest"))
                job._finish("done", result, None)
                self.metrics.note_done("warm", job.latency_s or 0.0)
                return job
            # Cold: admission control.  Total admitted work (running +
            # queued) is bounded by max_inflight + max_queue, so a
            # max_queue of 0 still lets the dispatchers run jobs.
            capacity = self.config.max_inflight + self.config.max_queue
            if self._queued + self._inflight >= capacity:
                self.metrics.note_reject("queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"cold-job capacity reached ({capacity} admitted)",
                    retry_after=self._retry_after_locked(),
                )
            admitted = self._tenant_admitted.get(tenant, 0)
            if admitted >= self.config.tenant_quota:
                self.metrics.note_reject("tenant_quota")
                raise AdmissionError(
                    "tenant_quota",
                    f"tenant {tenant!r} already has {admitted} jobs admitted "
                    f"(quota {self.config.tenant_quota})",
                    retry_after=self._retry_after_locked(),
                )
            job = self._new_job_locked(tenant, spec)
            self._queued += 1
            self._tenant_admitted[tenant] = admitted + 1
            self.metrics.note_queue(self._queued, self._inflight)
        job.add_event("queued", key_digest=None)
        self._queue.put(job)
        return job

    def job(self, job_id: str) -> Job | None:
        """Look up a submitted job by id."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> dict[str, Any]:
        """Service status snapshot (config, metrics, store, pool)."""
        snap = self.metrics.snapshot()
        snap.update(
            schema=SERVE_SCHEMA,
            closing=self._closing,
            jobs=len(self._jobs),
            result_cache_entries=len(self._results),
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            tenant_quota=self.config.tenant_quota,
            executor=self.config.executor,
            store=str(self._store.root) if self._store is not None else None,
            machine_fingerprint=self._model_fp,
        )
        if self._pool is not None:
            snap["pool"] = self._pool.stats_snapshot()
        return snap

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and shut down.

        ``drain=True`` lets queued and in-flight jobs finish first (the
        graceful path); ``drain=False`` fails queued jobs with
        ``"cancelled"`` and only waits for in-flight ones.  Idempotent.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        if not drain:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(job, Job):
                    self._retire(job, "failed", None, "cancelled")
        for _ in self._workers:
            self._queue.put(None)  # one sentinel per worker
        for t in self._workers:
            t.join(timeout=timeout)
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "TriangleService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _retry_after_locked(self) -> float:
        """Backoff hint (seconds) from queue depth and cold latency.

        Admitted work drains in waves of ``max_inflight`` jobs, each
        wave taking roughly one cold-p50 latency; the hint is how long
        the *currently admitted* backlog needs to clear.  Before any
        cold run has completed there is no latency sample, so the hint
        degrades to one second per wave — small, but still shaped by
        depth so a saturated cold-start herd spreads out.  Caller holds
        ``self._lock`` (the metrics lock nests safely inside it).
        """
        waves = (self._queued + self._inflight) / max(1, self.config.max_inflight)
        per_wave = self.metrics.percentile("cold", 0.5) or 1.0
        return round(max(1.0, waves * per_wave), 3)

    def _new_job_locked(self, tenant: str, spec: dict[str, Any]) -> Job:
        self._seq += 1
        job = Job(f"job-{self._seq:06d}", tenant, spec)
        self._jobs[job.id] = job
        return job

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                self._queued -= 1
                self._inflight += 1
                self.metrics.note_queue(self._queued, self._inflight)
            job.state = "running"
            job.t_started = time.perf_counter()
            job.add_event("started")
            try:
                result = self._execute(job)
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                self._retire(job, "failed", None, f"{type(exc).__name__}: {exc}")
            else:
                self._retire(job, "done", result, None)

    def _retire(
        self, job: Job, state: str, result: dict | None, error: str | None
    ) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - (job.state == "running"))
            n = self._tenant_admitted.get(job.tenant, 1) - 1
            if n <= 0:
                self._tenant_admitted.pop(job.tenant, None)
            else:
                self._tenant_admitted[job.tenant] = n
            self.metrics.note_queue(self._queued, self._inflight)
            if state == "done" and result is not None:
                key = request_key(job.request)
                self._results[key] = {
                    k: v for k, v in result.items() if k != "served"
                }
                self._results.move_to_end(key)
                while len(self._results) > self.config.result_cache_size:
                    self._results.popitem(last=False)
        if state == "done":
            job.add_event("finished", count=(result or {}).get("count"))
            job._finish("done", result, None)
            self.metrics.note_done("cold", job.latency_s or 0.0)
        else:
            job.add_event("failed", error=error)
            job._finish("failed", None, error)
            self.metrics.note_failed()

    # -- graph + digest resolution ------------------------------------------

    def _graph_for(self, spec: dict[str, Any]) -> tuple[Any, str]:
        """Load (and LRU-cache) the request's graph plus its content sha."""
        from repro.graph.datasets import REGISTRY, load_dataset
        from repro.graph.io import read_edge_list
        from repro.graph.store import graph_digest

        file_id = tuple(sorted(spec.get("file", {}).items())) or None
        key = (spec["dataset"], spec["seed"], file_id)
        with self._lock:
            hit = self._graphs.get(key)
            if hit is not None:
                self._graphs.move_to_end(key)
                return hit
        if spec["dataset"] in REGISTRY:
            g = load_dataset(spec["dataset"], seed=spec["seed"])
        else:
            g = read_edge_list(Path(spec["dataset"]))
        sha = graph_digest(g)
        with self._lock:
            self._graphs[key] = (g, sha)
            while len(self._graphs) > 8:
                self._graphs.popitem(last=False)
        return g, sha

    def _cfg_for(self, spec: dict[str, Any]) -> Any:
        from repro.core.config import TC2DConfig

        kwargs: dict[str, Any] = {
            "enumeration": spec["enumeration"],
            "seed": spec["seed"],
            "real_timeout": self.config.real_timeout,
        }
        if self._pool is not None:
            kwargs.update(
                executor="parallel",
                workers=self._pool.workers,
                dispatch=self.config.dispatch,
            )
        return TC2DConfig(**kwargs)

    def _execute(self, job: Job) -> dict[str, Any]:
        """Run one cold job end to end and build its result payload."""
        from repro.core.grid import ProcessorGrid
        from repro.graph.store import artifact_digest

        spec = job.request
        graph, graph_sha = self._graph_for(spec)
        cfg = self._cfg_for(spec)
        p = spec["ranks"]
        digest = artifact_digest(graph_sha, p, ProcessorGrid.for_ranks(p).q, cfg)
        job.add_event("resolved", digest=digest, n=int(graph.n),
                      m=int(graph.num_edges))
        t0 = time.perf_counter()
        result: dict[str, Any] = {
            "schema": SERVE_SCHEMA,
            "kind": spec["kind"],
            "request": spec,
            "digest": digest,
            "machine_fingerprint": self._model_fp,
            "served": "cold",
        }
        if spec["kind"] == "count":
            result.update(self._run_count(job, graph, p, cfg, spec))
        elif spec["kind"] == "census":
            result.update(self._run_census(graph, p, cfg))
        else:
            result.update(self._run_ktruss(graph, p, cfg, spec["k"]))
        result["wall_s"] = round(time.perf_counter() - t0, 6)
        return result

    def _run_count(
        self, job: Job, graph: Any, p: int, cfg: Any, spec: dict[str, Any]
    ) -> dict[str, Any]:
        from repro.core.tc2d import count_triangles_2d

        tracer = _JobTracer(job)
        kwargs: dict[str, Any] = {}
        if self._pool is not None:
            kwargs["superstep"] = self._pool
        # The shared pool serves one engine run at a time (the engine
        # resets it per run); sequential cold runs may overlap freely.
        lock = self._pool_lock if self._pool is not None else _NULL_LOCK
        with lock:
            res = count_triangles_2d(
                graph,
                p,
                cfg=cfg,
                model=self._model,
                trace=tracer,
                dataset=spec["dataset"],
                cache=self._store,
                **kwargs,
            )
        self.metrics.note_run(res)
        out = {
            "count": int(res.count),
            "algorithm": res.algorithm,
            "virtual": {
                "ppt_s": res.ppt_time,
                "tct_s": res.tct_time,
                "overall_s": res.overall_time,
            },
            "counters": {
                "ppt": dict(res.counters_ppt),
                "tct": dict(res.counters_tct),
            },
            "comm_fraction_tct": res.comm_fraction_tct,
        }
        info = res.extras.get("cache")
        if info is not None:
            out["store"] = info  # preprocessing-store hit/miss provenance
        return out

    def _run_census(self, graph: Any, p: int, cfg: Any) -> dict[str, Any]:
        import numpy as np

        from repro.core.listing import triangle_census_2d

        census = triangle_census_2d(graph, p, cfg=cfg, model=self._model)
        top = np.argsort(census.vertex_triangles)[-5:][::-1]
        return {
            "count": int(census.count),
            "top_vertices": [
                {"vertex": int(v), "triangles": int(census.vertex_triangles[v])}
                for v in top
            ],
            "max_edge_support": int(census.edge_support.max(initial=0)),
        }

    def _run_ktruss(
        self, graph: Any, p: int, cfg: Any, k: int
    ) -> dict[str, Any]:
        from repro.apps.ktruss import ktruss_decomposition

        truss = ktruss_decomposition(graph, k, p=p, cfg=cfg, model=self._model)
        return {
            "k": k,
            "truss_vertices": int(truss.n),
            "truss_edges": int(truss.num_edges),
        }


class _NullLock:
    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_LOCK = _NullLock()
