"""Cover-edge triangle counting (Bader et al., arXiv:2403.02997) on the
2D simulated-MPI substrate.

The cover-edge decomposition assigns every vertex a BFS level (rooted at
each connected component's minimum-label vertex).  An edge whose
endpoints share a level is *horizontal*; the horizontal edges form the
cover set ``S``.  Adjacent BFS levels differ by at most one, so a
triangle's three vertices span at most two levels and — by pigeonhole —
every triangle contains either exactly one or exactly three horizontal
edges.  Summing the common-neighbor counts over the cover set therefore
counts one-horizontal-edge triangles once and all-horizontal triangles
three times:

.. math::

    T \\;=\\; \\sum_{(u,v) \\in S} |N(u) \\cap N(v)| \\;-\\; 2\\,T_H

where ``T_H`` is the triangle count of the horizontal subgraph ``H``
(every triangle of ``H`` is all-horizontal).  Both terms map onto the
same Cannon machinery as :mod:`repro.core.tc2d`:

* **pass A (cover)** — the travelling blocks carry the *full* adjacency
  matrix (row-major as the "U" operand, column-major as the "L"
  operand); the resident task block holds the cover edges, one
  orientation per undirected edge.  The unchanged intersection kernels
  then compute ``|N(u) ∩ N(v)|`` per cover edge, one inner-residue
  stripe per shift.
* **pass H (horizontal)** — a verbatim tc2d round restricted to ``H``:
  U/L split of the horizontal edges, tasks from the enumeration side,
  ``sqrt(p)`` shifts.

Everything else is shared with tc2d: the preprocessing relabeling steps
(:func:`~repro.core.preprocess.initial_redistribution`,
:func:`~repro.core.preprocess.degree_reorder`), the kernel backends,
executors and dispatch modes, the ``ppt``/``tct``/``cache`` phase
contract, span labels, counters, telemetry, and the content-addressed
store (two entries per run, keyed by a ``{"pass": ...}`` digest
component).  Chaos-style checkpoint/restart is the one tc2d extra this
driver does not implement.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.blocks import build_block, exchange_block
from repro.core.config import TC2DConfig
from repro.core.counts import ShiftRecord, TriangleCountResult
from repro.core.grid import ProcessorGrid
from repro.core.kernels import KernelStats, resolve_backend
from repro.core.preprocess import (
    InputChunk,
    LocalRows,
    chunk_bounds,
    cyclic_bounds,
    degree_reorder,
    initial_redistribution,
    partition_1d,
    split_and_distribute,
    translate_labels,
)
from repro.core.superstep import KERNEL_JOB_ENTRY
from repro.core.arrayutil import (
    segment_lengths_to_offsets,
    segment_sums,
    split_by_owner,
)
from repro.graph.csr import CSR, INDEX_DTYPE, Graph
from repro.simmpi import SUM, Engine, MachineModel, Resident, RunResult, SuperstepPool
from repro.simmpi.engine import RankContext

#: Message tags per pass, disjoint from tc2d's (100..130) so a bug can
#: never silently cross-match messages between algorithms or passes.
_TAGS_COVER = (200, 210, 220, 230)  # skew U, skew L, shift U, shift L
_TAGS_HORIZ = (300, 310, 320, 330)


def _segment_min(
    values: np.ndarray, indptr: np.ndarray, default: int
) -> np.ndarray:
    """Per-row minimum of CSR-laid-out ``values``; ``default`` for empty
    rows.  Uses the start-of-nonempty-row ``reduceat`` trick (consecutive
    kept starts delimit exactly the kept rows)."""
    n_rows = len(indptr) - 1
    out = np.full(n_rows, default, dtype=INDEX_DTYPE)
    if len(values):
        lens = np.diff(indptr)
        nz = lens > 0
        out[nz] = np.minimum.reduceat(values, indptr[:-1][nz])
    return out


def bfs_levels_distributed(
    ctx: RankContext, rows: LocalRows, offsets: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Distributed BFS levels in the current (contiguous) label space.

    Two frontier-free fixpoint loops, both built from the same
    :func:`~repro.core.preprocess.translate_labels` collective the
    degree reorder already uses:

    1. *component roots* — min-label propagation: every vertex
       repeatedly adopts the smallest component label seen among its
       neighbors until a global round changes nothing (≤ diameter+1
       rounds, detected with an allreduce);
    2. *levels* — BFS distance propagation from the roots:
       ``level(v) = min(level(v), min_u level(u) + 1)`` to fixpoint.

    Returns ``(level, nbr_level, rounds)`` where ``level[k]`` is the
    level of owned vertex ``lo + k``, ``nbr_level`` is the level of every
    adjacency entry (positionally aligned with ``rows.csr.indices``) and
    ``rounds`` counts the propagation rounds (a reported statistic).
    """
    comm = ctx.comm
    indptr = rows.csr.indptr
    cols = rows.csr.indices
    n_local = rows.csr.n_rows
    own = rows.labels
    rounds = 0

    comp = own.copy()
    while True:
        nbr = translate_labels(ctx, cols, offsets, comp)
        best = _segment_min(nbr, indptr, default=n)
        new = np.minimum(comp, best)
        ctx.charge("scan", len(cols) + n_local)
        rounds += 1
        changed = comm.allreduce(int(np.count_nonzero(new != comp)), SUM)
        comp = new
        if changed == 0:
            break

    level = np.where(comp == own, 0, n).astype(INDEX_DTYPE)
    while True:
        nbr = translate_labels(ctx, cols, offsets, level)
        best = _segment_min(nbr, indptr, default=n) + 1
        new = np.minimum(level, best)
        np.minimum(new, n, out=new)
        ctx.charge("scan", len(cols) + n_local)
        rounds += 1
        changed = comm.allreduce(int(np.count_nonzero(new != level)), SUM)
        level = new
        if changed == 0:
            break

    nbr_level = translate_labels(ctx, cols, offsets, level)
    return level, nbr_level, rounds


def _ship_pairs(ctx: RankContext, pairs: np.ndarray, q: int) -> np.ndarray:
    """All-to-all each ``(row, col)`` pair to the grid rank owning its
    matrix cell ``(row % q, col % q)`` — the same routing
    :func:`~repro.core.preprocess.split_and_distribute` uses."""
    comm = ctx.comm
    dest = (pairs[:, 0] % q) * q + pairs[:, 1] % q
    parts = split_by_owner(dest, pairs, comm.size)
    got = comm.alltoallv(parts)
    chunks = [g for g in got if len(g)]
    return (
        np.concatenate(chunks, axis=0)
        if chunks
        else np.empty((0, 2), dtype=INDEX_DTYPE)
    )


def coveredge_preprocess(
    ctx: RankContext, chunk: InputChunk, grid: ProcessorGrid, cfg: TC2DConfig
) -> tuple[tuple, tuple, tuple[int, np.ndarray], dict[str, int]]:
    """Cover-edge preprocessing: relabeling, BFS levels, cover split.

    Reuses tc2d's steps 1–2 verbatim (cyclic redistribution + degree
    reorder), inserts the distributed BFS-level computation between
    them (levels are label-space-independent, but computing them before
    the reorder keeps label ownership contiguous for the lookups), then
    ships **two** block sets:

    * ``blocks_a`` — full adjacency row-major ("U" role) and
      column-major ("L" role) plus the cover-edge task block;
    * ``blocks_h`` — a standard tc2d U/L/task triple of the horizontal
      subgraph, built by :func:`split_and_distribute` on the filtered
      rows (so it inherits the offload path and the no-reorder degree
      comparison unchanged).

    Returns ``(blocks_a, blocks_h, (lo, labels), info)`` where ``info``
    carries the BFS round count and the local horizontal statistics.
    """
    comm = ctx.comm
    n = chunk.n
    p = comm.size
    q = grid.q

    rows = initial_redistribution(ctx, chunk, cfg)
    offsets = cyclic_bounds(n, p) if cfg.initial_cyclic else chunk_bounds(n, p)

    level, nbr_level, rounds = bfs_levels_distributed(ctx, rows, offsets, n)
    lens = rows.csr.row_lengths()
    horiz = nbr_level == np.repeat(level, lens)
    ctx.charge("scan", rows.csr.nnz)

    if cfg.degree_reorder:
        rows, row_labels = degree_reorder(ctx, rows, offsets, n, cfg)
    else:
        row_labels = rows.labels
    # The reorder translates entries in place (positions preserved), so
    # the per-occurrence horizontal mask stays aligned.
    lens = rows.csr.row_lengths()
    row_rep = np.repeat(row_labels, lens)
    cols = rows.csr.indices

    # -- pass A: full adjacency + cover tasks --------------------------------
    all_pairs = np.stack([row_rep, cols], axis=1)
    a_recv = _ship_pairs(ctx, all_pairs, q)
    cover_mask = horiz & (row_rep > cols)  # one orientation per cover edge
    c_recv = _ship_pairs(ctx, all_pairs[cover_mask], q)

    x, y = grid.coords(comm.rank)
    n_rows_local = grid.local_count(x, n)
    n_cols_local = grid.local_count(y, n)
    n_inner = (n + q - 1) // q
    # The adjacency matrix is symmetric, so one received pair set serves
    # both operand roles: (a, b) is row a of the row-major block and —
    # read as (row a, col b) — contributes a to column b of the
    # column-major block.
    u_a = build_block(
        "U-row", x, y, n_rows_local, n_inner, a_recv[:, 0] // q, a_recv[:, 1] // q
    )
    l_a = build_block(
        "L-col", y, x, n_cols_local, n_inner, a_recv[:, 1] // q, a_recv[:, 0] // q
    )
    task_a = build_block(
        "task", x, y, n_rows_local, n_cols_local,
        c_recv[:, 0] // q, c_recv[:, 1] // q,
    )
    ctx.charge("csr_build", u_a.nnz + l_a.nnz + task_a.nnz + n_rows_local)

    # -- pass H: tc2d on the horizontal subgraph -----------------------------
    h_lens = segment_sums(horiz.astype(INDEX_DTYPE), rows.csr.indptr)
    h_csr = CSR(
        rows.csr.n_rows,
        segment_lengths_to_offsets(h_lens),
        cols[horiz],
        n_cols=n,
    )
    rows_h = LocalRows(lo=rows.lo, hi=rows.hi, csr=h_csr)
    blocks_h = split_and_distribute(
        ctx, rows_h, row_labels, grid, n, cfg, offsets
    )

    info = {"bfs_rounds": rounds, "cover_local": int(np.count_nonzero(cover_mask))}
    return (u_a, l_a, task_a), blocks_h, (rows.lo, row_labels), info


def _cannon_pass(
    ctx: RankContext,
    grid: ProcessorGrid,
    cfg: TC2DConfig,
    u_block,
    l_block,
    task_block,
    *,
    label: str,
    tags: tuple[int, int, int, int],
    shift_base: int,
    amortized: bool,
    shift_records: list[tuple[int, float, int]],
    backend_uses: dict[str, int],
) -> tuple[int, int, int]:
    """One full Cannon rotation (skew + ``q`` count/shift epochs) over a
    block triple — the tc2d counting loop, parameterized by pass.

    Returns ``(local_sum, hash_builds, hash_fast_builds)``.  Charges,
    span labels, per-shift records and the Eq. 6 residue assertions are
    exactly tc2d's; ``shift_base`` offsets the recorded shift ids so the
    two passes stay distinguishable in one record stream.
    """
    comm = ctx.comm
    q = grid.q
    x, y = grid.coords(ctx.rank)
    offloading = ctx.engine.superstep is not None
    blob = cfg.blob_serialization
    tag_skew_u, tag_skew_l, tag_shift_u, tag_shift_l = tags

    def swap(old, new):
        ctx.free_mem(old.nbytes_estimate())
        ctx.alloc_mem(new.nbytes_estimate())
        return new

    if q > 1:
        du, su = grid.skew_u(x, y)
        u_block = swap(
            u_block, exchange_block(comm, u_block, du, su, blob, tag_skew_u)
        )
        dl, sl = grid.skew_l(x, y)
        l_block = swap(
            l_block, exchange_block(comm, l_block, dl, sl, blob, tag_skew_l)
        )

    task_ref: Any = None
    if offloading:
        ctx.put_resident((label, "task", ctx.rank), task_block.as_blob())
        task_ref = Resident((label, "task", ctx.rank))
    if amortized:
        # Schedule-ahead publication under pass-scoped keys (see tc2d):
        # Eq. 6 pins every epoch's operand content, so each rank's
        # current U/L blob covers its whole rotation.
        ctx.put_resident(
            (label, "U", x, u_block.inner_residue), u_block.as_blob()
        )
        ctx.put_resident(
            (label, "L", y, l_block.inner_residue), l_block.as_blob()
        )

    local_sum = 0
    hash_builds = 0
    hash_fast_builds = 0
    for z in range(q):
        ctx.fault_point(f"{label}:shift:{z}")
        expected = grid.operand_residue(x, y, z)
        if u_block.inner_residue != expected or l_block.inner_residue != expected:
            raise AssertionError(
                f"rank {ctx.rank} {label} step {z}: operands carry residues "
                f"(U={u_block.inner_residue}, L={l_block.inner_residue}), "
                f"expected {expected}"
            )
        working_set = (
            u_block.nbytes_estimate()
            + l_block.nbytes_estimate()
            + task_block.nbytes_estimate()
        )
        t0 = ctx.clock.now
        bname, kernel_fn = resolve_backend(
            cfg.kernel_backend, task_block, u_block, l_block, cfg
        )
        if offloading:
            if amortized:
                operands = (
                    task_ref,
                    Resident((label, "U", x, expected)),
                    Resident((label, "L", y, expected)),
                )
            else:
                operands = (task_ref, u_block.as_blob(), l_block.as_blob())
            payload = ctx.offload(
                KERNEL_JOB_ENTRY,
                operands,
                meta={
                    "backend": bname,
                    "cfg": cfg,
                    "rank": ctx.rank,
                    "shift": shift_base + z,
                },
                label=f"kernel:{bname}",
            )
            st = KernelStats(**payload)
        else:
            st = kernel_fn(task_block, u_block, l_block, cfg)
        backend_uses[bname] = backend_uses.get(bname, 0) + 1
        ctx.charge("row_visit", st.row_visits, working_set)
        ctx.charge("task", st.tasks, working_set)
        ctx.charge("hash_insert_fast", st.insert_steps_fast, working_set)
        ctx.charge("hash_insert", st.insert_steps_slow, working_set)
        ctx.charge("hash_probe_fast", st.probe_steps_fast, working_set)
        ctx.charge("hash_probe", st.probe_steps_slow, working_set)
        local_sum += st.triangles
        hash_builds += st.hash_builds
        hash_fast_builds += st.hash_fast_builds
        if ctx.tracer.enabled:
            ctx.tracer.span_point(
                t0, ctx.clock.now, ctx.rank, "compute",
                f"kernel:{bname}", shift=shift_base + z, tasks=st.tasks,
            )
        if cfg.track_per_shift:
            shift_records.append((shift_base + z, ctx.clock.now - t0, st.tasks))

        if z < q - 1:
            ctx.fault_point(f"{label}:shift:{z}:exchange")
            du, su = grid.shift_u(x, y)
            u_block = swap(
                u_block,
                exchange_block(comm, u_block, du, su, blob, tag_shift_u),
            )
            dl, sl = grid.shift_l(x, y)
            l_block = swap(
                l_block,
                exchange_block(comm, l_block, dl, sl, blob, tag_shift_l),
            )
            nxt = grid.operand_residue(x, y, z + 1)
            if u_block.inner_residue != nxt or l_block.inner_residue != nxt:
                raise AssertionError(
                    f"rank {ctx.rank} {label} step {z}: exchange delivered "
                    f"blocks with residues (U={u_block.inner_residue}, "
                    f"L={l_block.inner_residue}), expected {nxt}"
                )

    # Cannon's memory property per pass: exactly one U and one L block
    # live; release this pass's working set before the next begins.
    for blk in (u_block, l_block, task_block):
        ctx.free_mem(blk.nbytes_estimate())
    return local_sum, hash_builds, hash_fast_builds


def coveredge_rank_program(
    ctx: RankContext,
    chunks: list[InputChunk],
    cfg: TC2DConfig,
    caches: tuple[Any, Any] | None = None,
) -> dict[str, Any]:
    """SPMD program for cover-edge counting (public for tests/examples).

    ``caches`` is an optional pair of
    :class:`~repro.graph.store.RunCache` handles — one per pass
    ("cover", "horiz").  Both hitting switches the rank into a ``cache``
    phase that loads all six blocks (the ``ppt`` phase is entered empty,
    exactly like tc2d's warm path); anything less runs preprocessing
    cold and persists whichever entries are writable.
    """
    comm = ctx.comm
    grid = ProcessorGrid.for_ranks(comm.size)
    q = grid.q
    chunk = chunks[ctx.rank]
    cache_a, cache_h = caches if caches is not None else (None, None)
    warm = (
        cache_a is not None and cache_a.hit
        and cache_h is not None and cache_h.hit
    )
    offloading = ctx.engine.superstep is not None
    amortized = (
        offloading and cfg.dispatch == "amortized" and ctx.engine.faults is None
    )
    info: dict[str, int] = {"bfs_rounds": -1, "cover_local": 0}

    if warm:
        with ctx.phase("cache"):
            t0 = ctx.clock.now
            u_a, l_a, task_a, nbytes_a = cache_a.load_rank(ctx.rank)
            u_h, l_h, task_h, nbytes_h = cache_h.load_rank(ctx.rank)
            ctx.charge("cache_io", nbytes_a + nbytes_h)
            if ctx.tracer.enabled:
                ctx.tracer.span_point(
                    t0, ctx.clock.now, ctx.rank, "cache",
                    f"cache:load:{cache_a.digest[:12]}",
                    nbytes=nbytes_a + nbytes_h,
                )
            for blk in (u_a, l_a, task_a, u_h, l_h, task_h):
                ctx.alloc_mem(blk.nbytes_estimate())
            comm.barrier()
        with ctx.phase("ppt"):
            pass  # keeps run.phase_time("ppt") defined (and zero)
        info["cover_local"] = task_a.nnz
    else:
        with ctx.phase("ppt"):
            blocks_a, blocks_h, (lo, labels), info = coveredge_preprocess(
                ctx, chunk, grid, cfg
            )
            u_a, l_a, task_a = blocks_a
            u_h, l_h, task_h = blocks_h
            for cache, blocks in ((cache_a, blocks_a), (cache_h, blocks_h)):
                if cache is not None and cache.writable and not cache.hit:
                    cache.save_rank(ctx.rank, blocks[0], blocks[1], blocks[2],
                                    lo, labels)
            for blk in (u_a, l_a, task_a, u_h, l_h, task_h):
                ctx.alloc_mem(blk.nbytes_estimate())
            comm.barrier()
    counters_ppt = dict(ctx.counters)

    shift_records: list[tuple[int, float, int]] = []
    backend_uses: dict[str, int] = {}
    with ctx.phase("tct"):
        cover_sum, hb_a, hfb_a = _cannon_pass(
            ctx, grid, cfg, u_a, l_a, task_a,
            label="cover", tags=_TAGS_COVER, shift_base=0,
            amortized=amortized, shift_records=shift_records,
            backend_uses=backend_uses,
        )
        h_count, hb_h, hfb_h = _cannon_pass(
            ctx, grid, cfg, u_h, l_h, task_h,
            label="horiz", tags=_TAGS_HORIZ, shift_base=q,
            amortized=amortized, shift_records=shift_records,
            backend_uses=backend_uses,
        )
        total_cover = comm.allreduce(cover_sum, SUM)
        total_h = comm.allreduce(h_count, SUM)
        total = int(total_cover) - 2 * int(total_h)

    counters_total = dict(ctx.counters)
    counters_tct = {
        k: counters_total.get(k, 0.0) - counters_ppt.get(k, 0.0)
        for k in counters_total
        if counters_total.get(k, 0.0) != counters_ppt.get(k, 0.0)
    }
    return {
        "total": total,
        "local": int(cover_sum) - 2 * int(h_count),
        "cover_sum": int(total_cover),
        "horizontal_triangles": int(total_h),
        "cover_edges_local": int(info.get("cover_local", 0)),
        "bfs_rounds": int(info.get("bfs_rounds", -1)),
        "counters_ppt": counters_ppt,
        "counters_tct": counters_tct,
        "shifts": shift_records,
        "hash_builds": hb_a + hb_h,
        "hash_fast_builds": hfb_a + hfb_h,
        "backend_uses": backend_uses,
    }


def _merge_counters(dicts: list[dict[str, float]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0.0) + v
    return out


def _open_run_caches(
    cache: Any,
    graph: Graph,
    p: int,
    cfg: TC2DConfig,
    model: MachineModel | None,
    dataset: str,
) -> tuple[Any, Any]:
    """Coerce ``cache=`` into the per-pass ``RunCache`` pair.

    Accepts ``None``, ``True`` (default store root), a path or a
    ``GraphStore`` — the same spellings tc2d's driver takes, except an
    already-opened single ``RunCache`` (cover-edge needs two entries).
    """
    if cache is None:
        return None, None
    from repro.graph.store import GraphStore, RunCache, resolve_store

    if isinstance(cache, RunCache):
        raise TypeError(
            "count_triangles_coveredge stores two artifacts per run; pass a "
            "GraphStore (or path / True) instead of an opened RunCache"
        )
    store: GraphStore = resolve_store(cache)
    cache_a = store.open_run(
        graph, p, cfg, model=model, source=dataset, key_extra={"pass": "cover"}
    )
    cache_h = store.open_run(
        graph, p, cfg, model=model, source=dataset, key_extra={"pass": "horiz"}
    )
    return cache_a, cache_h


def _finish_run_caches(
    cache_a: Any, cache_h: Any, result: TriangleCountResult
) -> None:
    """Finalize cold entries / replay a warm run's recorded ppt stats.

    Mirrors tc2d's warm-replay contract: on a double hit the recorded
    preprocessing statistics (valid for the matching machine-model
    fingerprint) replace the live — empty — ``ppt`` measurements, and
    ``result.extras["cache"]`` reports what happened in the same shape
    tc2d uses (plus the second pass's digest).
    """
    if cache_a is None:
        return
    warm = cache_a.hit and cache_h.hit
    if warm:
        recorded = cache_a.recorded_ppt()
        if recorded is not None:
            result.ppt_time = float(recorded["ppt_time"])
            result.comm_fraction_ppt = float(recorded["comm_fraction_ppt"])
            result.counters_ppt = dict(recorded["counters_ppt"])
        else:
            result.ppt_time = 0.0
            result.comm_fraction_ppt = 0.0
        result.extras["cache"] = {
            "hit": True,
            "digest": cache_a.digest,
            "horiz_digest": cache_h.digest,
            "nbytes": cache_a.loaded_nbytes + cache_h.loaded_nbytes,
            "replayed_ppt": recorded is not None,
            "mapped_ranks": cache_a.mapped_ranks + cache_h.mapped_ranks,
            "file_serving": False,
        }
        return
    ppt_stats = {
        "ppt_time": result.ppt_time,
        "comm_fraction_ppt": result.comm_fraction_ppt,
        "counters_ppt": result.counters_ppt,
    }
    stored = []
    for cache in (cache_a, cache_h):
        if cache.writable and not cache.hit:
            stored.append(cache.finalize(ppt_stats=ppt_stats))
    result.extras["cache"] = {
        "hit": False,
        "digest": cache_a.digest,
        "horiz_digest": cache_h.digest,
        "stored": bool(stored) and all(stored),
    }


def count_triangles_coveredge(
    graph: Graph,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    trace: bool = False,
    dataset: str = "",
    keep_run: bool = False,
    superstep: SuperstepPool | None = None,
    cache: Any = None,
    telemetry: Any = None,
) -> TriangleCountResult:
    """Count the triangles of ``graph`` with the cover-edge algorithm on
    ``p`` simulated ranks (perfect square).

    The parameters match :func:`~repro.core.tc2d.count_triangles_2d`
    exactly — same config object, executors, tracing, caching and
    telemetry plumbing — and the returned count is bit-identical to
    tc2d's (both are exact).  Result ``extras`` additionally carry a
    ``"coveredge"`` record: the cover-set size, the two partial sums of
    the closed formula and the BFS propagation round count.

    ``cache`` accepts ``None`` / ``True`` / a path / a ``GraphStore``;
    the run addresses **two** store entries (one per pass) whose digests
    include the ``algorithm`` store-key component plus a per-pass
    marker, so cover-edge artifacts never collide with tc2d's.
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    if cfg.algorithm != "coveredge":
        cfg = cfg.replace(algorithm="coveredge")
    ProcessorGrid.for_ranks(p)  # validates perfect square early
    cache_a, cache_h = _open_run_caches(cache, graph, p, cfg, model, dataset)
    warm = (
        cache_a is not None and cache_a.hit
        and cache_h is not None and cache_h.hit
    )
    chunks: list[Any] = [None] * p if warm else partition_1d(graph, p)
    pool = superstep
    owned = False
    if pool is None and cfg.executor == "parallel":
        pool = SuperstepPool(
            workers=cfg.workers,
            timeout=cfg.real_timeout,
            dispatch_mode="perjob" if cfg.dispatch == "perjob" else "batched",
        )
        owned = True
    try:
        if telemetry is not None:
            if pool is not None:
                telemetry.attach_pool(pool)
            telemetry.begin_run(label=f"{dataset or 'graph'}-p{p}")
        engine = Engine(
            p,
            model=model,
            trace=trace,
            real_timeout=cfg.real_timeout,
            superstep=pool,
            telemetry=telemetry,
        )
        try:
            run: RunResult = engine.run(
                coveredge_rank_program, chunks, cfg, (cache_a, cache_h)
            )
        except BaseException as exc:
            if telemetry is not None:
                telemetry.crash_dump(reason=type(exc).__name__)
            raise
        result = assemble_coveredge_result(
            run, p, cfg, dataset=dataset, keep_run=keep_run or trace
        )
        _finish_run_caches(cache_a, cache_h, result)
        if pool is not None:
            result.extras["executor"] = "parallel"
            result.extras["workers"] = pool.workers
            result.extras["dispatch"] = cfg.dispatch
            result.extras["worker_spans"] = pool.drain_spans()
        if telemetry is not None:
            result.extras["telemetry"] = telemetry.summarize(
                result=result, run=run, model=engine.model, cfg=cfg
            )
        return result
    finally:
        for c in (cache_a, cache_h):
            if c is not None:
                c.close()
        if owned:
            pool.shutdown()


def assemble_coveredge_result(
    run: RunResult,
    p: int,
    cfg: TC2DConfig,
    dataset: str = "",
    keep_run: bool = False,
) -> TriangleCountResult:
    """Build the result record from a finished cover-edge run — the same
    validations and extras tc2d's assembler performs, plus the
    ``extras["coveredge"]`` decomposition record."""
    rets = run.returns
    count = rets[0]["total"]
    if any(r["total"] != count for r in rets):
        raise AssertionError("ranks disagree on the reduced triangle count")
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("local partial sums do not sum to the count")

    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="coveredge",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        counters_ppt=_merge_counters([r["counters_ppt"] for r in rets]),
        counters_tct=_merge_counters([r["counters_tct"] for r in rets]),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
        shift_records=[
            ShiftRecord(shift=z, rank=rank, compute_seconds=dt, tasks=nt)
            for rank, r in enumerate(rets)
            for (z, dt, nt) in r["shifts"]
        ],
        hash_builds=sum(r["hash_builds"] for r in rets),
        hash_fast_builds=sum(r["hash_fast_builds"] for r in rets),
    )
    result.extras["makespan"] = run.makespan
    result.extras["mem_peak_bytes"] = max(run.mem_peaks) if run.mem_peaks else 0
    result.extras["kernel_backend"] = cfg.kernel_backend
    uses: dict[str, int] = {}
    for r in rets:
        for name, n in r["backend_uses"].items():
            uses[name] = uses.get(name, 0) + n
    result.extras["kernel_backend_uses"] = uses
    rounds = max(r["bfs_rounds"] for r in rets)
    result.extras["coveredge"] = {
        "cover_edges": sum(r["cover_edges_local"] for r in rets),
        "cover_sum": rets[0]["cover_sum"],
        "horizontal_triangles": rets[0]["horizontal_triangles"],
        "bfs_rounds": rounds if rounds >= 0 else None,
    }
    if keep_run:
        result.extras["run"] = run
    return result
