"""Small vectorized array helpers shared by the distributed kernels."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import INDEX_DTYPE


def multirange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+l) for s, l in zip(starts, lengths)]``
    without a Python loop.

    This is the gather pattern the counting kernel uses to pull all the
    probe fragments of one task row out of a CSC structure in one numpy
    operation.
    """
    starts = np.asarray(starts, dtype=INDEX_DTYPE)
    lengths = np.asarray(lengths, dtype=INDEX_DTYPE)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    nonzero = lengths > 0
    if not nonzero.all():
        starts = starts[nonzero]
        lengths = lengths[nonzero]
    if len(starts) == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    total = int(lengths.sum())
    steps = np.ones(total, dtype=INDEX_DTYPE)
    steps[0] = starts[0]
    ends = np.cumsum(lengths)
    # At each segment boundary, jump from (previous end - 1) to next start.
    steps[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(steps)


def segment_lengths_to_offsets(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix-sum offsets (CSR indptr) for segment lengths."""
    lengths = np.asarray(lengths, dtype=INDEX_DTYPE)
    out = np.zeros(len(lengths) + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=out[1:])
    return out


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` given CSR-style ``offsets``.

    Empty segments sum to zero.  Used by the triangle-support kernel to
    turn per-probe hit masks into per-task triangle counts.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=INDEX_DTYPE)
    if len(offsets) == 0:
        raise ValueError("offsets must have at least one element")
    nseg = len(offsets) - 1
    if nseg == 0:
        return np.zeros(0, dtype=np.int64)
    csum = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=csum[1:])
    return csum[offsets[1:]] - csum[offsets[:-1]]


def split_by_owner(
    owners: np.ndarray, payload: np.ndarray, num_owners: int
) -> list[np.ndarray]:
    """Partition ``payload`` rows by their ``owners`` id.

    Returns a list of ``num_owners`` arrays; the concatenation of the
    pieces is a permutation of ``payload``.  This is the local side of
    every all-to-all redistribution in the preprocessing pipeline.
    """
    owners = np.asarray(owners, dtype=INDEX_DTYPE)
    payload = np.asarray(payload)
    if len(owners) != len(payload):
        raise ValueError("owners and payload must align")
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    sorted_payload = payload[order]
    counts = np.bincount(sorted_owners, minlength=num_owners)
    offsets = segment_lengths_to_offsets(counts)
    return [
        sorted_payload[offsets[r] : offsets[r + 1]] for r in range(num_owners)
    ]
