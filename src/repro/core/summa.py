"""SUMMA-based triangle counting on rectangular processor grids.

The paper's conclusion notes the 2D algorithm "can be easily extended to
deal with rectangular processor grids using the SUMMA algorithm" [22].
This module implements that extension: ranks form a ``pr x pc`` grid, the
task matrix C[L] is cell-cyclically distributed over it, and the inner
(triangle-closing) dimension is cut into ``T = lcm(pr, pc)`` contiguous
panels.  Panel ``t`` of U lives on grid column ``t % pc`` and panel ``t``
of L on grid row ``t % pr``; step ``t`` broadcasts the U panel along each
grid row and the L panel down each grid column, then every rank counts its
tasks against the pair — the classic SUMMA owner-broadcast pattern instead
of Cannon's shifts.

Preprocessing steps 1-2 (cyclic redistribution, degree reordering) are
shared with the Cannon pipeline; only the final distribution differs.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.arrayutil import split_by_owner
from repro.core.blocks import Block, build_block
from repro.core.config import TC2DConfig
from repro.core.counts import TriangleCountResult
from repro.core.kernels import resolve_backend
from repro.core.preprocess import (
    InputChunk,
    chunk_bounds,
    cyclic_bounds,
    degree_reorder,
    initial_redistribution,
    partition_1d,
)
from repro.graph.csr import INDEX_DTYPE, Graph
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext

import numpy as np


def _panels(n: int, pr: int, pc: int) -> tuple[int, int]:
    """(number of panels T, panel width w) for the inner dimension."""
    T = pr * pc // math.gcd(pr, pc)
    w = max(1, (n + T - 1) // T)
    return T, w


def summa_rank_program(
    ctx: RankContext, chunks: list[InputChunk], pr: int, pc: int, cfg: TC2DConfig
) -> dict[str, Any]:
    """SPMD program for the SUMMA variant on a ``pr x pc`` grid."""
    comm = ctx.comm
    if comm.size != pr * pc:
        raise ValueError(f"need {pr * pc} ranks for a {pr}x{pc} grid")
    chunk = chunks[ctx.rank]
    n = chunk.n
    x, y = divmod(ctx.rank, pc)
    T, w = _panels(n, pr, pc)

    with ctx.phase("ppt"):
        rows = initial_redistribution(ctx, chunk, cfg)
        offsets = (
            cyclic_bounds(n, comm.size)
            if cfg.initial_cyclic
            else chunk_bounds(n, comm.size)
        )
        if cfg.degree_reorder:
            rows, row_labels = degree_reorder(ctx, rows, offsets, n)
        else:
            row_labels = rows.labels

        lens = rows.csr.row_lengths()
        row_rep = np.repeat(row_labels, lens)
        cols = rows.csr.indices
        upper = cols > row_rep
        ctx.charge("scan", rows.csr.nnz)
        # U entries (i, k), i < k: rows cyclic over grid rows, inner k in
        # panels over grid columns.
        ui, uk = row_rep[upper], cols[upper]
        dest_u = (ui % pr) * pc + (uk // w) % pc
        # L entries (k, j), k > j: inner k in panels over grid rows,
        # columns cyclic over grid columns.
        lk, lj = row_rep[~upper], cols[~upper]
        dest_l = (lk // w) % pr * pc + lj % pc
        # Task entries: the L pattern, cell-cyclic like the Cannon variant.
        dest_t = (lk % pr) * pc + lj % pc

        def ship(dest, a, b):
            parts = split_by_owner(dest, np.stack([a, b], axis=1), comm.size)
            got = comm.alltoallv(parts)
            keep = [g for g in got if len(g)]
            return (
                np.concatenate(keep, axis=0)
                if keep
                else np.empty((0, 2), dtype=INDEX_DTYPE)
            )

        u_recv = ship(dest_u, ui, uk)
        l_recv = ship(dest_l, lk, lj)
        t_recv = ship(dest_t, lk, lj)

        n_rows_local = (n - x + pr - 1) // pr if x < n else 0
        n_cols_local = (n - y + pc - 1) // pc if y < n else 0
        task_block = build_block(
            "task",
            x,
            y,
            n_rows_local,
            n_cols_local,
            t_recv[:, 0] // pr,
            t_recv[:, 1] // pc,
        )
        # Per-panel U sub-blocks (only panels this rank owns: t % pc == y).
        # Panel entries keep *global* inner ids: both operands index the
        # same k-space, so intersection works without a panel-local remap.
        u_panels: dict[int, Block] = {}
        up = (u_recv[:, 1] // w).astype(INDEX_DTYPE)
        for t in range(T):
            if t % pc != y:
                continue
            sel = up == t
            u_panels[t] = build_block(
                "U-row", x, t, n_rows_local, n, u_recv[sel, 0] // pr, u_recv[sel, 1]
            )
        l_panels: dict[int, Block] = {}
        lp = (l_recv[:, 0] // w).astype(INDEX_DTYPE)
        for t in range(T):
            if t % pr != x:
                continue
            sel = lp == t
            l_panels[t] = build_block(
                "L-col", y, t, n_cols_local, n, l_recv[sel, 1] // pc, l_recv[sel, 0]
            )
        ctx.charge("csr_build", task_block.nnz + u_recv.shape[0] + l_recv.shape[0])
        row_comm = comm.split(color=x, key=y)
        col_comm = comm.split(color=y, key=x)
        comm.barrier()
    counters_ppt = dict(ctx.counters)

    local_count = 0
    backend_uses: dict[str, int] = {}
    with ctx.phase("tct"):
        for t in range(T):
            u_root = t % pc
            l_root = t % pr
            u_blk = row_comm.bcast(u_panels.get(t), root=u_root)
            l_blk = col_comm.bcast(l_panels.get(t), root=l_root)
            working_set = (
                u_blk.nbytes_estimate()
                + l_blk.nbytes_estimate()
                + task_block.nbytes_estimate()
            )
            bname, kernel_fn = resolve_backend(
                cfg.kernel_backend, task_block, u_blk, l_blk, cfg
            )
            st = kernel_fn(task_block, u_blk, l_blk, cfg)
            backend_uses[bname] = backend_uses.get(bname, 0) + 1
            ctx.charge("row_visit", st.row_visits, working_set)
            ctx.charge("task", st.tasks, working_set)
            ctx.charge("hash_insert_fast", st.insert_steps_fast, working_set)
            ctx.charge("hash_insert", st.insert_steps_slow, working_set)
            ctx.charge("hash_probe_fast", st.probe_steps_fast, working_set)
            ctx.charge("hash_probe", st.probe_steps_slow, working_set)
            local_count += st.triangles
        total = comm.allreduce(local_count, SUM)

    counters_total = dict(ctx.counters)
    counters_tct = {
        k: counters_total.get(k, 0.0) - counters_ppt.get(k, 0.0)
        for k in counters_total
        if counters_total.get(k, 0.0) != counters_ppt.get(k, 0.0)
    }
    return {
        "total": int(total),
        "local": int(local_count),
        "counters_ppt": counters_ppt,
        "counters_tct": counters_tct,
        "backend_uses": backend_uses,
    }


def count_triangles_summa(
    graph: Graph,
    pr: int,
    pc: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    dataset: str = "",
    trace: bool = False,
    keep_run: bool = False,
) -> TriangleCountResult:
    """Count triangles on a rectangular ``pr x pc`` grid with SUMMA-style
    owner broadcasts (the paper's proposed extension).

    Only the ``jik`` enumeration is supported (the task matrix is the L
    pattern); all Section 5.2 kernel optimizations apply unchanged.
    ``trace`` records a full engine event trace; with ``trace`` or
    ``keep_run`` the raw :class:`RunResult` lands in
    ``result.extras["run"]`` (same contract as
    :func:`~repro.core.tc2d.count_triangles_2d`).
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    if cfg.enumeration != "jik":
        raise ValueError("the SUMMA variant implements the jik enumeration only")
    p = pr * pc
    chunks = partition_1d(graph, p)
    engine = Engine(p, model=model, trace=trace)
    run = engine.run(summa_rank_program, chunks, pr, pc, cfg)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("local counts do not sum to the global count")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm=f"summa-{pr}x{pc}",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
    )
    result.counters_ppt = {}
    result.counters_tct = {}
    for r in rets:
        for k, v in r["counters_ppt"].items():
            result.counters_ppt[k] = result.counters_ppt.get(k, 0.0) + v
        for k, v in r["counters_tct"].items():
            result.counters_tct[k] = result.counters_tct.get(k, 0.0) + v
    result.extras["makespan"] = run.makespan
    result.extras["kernel_backend"] = cfg.kernel_backend
    uses: dict[str, int] = {}
    for r in rets:
        for name, n in r["backend_uses"].items():
            uses[name] = uses.get(name, 0) + n
    result.extras["kernel_backend_uses"] = uses
    if keep_run or trace:
        result.extras["run"] = run
    return result
