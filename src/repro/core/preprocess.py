"""Distributed preprocessing (Section 5.3 of the paper).

Starting from a 1D block distribution of the raw graph, each rank:

1. **initial cyclic redistribution** — vertex ``v`` moves to rank
   ``v % p`` and every id is relabeled with the closed-form permutation
   that makes the cyclic layout block-contiguous again; this breaks up
   localized clusters of dense vertices before any degree-dependent work;
2. **degree reordering** — a distributed counting sort relabels vertices
   in non-decreasing degree (max-degree allreduce, per-degree histogram
   allreduce + exclusive scan, stable local placement), then adjacency
   entries are translated by querying each entry's owner (the
   "communication step with all nodes" the paper charges to this phase);
3. **U/L split + 2D cyclic distribution** — each edge occurrence is
   classified as an upper- or lower-triangular entry by comparing endpoint
   positions (degrees) and shipped to the grid rank owning its cell
   ``(i % q, j % q)``; receivers assemble the travelling U/L blocks and the
   resident task block.

All heavy loops are vectorized; logical operation counts are charged to
the virtual clock per step so the modeled "ppt" time has the same
structure as the paper's cost analysis
(``p + m/p + n/p + log p + dmax + dmax log p``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arrayutil import multirange, segment_lengths_to_offsets, split_by_owner
from repro.core.blocks import Block, build_block
from repro.core.config import TC2DConfig
from repro.core.grid import ProcessorGrid
from repro.graph.csr import CSR, INDEX_DTYPE, Graph
from repro.simmpi import MAX, SUM
from repro.simmpi.engine import RankContext
from repro.simmpi.parallel import take_result_arrays

#: Worker entry points for the offloaded hot phases (string literals, not
#: imports from :mod:`repro.core.superstep` — that module imports the pure
#: helpers below, so importing it here would be circular; the pool
#: resolves entries by import at submit time, when both modules exist).
_SORT_JOB_ENTRY = "repro.core.superstep:sort_job"
_BUILD_JOB_ENTRY = "repro.core.superstep:build_blocks_job"


def _offload_ppt(ctx: RankContext, cfg: TC2DConfig | None) -> bool:
    """Whether this rank should run preprocessing hot phases on the pool.

    Requires an attached superstep pool *and* ``cfg.offload_ppt``; the
    result is bit-identical either way (the offloaded functions are pure
    and every virtual-clock charge is computed rank-side from sizes), so
    this is purely a wall-clock routing decision.
    """
    return (
        cfg is not None
        and cfg.offload_ppt
        and getattr(ctx.engine, "superstep", None) is not None
    )


@dataclass(frozen=True)
class InputChunk:
    """One rank's slice of the initially 1D-block-distributed graph.

    Attributes
    ----------
    start:
        First global vertex id of the chunk.
    n:
        Total vertex count of the graph.
    csr:
        Adjacency rows for vertices ``start .. start + csr.n_rows - 1``
        with *global* column ids.
    """

    start: int
    n: int
    csr: CSR


def chunk_bounds(n: int, p: int) -> np.ndarray:
    """Offsets (length p+1) of the balanced contiguous 1D partition."""
    base, extra = divmod(n, p)
    sizes = np.full(p, base, dtype=INDEX_DTYPE)
    sizes[:extra] += 1
    return segment_lengths_to_offsets(sizes)


def partition_1d(graph: Graph, p: int) -> list[InputChunk]:
    """Driver-side split of a graph into the initial 1D block distribution."""
    bounds = chunk_bounds(graph.n, p)
    chunks = []
    for r in range(p):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        indptr = graph.adj.indptr[lo : hi + 1] - graph.adj.indptr[lo]
        indices = graph.adj.indices[
            graph.adj.indptr[lo] : graph.adj.indptr[hi]
        ].copy()
        chunks.append(
            InputChunk(start=lo, n=graph.n, csr=CSR(hi - lo, indptr.copy(), indices))
        )
    return chunks


def cyclic_bounds(n: int, p: int) -> np.ndarray:
    """Offsets of the block-contiguous layout after cyclic relabeling:
    rank r owns the (relabeled) images of ``{v : v % p == r}``."""
    sizes = np.array(
        [(n - r + p - 1) // p if r < n else 0 for r in range(p)],
        dtype=INDEX_DTYPE,
    )
    return segment_lengths_to_offsets(sizes)


@dataclass
class LocalRows:
    """A rank's working set between preprocessing steps: rows labeled in
    the current label space, stored contiguously for ``[lo, hi)``."""

    lo: int
    hi: int
    csr: CSR  # rows indexed by (label - lo), entries in current label space

    @property
    def labels(self) -> np.ndarray:
        """The contiguous vertex labels this rank owns: ``[lo, hi)``."""
        return np.arange(self.lo, self.hi, dtype=INDEX_DTYPE)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of each owned vertex, in label order."""
        return self.csr.row_lengths()


# ---------------------------------------------------------------------------
# step 1: initial cyclic redistribution
# ---------------------------------------------------------------------------


def _cyclic_relabel(v: np.ndarray, n: int, p: int, offsets: np.ndarray) -> np.ndarray:
    """Closed-form permutation lambda1(v) = offsets[v % p] + v // p."""
    v = np.asarray(v, dtype=INDEX_DTYPE)
    return offsets[v % p] + v // p


def initial_redistribution(
    ctx: RankContext, chunk: InputChunk, cfg: TC2DConfig
) -> LocalRows:
    """Step 1: move every vertex to rank ``v % p`` with relabeled ids.

    With ``cfg.initial_cyclic`` off this is a no-op repackaging of the
    input chunk (labels unchanged, bounds = the driver's block bounds).
    """
    comm = ctx.comm
    p = comm.size
    n = chunk.n
    if not cfg.initial_cyclic:
        bounds = chunk_bounds(n, p)
        lo, hi = int(bounds[comm.rank]), int(bounds[comm.rank + 1])
        return LocalRows(lo=lo, hi=hi, csr=chunk.csr)

    offsets = cyclic_bounds(n, p)
    old_labels = chunk.start + np.arange(chunk.csr.n_rows, dtype=INDEX_DTYPE)
    owners = old_labels % p
    new_row_labels = _cyclic_relabel(old_labels, n, p, offsets)
    new_entries = _cyclic_relabel(chunk.csr.indices, n, p, offsets)
    lens = chunk.csr.row_lengths()
    ctx.charge("relabel", chunk.csr.nnz + chunk.csr.n_rows)

    # Reorder rows by destination, then slice per destination.
    order = np.argsort(owners, kind="stable")
    counts = np.bincount(owners, minlength=p)
    row_off = segment_lengths_to_offsets(counts)
    labels_sorted = new_row_labels[order]
    lens_sorted = lens[order]
    gather = multirange(chunk.csr.indptr[order], lens_sorted)
    entries_sorted = new_entries[gather] if len(gather) else new_entries[:0]
    ent_off = segment_lengths_to_offsets(lens_sorted)

    packages = []
    for r in range(p):
        rl, rh = int(row_off[r]), int(row_off[r + 1])
        packages.append(
            (
                labels_sorted[rl:rh],
                lens_sorted[rl:rh],
                entries_sorted[int(ent_off[rl]) : int(ent_off[rh])],
            )
        )
    received = comm.alltoallv(packages)

    labels = np.concatenate([x[0] for x in received])
    rlens = np.concatenate([x[1] for x in received])
    ents = np.concatenate([x[2] for x in received])
    lo, hi = int(offsets[comm.rank]), int(offsets[comm.rank + 1])
    # Assemble rows ordered by new label; entries stay per-row contiguous.
    order = np.argsort(labels, kind="stable")
    if len(labels) != hi - lo or (
        len(labels) and not np.array_equal(np.sort(labels), np.arange(lo, hi))
    ):
        raise AssertionError("cyclic redistribution lost or duplicated rows")
    lens_o = rlens[order]
    src_off = segment_lengths_to_offsets(rlens)
    gather = multirange(src_off[:-1][order], lens_o)
    ents_o = ents[gather] if len(gather) else ents[:0]
    indptr = segment_lengths_to_offsets(lens_o)
    ctx.charge("csr_build", len(ents_o) + (hi - lo))
    return LocalRows(lo=lo, hi=hi, csr=CSR(hi - lo, indptr, ents_o, n_cols=n))


# ---------------------------------------------------------------------------
# step 2: degree reordering via distributed counting sort
# ---------------------------------------------------------------------------


def _owner_of(labels: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Owning rank of each label under a contiguous layout with offsets."""
    return np.searchsorted(offsets, labels, side="right").astype(INDEX_DTYPE) - 1


def translate_labels(
    ctx: RankContext,
    entries: np.ndarray,
    offsets: np.ndarray,
    my_values: np.ndarray,
) -> np.ndarray:
    """Map each label in ``entries`` through a distributed table.

    ``my_values[k]`` is the mapped value of label ``offsets[rank] + k``;
    every rank calls this collectively.  One request all-to-all (unique
    labels only) plus one reply all-to-all.
    """
    comm = ctx.comm
    p = comm.size
    uniq = np.unique(np.asarray(entries, dtype=INDEX_DTYPE))
    owners = _owner_of(uniq, offsets)
    requests = split_by_owner(owners, uniq, p)
    got_requests = comm.alltoallv(requests)
    my_lo = int(offsets[comm.rank])
    replies = [my_values[np.asarray(q, dtype=INDEX_DTYPE) - my_lo] for q in got_requests]
    ctx.charge("scan", sum(len(q) for q in got_requests))
    got_replies = comm.alltoallv(replies)
    # Ownership is by contiguous ranges, so concatenating per-rank replies
    # in rank order re-aligns them with the sorted unique labels.
    values = (
        np.concatenate(got_replies) if uniq.size else np.empty(0, INDEX_DTYPE)
    )
    ctx.charge("relabel", len(entries) + len(uniq))
    return values[np.searchsorted(uniq, entries)]


def counting_sort_placement(
    d: np.ndarray, global_start: np.ndarray, prior: np.ndarray
) -> np.ndarray:
    """Pure local step of the distributed counting sort: the new label of
    each owned vertex given its degree ``d[k]``, the global start offset
    of every degree bucket and the counts contributed by lower ranks.

    Deterministic (stable argsort breaks ties by local position), which
    is what lets it run either inline or on a pool worker
    (:func:`repro.core.superstep.sort_job`) with bit-identical output.
    """
    n_local = len(d)
    order = np.argsort(d, kind="stable")
    d_sorted = d[order]
    group_first = np.searchsorted(d_sorted, d_sorted, side="left")
    within = np.arange(n_local, dtype=INDEX_DTYPE) - group_first
    new_sorted = global_start[d_sorted] + prior[d_sorted] + within
    new_labels = np.empty(n_local, dtype=INDEX_DTYPE)
    new_labels[order] = new_sorted
    return new_labels


def degree_reorder(
    ctx: RankContext,
    rows: LocalRows,
    offsets: np.ndarray,
    n: int,
    cfg: TC2DConfig | None = None,
) -> tuple[LocalRows, np.ndarray]:
    """Step 2: relabel vertices in non-decreasing degree order.

    Returns the rows with relabeled row-ids *implicit* (the function
    returns ``(rows, new_row_labels)``; entries are already translated).
    Ties order by (owning rank, local stable position), which makes the
    permutation deterministic.  With ``cfg.offload_ppt`` and a pool
    attached, the local placement runs on a worker (the collectives
    around it stay on the scheduler).
    """
    comm = ctx.comm
    d = rows.degrees.astype(INDEX_DTYPE)
    n_local = len(d)

    # Global max degree: one scan + allreduce (the paper's log p term).
    local_max = int(d.max()) if n_local else 0
    ctx.charge("scan", n_local)
    dmax = comm.allreduce(local_max, MAX)

    # Per-degree histogram; element-wise allreduce + exclusive scan give
    # each rank the global start of every degree bucket and the counts
    # contributed by lower ranks (the paper's dmax + dmax log p terms).
    hist = np.bincount(d, minlength=dmax + 1).astype(INDEX_DTYPE)
    ctx.charge("scan", n_local + dmax + 1)
    total_hist = comm.allreduce(hist, SUM)
    global_start = np.zeros(dmax + 1, dtype=INDEX_DTYPE)
    np.cumsum(total_hist[:-1], out=global_start[1:])
    prior = comm.exscan(hist, SUM)
    if prior is None:
        prior = np.zeros(dmax + 1, dtype=INDEX_DTYPE)
    ctx.charge("sort", dmax + 1)

    # Stable local placement within each degree bucket.  The charge is a
    # pure function of n_local, so routing the computation through the
    # pool leaves the virtual clock untouched.
    if _offload_ppt(ctx, cfg):
        out = ctx.offload(
            _SORT_JOB_ENTRY,
            (d, global_start, prior),
            meta={"rank": comm.rank},
            label="ppt:sort",
        )
        new_labels = take_result_arrays(out)[0]
    else:
        new_labels = counting_sort_placement(d, global_start, prior)
    ctx.charge("sort", n_local)

    # Translate adjacency entries through the distributed old->new table.
    new_entries = translate_labels(ctx, rows.csr.indices, offsets, new_labels)
    relabeled = CSR(n_local, rows.csr.indptr.copy(), new_entries, n_cols=n)
    return LocalRows(lo=rows.lo, hi=rows.hi, csr=relabeled), new_labels


# ---------------------------------------------------------------------------
# step 3: U/L split + 2D cyclic distribution
# ---------------------------------------------------------------------------


def assemble_blocks(
    u_recv: np.ndarray,
    l_recv: np.ndarray,
    x: int,
    y: int,
    q: int,
    n_rows_local: int,
    n_cols_local: int,
    n_inner: int,
    enumeration: str,
) -> tuple[Block, Block, Block]:
    """Pure tail of step 3: build ``(u_block, l_block, task_block)`` from
    the received U/L coordinate pairs.

    All inputs are plain arrays and scalars, so the assembly (CSR builds
    with deterministic stable sorts) can run inline or on a pool worker
    (:func:`repro.core.superstep.build_blocks_job`) with bit-identical
    blocks.
    """
    u_block = build_block(
        "U-row", x, y, n_rows_local, n_inner, u_recv[:, 0] // q, u_recv[:, 1] // q
    )
    # L stored column-major: outer = column (lower endpoint), inner = row.
    l_block = build_block(
        "L-col", y, x, n_cols_local, n_inner, l_recv[:, 1] // q, l_recv[:, 0] // q
    )
    if enumeration == "jik":
        task_src = l_recv  # tasks = non-zeros of L: (row j, col i)
    else:
        task_src = u_recv  # tasks = non-zeros of U: (row i, col j)
    task_block = build_block(
        "task",
        x,
        y,
        n_rows_local,
        n_cols_local,
        task_src[:, 0] // q,
        task_src[:, 1] // q,
    )
    return u_block, l_block, task_block


def split_and_distribute(
    ctx: RankContext,
    rows: LocalRows,
    row_labels: np.ndarray,
    grid: ProcessorGrid,
    n: int,
    cfg: TC2DConfig,
    offsets: np.ndarray,
) -> tuple[Block, Block, Block]:
    """Step 3: classify each edge occurrence as U or L and ship it to the
    grid rank owning its matrix cell; build the three local blocks.

    ``row_labels[k]`` is the (possibly reordered) label of local row ``k``;
    entries of ``rows.csr`` are already in the same label space.  When the
    degree reorder is disabled, positions are compared by ``(degree,
    label)`` instead, which requires fetching neighbor degrees (one more
    all-to-all) exactly as the paper describes.
    """
    comm = ctx.comm
    q = grid.q
    lens = rows.csr.row_lengths()
    row_rep = np.repeat(row_labels, lens)
    cols = rows.csr.indices
    ctx.charge("scan", rows.csr.nnz)

    if cfg.degree_reorder:
        upper = cols > row_rep
    else:
        deg_rep = np.repeat(rows.degrees.astype(INDEX_DTYPE), lens)
        deg_cols = translate_labels(
            ctx, cols, offsets, rows.degrees.astype(INDEX_DTYPE)
        )
        upper = (deg_cols > deg_rep) | ((deg_cols == deg_rep) & (cols > row_rep))

    u_pairs = np.stack([row_rep[upper], cols[upper]], axis=1)
    l_pairs = np.stack([row_rep[~upper], cols[~upper]], axis=1)

    def ship(pairs: np.ndarray) -> np.ndarray:
        dest = (pairs[:, 0] % q) * q + pairs[:, 1] % q
        parts = split_by_owner(dest, pairs, comm.size)
        got = comm.alltoallv(parts)
        chunks = [g for g in got if len(g)]
        return (
            np.concatenate(chunks, axis=0)
            if chunks
            else np.empty((0, 2), dtype=INDEX_DTYPE)
        )

    u_recv = ship(u_pairs)
    l_recv = ship(l_pairs)
    x, y = grid.coords(comm.rank)

    n_rows_local = grid.local_count(x, n)
    n_cols_local = grid.local_count(y, n)
    n_inner = (n + q - 1) // q  # bound on any residue class's local extent

    if _offload_ppt(ctx, cfg):
        # Ship the pair arrays to a worker, get back the three block
        # blobs through shared memory (crc-verified on reconstruction).
        # The csr_build charge below only needs sizes, and the blob
        # round trip is exactly the checkpoint-restore representation,
        # so the blocks are bit-identical to inline assembly.
        out = ctx.offload(
            _BUILD_JOB_ENTRY,
            (u_recv.reshape(-1), l_recv.reshape(-1)),
            meta={
                "rank": comm.rank,
                "x": x,
                "y": y,
                "q": q,
                "n_rows_local": n_rows_local,
                "n_cols_local": n_cols_local,
                "n_inner": n_inner,
                "enumeration": cfg.enumeration,
            },
            label="ppt:build",
        )
        u_blob, l_blob, task_blob = take_result_arrays(out)
        u_block = Block.from_blob(u_blob)
        l_block = Block.from_blob(l_blob)
        task_block = Block.from_blob(task_blob)
    else:
        u_block, l_block, task_block = assemble_blocks(
            u_recv, l_recv, x, y, q, n_rows_local, n_cols_local, n_inner,
            cfg.enumeration,
        )
    ctx.charge(
        "csr_build", u_block.nnz + l_block.nnz + task_block.nnz + n_rows_local
    )
    return u_block, l_block, task_block


# ---------------------------------------------------------------------------
# full preprocessing phase
# ---------------------------------------------------------------------------


def preprocess(
    ctx: RankContext, chunk: InputChunk, grid: ProcessorGrid, cfg: TC2DConfig
) -> tuple[Block, Block, Block]:
    """Run steps 1-3 and return ``(u_block, l_block, task_block)``."""
    blocks, _labels = preprocess_with_labels(ctx, chunk, grid, cfg)
    return blocks


def preprocess_with_labels(
    ctx: RankContext, chunk: InputChunk, grid: ProcessorGrid, cfg: TC2DConfig
) -> tuple[tuple[Block, Block, Block], tuple[int, np.ndarray]]:
    """Like :func:`preprocess`, additionally returning this rank's piece of
    the relabeling table: ``(lo, labels)`` where ``labels[k]`` is the final
    (degree-sorted) label of the lambda1-space vertex ``lo + k``.

    The triangle-enumeration driver gathers these pieces to translate
    emitted triples back into the caller's original vertex ids.
    """
    comm = ctx.comm
    n = chunk.n
    p = comm.size
    rows = initial_redistribution(ctx, chunk, cfg)
    offsets = cyclic_bounds(n, p) if cfg.initial_cyclic else chunk_bounds(n, p)
    if cfg.degree_reorder:
        rows, row_labels = degree_reorder(ctx, rows, offsets, n, cfg)
    else:
        row_labels = rows.labels
    blocks = split_and_distribute(ctx, rows, row_labels, grid, n, cfg, offsets)
    return blocks, (rows.lo, row_labels)
