"""The collect-everything alternative the paper rejects (Section 5.1).

Before settling on Cannon's pattern, the paper considers the obvious
formulation: "having each processor first collect the necessary rows and
column blocks of matrices U and L, respectively, and then proceed to
perform the required computations — such an approach will increase the
memory overhead of the algorithm."

This module implements exactly that rejected design so the claim can be
measured: rank (x, y) allgathers the full block row ``U_{x,*}`` along its
grid row and the full block column ``L_{*,y}`` down its grid column, then
counts every residue locally with zero further communication.  The
counting result is identical; the per-rank memory high-water mark holds
``2 * sqrt(p)`` travelling blocks instead of Cannon's 2 — the
``sqrt(p)``-factor overhead the paper's memory-scalability argument is
about (see ``benchmarks/test_memory_scalability.py``).
"""

from __future__ import annotations

from typing import Any

from repro.core.config import TC2DConfig
from repro.core.counts import TriangleCountResult
from repro.core.grid import ProcessorGrid
from repro.core.intersect import count_block_pair
from repro.core.preprocess import InputChunk, partition_1d, preprocess
from repro.graph.csr import Graph
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


def tc2d_allgather_rank_program(
    ctx: RankContext, chunks: list[InputChunk], cfg: TC2DConfig
) -> dict[str, Any]:
    """SPMD program: preprocess as usual, then allgather instead of shift."""
    comm = ctx.comm
    grid = ProcessorGrid.for_ranks(comm.size)
    q = grid.q
    chunk = chunks[ctx.rank]

    with ctx.phase("ppt"):
        u_block, l_block, task_block = preprocess(ctx, chunk, grid, cfg)
        for blk in (u_block, l_block, task_block):
            ctx.alloc_mem(blk.nbytes_estimate())
        comm.barrier()
    counters_ppt = dict(ctx.counters)

    x, y = grid.coords(ctx.rank)
    local_count = 0
    with ctx.phase("tct"):
        # Collect the whole block row of U and block column of L up front.
        row_comm = comm.split(color=x, key=y)
        col_comm = comm.split(color=y, key=x)
        u_blocks = row_comm.allgather(u_block)  # index j -> inner residue j
        l_blocks = col_comm.allgather(l_block)  # index i -> inner residue i
        for blk in u_blocks:
            if blk is not u_block:
                ctx.alloc_mem(blk.nbytes_estimate())
        for blk in l_blocks:
            if blk is not l_block:
                ctx.alloc_mem(blk.nbytes_estimate())

        for zp in range(q):
            ub = u_blocks[zp]
            lb = l_blocks[zp]
            working_set = (
                ub.nbytes_estimate()
                + lb.nbytes_estimate()
                + task_block.nbytes_estimate()
            )
            st = count_block_pair(task_block, ub, lb, cfg)
            ctx.charge("row_visit", st.row_visits, working_set)
            ctx.charge("task", st.tasks, working_set)
            ctx.charge("hash_insert_fast", st.insert_steps_fast, working_set)
            ctx.charge("hash_insert", st.insert_steps_slow, working_set)
            ctx.charge("hash_probe_fast", st.probe_steps_fast, working_set)
            ctx.charge("hash_probe", st.probe_steps_slow, working_set)
            local_count += st.triangles
        total = comm.allreduce(local_count, SUM)

    counters_total = dict(ctx.counters)
    counters_tct = {
        k: counters_total.get(k, 0.0) - counters_ppt.get(k, 0.0)
        for k in counters_total
        if counters_total.get(k, 0.0) != counters_ppt.get(k, 0.0)
    }
    return {
        "total": int(total),
        "local": int(local_count),
        "counters_ppt": counters_ppt,
        "counters_tct": counters_tct,
    }


def count_triangles_2d_allgather(
    graph: Graph,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    dataset: str = "",
    trace: bool = False,
    keep_run: bool = False,
) -> TriangleCountResult:
    """Run the rejected collect-first formulation (for comparison only).

    Returns the same result record as the Cannon driver;
    ``extras["mem_peak_bytes"]`` is where the two designs differ.
    ``trace``/``keep_run`` behave as in
    :func:`~repro.core.tc2d.count_triangles_2d`: the raw traced
    :class:`~repro.simmpi.engine.RunResult` lands in ``extras["run"]`` so
    the same span/byte accounting (and Perfetto export) works for both
    variants.
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    chunks = partition_1d(graph, p)
    engine = Engine(p, model=model, trace=trace)
    run = engine.run(tc2d_allgather_rank_program, chunks, cfg)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("allgather-variant local counts do not sum up")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="tc2d-allgather",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
    )
    from repro.instrument import merge_counters

    result.counters_ppt = merge_counters([r["counters_ppt"] for r in rets])
    result.counters_tct = merge_counters([r["counters_tct"] for r in rets])
    result.extras["makespan"] = run.makespan
    result.extras["mem_peak_bytes"] = max(run.mem_peaks) if run.mem_peaks else 0
    if keep_run or trace:
        result.extras["run"] = run
    return result
