"""Processor-grid index arithmetic for the 2D cyclic decomposition.

The paper arranges ``p`` ranks as a ``sqrt(p) x sqrt(p)`` grid; matrix
element (i, j) lives on grid position ``(i % q, j % q)`` with local indices
``(i // q, j // q)`` (Section 5.1: "the adjacency list of a vertex vi is
accessed using the transformed index vi / sqrt(p)").  This module
centralizes that arithmetic plus the Cannon shift/skew partner formulas so
the algorithm and its tests share one source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def exact_sqrt(p: int) -> int:
    """Integer square root of a perfect square; raises otherwise."""
    q = math.isqrt(p)
    if q * q != p:
        raise ValueError(
            f"the 2D algorithm needs a perfect-square rank count, got p={p}"
        )
    return q


@dataclass(frozen=True)
class ProcessorGrid:
    """A ``q x q`` grid over ranks ``0..q*q-1`` in row-major order."""

    q: int

    @property
    def p(self) -> int:
        """Total rank count."""
        return self.q * self.q

    @classmethod
    def for_ranks(cls, p: int) -> "ProcessorGrid":
        """Grid for a perfect-square total rank count."""
        return cls(exact_sqrt(p))

    # -- rank <-> coordinates ------------------------------------------------

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates (row x, col y) of a rank."""
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} outside grid of {self.p}")
        return divmod(rank, self.q)[0], rank % self.q

    def rank_of(self, x: int, y: int) -> int:
        """Rank at grid position (x, y) (coordinates taken mod q)."""
        return (x % self.q) * self.q + (y % self.q)

    # -- element / block ownership --------------------------------------------

    def owner_of_entry(self, i: int, j: int) -> int:
        """Rank owning matrix element (i, j) under cell-by-cell cyclic
        distribution."""
        return self.rank_of(i % self.q, j % self.q)

    def local_id(self, v: int) -> int:
        """Transformed local index of global id ``v`` (``v // q``)."""
        return v // self.q

    def local_count(self, residue: int, n: int) -> int:
        """How many of the ids ``0..n-1`` are congruent to ``residue``."""
        if n <= residue:
            return 0
        return (n - residue + self.q - 1) // self.q

    def global_id(self, residue: int, local: int) -> int:
        """Inverse of (residue, local_id): ``local * q + residue``."""
        return local * self.q + residue

    # -- Cannon movement -------------------------------------------------------
    #
    # Equation 6: at step z, P(x, y) works on U_{x, (x+y+z)%q} and
    # L_{(x+y+z)%q, y}.  (The prose in Section 5.1 states the initial-skew
    # destination with the opposite sign; the formulas here follow
    # Equation 6, which is the self-consistent version.)

    def skew_u(self, x: int, y: int) -> tuple[int, int]:
        """(dest, source) ranks for the initial skew of the local U block
        held by P(x, y)."""
        dest = self.rank_of(x, y - x)
        src = self.rank_of(x, y + x)
        return dest, src

    def skew_l(self, x: int, y: int) -> tuple[int, int]:
        """(dest, source) ranks for the initial skew of the local L block."""
        dest = self.rank_of(x - y, y)
        src = self.rank_of(x + y, y)
        return dest, src

    def shift_u(self, x: int, y: int) -> tuple[int, int]:
        """(dest, source) for the per-step leftward shift of U blocks."""
        return self.rank_of(x, y - 1), self.rank_of(x, y + 1)

    def shift_l(self, x: int, y: int) -> tuple[int, int]:
        """(dest, source) for the per-step upward shift of L blocks."""
        return self.rank_of(x - 1, y), self.rank_of(x + 1, y)

    def operand_residue(self, x: int, y: int, z: int) -> int:
        """The inner residue z' = (x + y + z) % q processed at step z."""
        return (x + y + z) % self.q
