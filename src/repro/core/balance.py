"""Distribution load-balance analysis (Section 5.1's design argument).

The paper argues that a naive 2D *block* partitioning of the task matrix
is doubly imbalanced — the upper-triangular structure empties the blocks
on one side of the diagonal, and the degree ordering concentrates heavy
rows/columns at high indices — while a cell-by-cell *cyclic* distribution
assigns every rank a near-equal share of tasks, light and heavy alike.

This module quantifies that claim: :func:`task_distribution_stats`
computes the exact per-rank task counts the two schemes would assign for a
given graph and grid, and the associated imbalance ratios.  It also
weights tasks by the work of their map-based intersection (the product of
fragment lengths), since equal task counts with unequal task costs is
precisely the failure mode the degree ordering induces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.serial import degree_order_upper
from repro.core.grid import ProcessorGrid
from repro.graph.csr import INDEX_DTYPE, Graph

SCHEMES = ("cyclic", "block")


@dataclass(frozen=True)
class DistributionStats:
    """Per-rank task load under one distribution scheme.

    Attributes
    ----------
    scheme:
        ``"cyclic"`` (the paper's choice) or ``"block"`` (the naive
        alternative it rejects).
    tasks_per_rank:
        Number of C[L] non-zeros each rank owns.
    work_per_rank:
        Intersection work proxy per rank: sum over owned tasks of
        ``min(d_U(j), d_U(i))`` (the probe-side fragment bound).
    """

    scheme: str
    tasks_per_rank: np.ndarray
    work_per_rank: np.ndarray

    @property
    def task_imbalance(self) -> float:
        """max/avg ratio of per-rank task counts (1.0 = perfect)."""
        avg = self.tasks_per_rank.mean()
        return float(self.tasks_per_rank.max() / avg) if avg > 0 else 1.0

    @property
    def work_imbalance(self) -> float:
        """max/avg ratio of per-rank intersection work."""
        avg = self.work_per_rank.mean()
        return float(self.work_per_rank.max() / avg) if avg > 0 else 1.0

    @property
    def empty_ranks(self) -> int:
        """Ranks that receive no tasks at all."""
        return int(np.count_nonzero(self.tasks_per_rank == 0))


def task_distribution_stats(
    graph: Graph, p: int, scheme: str = "cyclic"
) -> DistributionStats:
    """Exact per-rank task loads for C[L] under a 2D distribution scheme.

    The graph is degree-reordered first (as the algorithm always does);
    tasks are the non-zeros of L, i.e. each edge (i, j) with j the later
    endpoint produces the task at matrix cell (j, i).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    grid = ProcessorGrid.for_ranks(p)
    q = grid.q
    U = degree_order_upper(graph)
    rows, cols = U.to_coo()  # (i, j) with i < j in degree order
    # Task cell = (j, i) in L.
    tj, ti = cols, rows
    n = graph.n
    if scheme == "cyclic":
        owner = (tj % q) * q + (ti % q)
    else:
        block = max(1, (n + q - 1) // q)
        owner = np.minimum(tj // block, q - 1) * q + np.minimum(ti // block, q - 1)

    tasks_per_rank = np.bincount(owner, minlength=p).astype(np.int64)

    # Work proxy: probe-side fragment length bound per task.
    du = U.row_lengths().astype(np.int64)
    work = np.minimum(du[ti], du[tj])
    work_per_rank = np.zeros(p, dtype=np.int64)
    np.add.at(work_per_rank, owner, work)

    return DistributionStats(
        scheme=scheme,
        tasks_per_rank=tasks_per_rank,
        work_per_rank=work_per_rank,
    )


def compare_distributions(graph: Graph, p: int) -> dict[str, DistributionStats]:
    """Both schemes side by side (the Section 5.1 design comparison)."""
    return {s: task_distribution_stats(graph, p, s) for s in SCHEMES}
