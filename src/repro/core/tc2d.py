"""The 2D parallel triangle counting algorithm (Sections 5.1-5.3).

:func:`count_triangles_2d` is the public driver: it lays the graph out in
the initial 1D block distribution, launches one SPMD rank program per
virtual rank on the simulated-MPI engine, and assembles the result record.

Each rank program:

1. runs the preprocessing pipeline (phase ``"ppt"``): cyclic
   redistribution, degree reordering, U/L split, 2D cyclic distribution;
2. performs Cannon's initial skew, then ``sqrt(p)`` rounds of
   *count local blocks -> shift U left -> shift L up* (phase ``"tct"``),
   accumulating the local triangle count;
3. joins a global sum-reduction of the count.

Correctness invariant (checked by the kernel every step): the U and L
blocks a rank processes always carry the same inner residue
``z' = (x + y + z) % q`` — Equation 6 of the paper.
"""

from __future__ import annotations

from typing import Any

from repro.core.blocks import exchange_block
from repro.core.config import TC2DConfig
from repro.core.counts import ShiftRecord, TriangleCountResult
from repro.core.grid import ProcessorGrid
from repro.core.kernels import KernelStats, resolve_backend
from repro.core.preprocess import (
    InputChunk,
    partition_1d,
    preprocess,
    preprocess_with_labels,
)
from repro.core.superstep import KERNEL_JOB_ENTRY
from repro.graph.csr import Graph
from repro.simmpi import SUM, Engine, MachineModel, Resident, RunResult, SuperstepPool
from repro.simmpi.engine import RankContext

_TAG_SKEW_U = 100
_TAG_SKEW_L = 110
_TAG_SHIFT_U = 120
_TAG_SHIFT_L = 130


def tc2d_rank_program(
    ctx: RankContext,
    chunks: list[InputChunk],
    cfg: TC2DConfig,
    resilience: Any = None,
    cache: Any = None,
) -> dict[str, Any]:
    """SPMD program executed by every rank (public for tests/examples that
    want to run it on a custom engine).

    ``resilience`` (optional) is a
    :class:`~repro.resilience.recovery.ResilienceContext`: when provided,
    the rank restores its state from the latest complete checkpoint epoch
    (skipping preprocessing and the skew entirely) and snapshots its
    travelling blocks + partial count at every shift-step boundary, so a
    later attempt can resume mid-Cannon-rotation.  Named fault points
    (``"shift:z"``, ``"shift:z:exchange"``) are declared each step for the
    engine's fault injector.

    ``cache`` (optional) is a :class:`~repro.graph.store.RunCache`.  On a
    store **hit** the rank loads its crc-verified blocks inside a
    ``cache`` phase (charged at the ``cache_io`` rate) and the ``ppt``
    phase is entered but left empty, so phase reports stay well-defined
    and honest: the trace shows a cache span where preprocessing would
    have been.  On a **miss** preprocessing runs exactly as without a
    cache and each rank persists its blocks as an uncharged side effect —
    a cold cached run is bit-identical to an uncached run.  A checkpoint
    restore (mid-tct state) takes precedence over the cache (pre-tct
    state).
    """
    comm = ctx.comm
    grid = ProcessorGrid.for_ranks(comm.size)
    q = grid.q
    chunk = chunks[ctx.rank]

    snap = resilience.restore_snapshot(ctx.rank) if resilience is not None else None
    cache_hit = cache is not None and cache.hit and snap is None
    restored_count = 0
    start_z = 0
    x, y = grid.coords(ctx.rank)
    offloading = ctx.engine.superstep is not None
    # Amortized residency assumes block *content* is exchange-invariant
    # (only location rotates under Cannon's schedule).  A fault injector
    # can break that — corrupt faults rewrite payloads in flight — so
    # fault-injected runs quietly degrade to per-epoch transient blobs.
    amortized = (
        offloading and cfg.dispatch == "amortized" and ctx.engine.faults is None
    )
    # Warm hits whose rank files the driver pre-validated as mappable
    # (RunCache.premap) publish *file-backed* resident slots: workers
    # mmap the store file instead of receiving arena copies.
    file_serving = cache_hit and offloading and getattr(
        cache, "file_serving", False
    )
    mapped_task = False
    mapped_travelling = False
    if cache_hit:
        with ctx.phase("cache"):
            t0 = ctx.clock.now
            u_block, l_block, task_block, nbytes = cache.load_rank(ctx.rank)
            ctx.charge("cache_io", nbytes)
            if ctx.tracer.enabled:
                ctx.tracer.span_point(
                    t0, ctx.clock.now, ctx.rank, "cache",
                    f"cache:load:{cache.digest[:12]}", nbytes=nbytes,
                )
            for blk in (u_block, l_block, task_block):
                ctx.alloc_mem(blk.nbytes_estimate())
            if file_serving:
                # The task block is only referenced by this very rank, so
                # its file slot is safe under any dispatch mode.
                ctx.put_resident_file(
                    ("task", ctx.rank), cache.blob_slot(ctx.rank, "task")
                )
                mapped_task = True
            if file_serving and amortized:
                # Pre-skew schedule-ahead publication.  The stored U/L
                # blobs carry this rank's *pre-skew* inner residues; over
                # a grid row (column) those residues are a bijection onto
                # 0..q-1 exactly like the post-skew ones, so the key
                # union covers every epoch's operand and the bytes are
                # the very pages the skewed copies travelled as.  The
                # barrier below sequences the publications: every rank's
                # slots are live before any rank can submit a kernel that
                # references a grid peer's key.
                ctx.put_resident_file(
                    ("U", x, u_block.inner_residue),
                    cache.blob_slot(ctx.rank, "u"),
                )
                ctx.put_resident_file(
                    ("L", y, l_block.inner_residue),
                    cache.blob_slot(ctx.rank, "l"),
                )
                mapped_travelling = True
            comm.barrier()
        with ctx.phase("ppt"):
            pass  # keeps run.phase_time("ppt") defined (and zero)
    else:
        with ctx.phase("ppt"):
            if snap is None:
                if cache is not None and cache.writable:
                    blocks, (lo, labels) = preprocess_with_labels(
                        ctx, chunk, grid, cfg
                    )
                    u_block, l_block, task_block = blocks
                    cache.save_rank(
                        ctx.rank, u_block, l_block, task_block, lo, labels
                    )
                else:
                    u_block, l_block, task_block = preprocess(
                        ctx, chunk, grid, cfg
                    )
            else:
                # Restart path: the checkpoint replaces preprocessing.  The
                # blob deserialization checksum-verifies every block; the
                # residue assertion in the counting loop then proves the
                # restored operands sit exactly where the fault-free schedule
                # would have them.
                u_block, l_block, task_block = snap.blocks()
                restored_count = snap.local_count
                start_z = snap.epoch
                ctx.charge("checkpoint_io", snap.nbytes)
            for blk in (u_block, l_block, task_block):
                ctx.alloc_mem(blk.nbytes_estimate())
            comm.barrier()
    counters_ppt = dict(ctx.counters)

    def swap(old, new):
        # Memory accounting for a travelling block exchange: the outgoing
        # block is released once the replacement arrives (Cannon's pattern
        # keeps exactly one U and one L block live -- the memory-scalability
        # property Section 5.1 claims).
        ctx.free_mem(old.nbytes_estimate())
        ctx.alloc_mem(new.nbytes_estimate())
        return new

    local_count = restored_count
    shift_records: list[tuple[int, float, int]] = []
    hash_builds = 0
    hash_fast_builds = 0
    backend_uses: dict[str, int] = {}
    blob = cfg.blob_serialization
    task_ref: Any = None

    with ctx.phase("tct"):
        if snap is None:
            if q > 1:
                du, su = grid.skew_u(x, y)
                u_block = swap(
                    u_block,
                    exchange_block(comm, u_block, du, su, blob, _TAG_SKEW_U),
                )
                dl, sl = grid.skew_l(x, y)
                l_block = swap(
                    l_block,
                    exchange_block(comm, l_block, dl, sl, blob, _TAG_SKEW_L),
                )
            if resilience is not None:
                resilience.save(ctx, 0, local_count, u_block, l_block, task_block)

        if offloading:
            # The task block never travels: publish its blob once as a
            # resident slot and reference it every epoch instead of
            # re-serializing and re-copying it per shift.  (Skipped when
            # the cache phase already published the store file's bytes.)
            if not mapped_task:
                ctx.put_resident(("task", ctx.rank), task_block.as_blob())
            task_ref = Resident(("task", ctx.rank))
        if amortized and not mapped_travelling:
            # Schedule-ahead publication: Eq. 6 pins every later epoch's
            # operand *content* right now — blocks only rotate location.
            # Each rank publishing its current U/L blob keyed by (role,
            # fixed residue, inner residue) covers the rank's whole Cannon
            # schedule: at epoch z this rank reads ("U", x, (x+y+z) % q),
            # which a grid peer published under this very protocol.  All
            # publications precede the first dispatch because drains only
            # fire once every rank has parked on its epoch job.
            ctx.put_resident(("U", x, u_block.inner_residue), u_block.as_blob())
            ctx.put_resident(("L", y, l_block.inner_residue), l_block.as_blob())

        for z in range(start_z, q):
            ctx.fault_point(f"shift:{z}")
            expected = grid.operand_residue(x, y, z)
            if u_block.inner_residue != expected:
                raise AssertionError(
                    f"rank {ctx.rank} step {z}: U block carries residue "
                    f"{u_block.inner_residue}, expected {expected}"
                )
            working_set = (
                u_block.nbytes_estimate()
                + l_block.nbytes_estimate()
                + task_block.nbytes_estimate()
            )
            t0 = ctx.clock.now
            # Resolve per block pair so "auto" can pick differently shift
            # by shift (block shapes change as operands travel the grid).
            bname, kernel_fn = resolve_backend(
                cfg.kernel_backend, task_block, u_block, l_block, cfg
            )
            if offloading:
                # Parallel superstep: ship the block operands to the
                # worker pool and park; every rank's epoch-z kernel lands
                # in the same dispatch batch (the blocks are data-
                # independent — Eq. 6 pins all operands before any kernel
                # runs).  The returned stats are applied below exactly as
                # inline results would be, so clocks/counters/traces
                # match the sequential executor bit for bit.
                if amortized:
                    # Belt and braces for the resident lookup: the key is
                    # derived from the residue invariant, so prove the
                    # travelling block actually carries that residue
                    # before substituting the resident bytes for it.
                    if l_block.inner_residue != expected:
                        raise AssertionError(
                            f"rank {ctx.rank} step {z}: L block carries "
                            f"residue {l_block.inner_residue}, expected "
                            f"{expected}"
                        )
                    operands = (
                        task_ref,
                        Resident(("U", x, expected)),
                        Resident(("L", y, expected)),
                    )
                else:
                    # as_blob: exchanged blocks retain their wire buffer,
                    # so batched dispatch re-ships but never re-packs.
                    operands = (task_ref, u_block.as_blob(), l_block.as_blob())
                payload = ctx.offload(
                    KERNEL_JOB_ENTRY,
                    operands,
                    meta={
                        "backend": bname,
                        "cfg": cfg,
                        "rank": ctx.rank,
                        "shift": z,
                    },
                    label=f"kernel:{bname}",
                )
                st = KernelStats(**payload)
            else:
                st = kernel_fn(task_block, u_block, l_block, cfg)
            backend_uses[bname] = backend_uses.get(bname, 0) + 1
            ctx.charge("row_visit", st.row_visits, working_set)
            ctx.charge("task", st.tasks, working_set)
            ctx.charge("hash_insert_fast", st.insert_steps_fast, working_set)
            ctx.charge("hash_insert", st.insert_steps_slow, working_set)
            ctx.charge("hash_probe_fast", st.probe_steps_fast, working_set)
            ctx.charge("hash_probe", st.probe_steps_slow, working_set)
            local_count += st.triangles
            hash_builds += st.hash_builds
            hash_fast_builds += st.hash_fast_builds
            if ctx.tracer.enabled:
                ctx.tracer.span_point(
                    t0, ctx.clock.now, ctx.rank, "compute",
                    f"kernel:{bname}", shift=z, tasks=st.tasks,
                )
            if cfg.track_per_shift:
                shift_records.append((z, ctx.clock.now - t0, st.tasks))

            if z < q - 1:
                ctx.fault_point(f"shift:{z}:exchange")
                du, su = grid.shift_u(x, y)
                u_block = swap(
                    u_block,
                    exchange_block(comm, u_block, du, su, blob, _TAG_SHIFT_U),
                )
                dl, sl = grid.shift_l(x, y)
                l_block = swap(
                    l_block,
                    exchange_block(comm, l_block, dl, sl, blob, _TAG_SHIFT_L),
                )
                # Validate the incoming operands *before* any checkpoint
                # snapshot: a stale block (e.g. from an injected duplicate
                # delivery) must abort the step, not poison the on-disk
                # state a restart would restore from.
                nxt = grid.operand_residue(x, y, z + 1)
                if u_block.inner_residue != nxt or l_block.inner_residue != nxt:
                    raise AssertionError(
                        f"rank {ctx.rank} step {z}: exchange delivered blocks "
                        f"with residues (U={u_block.inner_residue}, "
                        f"L={l_block.inner_residue}), expected {nxt} "
                        "(stale or misrouted delivery)"
                    )
            if resilience is not None:
                resilience.save(
                    ctx, z + 1, local_count, u_block, l_block, task_block
                )

        total = comm.allreduce(local_count, SUM)

    counters_total = dict(ctx.counters)
    counters_tct = {
        k: counters_total.get(k, 0.0) - counters_ppt.get(k, 0.0)
        for k in counters_total
        if counters_total.get(k, 0.0) != counters_ppt.get(k, 0.0)
    }
    return {
        "total": int(total),
        "local": int(local_count),
        "counters_ppt": counters_ppt,
        "counters_tct": counters_tct,
        "shifts": shift_records,
        "hash_builds": hash_builds,
        "hash_fast_builds": hash_fast_builds,
        "backend_uses": backend_uses,
    }


def _merge_counters(dicts: list[dict[str, float]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0.0) + v
    return out


def _open_run_cache(
    cache: Any,
    graph: Graph,
    p: int,
    cfg: TC2DConfig,
    model: MachineModel | None,
    dataset: str,
) -> Any:
    """Driver helper: coerce ``cache=`` into a per-run ``RunCache``.

    Accepts ``None``, ``True`` (default store root), a path, a
    ``GraphStore`` or an already-opened ``RunCache``.  Imported lazily so
    :mod:`repro.core` never depends on the store at import time.
    """
    if cache is None:
        return None
    from repro.graph.store import GraphStore, RunCache, resolve_store

    if isinstance(cache, RunCache):
        return cache
    store: GraphStore = resolve_store(cache)
    return store.open_run(graph, p, cfg, model=model, source=dataset)


def _finish_run_cache(run_cache: Any, result: TriangleCountResult) -> None:
    """Driver helper: finalize a cold cached run / replay a warm one.

    Cold + writable: writes the entry manifest, recording the measured ppt
    statistics under the machine-model fingerprint.  Hit: replays the
    recorded ppt statistics (valid because the simulation is
    deterministic — they are exactly what a fresh run would measure) into
    the result so benchmark tables built off a warm store keep honest
    preprocessing columns.  Either way ``result.extras["cache"]`` records
    what happened.
    """
    if run_cache is None:
        return
    if run_cache.hit:
        recorded = run_cache.recorded_ppt()
        if recorded is not None:
            result.ppt_time = float(recorded["ppt_time"])
            result.comm_fraction_ppt = float(recorded["comm_fraction_ppt"])
            result.counters_ppt = dict(recorded["counters_ppt"])
        else:
            # No recording for this machine model: report the honest truth
            # — preprocessing did not run.  (The live ``ppt`` phase is
            # empty; the cross-rank phase_time would otherwise show only
            # barrier clock skew, not work.)
            result.ppt_time = 0.0
            result.comm_fraction_ppt = 0.0
        result.extras["cache"] = {
            "hit": True,
            "digest": run_cache.digest,
            "nbytes": run_cache.loaded_nbytes,
            "replayed_ppt": recorded is not None,
            "mapped_ranks": run_cache.mapped_ranks,
            "file_serving": getattr(run_cache, "file_serving", False),
        }
    else:
        wrote = run_cache.finalize(
            ppt_stats={
                "ppt_time": result.ppt_time,
                "comm_fraction_ppt": result.comm_fraction_ppt,
                "counters_ppt": result.counters_ppt,
            }
        )
        result.extras["cache"] = {
            "hit": False,
            "digest": run_cache.digest,
            "stored": wrote,
        }


def count_triangles_2d(
    graph: Graph,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    trace: bool = False,
    dataset: str = "",
    keep_run: bool = False,
    superstep: SuperstepPool | None = None,
    cache: Any = None,
    telemetry: Any = None,
) -> TriangleCountResult:
    """Count the triangles of ``graph`` with the 2D algorithm on ``p``
    simulated ranks (``p`` must be a perfect square).

    Parameters
    ----------
    graph:
        Undirected simple graph.
    p:
        Number of MPI ranks (perfect square; the paper sweeps 16..169).
    cfg:
        Feature toggles; defaults to all optimizations on, jik enumeration.
    model:
        Machine cost model for the virtual clock; defaults to
        :class:`MachineModel()`.
    trace:
        Record a full engine event trace in ``result.extras["run"]``.
        A :class:`~repro.simmpi.tracing.Tracer` instance is adopted
        as-is (live span callbacks; see the serve layer).
    dataset:
        Label copied into the result for reporting.
    keep_run:
        Keep the raw :class:`RunResult` in ``result.extras["run"]``.
    superstep:
        Existing :class:`~repro.simmpi.parallel.SuperstepPool` to reuse
        (worker spawn cost then amortizes across runs).  When omitted
        and ``cfg.executor == "parallel"``, a pool with ``cfg.workers``
        workers is created for this run and shut down afterwards.
    cache:
        Preprocessing cache (see :mod:`repro.graph.store`): ``True`` for
        the default store root, a path, a ``GraphStore`` or an opened
        ``RunCache``.  On a store hit the ppt phase is skipped — blocks
        load directly from disk under a ``cache`` span — and the result
        is bit-identical to a cold run; on a miss the artifact is
        written for next time.  ``result.extras["cache"]`` reports which
        happened.
    telemetry:
        Optional :class:`~repro.instrument.telemetry.Telemetry` session
        (started by the caller).  The run records per-phase executing
        wall time, pool dispatch buckets and memory/GC samples; the
        summary record lands in ``result.extras["telemetry"]`` and the
        flight recorder is dumped (``crash_dir`` permitting) when the
        run raises — including :class:`~repro.simmpi.errors.
        WorkerCrashError` from the parallel executor.  Counts, clocks,
        counters and traces are bit-identical with or without it.

    Returns
    -------
    TriangleCountResult
        Exact count plus simulated phase times, counters, per-shift
        records and hash statistics.  Under the parallel executor,
        ``extras`` additionally carries ``executor``, ``workers`` and
        the run's wall-clock ``worker_spans``.
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    ProcessorGrid.for_ranks(p)  # validates perfect square early
    run_cache = _open_run_cache(cache, graph, p, cfg, model, dataset)
    if run_cache is not None and run_cache.hit:
        # The 1D input partition only feeds preprocessing, which a store
        # hit skips entirely.
        chunks = [None] * p
    else:
        chunks = partition_1d(graph, p)
    pool = superstep
    owned = False
    if pool is None and cfg.executor == "parallel":
        # cfg.dispatch="amortized" is a rank-side residency protocol on
        # top of the pool's batched transport, so the pool itself only
        # distinguishes perjob from batched.  (A borrowed pool keeps its
        # own dispatch_mode; cfg.dispatch still governs residency.)
        pool = SuperstepPool(
            workers=cfg.workers,
            timeout=cfg.real_timeout,
            dispatch_mode="perjob" if cfg.dispatch == "perjob" else "batched",
        )
        owned = True
    if run_cache is not None and run_cache.hit and pool is not None:
        # Decide file-backed resident serving once, driver-side, so every
        # rank agrees (mixing protocols could leave residues unpublished
        # — see RunCache.premap).
        run_cache.premap(p)
    try:
        if telemetry is not None:
            if pool is not None:
                telemetry.attach_pool(pool)
            telemetry.begin_run(label=f"{dataset or 'graph'}-p{p}")
        engine = Engine(
            p,
            model=model,
            trace=trace,
            real_timeout=cfg.real_timeout,
            superstep=pool,
            telemetry=telemetry,
        )
        try:
            run: RunResult = engine.run(
                tc2d_rank_program, chunks, cfg, None, run_cache
            )
        except BaseException as exc:
            if telemetry is not None:
                telemetry.crash_dump(reason=type(exc).__name__)
            raise
        result = assemble_tc2d_result(
            run, p, cfg, dataset=dataset, keep_run=keep_run or trace
        )
        _finish_run_cache(run_cache, result)
        if pool is not None:
            result.extras["executor"] = "parallel"
            result.extras["workers"] = pool.workers
            result.extras["dispatch"] = cfg.dispatch
            result.extras["worker_spans"] = pool.drain_spans()
        if telemetry is not None:
            result.extras["telemetry"] = telemetry.summarize(
                result=result, run=run, model=engine.model, cfg=cfg
            )
        return result
    finally:
        if run_cache is not None:
            # Releases the per-digest writer lock even when the run (or
            # finalize) raised, so a crashed cold run cannot wedge other
            # writers of the same artifact until process exit.
            run_cache.close()
        if owned:
            pool.shutdown()


def assemble_tc2d_result(
    run: RunResult,
    p: int,
    cfg: TC2DConfig,
    dataset: str = "",
    keep_run: bool = False,
) -> TriangleCountResult:
    """Build the :class:`TriangleCountResult` record from a finished run.

    Shared by :func:`count_triangles_2d` and the resilience layer's
    restarting driver (which assembles the record from the first
    *successful* attempt, possibly one that resumed from a checkpoint).
    """
    rets = run.returns
    count = rets[0]["total"]
    if any(r["total"] != count for r in rets):
        raise AssertionError("ranks disagree on the reduced triangle count")
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("local counts do not sum to the global count")

    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="tc2d" if cfg.enumeration == "jik" else "tc2d-ijk",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        counters_ppt=_merge_counters([r["counters_ppt"] for r in rets]),
        counters_tct=_merge_counters([r["counters_tct"] for r in rets]),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
        shift_records=[
            ShiftRecord(shift=z, rank=rank, compute_seconds=dt, tasks=nt)
            for rank, r in enumerate(rets)
            for (z, dt, nt) in r["shifts"]
        ],
        hash_builds=sum(r["hash_builds"] for r in rets),
        hash_fast_builds=sum(r["hash_fast_builds"] for r in rets),
    )
    result.extras["makespan"] = run.makespan
    result.extras["mem_peak_bytes"] = max(run.mem_peaks) if run.mem_peaks else 0
    result.extras["kernel_backend"] = cfg.kernel_backend
    uses: dict[str, int] = {}
    for r in rets:
        for name, n in r["backend_uses"].items():
            uses[name] = uses.get(name, 0) + n
    result.extras["kernel_backend_uses"] = uses
    if keep_run:
        result.extras["run"] = run
    return result
