"""Worker-side entry points for the parallel superstep executor.

:func:`kernel_job` is what a :class:`~repro.simmpi.parallel.SuperstepPool`
worker runs for one rank of one Cannon epoch: it rebuilds the (task, U, L)
block triple **zero-copy** from the shared-memory arena via
:meth:`~repro.core.blocks.Block.from_blob` (the blob header's crc32 is
verified, so a corrupted segment fails loudly), runs the already-resolved
concrete kernel backend, and ships the logical
:class:`~repro.core.kernels.common.KernelStats` back as a plain dict —
the only bytes that cross the pickle channel.

:func:`sort_job` and :func:`build_blocks_job` offload the preprocessing
hot phases the same way (``cfg.offload_ppt``): the counting sort's local
placement and the U/L/task block assembly + blob serialization.  Their
outputs are arrays, which would be expensive to pickle, so they return
through :func:`~repro.simmpi.parallel.pack_result_arrays` — a worker-
created shared-memory segment the parent adopts and unlinks.

The rank program applies every returned result under the deterministic
scheduler (charges, counters, tracer spans, count accumulation), so each
worker computes a *pure function of the submitted bytes*: same inputs +
same config → same outputs, bit-identical to running the phase inline.

Backend resolution happens in the **parent** (``resolve_backend`` runs
rank-side before submission) for two reasons: the ``"auto"`` choice is
part of the observable result (span labels, ``backend_uses``), and
custom backends registered only in the parent process do not exist in
spawn workers unless a ``worker_init`` hook re-registers them — see
:func:`repro.simmpi.parallel._worker_initializer`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.core.blocks import Block
from repro.core.kernels import get_backend
from repro.core.preprocess import assemble_blocks, counting_sort_placement
from repro.simmpi.parallel import pack_result_arrays

#: Entry-point string rank programs pass to ``ctx.offload`` (resolved by
#: import inside each spawn worker).
KERNEL_JOB_ENTRY = "repro.core.superstep:kernel_job"

#: Preprocessing offload entries (see :mod:`repro.core.preprocess`, which
#: spells them as literals to avoid a circular import of this module).
SORT_JOB_ENTRY = "repro.core.superstep:sort_job"
BUILD_JOB_ENTRY = "repro.core.superstep:build_blocks_job"


def kernel_job(arrays: Sequence[np.ndarray], meta: dict) -> dict[str, Any]:
    """Run one per-rank intersection kernel from its block blobs.

    Parameters
    ----------
    arrays:
        ``(task_blob, u_blob, l_blob)`` — int64 block blobs as produced
        by :meth:`Block.to_blob`, viewed zero-copy out of the shm arena.
    meta:
        ``backend`` (concrete, non-auto backend name) and ``cfg`` (the
        run's :class:`~repro.core.config.TC2DConfig`); ``rank`` and
        ``shift`` ride along for error messages and worker-span tooling.

    Returns
    -------
    dict
        ``dataclasses.asdict`` of the kernel's ``KernelStats`` — plain
        ints, no views into the arena.
    """
    task_blob, u_blob, l_blob = arrays
    task_block = Block.from_blob(task_blob)
    u_block = Block.from_blob(u_blob)
    l_block = Block.from_blob(l_blob)
    kernel_fn = get_backend(meta["backend"])
    stats = kernel_fn(task_block, u_block, l_block, meta["cfg"])
    return dataclasses.asdict(stats)


def sort_job(arrays: Sequence[np.ndarray], meta: dict) -> dict[str, Any]:
    """Run the counting sort's pure local placement for one rank.

    ``arrays`` is ``(d, global_start, prior)`` — the owned degrees and
    the two exclusive-scan tables the collectives produced rank-side.
    Returns the relabeling table through a shm-return segment (it is
    ``n_local`` int64s — too big to pickle pointlessly).
    """
    d, global_start, prior = arrays
    return pack_result_arrays([counting_sort_placement(d, global_start, prior)])


def build_blocks_job(arrays: Sequence[np.ndarray], meta: dict) -> dict[str, Any]:
    """Assemble one rank's (U, L, task) blocks and serialize the blobs.

    ``arrays`` is the flattened received U/L coordinate pairs; ``meta``
    carries the grid scalars (``x, y, q, n_rows_local, n_cols_local,
    n_inner, enumeration``).  Returns the three ``Block.to_blob`` images
    through a shm-return segment; the parent reconstructs with the
    crc-verifying ``Block.from_blob`` — the same representation blocks
    already use for shifting and checkpointing, so offloaded assembly is
    bit-identical to inline assembly.
    """
    u_flat, l_flat = arrays
    u_recv = u_flat.reshape(-1, 2)
    l_recv = l_flat.reshape(-1, 2)
    u_block, l_block, task_block = assemble_blocks(
        u_recv,
        l_recv,
        meta["x"],
        meta["y"],
        meta["q"],
        meta["n_rows_local"],
        meta["n_cols_local"],
        meta["n_inner"],
        meta["enumeration"],
    )
    return pack_result_arrays(
        [u_block.to_blob(), l_block.to_blob(), task_block.to_blob()]
    )
