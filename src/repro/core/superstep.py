"""Worker-side entry point for the parallel counting superstep.

:func:`kernel_job` is what a :class:`~repro.simmpi.parallel.SuperstepPool`
worker runs for one rank of one Cannon epoch: it rebuilds the (task, U, L)
block triple **zero-copy** from the shared-memory arena via
:meth:`~repro.core.blocks.Block.from_blob` (the blob header's crc32 is
verified, so a corrupted segment fails loudly), runs the already-resolved
concrete kernel backend, and ships the logical
:class:`~repro.core.kernels.common.KernelStats` back as a plain dict —
the only bytes that cross the pickle channel.

The rank program applies the returned stats under the deterministic
scheduler (charges, counters, tracer spans, count accumulation), so the
worker computes a *pure function of the submitted bytes*: same blobs +
same config → same stats, bit-identical to running the kernel inline.

Backend resolution happens in the **parent** (``resolve_backend`` runs
rank-side before submission) for two reasons: the ``"auto"`` choice is
part of the observable result (span labels, ``backend_uses``), and
custom backends registered only in the parent process do not exist in
spawn workers unless a ``worker_init`` hook re-registers them — see
:func:`repro.simmpi.parallel._worker_initializer`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.core.blocks import Block
from repro.core.kernels import get_backend

#: Entry-point string rank programs pass to ``ctx.offload`` (resolved by
#: import inside each spawn worker).
KERNEL_JOB_ENTRY = "repro.core.superstep:kernel_job"


def kernel_job(arrays: Sequence[np.ndarray], meta: dict) -> dict[str, Any]:
    """Run one per-rank intersection kernel from its block blobs.

    Parameters
    ----------
    arrays:
        ``(task_blob, u_blob, l_blob)`` — int64 block blobs as produced
        by :meth:`Block.to_blob`, viewed zero-copy out of the shm arena.
    meta:
        ``backend`` (concrete, non-auto backend name) and ``cfg`` (the
        run's :class:`~repro.core.config.TC2DConfig`); ``rank`` and
        ``shift`` ride along for error messages and worker-span tooling.

    Returns
    -------
    dict
        ``dataclasses.asdict`` of the kernel's ``KernelStats`` — plain
        ints, no views into the arena.
    """
    task_blob, u_blob, l_blob = arrays
    task_block = Block.from_blob(task_blob)
    u_block = Block.from_blob(u_blob)
    l_block = Block.from_blob(l_blob)
    kernel_fn = get_backend(meta["backend"])
    stats = kernel_fn(task_block, u_block, l_block, meta["cfg"])
    return dataclasses.asdict(stats)
