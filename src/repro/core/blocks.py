"""2D block containers and their single-buffer ("blob") wire format.

A rank on the grid holds three structures (Section 5.1):

* its resident **task block** — the non-zeros of C[L] (or C[U] under ijk)
  assigned to it by the cell-by-cell cyclic distribution, stored row-major;
* a travelling **U block** — rows of U for its grid row's residue, columns
  for the current inner residue z', stored row-major (the hashed side);
* a travelling **L block** — columns of L for its grid column's residue,
  rows for z', stored column-major (the probe side).

The travelling blocks move with Cannon's pattern each step.  To avoid one
message per constituent array (and per-array pickling), the paper converts
each block to a single contiguous blob before the shifts begin
(Section 5.2); :meth:`Block.to_blob` / :meth:`Block.from_blob` implement
that, and :func:`exchange_block` falls back to one-message-per-array when
the optimization is disabled.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSR, INDEX_DTYPE
from repro.graph.dcsr import DCSR
from repro.simmpi.errors import BlobChecksumError

_KIND_CODES = {"U-row": 0, "L-col": 1, "task": 2}
_KIND_NAMES = {v: k for k, v in _KIND_CODES.items()}
_HEADER_LEN = 7


def blob_payload_crc32(indptr: np.ndarray, indices: np.ndarray) -> int:
    """crc32 over a block's payload arrays (indptr then indices).

    Computed over the raw int64 buffer bytes, so the value is stable
    across processes and restarts — checkpoint manifests record it and
    :meth:`Block.from_blob` verifies it on every deserialization.
    """
    crc = zlib.crc32(np.ascontiguousarray(indptr, dtype=INDEX_DTYPE).data)
    return zlib.crc32(np.ascontiguousarray(indices, dtype=INDEX_DTYPE).data, crc)


@dataclass
class Block:
    """One 2D block with enough metadata to keep shifting honest.

    Attributes
    ----------
    kind:
        ``"U-row"`` (row-major, hashed side), ``"L-col"`` (column-major,
        probe side) or ``"task"`` (row-major resident tasks).
    fixed_residue:
        Residue class of the dimension pinned to this rank (grid row for U,
        grid column for L).
    inner_residue:
        Residue class of the contracted dimension currently held; changes
        as the block travels through the grid.
    dcsr:
        The actual entries; outer dimension = rows for ``U-row``/``task``,
        columns for ``L-col``.
    """

    kind: str
    fixed_residue: int
    inner_residue: int
    dcsr: DCSR
    #: The source blob this block was deserialized from (set by
    #: :meth:`from_blob` / :meth:`from_mmap`, ``None`` for blocks built
    #: locally).  :meth:`as_blob` returns it instead of re-packing, so a
    #: cache-served block can be republished without a concatenate pass.
    blob: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KIND_CODES:
            raise ValueError(f"unknown block kind {self.kind!r}")

    @property
    def nnz(self) -> int:
        """Number of stored entries in the block."""
        return self.dcsr.nnz

    def nbytes_estimate(self) -> int:
        """Approximate resident bytes (payload plus header)."""
        return self.dcsr.nbytes_estimate() + 64

    # -- blob wire format -----------------------------------------------------

    def to_blob(self) -> np.ndarray:
        """Pack the block into one contiguous int64 buffer.

        Layout: [kind, fixed_residue, inner_residue, n_rows, n_cols, nnz,
        crc32] ++ indptr ++ indices.  The crc32 covers the payload arrays,
        so a blob corrupted on the (simulated) wire or on disk fails loudly
        in :meth:`from_blob` instead of silently skewing counts.  The
        non-empty-row list is recomputed on arrival (cheaper than shipping
        it).
        """
        csr = self.dcsr.csr
        header = np.array(
            [
                _KIND_CODES[self.kind],
                self.fixed_residue,
                self.inner_residue,
                csr.n_rows,
                csr.n_cols,
                csr.nnz,
                blob_payload_crc32(csr.indptr, csr.indices),
            ],
            dtype=INDEX_DTYPE,
        )
        return np.concatenate([header, csr.indptr, csr.indices])

    @classmethod
    def from_blob(cls, blob: np.ndarray) -> "Block":
        """Inverse of :meth:`to_blob` — **zero-copy**.

        The reconstructed block's ``indptr``/``indices`` are views into
        ``blob``, not copies: :meth:`to_blob` always packs into a fresh
        buffer that the sender drops after the exchange, so the arriving
        block is the buffer's sole owner and a deserialization copy would
        only burn memory bandwidth on the hot shift path.  Callers that
        deserialize a buffer they intend to keep mutating must pass
        ``blob.copy()`` themselves.

        The header crc32 is verified against the payload (one C-speed pass,
        no copy); a mismatch raises
        :class:`~repro.simmpi.errors.BlobChecksumError`.
        """
        blob = np.asarray(blob, dtype=INDEX_DTYPE)
        if len(blob) < _HEADER_LEN:
            raise ValueError("blob too short for a block header")
        kind_code, fixed, inner, n_rows, n_cols, nnz, crc = (
            int(x) for x in blob[:_HEADER_LEN]
        )
        if kind_code not in _KIND_NAMES:
            raise ValueError(f"bad block kind code {kind_code}")
        indptr_end = _HEADER_LEN + n_rows + 1
        indptr = blob[_HEADER_LEN:indptr_end]
        indices = blob[indptr_end : indptr_end + nnz]
        if len(indices) != nnz:
            raise ValueError("blob truncated: indices shorter than header claims")
        actual = blob_payload_crc32(indptr, indices)
        if actual != crc:
            raise BlobChecksumError(expected=crc, actual=actual)
        return cls(
            kind=_KIND_NAMES[kind_code],
            fixed_residue=fixed,
            inner_residue=inner,
            dcsr=DCSR(CSR(n_rows, indptr, indices, n_cols=n_cols)),
            blob=blob,
        )

    @classmethod
    def from_mmap(cls, buf, offset: int = 0) -> "Block":
        """Deserialize a block straight out of a memory-mapped buffer.

        ``buf`` is any object exposing the buffer protocol (typically an
        ``mmap.mmap`` opened read-only) and ``offset`` the byte position
        of the blob header within it.  The header is parsed first to size
        the blob, then the whole blob becomes a read-only
        ``np.frombuffer`` view — no bytes are copied, and the crc32
        verification pass is what faults the payload pages in.  A
        corrupted file raises
        :class:`~repro.simmpi.errors.BlobChecksumError` exactly like
        :meth:`from_blob` on a corrupted wire buffer.
        """
        header = np.frombuffer(
            buf, dtype=INDEX_DTYPE, count=_HEADER_LEN, offset=offset
        )
        n_rows, nnz = int(header[3]), int(header[5])
        total = _HEADER_LEN + n_rows + 1 + nnz
        blob = np.frombuffer(buf, dtype=INDEX_DTYPE, count=total, offset=offset)
        return cls.from_blob(blob)

    def as_blob(self) -> np.ndarray:
        """The block's wire-format buffer, reusing the source blob.

        Blocks that came out of :meth:`from_blob` / :meth:`from_mmap`
        return the retained source buffer (zero copies — for an mmap'd
        block this is still the page-cache-backed view); locally built
        blocks fall back to :meth:`to_blob`.
        """
        if self.blob is not None:
            return self.blob
        return self.to_blob()


def build_block(
    kind: str,
    fixed_residue: int,
    inner_residue: int,
    n_outer: int,
    n_inner: int,
    outer_local: np.ndarray,
    inner_local: np.ndarray,
) -> Block:
    """Assemble a block from local-index coordinate pairs.

    ``outer_local`` indexes the dimension this structure is compressed on
    (rows for U/task, columns for L); entries end up sorted within each
    outer index, which the early-stop optimization requires.  ``n_inner``
    bounds the entry ids (the inner dimension's local extent).
    """
    return Block(
        kind=kind,
        fixed_residue=fixed_residue,
        inner_residue=inner_residue,
        dcsr=DCSR.from_coo(n_outer, outer_local, inner_local, n_cols=n_inner),
    )


def exchange_block(comm, block: Block, dest: int, src: int, blob: bool, tag: int):
    """Send ``block`` to ``dest`` and receive the incoming block from
    ``src`` (one Cannon skew or shift step for one operand).

    With ``blob`` the block travels as a single message; without it, the
    metadata, indptr and indices arrays travel as three separate messages,
    each paying its own latency and envelope — the cost the Section 5.2
    blob optimization removes.
    """
    if blob:
        out = block.to_blob()
        incoming = comm.sendrecv(out, dest=dest, source=src, sendtag=tag, recvtag=tag)
        return Block.from_blob(incoming)
    csr = block.dcsr.csr
    comm.send(
        (
            _KIND_CODES[block.kind],
            block.fixed_residue,
            block.inner_residue,
            csr.n_rows,
            csr.n_cols,
        ),
        dest,
        tag=tag,
    )
    comm.send(csr.indptr, dest, tag=tag + 1)
    comm.send(csr.indices, dest, tag=tag + 2)
    kind_code, fixed, inner, n_rows, n_cols = comm.recv(source=src, tag=tag)
    indptr = comm.recv(source=src, tag=tag + 1)
    indices = comm.recv(source=src, tag=tag + 2)
    return Block(
        kind=_KIND_NAMES[kind_code],
        fixed_residue=fixed,
        inner_residue=inner,
        dcsr=DCSR(CSR(n_rows, indptr, indices, n_cols=n_cols)),
    )
