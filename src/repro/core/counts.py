"""Result records returned by the distributed triangle-counting drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ShiftRecord:
    """Per-(rank, shift) compute record (feeds Table 3's load-imbalance
    analysis).

    Attributes
    ----------
    shift:
        Cannon step index z in ``0..q-1``.
    rank:
        World rank.
    compute_seconds:
        Modeled compute time the rank spent in this shift's kernel.
    tasks:
        Number of (j, i) tasks that reached the map-based intersection in
        this shift on this rank (Table 4's counter).
    """

    shift: int
    rank: int
    compute_seconds: float
    tasks: int


@dataclass
class TriangleCountResult:
    """Everything a full pipeline run reports.

    Times are *simulated seconds* from the machine model; counters are
    exact operation counts independent of the model.
    """

    count: int
    p: int
    dataset: str = ""
    algorithm: str = "tc2d"
    ppt_time: float = 0.0
    tct_time: float = 0.0
    counters_ppt: dict[str, float] = field(default_factory=dict)
    counters_tct: dict[str, float] = field(default_factory=dict)
    comm_fraction_ppt: float = 0.0
    comm_fraction_tct: float = 0.0
    shift_records: list[ShiftRecord] = field(default_factory=list)
    hash_builds: int = 0
    hash_fast_builds: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def overall_time(self) -> float:
        """Preprocessing plus triangle counting, the paper's "overall"."""
        return self.ppt_time + self.tct_time

    @property
    def tasks_total(self) -> float:
        """Total map-intersection tasks across ranks and shifts (Table 4)."""
        return self.counters_tct.get("task", 0.0)

    @property
    def probes_total(self) -> float:
        """Total hash-probe steps in the counting phase (both map modes)."""
        return self.counters_tct.get("hash_probe", 0.0) + self.counters_tct.get(
            "hash_probe_fast", 0.0
        )

    def ops_total(self, phase: str) -> float:
        """All operation counts in a phase ("ppt" or "tct") summed."""
        src = self.counters_ppt if phase == "ppt" else self.counters_tct
        return float(sum(src.values()))

    def op_rate_kops(self, phase: str) -> float:
        """Aggregate operation rate in kOps/s for a phase (Figure 2)."""
        t = self.ppt_time if phase == "ppt" else self.tct_time
        if t <= 0:
            return 0.0
        return self.ops_total(phase) / t / 1e3

    def shift_imbalance(self) -> list[tuple[int, float, float, float]]:
        """Per-shift (shift, max, avg, max/avg) of rank compute times
        (Table 3's load-imbalance metric)."""
        by_shift: dict[int, list[float]] = {}
        for rec in self.shift_records:
            by_shift.setdefault(rec.shift, []).append(rec.compute_seconds)
        out = []
        for z in sorted(by_shift):
            times = by_shift[z]
            mx = max(times)
            avg = sum(times) / len(times)
            out.append((z, mx, avg, mx / avg if avg > 0 else 1.0))
        return out

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm} p={self.p} {self.dataset}: count={self.count:,} "
            f"ppt={self.ppt_time:.4f}s tct={self.tct_time:.4f}s "
            f"overall={self.overall_time:.4f}s"
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable dict of everything in the record.

        Round-trips through :meth:`from_dict`; used by the benchmark
        harness to persist sweep results.
        """
        return {
            "count": self.count,
            "p": self.p,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "ppt_time": self.ppt_time,
            "tct_time": self.tct_time,
            "counters_ppt": dict(self.counters_ppt),
            "counters_tct": dict(self.counters_tct),
            "comm_fraction_ppt": self.comm_fraction_ppt,
            "comm_fraction_tct": self.comm_fraction_tct,
            "shift_records": [
                [r.shift, r.rank, r.compute_seconds, r.tasks]
                for r in self.shift_records
            ],
            "hash_builds": self.hash_builds,
            "hash_fast_builds": self.hash_fast_builds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TriangleCountResult":
        """Inverse of :meth:`to_dict` (``extras`` are not persisted)."""
        return cls(
            count=int(d["count"]),
            p=int(d["p"]),
            dataset=d.get("dataset", ""),
            algorithm=d.get("algorithm", "tc2d"),
            ppt_time=float(d["ppt_time"]),
            tct_time=float(d["tct_time"]),
            counters_ppt=dict(d.get("counters_ppt", {})),
            counters_tct=dict(d.get("counters_tct", {})),
            comm_fraction_ppt=float(d.get("comm_fraction_ppt", 0.0)),
            comm_fraction_tct=float(d.get("comm_fraction_tct", 0.0)),
            shift_records=[
                ShiftRecord(
                    shift=int(s), rank=int(r), compute_seconds=float(t), tasks=int(k)
                )
                for (s, r, t, k) in d.get("shift_records", [])
            ],
            hash_builds=int(d.get("hash_builds", 0)),
            hash_fast_builds=int(d.get("hash_fast_builds", 0)),
        )

    def save_json(self, path) -> None:
        """Write the record to a JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load_json(cls, path) -> "TriangleCountResult":
        """Read a record written by :meth:`save_json`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text()))
