"""Triangle enumeration and per-edge/per-vertex census on the 2D pipeline.

The paper motivates triangle counting as the kernel inside k-truss
decomposition, clustering coefficients and transitivity (Section 1).
Those applications need more than the global count: k-truss needs the
*support* of every edge (how many triangles contain it) and clustering
coefficients need per-vertex triangle counts.  This module extends the 2D
Cannon pipeline to produce them:

* the intersection kernel additionally *enumerates* each closing vertex,
  yielding every triangle exactly once as an ordered triple
  ``i < j < k`` (in degree-order labels);
* triples are translated back to the caller's original vertex ids via the
  gathered preprocessing permutation;
* :func:`triangle_census_2d` aggregates them into per-edge supports and
  per-vertex counts.

Enumeration necessarily materializes one record per triangle, so this
path targets graphs whose triangle count fits memory (the counting-only
path in :mod:`repro.core.tc2d` has no such limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocks import exchange_block
from repro.core.config import TC2DConfig
from repro.core.grid import ProcessorGrid
from repro.core.kernels import get_enumerator, resolve_backend
from repro.core.preprocess import (
    InputChunk,
    chunk_bounds,
    cyclic_bounds,
    partition_1d,
    preprocess_with_labels,
)
from repro.graph.csr import INDEX_DTYPE, Graph
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


@dataclass
class TriangleCensus:
    """Result of :func:`triangle_census_2d`.

    Attributes
    ----------
    count:
        Exact global triangle count (== ``len(triangles)``).
    triangles:
        ``(count, 3)`` array of vertex ids in the graph's original label
        space; each triangle appears exactly once (rows are unordered
        vertex sets, internally emitted as degree-ordered triples).
    edge_support:
        ``(m,)`` support per edge, aligned with ``edges``.
    edges:
        ``(m, 2)`` canonical edge list (original ids, u < v).
    vertex_triangles:
        ``(n,)`` number of triangles incident on each vertex.
    """

    count: int
    triangles: np.ndarray
    edge_support: np.ndarray
    edges: np.ndarray
    vertex_triangles: np.ndarray


def _enumerate_block_pair(task_block, u_block, l_block, cfg, q: int):
    """Like the counting kernel, but emits the closing triples.

    Delegates the hit enumeration to the backend registry (the same
    ``cfg.kernel_backend`` resolution as the counting path), then lifts
    the local triples into global label2 space.  Returns
    ``(n_triangles, triples)`` with triples as a ``(t, 3)`` array of
    *global label2* ids ``(i, j, k)`` where (j, i) is the task edge and
    k the closing vertex (i < j < k in degree order).
    """
    if u_block.inner_residue != l_block.inner_residue:
        raise ValueError("operand blocks misaligned in enumeration kernel")
    x = task_block.fixed_residue
    y = task_block.inner_residue
    zp = u_block.inner_residue

    bname, _ = resolve_backend(
        cfg.kernel_backend, task_block, u_block, l_block, cfg
    )
    j_loc, i_loc, k_loc = get_enumerator(bname)(
        task_block, u_block, l_block, cfg
    )
    if len(j_loc) == 0:
        return 0, np.empty((0, 3), dtype=INDEX_DTYPE)
    triples = np.stack(
        [
            (i_loc * q + y).astype(INDEX_DTYPE),
            (j_loc * q + x).astype(INDEX_DTYPE),
            (k_loc * q + zp).astype(INDEX_DTYPE),
        ],
        axis=1,
    )
    return len(triples), triples


def _census_rank_program(
    ctx: RankContext, chunks: list[InputChunk], cfg: TC2DConfig
):
    comm = ctx.comm
    grid = ProcessorGrid.for_ranks(comm.size)
    q = grid.q
    chunk = chunks[ctx.rank]

    with ctx.phase("ppt"):
        (u_block, l_block, task_block), label_info = preprocess_with_labels(
            ctx, chunk, grid, cfg
        )
        comm.barrier()

    x, y = grid.coords(ctx.rank)
    triples_parts: list[np.ndarray] = []
    with ctx.phase("tct"):
        if q > 1:
            du, su = grid.skew_u(x, y)
            u_block = exchange_block(comm, u_block, du, su, cfg.blob_serialization, 100)
            dl, sl = grid.skew_l(x, y)
            l_block = exchange_block(comm, l_block, dl, sl, cfg.blob_serialization, 110)
        for z in range(q):
            n_tri, triples = _enumerate_block_pair(task_block, u_block, l_block, cfg, q)
            if n_tri:
                triples_parts.append(triples)
            ctx.charge("task", task_block.nnz)
            ctx.charge("hash_probe", n_tri)
            if z < q - 1:
                du, su = grid.shift_u(x, y)
                u_block = exchange_block(
                    comm, u_block, du, su, cfg.blob_serialization, 120
                )
                dl, sl = grid.shift_l(x, y)
                l_block = exchange_block(
                    comm, l_block, dl, sl, cfg.blob_serialization, 130
                )
        local = (
            np.concatenate(triples_parts, axis=0)
            if triples_parts
            else np.empty((0, 3), dtype=INDEX_DTYPE)
        )
        total = comm.allreduce(len(local), SUM)

    return {
        "total": int(total),
        "triples": local,
        "labels": label_info,  # (lo, new_labels) in lambda1 space
    }


def triangle_census_2d(
    graph: Graph,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
) -> TriangleCensus:
    """Enumerate every triangle of ``graph`` on ``p`` simulated ranks and
    aggregate per-edge supports and per-vertex counts.

    The enumeration runs the identical Cannon pipeline as
    :func:`~repro.core.tc2d.count_triangles_2d` (same blocks, same
    shifts); each hit additionally records its closing vertex.  Triples
    are mapped back to the input's original vertex labels.
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    if cfg.enumeration != "jik":
        raise ValueError("triangle enumeration implements the jik task layout only")
    grid = ProcessorGrid.for_ranks(p)
    chunks = partition_1d(graph, p)
    engine = Engine(p, model=model)
    run = engine.run(_census_rank_program, chunks, cfg)

    # Reassemble the preprocessing permutation: original id v
    #   --lambda1--> cyclic relabel (closed form)
    #   --lambda2--> degree-sorted label (rank-local tables, gathered here).
    n = graph.n
    lam1 = np.arange(n, dtype=INDEX_DTYPE)
    if cfg.initial_cyclic:
        offsets = cyclic_bounds(n, p)
        v = np.arange(n, dtype=INDEX_DTYPE)
        lam1 = offsets[v % p] + v // p
    lam2 = np.arange(n, dtype=INDEX_DTYPE)
    if cfg.degree_reorder:
        lam2 = np.empty(n, dtype=INDEX_DTYPE)
        for ret in run.returns:
            lo, labels = ret["labels"]
            lam2[lo : lo + len(labels)] = labels
    perm = lam2[lam1]  # original -> final label
    inv = np.empty(n, dtype=INDEX_DTYPE)
    inv[perm] = np.arange(n, dtype=INDEX_DTYPE)

    parts = [r["triples"] for r in run.returns if len(r["triples"])]
    triples_l2 = (
        np.concatenate(parts, axis=0)
        if parts
        else np.empty((0, 3), dtype=INDEX_DTYPE)
    )
    count = run.returns[0]["total"]
    if len(triples_l2) != count:
        raise AssertionError("enumerated triples do not match the reduced count")
    triangles = inv[triples_l2] if count else triples_l2

    # Per-vertex counts and per-edge supports from the triple list.
    vertex_triangles = np.bincount(triangles.ravel(), minlength=n).astype(
        np.int64
    )
    edges = graph.edge_array()
    edge_support = np.zeros(len(edges), dtype=np.int64)
    if count:
        enc_edges = edges[:, 0] * n + edges[:, 1]
        order = np.argsort(enc_edges)
        enc_sorted = enc_edges[order]
        tri_edges = np.concatenate(
            [triangles[:, [0, 1]], triangles[:, [0, 2]], triangles[:, [1, 2]]]
        )
        lo = np.minimum(tri_edges[:, 0], tri_edges[:, 1])
        hi = np.maximum(tri_edges[:, 0], tri_edges[:, 1])
        enc_tri = lo * n + hi
        pos = np.searchsorted(enc_sorted, enc_tri)
        if not np.all(enc_sorted[pos] == enc_tri):
            raise AssertionError("triangle edge missing from the edge list")
        np.add.at(edge_support, order[pos], 1)

    return TriangleCensus(
        count=count,
        triangles=triangles,
        edge_support=edge_support,
        edges=edges,
        vertex_triangles=vertex_triangles,
    )
