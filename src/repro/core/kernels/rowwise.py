"""Row-wise intersection kernel — the reference backend (``"row"``).

This is the direct transcription of the paper's per-row loop: walk the
task rows, build one hash map per row from the U fragment (reused across
every task in the row — the map-reuse benefit that makes jik the winning
scheme), and probe it with the L column fragments.  It is kept as the
semantic reference that the vectorized backends must match bit-for-bit on
:class:`~repro.core.kernels.common.KernelStats` — only wall time may
differ.

Section 5.2 optimizations, all toggleable via :class:`TC2DConfig`:

* doubly-sparse traversal — iterate only non-empty task rows;
* modified hashing — direct-bitmask fast path in
  :class:`~repro.hashing.hashmap.BlockHashMap`;
* early stop — probe candidates below ``min(U_j)`` cannot match (both
  fragments are sorted), so they are cut before probing; in the scalar
  formulation this is the paper's backward traversal that breaks out of
  the loop at the first id below the hashed fragment's minimum.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrayutil import multirange, segment_lengths_to_offsets, segment_sums
from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.core.kernels.common import KernelStats, kernel_capacity, require_aligned
from repro.hashing import BlockHashMap


def count_block_pair_row(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
    support_out: np.ndarray | None = None,
) -> KernelStats:
    """Count the triangles closed by one (task, U, L) block triple,
    visiting the task rows one at a time."""
    tasks = task_block.dcsr
    U = u_block.dcsr
    L = l_block.dcsr
    require_aligned(u_block, l_block)

    stats = KernelStats()
    stats.row_visits = tasks.row_visit_cost(cfg.doubly_sparse)

    l_indptr = L.indptr
    l_indices = L.indices
    t_indptr = tasks.indptr
    t_indices = tasks.indices

    hm = BlockHashMap(kernel_capacity(cfg, U))

    total = 0
    want_support = support_out is not None
    # Scratch for the per-probe hit scatter in the support path, grown
    # geometrically and reused across rows instead of reallocated per row.
    scratch = np.empty(0, dtype=np.int64)

    row_iter = tasks.nonempty_rows if cfg.doubly_sparse else range(tasks.n_rows)
    for j in row_iter:
        j = int(j)
        t_lo, t_hi = int(t_indptr[j]), int(t_indptr[j + 1])
        if t_lo == t_hi:
            continue
        urow = U.row(j)
        if len(urow) == 0:
            # No U fragment for this row at this shift: every task here is
            # skipped before any map work (part of what the doubly-sparse
            # design eliminates cheaply).
            continue
        tcols = t_indices[t_lo:t_hi]
        starts = l_indptr[tcols]
        lens = l_indptr[tcols + 1] - starts
        ntasks = int(np.count_nonzero(lens))
        if ntasks == 0:
            continue
        stats.tasks += ntasks

        gather = multirange(starts, lens)
        vals = l_indices[gather]
        if cfg.early_stop:
            keep = vals >= urow[0]
            window = vals[keep]
            stats.probes_skipped += len(vals) - len(window)
        else:
            keep = None
            window = vals
        ins0 = hm.stats.insert_steps
        fast = hm.build(urow, allow_fast=cfg.modified_hashing)
        stats.hash_builds += 1
        stats.hash_fast_builds += int(fast)
        ins_delta = hm.stats.insert_steps - ins0
        if fast:
            stats.insert_steps_fast += ins_delta
        else:
            stats.insert_steps_slow += ins_delta

        if len(window) == 0:
            continue
        if want_support:
            lk0 = hm.stats.lookup_steps
            mask = hm.hit_mask(window)
            hits = int(np.count_nonzero(mask))
            steps = hm.stats.lookup_steps - lk0
            # Scatter hits back to per-task counts.
            if len(vals) > len(scratch):
                scratch = np.empty(max(16, 2 * len(vals)), dtype=np.int64)
            per_probe = scratch[: len(vals)]
            per_probe[:] = 0
            if keep is None:
                per_probe[:] = mask
            else:
                per_probe[keep] = mask
            offs = segment_lengths_to_offsets(lens)
            per_task = segment_sums(per_probe, offs)
            support_out[t_lo:t_hi] += per_task
        else:
            hits, steps = hm.lookup_many(window)
        if fast:
            stats.probe_steps_fast += steps
        else:
            stats.probe_steps_slow += steps
        total += hits

    stats.triangles = total
    return stats


def enumerate_hits_row(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise enumeration: the hits of every task as local-id triples.

    Returns ``(j_local, i_local, k_local)`` arrays, one entry per
    triangle, in row-major task order — the order the listing pipeline
    relies on.  ``(j, i)`` is the task edge, ``k`` the closing vertex.
    """
    tasks = task_block.dcsr
    U = u_block.dcsr
    L = l_block.dcsr
    require_aligned(u_block, l_block)

    hm = BlockHashMap(kernel_capacity(cfg, U))
    out_j: list[np.ndarray] = []
    out_i: list[np.ndarray] = []
    out_k: list[np.ndarray] = []

    l_indptr, l_indices = L.indptr, L.indices
    t_indptr, t_indices = tasks.indptr, tasks.indices
    row_iter = tasks.nonempty_rows if cfg.doubly_sparse else range(tasks.n_rows)
    for j_local in row_iter:
        j_local = int(j_local)
        t_lo, t_hi = int(t_indptr[j_local]), int(t_indptr[j_local + 1])
        if t_lo == t_hi:
            continue
        urow = U.row(j_local)
        if len(urow) == 0:
            continue
        tcols = t_indices[t_lo:t_hi]
        starts = l_indptr[tcols]
        lens = l_indptr[tcols + 1] - starts
        if int(lens.sum()) == 0:
            continue
        gather = multirange(starts, lens)
        vals = l_indices[gather]
        probe_task = np.repeat(tcols, lens)
        if cfg.early_stop:
            keep = vals >= urow[0]
            vals = vals[keep]
            probe_task = probe_task[keep]
        if len(vals) == 0:
            continue
        hm.build(urow, allow_fast=cfg.modified_hashing)
        mask = hm.hit_mask(vals)
        if not mask.any():
            continue
        k_loc = vals[mask]
        out_j.append(np.full(len(k_loc), j_local, dtype=np.int64))
        out_i.append(probe_task[mask])
        out_k.append(k_loc)

    if not out_j:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return (
        np.concatenate(out_j),
        np.concatenate(out_i),
        np.concatenate(out_k),
    )
