"""Intersection-kernel backend registry (Section 5.2's hot loop).

The per-shift compute step — intersecting U fragments with L probe
windows for every task of a block pair — is the algorithm's hot loop, and
this package makes its implementation pluggable:

* ``"row"`` (:mod:`~repro.core.kernels.rowwise`) — the reference per-row
  loop, a direct transcription of the paper;
* ``"batch"`` (:mod:`~repro.core.kernels.batched`) — fully vectorized:
  bulk gathers, one duplicate-slot scan, one ``searchsorted`` membership
  pass, with only collision-afflicted rows replayed through the hash map;
* ``"auto"`` (:mod:`~repro.core.kernels.dispatch`) — per-block-pair
  choice from cheap shape statistics.

All backends obey one contract: identical triangle counts, identical
``support_out`` accumulation, and bit-identical logical
:class:`~repro.core.kernels.common.KernelStats` — the counters feed the
simulated machine model, so virtual time must not depend on which Python
implementation ran.  Only wall time may differ.

Registering a backend::

    from repro.core import kernels

    def my_kernel(task_block, u_block, l_block, cfg, support_out=None):
        ...
        return KernelStats(...)

    kernels.register_backend("mine", my_kernel)

Callers go through :func:`repro.core.intersect.count_block_pair`, which
resolves ``cfg.kernel_backend`` via :func:`resolve_backend`.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.blocks import Block
from repro.core.config import KERNEL_BACKENDS, TC2DConfig
from repro.core.kernels.batched import count_block_pair_batch, enumerate_hits_batch
from repro.core.kernels.common import KernelStats, kernel_capacity, require_aligned
from repro.core.kernels.dispatch import block_shape_stats, choose_backend
from repro.core.kernels.rowwise import count_block_pair_row, enumerate_hits_row


class KernelFn(Protocol):
    """Signature every counting backend implements."""

    def __call__(
        self,
        task_block: Block,
        u_block: Block,
        l_block: Block,
        cfg: TC2DConfig,
        support_out: np.ndarray | None = None,
    ) -> KernelStats: ...


_REGISTRY: dict[str, KernelFn] = {}
_ENUM_REGISTRY: dict[str, Callable] = {}


def register_backend(name: str, fn: KernelFn, enumerate_fn: Callable | None = None,
                     replace: bool = False) -> None:
    """Register a counting backend (and optionally its enumeration twin).

    ``name`` must not be ``"auto"`` (that name is the dispatcher's).
    """
    if name == "auto":
        raise ValueError('"auto" is reserved for the shape-based dispatcher')
    if name in _REGISTRY and not replace:
        raise ValueError(f"kernel backend {name!r} is already registered")
    _REGISTRY[name] = fn
    if enumerate_fn is not None:
        _ENUM_REGISTRY[name] = enumerate_fn
    elif replace:
        _ENUM_REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names plus ``"auto"``."""
    return tuple(sorted(_REGISTRY)) + ("auto",)


def get_backend(name: str) -> KernelFn:
    """Look up a concrete (non-auto) backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def resolve_backend(
    name: str,
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
) -> tuple[str, KernelFn]:
    """Resolve ``name`` (possibly ``"auto"``) for one block pair.

    Returns ``(concrete_name, fn)`` so callers can label spans and usage
    counts with the backend that actually ran.
    """
    if name == "auto":
        name = choose_backend(task_block, u_block, l_block, cfg)
    return name, get_backend(name)


def get_enumerator(name: str) -> Callable:
    """Enumeration twin of a concrete backend (listing/census pipeline).

    Backends registered without one fall back to the row-wise enumerator,
    which is always correct.
    """
    if name not in _REGISTRY:
        get_backend(name)  # uniform error message
    return _ENUM_REGISTRY.get(name, enumerate_hits_row)


register_backend("row", count_block_pair_row, enumerate_hits_row)
register_backend("batch", count_block_pair_batch, enumerate_hits_batch)

__all__ = [
    "KERNEL_BACKENDS",
    "KernelFn",
    "KernelStats",
    "available_backends",
    "block_shape_stats",
    "choose_backend",
    "count_block_pair_batch",
    "count_block_pair_row",
    "enumerate_hits_batch",
    "enumerate_hits_row",
    "get_backend",
    "get_enumerator",
    "kernel_capacity",
    "register_backend",
    "require_aligned",
    "resolve_backend",
]
