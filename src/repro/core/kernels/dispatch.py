"""Auto-dispatch heuristic for the intersection-kernel backends.

The ``"auto"`` backend picks ``"row"`` or ``"batch"`` per block pair from
cheap shape statistics — numbers already sitting in the DCSR headers, so
the decision costs a few scalar reads per Cannon shift.  Both backends
return identical results and identical logical counters, so the choice
only ever affects wall time; a bad guess is a performance bug, never a
correctness bug.
"""

from __future__ import annotations

from repro.core.blocks import Block
from repro.core.config import TC2DConfig

#: Blocks with at least this many non-empty task rows always batch: the
#: batched plan's fixed setup cost amortizes over rows saved.
AUTO_MIN_ROWS = 8
#: Below AUTO_MIN_ROWS, batch only when there is real per-row volume:
#: enough task entries overall and a long-enough mean task row.
AUTO_MIN_NNZ = 64
AUTO_MIN_MEAN_ROW_LEN = 4.0


def block_shape_stats(task_block: Block) -> tuple[int, int, float]:
    """``(nnz, nonempty_rows, mean_row_length)`` of the task block."""
    t = task_block.dcsr
    nnz = t.nnz
    nrows = len(t.nonempty_rows)
    return nnz, nrows, (nnz / nrows if nrows else 0.0)


def choose_backend(
    task_block: Block, u_block: Block, l_block: Block, cfg: TC2DConfig
) -> str:
    """Pick ``"row"`` or ``"batch"`` for one block pair."""
    nnz, nrows, mean_len = block_shape_stats(task_block)
    if nnz == 0 or nrows == 0:
        return "row"  # nothing to do; skip the batch plan setup
    if not cfg.modified_hashing:
        # Every build takes the probed path, which batch must replay
        # row-by-row anyway — batching would only add planning overhead.
        return "row"
    if nrows >= AUTO_MIN_ROWS:
        return "batch"
    if nnz >= AUTO_MIN_NNZ and mean_len >= AUTO_MIN_MEAN_ROW_LEN:
        return "batch"
    return "row"
