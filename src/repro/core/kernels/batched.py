"""Batched intersection kernel — the vectorized backend (``"batch"``).

Instead of visiting task rows in a Python loop (one hash build and a
handful of numpy calls per row, as the ``"row"`` reference does), this
backend concatenates *all* U fragments and *all* L probe windows of a
block pair up front and resolves them with a constant number of bulk
numpy operations: one ``multirange`` gather for the tasks, one for the
probes, one vectorized early-stop cut, one duplicate-slot scan to
classify every row's build as fast or probed, and one ``searchsorted``
membership test for every probe that lands in a fast (collision-free)
row.

The contract with the reference backend is exact: the logical
:class:`~repro.core.kernels.common.KernelStats` counters — and therefore
the simulated virtual time — are bit-identical to ``"row"``; only wall
time changes.  Two facts make that possible:

* a *fast* (direct-mask) build inserts in ``n`` steps and probes in one
  step per query, and its hit set is exactly set membership in the
  fragment — so fast rows need no hash map at all, just the vectorized
  membership test and closed-form step counts;
* a *probed* build's step count depends on the collision sequence, so
  rows classified slow (duplicate ``key & mask`` slots, or modified
  hashing disabled) are replayed through the very same
  :class:`~repro.hashing.hashmap.BlockHashMap` code the reference uses.
  Row generations are independent (the map invalidates by generation
  stamp), so replaying only the slow rows gives identical counts.

With the paper's modified hashing enabled, fast rows dominate after 2D
decomposition (fragments are ~1/sqrt(p) of an adjacency list), which is
exactly when this backend pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arrayutil import multirange, segment_lengths_to_offsets, segment_sums
from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.core.kernels.common import KernelStats, kernel_capacity, require_aligned
from repro.graph.csr import INDEX_DTYPE
from repro.hashing import BlockHashMap
from repro.hashing.hashmap import fib_hash


@dataclass
class _BatchPlan:
    """Vectorized description of every live row of one block pair.

    A row is *live* when it has tasks, a non-empty U fragment, and at
    least one task with a non-empty L column — exactly the rows on which
    the reference backend performs a hash build.
    """

    rows: np.ndarray  # live local row ids, ascending
    t_lens: np.ndarray  # tasks per live row
    u_lens: np.ndarray  # U fragment length per live row
    task_slots: np.ndarray  # global CSR slot of every task (row-major)
    tcols: np.ndarray  # task column id per task
    llens: np.ndarray  # L column length per task (before the cut)
    w_lens: np.ndarray  # surviving window length per task
    probes_skipped: int  # probes removed by the early-stop cut
    window_vals: np.ndarray  # surviving probe candidate ids
    window_row: np.ndarray  # live-row index per surviving probe
    w_offsets: np.ndarray  # window row boundaries (len(rows)+1)
    ukeys: np.ndarray  # concatenated U fragments of live rows
    u_offsets: np.ndarray  # U row boundaries into ukeys (len(rows)+1)
    fast: np.ndarray  # bool per live row: collision-free build?
    hm: BlockHashMap  # shared map for replaying slow rows


def _build_plan(task_block: Block, u_block: Block, l_block: Block,
                cfg: TC2DConfig) -> _BatchPlan | None:
    tasks = task_block.dcsr
    U = u_block.dcsr
    L = l_block.dcsr
    t_indptr, t_indices = tasks.indptr, tasks.indices
    u_indptr, u_indices = U.indptr, U.indices
    l_indptr, l_indices = L.indptr, L.indices

    # Candidate rows: non-empty task rows with a non-empty U fragment.
    # (With doubly-sparse off the reference walks every row, but the
    # extra visits only touch the row_visits counter, which is computed
    # in closed form — the active set is identical.)
    rows = np.asarray(tasks.nonempty_rows, dtype=INDEX_DTYPE)
    if len(rows) == 0:
        return None
    t_lens = t_indptr[rows + 1] - t_indptr[rows]
    u_lens = u_indptr[rows + 1] - u_indptr[rows]
    sel = u_lens > 0
    if not sel.any():
        return None
    if not sel.all():
        rows, t_lens, u_lens = rows[sel], t_lens[sel], u_lens[sel]

    # All tasks of the candidate rows, row-major.
    task_slots = multirange(t_indptr[rows], t_lens)
    tcols = t_indices[task_slots]
    llens = l_indptr[tcols + 1] - l_indptr[tcols]

    # Rows where every task has an empty L column never reach the hash
    # build in the reference; drop them before any build accounting.
    has_probes = segment_sums(
        (llens > 0).astype(np.int64), segment_lengths_to_offsets(t_lens)
    ) > 0
    if not has_probes.any():
        return None
    if not has_probes.all():
        keep_task = np.repeat(has_probes, t_lens)
        rows, t_lens, u_lens = (
            rows[has_probes], t_lens[has_probes], u_lens[has_probes],
        )
        task_slots, tcols, llens = (
            task_slots[keep_task], tcols[keep_task], llens[keep_task],
        )
    task_row = np.repeat(np.arange(len(rows), dtype=INDEX_DTYPE), t_lens)

    if cfg.early_stop:
        # The surviving window of task (row r, column c) is the suffix of
        # L's column c at ids >= min(U_r) (both fragments are sorted), so
        # the cut position is one searchsorted into the column-encoded L
        # entries — the probes the cut would discard are never gathered.
        stride = np.int64(max(int(U.csr.n_cols), int(L.csr.n_cols), 1))
        l_col_lens = l_indptr[1:] - l_indptr[:-1]
        enc_l = (
            np.repeat(np.arange(L.csr.n_rows, dtype=INDEX_DTYPE), l_col_lens)
            * stride
            + l_indices
        )
        urow_min = u_indices[u_indptr[rows]]
        starts = np.searchsorted(enc_l, tcols * stride + urow_min[task_row])
        w_lens = l_indptr[tcols + 1] - starts
        probes_skipped = int(llens.sum() - w_lens.sum())
    else:
        starts = l_indptr[tcols]
        w_lens = llens
        probes_skipped = 0

    # Every surviving probe of every task, in one gather.
    window_gather = multirange(starts, w_lens)
    window_vals = l_indices[window_gather]
    window_row = np.repeat(task_row, w_lens)

    row_w = segment_sums(w_lens, segment_lengths_to_offsets(t_lens))
    w_offsets = np.zeros(len(rows) + 1, dtype=INDEX_DTYPE)
    np.cumsum(row_w, out=w_offsets[1:])

    # Concatenated U fragments of the live rows and the fast/slow split.
    u_gather = multirange(u_indptr[rows], u_lens)
    ukeys = u_indices[u_gather]
    u_offsets = segment_lengths_to_offsets(u_lens)
    hm = BlockHashMap(kernel_capacity(cfg, U))
    if cfg.modified_hashing:
        # A row builds fast iff its keys' table slots are pairwise
        # distinct — the same test BlockHashMap.build applies.
        u_row = np.repeat(np.arange(len(rows), dtype=INDEX_DTYPE), u_lens)
        enc = np.sort(u_row * np.int64(hm.capacity) + (ukeys & hm.mask))
        dup = enc[1:][enc[1:] == enc[:-1]]
        fast = np.ones(len(rows), dtype=bool)
        fast[(dup // hm.capacity).astype(np.int64)] = False
    else:
        fast = np.zeros(len(rows), dtype=bool)

    return _BatchPlan(
        rows=rows, t_lens=t_lens, u_lens=u_lens, task_slots=task_slots,
        tcols=tcols, llens=llens, w_lens=w_lens,
        probes_skipped=probes_skipped, window_vals=window_vals,
        window_row=window_row,
        w_offsets=w_offsets, ukeys=ukeys, u_offsets=u_offsets, fast=fast,
        hm=hm,
    )


#: Upper bound on the dense id->slot scratch used for slow-row lookups
#: (``n_slow_rows * id_range`` int64 entries); beyond it the batched
#: backend falls back to a row-encoded ``searchsorted`` membership test.
_DENSE_SLOT_LIMIT = 1 << 22


def _hit_mask(plan: _BatchPlan, u_block: Block, l_block: Block,
              cfg: TC2DConfig, stats: KernelStats) -> np.ndarray:
    """Boolean hit mask over the surviving probes, plus step accounting.

    Fast (direct-mask) rows' tables are laid side by side in one flat
    ``(n_rows x capacity)`` arena so fast probes resolve with a single
    gather-and-compare.  Slow rows replay the reference's sequential
    insert walk for the layout, then resolve their probes with the
    closed-form linear-probing walk length (see below) — no per-query
    probing loop runs at all.
    """
    hit = np.zeros(len(plan.window_vals), dtype=bool)
    fast_probe = plan.fast[plan.window_row]

    hm = plan.hm
    cap = np.int64(hm.capacity)
    mask = hm.mask
    nlive = len(plan.rows)
    u_row = np.repeat(np.arange(nlive, dtype=INDEX_DTYPE), plan.u_lens)
    fast_key = plan.fast[u_row]

    fp = np.nonzero(fast_probe)[0]
    stats.probe_steps_fast += fp.size
    if fp.size:
        arena = np.full(nlive * int(cap), -1, dtype=np.int64)
        fk = np.nonzero(fast_key)[0]
        arena[u_row[fk] * cap + (plan.ukeys[fk] & mask)] = plan.ukeys[fk]
        qf = plan.window_vals[fp]
        hit[fp] = arena[plan.window_row[fp] * cap + (qf & mask)] == qf

    slow_idx = np.nonzero(~plan.fast)[0]
    if slow_idx.size == 0:
        return hit
    nslow = slow_idx.size

    # The insert walk depends on each row's collision sequence, so slow
    # layouts are replayed sequentially per row (probed_layout is the
    # exact build loop).  key_slot holds each slow key's local table
    # slot, aligned with plan.ukeys.
    key_slot = np.empty(len(plan.ukeys), dtype=np.int64)
    insert_steps = 0
    for r in slow_idx.tolist():
        o0, o1 = int(plan.u_offsets[r]), int(plan.u_offsets[r + 1])
        layout, steps = hm.probed_layout(plan.ukeys[o0:o1])
        key_slot[o0:o1] = layout
        insert_steps += steps
    stats.insert_steps_slow += insert_steps

    sp = np.nonzero(~fast_probe)[0]
    if sp.size == 0:
        return hit

    srow_of_live = np.empty(nlive, dtype=INDEX_DTYPE)  # live -> compact slow
    srow_of_live[slow_idx] = np.arange(nslow, dtype=INDEX_DTYPE)
    sl = np.nonzero(~fast_key)[0]
    skey_row = srow_of_live[u_row[sl]]

    queries = plan.window_vals[sp]
    srow = srow_of_live[plan.window_row[sp]]
    fibs = fib_hash(queries, hm.shift)

    # Membership + matched key's table slot: a dense per-slow-row
    # id -> slot scratch when the id range is small enough (one scatter,
    # one gather), else a row-encoded searchsorted.
    ncols = max(int(u_block.dcsr.csr.n_cols), int(l_block.dcsr.csr.n_cols), 1)
    stride = np.int64(ncols)
    if nslow * ncols <= _DENSE_SLOT_LIMIT:
        slot_of_id = np.full(nslow * ncols, -1, dtype=np.int64)
        slot_of_id[skey_row * stride + plan.ukeys[sl]] = key_slot[sl]
        qslot = slot_of_id[srow * stride + queries]
        is_hit = qslot >= 0
    else:
        enc_su = skey_row * stride + plan.ukeys[sl]
        enc_q = srow * stride + queries
        kpos = np.minimum(np.searchsorted(enc_su, enc_q), len(enc_su) - 1)
        is_hit = enc_su[kpos] == enc_q
        qslot = key_slot[sl][kpos]

    # Linear-probing lookups have a closed-form step count (the table is
    # never deleted from): a present key is found after walking from its
    # hash slot to its layout slot — every slot in between was occupied
    # when the key was inserted and stays occupied — and a missing key
    # walks to the first empty slot at/after its hash slot (cyclically; a
    # full table costs the capped capacity+1 rounds of the scalar loop).
    # ``next_empty[r, s]`` is row r's first empty slot at/after s (cap =
    # none), by a reversed running minimum over the slow-row tables.
    used = np.zeros((nslow, int(cap)), dtype=bool)
    used[skey_row, key_slot[sl]] = True
    slot_or_cap = np.where(
        used, cap, np.arange(int(cap), dtype=np.int64)[None, :]
    )
    next_empty = np.minimum.accumulate(slot_or_cap[:, ::-1], axis=1)[:, ::-1]
    ne = next_empty[srow, fibs]
    fe = next_empty[:, 0][srow]  # first empty of the row; cap = full
    miss_dist = np.where(
        ne < cap,
        ne - fibs,
        np.where(fe < cap, fe + cap - fibs, cap),
    )
    # (qslot - fibs) mod cap; bitwise AND is valid for the power-of-two
    # capacity even when the difference is negative (two's complement).
    hit_dist = (qslot - fibs) & mask
    steps = np.where(is_hit, hit_dist, miss_dist) + 1
    stats.probe_steps_slow += int(steps.sum())
    hit[sp] = is_hit
    return hit


def count_block_pair_batch(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
    support_out: np.ndarray | None = None,
) -> KernelStats:
    """Count the triangles closed by one (task, U, L) block triple with
    bulk array operations instead of a per-row loop."""
    require_aligned(u_block, l_block)
    stats = KernelStats()
    stats.row_visits = task_block.dcsr.row_visit_cost(cfg.doubly_sparse)

    plan = _build_plan(task_block, u_block, l_block, cfg)
    if plan is None:
        return stats

    stats.tasks = int(np.count_nonzero(plan.llens))
    stats.probes_skipped = plan.probes_skipped
    stats.hash_builds = len(plan.rows)
    stats.hash_fast_builds = int(np.count_nonzero(plan.fast))
    stats.insert_steps_fast = int(plan.u_lens[plan.fast].sum())

    hit = _hit_mask(plan, u_block, l_block, cfg, stats)
    stats.triangles = int(np.count_nonzero(hit))

    if support_out is not None:
        # Cut probes can never hit (they are below min(U_r)), so per-task
        # support is just the hit count inside each surviving window.
        per_task = segment_sums(
            hit.astype(np.int64), segment_lengths_to_offsets(plan.w_lens)
        )
        support_out[plan.task_slots] += per_task
    return stats


def enumerate_hits_batch(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched enumeration: the hits of every task as local-id triples.

    Returns ``(j_local, i_local, k_local)`` arrays in the same row-major
    task order as the row-wise reference, so the listing pipeline emits
    identical triple streams regardless of backend.
    """
    require_aligned(u_block, l_block)
    plan = _build_plan(task_block, u_block, l_block, cfg)
    if plan is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    hit = _hit_mask(plan, u_block, l_block, cfg, KernelStats())
    sel = np.nonzero(hit)[0]
    window_tcol = np.repeat(plan.tcols, plan.w_lens)
    return (
        plan.rows[plan.window_row[sel]],
        window_tcol[sel],
        plan.window_vals[sel],
    )
