"""Shared pieces of the intersection-kernel backends.

Every backend — row-wise reference, batched, or anything registered later —
consumes the same ``(task, U, L)`` block triple, produces the same
:class:`KernelStats`, and sizes its hash map with the same
:func:`kernel_capacity` rule.  Keeping these here (rather than in one
backend module) is what makes the backends interchangeable: the logical
operation counters are part of the kernel *contract*, not an
implementation detail, because the simulated machine model turns them into
virtual time (Table 4 / Figure 2 read them directly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.graph.dcsr import DCSR


@dataclass
class KernelStats:
    """Logical operation counts from one (or more) kernel invocations."""

    row_visits: int = 0
    tasks: int = 0  # tasks reaching the map-based intersection (Table 4)
    hash_builds: int = 0
    hash_fast_builds: int = 0
    insert_steps_fast: int = 0  # direct-mask (collision-free) inserts
    insert_steps_slow: int = 0  # multiplicative-hash probed inserts
    probe_steps_fast: int = 0  # single-compare lookups in fast-mode maps
    probe_steps_slow: int = 0  # probed lookups (incl. collision hops)
    probes_skipped: int = 0  # candidates eliminated by the early stop
    triangles: int = 0

    @property
    def hash_insert_steps(self) -> int:
        """Total insert steps, fast (bitmask) plus slow (probed) path."""
        return self.insert_steps_fast + self.insert_steps_slow

    @property
    def probe_steps(self) -> int:
        """Total probe steps, fast (bitmask) plus slow (probed) path."""
        return self.probe_steps_fast + self.probe_steps_slow

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another block-pair's counters into this record."""
        self.row_visits += other.row_visits
        self.tasks += other.tasks
        self.hash_builds += other.hash_builds
        self.hash_fast_builds += other.hash_fast_builds
        self.insert_steps_fast += other.insert_steps_fast
        self.insert_steps_slow += other.insert_steps_slow
        self.probe_steps_fast += other.probe_steps_fast
        self.probe_steps_slow += other.probe_steps_slow
        self.probes_skipped += other.probes_skipped
        self.triangles += other.triangles


def kernel_capacity(cfg: TC2DConfig, u_dcsr: DCSR) -> int:
    """Hash-map capacity for one block sweep (always an ``int``).

    ``hashmap_slack`` may be fractional (e.g. 1.5), so the product is
    rounded before it reaches :class:`~repro.hashing.hashmap.BlockHashMap`
    — the map's power-of-two rounding expects an integer.  Every backend
    must size its map with this exact rule: the capacity fixes the slot
    mask, and the slot mask decides which rows take the collision-free
    fast path, which is observable in the logical counters.
    """
    return max(4, int(round(cfg.hashmap_slack * max(1, u_dcsr.max_row_length()))))


def require_aligned(u_block: Block, l_block: Block) -> None:
    """Reject operand blocks whose inner residues disagree (Equation 6)."""
    if u_block.inner_residue != l_block.inner_residue:
        raise ValueError(
            "operand blocks misaligned: U carries residue "
            f"{u_block.inner_residue}, L carries {l_block.inner_residue} "
            "(Cannon shift mismatch)"
        )
