"""Approximate distributed triangle counting (DOULION-style sparsification).

The paper's introduction situates its contribution among algorithms "for
computing the exact and approximate number of triangles"; this module
adds the classic sparsification estimator as an extension on the same 2D
pipeline: keep each edge independently with probability ``keep_prob``,
count the triangles of the sparsified graph exactly with the distributed
algorithm, and scale the result by ``keep_prob ** -3`` (each surviving
triangle needed all three edges kept).

The estimator is unbiased; its relative error concentrates like
``O(1 / sqrt(T * keep_prob**3))`` for graphs with ``T`` triangles, so the
expected speedup (~``keep_prob**2`` less intersection work) trades off
against variance.  :func:`approx_count_triangles_2d` reports both the
estimate and the work actually performed so the trade-off is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TC2DConfig
from repro.core.counts import TriangleCountResult
from repro.core.tc2d import count_triangles_2d
from repro.graph.csr import Graph
from repro.simmpi import MachineModel


@dataclass(frozen=True)
class ApproxResult:
    """Outcome of one sparsified counting run.

    Attributes
    ----------
    estimate:
        Unbiased triangle-count estimate (float; scale-corrected).
    sparsified_count:
        Exact triangle count of the sparsified graph.
    keep_prob:
        Edge-keep probability used.
    kept_edges:
        Edges surviving sparsification.
    exact_result:
        The full :class:`TriangleCountResult` of the sparsified run
        (timings/counters describe the *reduced* work).
    """

    estimate: float
    sparsified_count: int
    keep_prob: float
    kept_edges: int
    exact_result: TriangleCountResult

    @property
    def tct_time(self) -> float:
        """Simulated counting time of the sparsified run."""
        return self.exact_result.tct_time


def sparsify(graph: Graph, keep_prob: float, seed: int = 0) -> Graph:
    """Keep each undirected edge independently with ``keep_prob``."""
    if not 0.0 < keep_prob <= 1.0:
        raise ValueError("keep_prob must be in (0, 1]")
    if keep_prob == 1.0:
        return graph
    rng = np.random.default_rng(seed)
    edges = graph.edge_array()
    mask = rng.random(len(edges)) < keep_prob
    return Graph.from_edges(graph.n, edges[mask])


def approx_count_triangles_2d(
    graph: Graph,
    p: int,
    keep_prob: float = 0.5,
    seed: int = 0,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
) -> ApproxResult:
    """DOULION-style estimate via the 2D distributed pipeline.

    Every stage after sparsification is the unmodified exact algorithm,
    so all of its guarantees (and instrumentation) apply to the reduced
    graph.
    """
    sparse = sparsify(graph, keep_prob, seed=seed)
    res = count_triangles_2d(sparse, p, cfg=cfg, model=model)
    return ApproxResult(
        estimate=res.count / keep_prob**3,
        sparsified_count=res.count,
        keep_prob=keep_prob,
        kept_edges=sparse.num_edges,
        exact_result=res,
    )


def estimate_with_confidence(
    graph: Graph,
    p: int,
    keep_prob: float = 0.5,
    trials: int = 5,
    seed: int = 0,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
) -> tuple[float, float, list[ApproxResult]]:
    """Average several independent sparsified runs.

    Returns ``(mean_estimate, sample_std, per_trial_results)``; averaging
    reduces the single-trial standard error by ``sqrt(trials)``.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    runs = [
        approx_count_triangles_2d(
            graph, p, keep_prob=keep_prob, seed=seed + 1000 * t, cfg=cfg, model=model
        )
        for t in range(trials)
    ]
    ests = np.array([r.estimate for r in runs])
    return float(ests.mean()), float(ests.std(ddof=1) if trials > 1 else 0.0), runs
