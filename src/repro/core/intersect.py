"""Map-based block intersection (the per-shift compute step).

For the task block C[L] (jik enumeration), a task at (row j, column i)
contributes ``|U_j  intersect  L_col_i|`` triangles, where both fragments
are restricted to the current inner residue z'.  The actual work is done
by one of the interchangeable backends in :mod:`repro.core.kernels`:

* ``"row"`` — the reference per-row loop (hash build per row, probe per
  task), a direct transcription of the paper's Section 5.2 kernel;
* ``"batch"`` — fully vectorized bulk gathers + one ``searchsorted``
  membership pass, with only collision-afflicted rows replayed through
  the hash map;
* ``"auto"`` — per-block-pair choice from cheap shape statistics.

:func:`count_block_pair` resolves ``cfg.kernel_backend`` and delegates.
Operation counts are *logical* (what a scalar C implementation would
execute); backends only change wall time, never the counters or the
modeled virtual time — see ``docs/kernels.md`` for the contract and the
microbenchmark harness that protects it.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.core.kernels import KernelStats, kernel_capacity, resolve_backend

__all__ = ["KernelStats", "count_block_pair", "kernel_capacity"]


def count_block_pair(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
    support_out: np.ndarray | None = None,
    backend: str | None = None,
) -> KernelStats:
    """Count the triangles closed by one (task, U, L) block triple.

    When ``support_out`` is given (length = task nnz, aligned with the task
    block's CSR order), per-task triangle counts are accumulated into it —
    the hook the k-truss/support extension uses.

    ``backend`` overrides ``cfg.kernel_backend`` (``"row"``, ``"batch"``
    or ``"auto"``) for this call.

    Returns a :class:`KernelStats`; the triangle count is
    ``stats.triangles``.
    """
    name = backend if backend is not None else cfg.kernel_backend
    _, fn = resolve_backend(name, task_block, u_block, l_block, cfg)
    return fn(task_block, u_block, l_block, cfg, support_out)
