"""Map-based block intersection kernel (the per-shift compute step).

For the task block C[L] (jik enumeration), a task at (row j, column i)
contributes ``|U_j  intersect  L_col_i|`` triangles, where both fragments are
restricted to the current inner residue z'.  The kernel iterates the task
rows, builds one hash map per row from the U fragment (reused across every
task in the row — the map-reuse benefit that makes jik the winning scheme),
and probes it with the L column fragments.

Section 5.2 optimizations, all toggleable via :class:`TC2DConfig`:

* doubly-sparse traversal — iterate only non-empty task rows;
* modified hashing — direct-bitmask fast path in
  :class:`~repro.hashing.hashmap.BlockHashMap`;
* early stop — probe candidates below ``min(U_j)`` cannot match (both
  fragments are sorted), so they are cut before probing; in the scalar
  formulation this is the paper's backward traversal that breaks out of
  the loop at the first id below the hashed fragment's minimum.

Operation counts are *logical* (what a scalar C implementation would
execute); the numpy vectorization below only changes wall time, never the
counters or the modeled virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.arrayutil import multirange, segment_lengths_to_offsets, segment_sums
from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.hashing import BlockHashMap


@dataclass
class KernelStats:
    """Logical operation counts from one (or more) kernel invocations."""

    row_visits: int = 0
    tasks: int = 0  # tasks reaching the map-based intersection (Table 4)
    hash_builds: int = 0
    hash_fast_builds: int = 0
    insert_steps_fast: int = 0  # direct-mask (collision-free) inserts
    insert_steps_slow: int = 0  # multiplicative-hash probed inserts
    probe_steps_fast: int = 0  # single-compare lookups in fast-mode maps
    probe_steps_slow: int = 0  # probed lookups (incl. collision hops)
    probes_skipped: int = 0  # candidates eliminated by the early stop
    triangles: int = 0

    @property
    def hash_insert_steps(self) -> int:
        return self.insert_steps_fast + self.insert_steps_slow

    @property
    def probe_steps(self) -> int:
        return self.probe_steps_fast + self.probe_steps_slow

    def merge(self, other: "KernelStats") -> None:
        self.row_visits += other.row_visits
        self.tasks += other.tasks
        self.hash_builds += other.hash_builds
        self.hash_fast_builds += other.hash_fast_builds
        self.insert_steps_fast += other.insert_steps_fast
        self.insert_steps_slow += other.insert_steps_slow
        self.probe_steps_fast += other.probe_steps_fast
        self.probe_steps_slow += other.probe_steps_slow
        self.probes_skipped += other.probes_skipped
        self.triangles += other.triangles


def count_block_pair(
    task_block: Block,
    u_block: Block,
    l_block: Block,
    cfg: TC2DConfig,
    support_out: np.ndarray | None = None,
) -> KernelStats:
    """Count the triangles closed by one (task, U, L) block triple.

    When ``support_out`` is given (length = task nnz, aligned with the task
    block's CSR order), per-task triangle counts are accumulated into it —
    the hook the k-truss/support extension uses.

    Returns a :class:`KernelStats`; the triangle count is
    ``stats.triangles``.
    """
    tasks = task_block.dcsr
    U = u_block.dcsr
    L = l_block.dcsr
    if u_block.inner_residue != l_block.inner_residue:
        raise ValueError(
            "operand blocks misaligned: U carries residue "
            f"{u_block.inner_residue}, L carries {l_block.inner_residue} "
            "(Cannon shift mismatch)"
        )

    stats = KernelStats()
    stats.row_visits = tasks.row_visit_cost(cfg.doubly_sparse)

    l_indptr = L.indptr
    l_indices = L.indices
    t_indptr = tasks.indptr
    t_indices = tasks.indices

    cap = max(4, cfg.hashmap_slack * max(1, U.max_row_length()))
    hm = BlockHashMap(cap)

    total = 0
    want_support = support_out is not None

    row_iter = tasks.nonempty_rows if cfg.doubly_sparse else range(tasks.n_rows)
    for j in row_iter:
        j = int(j)
        t_lo, t_hi = int(t_indptr[j]), int(t_indptr[j + 1])
        if t_lo == t_hi:
            continue
        urow = U.row(j)
        if len(urow) == 0:
            # No U fragment for this row at this shift: every task here is
            # skipped before any map work (part of what the doubly-sparse
            # design eliminates cheaply).
            continue
        tcols = t_indices[t_lo:t_hi]
        starts = l_indptr[tcols]
        lens = l_indptr[tcols + 1] - starts
        ntasks = int(np.count_nonzero(lens))
        if ntasks == 0:
            continue
        stats.tasks += ntasks

        gather = multirange(starts, lens)
        vals = l_indices[gather]
        if cfg.early_stop:
            keep = vals >= urow[0]
            window = vals[keep]
            stats.probes_skipped += len(vals) - len(window)
        else:
            keep = None
            window = vals
        ins0 = hm.stats.insert_steps
        fast = hm.build(urow, allow_fast=cfg.modified_hashing)
        stats.hash_builds += 1
        stats.hash_fast_builds += int(fast)
        ins_delta = hm.stats.insert_steps - ins0
        if fast:
            stats.insert_steps_fast += ins_delta
        else:
            stats.insert_steps_slow += ins_delta

        if len(window) == 0:
            continue
        if want_support:
            lk0 = hm.stats.lookup_steps
            mask = hm.hit_mask(window)
            hits = int(np.count_nonzero(mask))
            steps = hm.stats.lookup_steps - lk0
            # Scatter hits back to per-task counts.
            per_probe = np.zeros(len(vals), dtype=np.int64)
            if keep is None:
                per_probe[:] = mask
            else:
                per_probe[keep] = mask
            offs = segment_lengths_to_offsets(lens)
            per_task = segment_sums(per_probe, offs)
            support_out[t_lo:t_hi] += per_task
        else:
            hits, steps = hm.lookup_many(window)
        if fast:
            stats.probe_steps_fast += steps
        else:
            stats.probe_steps_slow += steps
        total += hits

    stats.triangles = total
    return stats
