"""Configuration of the 2D triangle-counting pipeline.

Every Section 5.2/5.3 design choice is a toggle here so the Section 7.3
ablation benchmarks can switch individual optimizations off and measure the
modeled-runtime delta.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

#: Valid enumeration schemes (Section 3.1): "jik" hashes the higher-degree
#: endpoint's list once per task row (the paper's winning choice); "ijk"
#: hashes the lower-degree endpoint and probes with the long lists.
ENUMERATIONS = ("jik", "ijk")

#: Valid grid algorithms sharing this config: "tc2d" is the paper's
#: U/L-split Cannon pipeline (:func:`~repro.core.tc2d.count_triangles_2d`);
#: "coveredge" is the cover-edge two-pass variant of Bader et al.
#: (:func:`~repro.core.coveredge.count_triangles_coveredge`).  Both emit
#: identical counts; they trade preprocessing (BFS levels) against
#: counting work differently, which is what the auto-tuner exploits.
ALGORITHMS = ("tc2d", "coveredge")

#: Valid intersection-kernel backends (see :mod:`repro.core.kernels`):
#: "row" is the reference per-row loop, "batch" the fully vectorized
#: implementation, "auto" picks per block pair from cheap shape stats.
KERNEL_BACKENDS = ("auto", "row", "batch")

#: Valid superstep executors (see :mod:`repro.simmpi.parallel`):
#: "sequential" runs kernels inline on the deterministic scheduler;
#: "parallel" fans each Cannon epoch's kernels out to a shared-memory
#: worker pool.  Both produce bit-identical results, clocks and traces.
EXECUTORS = ("sequential", "parallel")

#: Valid dispatch modes for the parallel executor: "perjob" submits one
#: pool future per rank-epoch kernel (the pre-batching transport, kept
#: for A/B measurement), "batched" coalesces each drain into at most
#: ``workers`` futures, and "amortized" additionally publishes the U/L
#: and task blobs as resident arena slots once per run — the Eq. 6
#: residue invariant pins every epoch's operand *content* up front, so
#: steady-state epochs ship only slot references, zero memcpys.  All
#: three produce bit-identical results, clocks and traces.
DISPATCH_MODES = ("perjob", "batched", "amortized")


@dataclass(frozen=True)
class TC2DConfig:
    """Feature toggles and tuning knobs for :func:`count_triangles_2d`.

    Attributes
    ----------
    algorithm:
        Which grid algorithm consumes this config: ``"tc2d"`` (the
        paper's U/L-split pipeline) or ``"coveredge"`` (the cover-edge
        two-pass variant).  Part of :meth:`store_key` because the two
        pipelines emit entirely different preprocessed blocks.  The
        drivers normalize it (``count_triangles_2d`` ignores it;
        ``count_triangles_coveredge`` forces ``"coveredge"``), so it is
        primarily CLI/auto-tuner plumbing.
    enumeration:
        ``"jik"`` (tasks = non-zeros of L, hash U's rows) or ``"ijk"``
        (tasks = non-zeros of U).  Section 7.3 reports jik cutting the
        counting time by 72.8%.
    doubly_sparse:
        Iterate only non-empty task rows via the DCSR auxiliary list
        (Section 5.2 "doubly sparse traversal"); off = visit every local
        row each shift.
    modified_hashing:
        Allow the direct-bitmask fast path for fragments that fit the map
        without collisions (Section 5.2 "modifying the hashing routine").
    early_stop:
        Skip probe candidates below the hashed fragment's minimum id
        (Section 5.2 "eliminating unnecessary intersection operations").
    blob_serialization:
        Pack each block into one contiguous byte buffer before shifting so
        a shift is one message instead of one per array (Section 5.2
        "reducing overheads associated with communication").
    initial_cyclic:
        Perform the initial 1D cyclic redistribution + relabeling
        (Section 5.3) to break up localized dense vertex clusters.
    degree_reorder:
        Reorder vertices by non-decreasing degree with the distributed
        counting sort (Section 5.3).  Off is only useful for studying how
        much the ordering matters; the U/L split then uses (degree, id)
        comparisons directly.
    hashmap_slack:
        Hash-map capacity as a multiple of the longest local fragment;
        may be fractional (the product is rounded to an integer before it
        sizes the map).
    kernel_backend:
        Intersection-kernel implementation: ``"row"`` (reference per-row
        loop), ``"batch"`` (vectorized), or ``"auto"`` (per-block-pair
        choice from shape statistics).  All backends produce identical
        counts, counters and virtual time — only wall time differs.
    executor:
        Superstep executor for the counting phase: ``"sequential"``
        (kernels run inline under the deterministic scheduler) or
        ``"parallel"`` (each Cannon epoch's per-rank kernels fan out to a
        persistent shared-memory worker pool; see
        :mod:`repro.simmpi.parallel`).  Results, virtual clocks, traces
        and profile reports are bit-identical either way — only wall
        time changes.
    workers:
        Worker-process count for the parallel executor; ``0`` means
        ``os.cpu_count()``.  Ignored under ``executor="sequential"``.
    dispatch:
        Dispatch strategy for the parallel executor: ``"perjob"`` (one
        future per rank-epoch kernel), ``"batched"`` (at most
        ``workers`` futures per drain, one pickle round-trip each) or
        ``"amortized"`` (default; batched futures *plus* resident-arena
        U/L/task blobs published once per run, so steady-state epochs
        copy no block bytes at all).  Amortized residency of the
        travelling blocks relies on block content being exchange-
        invariant, so runs with a fault injector attached (which may
        corrupt in-flight blocks) quietly degrade to ``"batched"``.
        Ignored under ``executor="sequential"``; bit-identical results
        either way.
    offload_ppt:
        Run the preprocessing hot phases (counting-sort placement, U/L
        block assembly + blob serialization) on the worker pool when one
        is attached.  Virtual-clock charges are computed rank-side from
        sizes, so results stay bit-identical; off restricts the pool to
        the counting phase.  Ignored under ``executor="sequential"``.
    real_timeout:
        Real (wall-clock) seconds the engine waits for a rank thread or
        a pool worker before declaring the run wedged.  A safety net for
        engine/worker bugs, not part of the simulation; chaos runs and
        CI tighten it so a wedged run fails fast.
    track_per_shift:
        Record per-shift compute spans (Table 3) — small overhead.
    seed:
        Master random seed for the run.  The CLI threads its single
        ``--seed`` flag here; graph generators, any randomized kernel
        choices and the resilience layer's fault plans all derive their
        streams from it, so one integer reproduces an entire chaos run.
    out_of_core:
        Preprocess via the external-memory pipeline
        (:mod:`repro.graph.external`): the edge list streams through
        disk-spilled sorted runs instead of being materialized, so peak
        memory is bounded by ``memory_budget``, not graph size.  Only
        meaningful for file-backed inputs; produces bit-identical store
        entries, counts and traces.
    memory_budget:
        Spill-chunk budget in bytes for the out-of-core pipeline
        (``0`` = the module default,
        :data:`repro.graph.external.DEFAULT_CHUNK_BYTES`).  Tuning knob
        only — it never changes any output byte, so it deliberately
        stays out of :meth:`store_key`.
    """

    algorithm: str = "tc2d"
    enumeration: str = "jik"
    doubly_sparse: bool = True
    modified_hashing: bool = True
    early_stop: bool = True
    blob_serialization: bool = True
    initial_cyclic: bool = True
    degree_reorder: bool = True
    hashmap_slack: float = 1
    kernel_backend: str = "auto"
    executor: str = "sequential"
    workers: int = 0
    dispatch: str = "amortized"
    offload_ppt: bool = True
    real_timeout: float = 600.0
    track_per_shift: bool = True
    seed: int = 0
    out_of_core: bool = False
    memory_budget: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if self.enumeration not in ENUMERATIONS:
            raise ValueError(
                f"enumeration must be one of {ENUMERATIONS}, "
                f"got {self.enumeration!r}"
            )
        if self.hashmap_slack < 1:
            raise ValueError("hashmap_slack must be >= 1")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = cpu count)")
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, "
                f"got {self.dispatch!r}"
            )
        if self.real_timeout <= 0:
            raise ValueError("real_timeout must be > 0 seconds")
        if self.memory_budget < 0:
            raise ValueError("memory_budget must be >= 0 (0 = default)")

    def replace(self, **kwargs: Any) -> "TC2DConfig":
        """Copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    def store_key(self) -> dict[str, Any]:
        """The toggles that change the *preprocessing output* (and hence
        the artifact digest of :mod:`repro.graph.store`).

        ``algorithm`` selects which preprocessing pipeline ran (tc2d's
        U/L split vs. cover-edge's BFS-level construction — entirely
        different block contents); ``enumeration`` (which side becomes
        the task block), ``initial_cyclic`` and ``degree_reorder`` (the
        Section 5.3 relabeling steps) alter the blocks that pipeline
        emits.  Kernel, executor and serialization toggles only change
        how the same blocks are consumed, so they deliberately share one
        cached artifact.
        """
        return {
            "algorithm": self.algorithm,
            "enumeration": self.enumeration,
            "initial_cyclic": self.initial_cyclic,
            "degree_reorder": self.degree_reorder,
        }

    #: Configurations used by the Section 7.3 ablation bench.
    @classmethod
    def ablations(cls) -> dict[str, "TC2DConfig"]:
        """Named variants: baseline plus one-feature-off configurations."""
        base = cls()
        return {
            "baseline (all optimizations)": base,
            "no doubly-sparse traversal": base.replace(doubly_sparse=False),
            "no modified hashing": base.replace(modified_hashing=False),
            "no early-stop": base.replace(early_stop=False),
            "no blob serialization": base.replace(blob_serialization=False),
            "ijk enumeration": base.replace(enumeration="ijk"),
        }
