"""The paper's contribution: 2D-cyclic distributed triangle counting.

Public entry points:

* :func:`~repro.core.tc2d.count_triangles_2d` — run the full pipeline
  (1D input -> cyclic redistribution -> degree reordering -> 2D cyclic
  blocks -> Cannon-pattern counting) on the simulated-MPI substrate and
  return counts, phase timings and instrumentation.
* :class:`~repro.core.config.TC2DConfig` — feature toggles for the
  enumeration scheme and the Section 5.2 optimizations (used by the
  ablation benchmarks).
* :func:`~repro.core.summa.count_triangles_summa` — the rectangular-grid
  SUMMA variant sketched in the paper's conclusion.
* :func:`~repro.core.coveredge.count_triangles_coveredge` — the
  cover-edge algorithm (Bader et al.) on the same substrate, emitting
  the same result/span/counter contracts as tc2d.
* :func:`~repro.core.autotune.plan_run` — the cost-model auto-tuner
  behind ``repro count --auto``: pick algorithm × grid × kernel ×
  executor from cheap graph signals and the machine model.
"""

from repro.core.autotune import GraphSignals, Plan, collect_signals, plan_run
from repro.core.coveredge import count_triangles_coveredge

from repro.core.allgather_variant import count_triangles_2d_allgather
from repro.core.approximate import ApproxResult, approx_count_triangles_2d
from repro.core.balance import compare_distributions, task_distribution_stats
from repro.core.config import TC2DConfig
from repro.core.counts import ShiftRecord, TriangleCountResult
from repro.core.grid import ProcessorGrid
from repro.core.listing import TriangleCensus, triangle_census_2d
from repro.core.tc2d import count_triangles_2d
from repro.core.summa import count_triangles_summa

__all__ = [
    "ApproxResult",
    "GraphSignals",
    "Plan",
    "ProcessorGrid",
    "ShiftRecord",
    "TC2DConfig",
    "TriangleCensus",
    "TriangleCountResult",
    "approx_count_triangles_2d",
    "collect_signals",
    "compare_distributions",
    "count_triangles_2d",
    "count_triangles_2d_allgather",
    "count_triangles_coveredge",
    "count_triangles_summa",
    "plan_run",
    "task_distribution_stats",
    "triangle_census_2d",
]
