"""Cost-model auto-tuner: pick algorithm × grid × kernel × executor.

The decision space of this repository has grown to the point where a
user faces five independent knobs before the first run: algorithm
(``tc2d`` vs ``coveredge``), rank count, kernel backend, executor and
dispatch mode.  :func:`plan_run` collapses that into one call: it
collects **cheap graph signals** (degree shape, wedge count, cover-edge
statistics — everything strictly cheaper than counting triangles),
combines them with the :class:`~repro.simmpi.costmodel.MachineModel`'s
rates into a predicted virtual makespan per (algorithm, p) candidate,
and derives the wall-clock-only knobs (kernel backend, executor,
workers) from separate heuristics — those knobs never change the
virtual clock, so they must not participate in the virtual-time argmin.

Three properties the tests pin down:

* **deterministic** — same signals fingerprint + same model fingerprint
  (+ same ``cores``/``max_p`` inputs) produce the identical
  :class:`Plan`, bit for bit; ties break lexicographically.
* **pinned flags win** — any field the user set explicitly is adopted
  verbatim and removed from the search space; the plan records which
  fields were pinned.
* **provenance** — :meth:`Plan.to_dict` serializes the whole decision
  (chosen fields, per-candidate predictions, fingerprints) into
  ``result.extras["autotune"]``, so a recorded run explains itself.

Prediction quality: the per-candidate formulas were calibrated against
measured runs of the registry graphs (see ``docs/autotune.md``); they
are deliberately coarse — the goal is *ranking* candidates, not
forecasting seconds.  When a :class:`~repro.bench.history.RunHistory`
is supplied, measured virtual makespans recorded under
``{dataset}-{algorithm}-p{p}`` override the model's guess for those
candidates, so the tuner sharpens as the history accumulates.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.config import ALGORITHMS, TC2DConfig
from repro.graph.csr import Graph
from repro.simmpi.costmodel import MachineModel

#: Perfect-square rank counts the planner considers (before ``max_p`` /
#: pinning filters).  Matches the paper's sweep range.
CANDIDATE_RANKS = (1, 4, 9, 16, 25, 36, 49, 64, 100, 121, 144, 169)

#: Fields of a :class:`Plan` a user may pin via explicit CLI flags.
PLANNABLE_FIELDS = (
    "algorithm", "p", "kernel_backend", "executor", "workers", "dispatch",
)


@dataclass(frozen=True)
class GraphSignals:
    """Cheap structural statistics driving the plan (all O(m)-ish;
    nothing here counts a triangle exactly).

    ``horizontal_fraction`` / ``horizontal_wedges`` / ``bfs_depth`` come
    from the sequential BFS-level computation
    (:func:`repro.graph.stats.cover_edge_stats`) — the very structure
    the cover-edge algorithm exploits, so they are *the* discriminating
    signals between the two algorithms.  ``clustering_est`` is a seeded
    sampled estimate (:func:`repro.graph.stats.clustering_estimate`).
    """

    n: int
    m: int
    d_avg: float
    d_max: int
    skew: float
    wedges: int
    clustering_est: float
    horizontal_fraction: float
    horizontal_wedges: int
    bfs_depth: int

    def fingerprint(self) -> str:
        """Stable short digest of the signal values (plan provenance)."""
        blob = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


def collect_signals(graph: Graph, seed: int = 0) -> GraphSignals:
    """Measure :class:`GraphSignals` for ``graph`` (deterministic for a
    given ``(graph, seed)``)."""
    from repro.graph.stats import (
        bfs_levels,
        clustering_estimate,
        cover_edge_stats,
        wedge_count,
    )

    n, m = graph.n, graph.num_edges
    d = graph.degrees
    d_avg = float(d.mean()) if n else 0.0
    d_max = int(d.max()) if n else 0
    level = bfs_levels(graph)
    ce = cover_edge_stats(graph, level=level)
    return GraphSignals(
        n=n,
        m=m,
        d_avg=d_avg,
        d_max=d_max,
        skew=(d_max / d_avg) if d_avg > 0 else 1.0,
        wedges=wedge_count(graph),
        clustering_est=clustering_estimate(graph, seed=seed),
        horizontal_fraction=ce["horizontal_fraction"],
        horizontal_wedges=ce["horizontal_wedges"],
        bfs_depth=ce["bfs_depth"],
    )


@dataclass(frozen=True)
class Plan:
    """An auto-tuner decision, self-describing for provenance.

    ``predicted`` maps every considered ``"{algorithm}-p{p}"`` candidate
    to its predicted (or history-measured) virtual makespan in seconds;
    ``predicted_s`` is the winner's entry.  ``pinned`` lists the fields
    the user fixed (the tuner never overrode them); ``source`` is
    ``"history"`` when the winning candidate's time came from a recorded
    measurement rather than the model formulas.
    """

    algorithm: str
    p: int
    kernel_backend: str
    executor: str
    workers: int
    dispatch: str
    predicted_s: float
    predicted: dict[str, float] = field(default_factory=dict)
    signals_fingerprint: str = ""
    model_fingerprint: str = ""
    pinned: tuple[str, ...] = ()
    source: str = "model"
    cores: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable provenance record (lands in
        ``result.extras["autotune"]`` and the telemetry summary)."""
        d = asdict(self)
        d["pinned"] = list(self.pinned)
        d["predicted"] = {k: float(v) for k, v in self.predicted.items()}
        return d

    def to_config(self, base: TC2DConfig | None = None) -> TC2DConfig:
        """Fold the plan's config-shaped fields into a
        :class:`TC2DConfig` (``base`` supplies everything else)."""
        base = base if base is not None else TC2DConfig()
        return base.replace(
            algorithm=self.algorithm,
            kernel_backend=self.kernel_backend,
            executor=self.executor,
            workers=self.workers,
            dispatch=self.dispatch,
        )


# ---------------------------------------------------------------------------
# virtual-makespan prediction
# ---------------------------------------------------------------------------

#: Collectives each preprocessing pipeline performs (each costs roughly
#: one message per peer per rank under the alpha term).
_PPT_COLLECTIVES_TC2D = 8
#: Extra collectives per BFS propagation round (translate request +
#: reply all-to-alls).
_BFS_COLLECTIVES_PER_ROUND = 4
#: Safety factor on the cover-edge kernel-op estimates: its probe
#: volume depends on which endpoint of each cover edge lands on the
#: probing side, which cheap signals cannot resolve; over-estimating
#: keeps the tuner from switching algorithms on marginal calls.
_COVEREDGE_FUDGE = 1.5


def predict_virtual_seconds(
    signals: GraphSignals, algorithm: str, p: int, model: MachineModel
) -> float:
    """Predicted virtual makespan (ppt + tct) of one candidate.

    The formulas mirror the operation charges the rank programs make —
    counts estimated from signals, converted through the model's rates —
    plus the latency/bandwidth terms of the collectives and the Cannon
    shifts.  Calibrated to land within ~2x of measured makespans on the
    registry graphs, which is enough to rank candidates.
    """
    q = math.isqrt(p)
    if q * q != p:
        raise ValueError(f"p must be a perfect square, got {p}")
    n, m, w = signals.n, signals.m, signals.wedges
    alpha = model.alpha
    beta = model.beta
    ct = model.compute_time

    def per_rank(kind: str, count: float) -> float:
        return ct(kind, max(0.0, count) / p)

    # Shared preprocessing: relabel/ship/sort/build, all O(m/p) with a
    # handful of alltoallvs (p messages each under the alpha model).
    ppt = (
        per_rank("relabel", 4 * m)
        + per_rank("scan", 6 * m)
        + per_rank("sort", n + m)
        + per_rank("csr_build", 4 * m)
        + _PPT_COLLECTIVES_TC2D * p * alpha
    )
    if algorithm == "tc2d":
        tct_ops = (
            per_rank("task", q * m)
            + per_rank("row_visit", q * min(n, 2 * m))
            + per_rank("hash_insert", 2 * m)
            + per_rank("hash_probe", w / 2 + m)
        )
        shift_bytes = 2 * (2 * m / max(1, p)) * 24
    elif algorithm == "coveredge":
        m_s = signals.horizontal_fraction * m
        w_h = signals.horizontal_wedges
        rounds = 2 * (signals.bfs_depth + 2)
        ppt += rounds * (
            per_rank("scan", 2 * m + n)
            + _BFS_COLLECTIVES_PER_ROUND * p * alpha
        )
        # Pass A ships the full adjacency (twice the U/L volume).
        ppt += per_rank("relabel", 4 * m) + per_rank("csr_build", 4 * m)
        tct_ops = _COVEREDGE_FUDGE * (
            per_rank("task", q * 2 * m_s)
            + per_rank("row_visit", q * min(n, 2 * m))
            + per_rank("hash_insert", 2 * m + m_s)
            + per_rank("hash_probe", 1.5 * w * signals.horizontal_fraction + w_h)
        )
        # Two Cannon rotations; pass A blocks are ~2x tc2d's.
        shift_bytes = 3 * (2 * m / max(1, p)) * 24
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    tct = tct_ops + q * (4 * alpha + shift_bytes * beta) * (
        1 if algorithm == "tc2d" else 2
    )
    return ppt + tct


def _history_makespans(history: Any, dataset: str) -> dict[str, float]:
    """Measured virtual makespans recorded under ``{dataset}-{alg}-p{p}``
    cases (see :mod:`repro.bench.autotunebench`)."""
    if history is None or not dataset:
        return {}
    from repro.bench.history import RunHistory

    if not isinstance(history, RunHistory):
        history = RunHistory(history)
    out: dict[str, float] = {}
    prefix = f"{dataset}-"
    for row in history.rows():
        case = row.get("case", "")
        val = row.get("metrics", {}).get("virtual_makespan_s")
        if not case.startswith(prefix) or val is None:
            continue
        out[case[len(prefix):]] = float(val)
    return out


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


def plan_run(
    graph: Graph | None = None,
    *,
    signals: GraphSignals | None = None,
    model: MachineModel | None = None,
    pinned: dict[str, Any] | None = None,
    history: Any = None,
    dataset: str = "",
    cores: int = 1,
    max_p: int = 64,
    seed: int = 0,
) -> Plan:
    """Choose algorithm × p × kernel backend × executor for one run.

    Parameters
    ----------
    graph / signals:
        Either the graph itself (signals are collected with ``seed``) or
        precomputed :class:`GraphSignals`.  Exactly one is required.
    model:
        Machine model whose rates price the candidates; defaults to
        :class:`MachineModel()`.  Its fingerprint is recorded in the
        plan.
    pinned:
        Fields the user fixed explicitly (subset of
        :data:`PLANNABLE_FIELDS`); adopted verbatim and excluded from
        the search.
    history:
        Optional :class:`~repro.bench.history.RunHistory` (or its path):
        measured makespans under ``{dataset}-{alg}-p{p}`` cases override
        the model's predictions for those candidates.
    cores:
        Physical cores available for the parallel executor.  Passed
        explicitly (rather than sampled from the machine) so plans are
        reproducible; the CLI passes ``os.cpu_count()``.
    max_p:
        Largest rank count to consider.

    Returns
    -------
    Plan
        Deterministic for identical inputs; ties in predicted time break
        toward (lexicographically smaller algorithm, smaller p).
    """
    if (graph is None) == (signals is None):
        raise ValueError("provide exactly one of graph= or signals=")
    if signals is None:
        signals = collect_signals(graph, seed=seed)
    model = model if model is not None else MachineModel()
    pinned = dict(pinned or {})
    unknown = set(pinned) - set(PLANNABLE_FIELDS)
    if unknown:
        raise ValueError(f"cannot pin unknown fields: {sorted(unknown)}")

    algorithms = (
        [pinned["algorithm"]] if "algorithm" in pinned else list(ALGORITHMS)
    )
    if "p" in pinned:
        ranks = [int(pinned["p"])]
    else:
        ranks = [r for r in CANDIDATE_RANKS if r <= max_p]
    measured = _history_makespans(history, dataset)

    predicted: dict[str, float] = {}
    sources: dict[str, str] = {}
    for alg in algorithms:
        for p in ranks:
            key = f"{alg}-p{p}"
            if key in measured:
                predicted[key] = measured[key]
                sources[key] = "history"
            else:
                predicted[key] = predict_virtual_seconds(signals, alg, p, model)
                sources[key] = "model"
    best_key = min(predicted, key=lambda k: (predicted[k], k))
    best_alg, best_p = best_key.rsplit("-p", 1)
    best_p = int(best_p)

    # Wall-clock-only knobs: these never move the virtual clock, so they
    # are chosen by heuristics, not by the virtual-time argmin.
    if "kernel_backend" in pinned:
        kernel = pinned["kernel_backend"]
    elif signals.m < 2000:
        kernel = "row"  # vectorization setup dominates tiny fragments
    else:
        kernel = "auto"  # adaptive per block pair; the safe default
    kernel_ops = signals.wedges / 2 + signals.m * math.isqrt(best_p)
    if "executor" in pinned:
        executor = pinned["executor"]
    else:
        executor = "parallel" if cores >= 2 and kernel_ops >= 2e6 else "sequential"
    if "workers" in pinned:
        workers = int(pinned["workers"])
    elif executor == "parallel":
        workers = max(1, min(cores, best_p))
    else:
        workers = 0
    dispatch = pinned.get("dispatch", "amortized")

    return Plan(
        algorithm=best_alg,
        p=best_p,
        kernel_backend=kernel,
        executor=executor,
        workers=workers,
        dispatch=dispatch,
        predicted_s=predicted[best_key],
        predicted=predicted,
        signals_fingerprint=signals.fingerprint(),
        model_fingerprint=model.fingerprint(),
        pinned=tuple(sorted(pinned)),
        source=sources[best_key],
        cores=cores,
    )


def format_plan_table(plan: Plan, measured: dict[str, float] | None = None) -> str:
    """Human-readable candidate table: predicted (and, when available,
    measured) virtual makespan per candidate, winner marked."""
    measured = measured or {}
    lines = [f"{'candidate':<18} {'predicted':>12} {'measured':>12}"]
    best_key = f"{plan.algorithm}-p{plan.p}"
    for key in sorted(plan.predicted, key=lambda k: (plan.predicted[k], k)):
        mark = " <- chosen" if key == best_key else ""
        meas = f"{measured[key]:>10.6f}s" if key in measured else f"{'-':>11}"
        lines.append(
            f"{key:<18} {plan.predicted[key]:>10.6f}s {meas}{mark}"
        )
    lines.append(
        f"plan: -a {plan.algorithm} -p {plan.p} --kernel {plan.kernel_backend}"
        f" --executor {plan.executor}"
        + (f" --workers {plan.workers}" if plan.executor == "parallel" else "")
        + f" --dispatch {plan.dispatch}"
        + (f"  [pinned: {', '.join(plan.pinned)}]" if plan.pinned else "")
    )
    return "\n".join(lines)
