"""Operation-counter aggregation utilities."""

from __future__ import annotations


def merge_counters(dicts: list[dict[str, float]]) -> dict[str, float]:
    """Element-wise sum of counter dictionaries."""
    out: dict[str, float] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0.0) + v
    return out


def counters_diff(
    after: dict[str, float], before: dict[str, float]
) -> dict[str, float]:
    """Per-key ``after - before``, dropping zero deltas.

    Keys present only in ``before`` (e.g. a counter that was reset between
    snapshots) are reported as negative deltas rather than silently
    dropped.
    """
    out: dict[str, float] = {}
    for k, v in after.items():
        delta = v - before.get(k, 0.0)
        if delta:
            out[k] = delta
    for k, v in before.items():
        if k not in after and v:
            out[k] = -v
    return out
