"""Operation-counter aggregation utilities."""

from __future__ import annotations


def merge_counters(dicts: list[dict[str, float]]) -> dict[str, float]:
    """Element-wise sum of counter dictionaries."""
    out: dict[str, float] = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0.0) + v
    return out


def counters_diff(
    after: dict[str, float], before: dict[str, float]
) -> dict[str, float]:
    """Per-key ``after - before``, dropping zero deltas."""
    out: dict[str, float] = {}
    for k, v in after.items():
        delta = v - before.get(k, 0.0)
        if delta:
            out[k] = delta
    return out
