"""Runtime telemetry: wall-clock event bus, samplers, flight recorder.

The PR 1 observability layer sees *virtual* time — phases, messages,
counters on the simulated clock — but none of the real costs that decide
whether the parallel executor actually helps: dispatch latency, IPC
serialization, queue depth, memory pressure, GC pauses.  This module is
the wall-clock counterpart:

* :class:`FlightRecorder` — a bounded, thread-safe ring buffer of
  timestamped :class:`TelemetryEvent` records.  Old events are evicted
  (and counted) instead of growing without bound, so it can stay attached
  to long sweeps; on a crash the *recent* history is exactly what you
  want dumped.
* :class:`Telemetry` — a recording session.  While started it watches GC
  pauses (via ``gc.callbacks``), samples RSS on a background thread, and
  accepts structured events from the engine (per-phase executing
  wall-clock, see ``RankContext.phase``) and the superstep pool
  (dispatch/serialize/execute/collect buckets, queue depth, arena
  occupancy — see :class:`~repro.simmpi.parallel.PoolStats`).
  :meth:`Telemetry.summarize` folds a finished run into a
  JSON-serializable **telemetry record** (schema
  :data:`TELEMETRY_RECORD_SCHEMA`) keyed by the preprocessing-store
  digest and :meth:`MachineModel.fingerprint`, which is what
  ``repro diff`` and ``repro history`` consume.
* :func:`telemetry_report` — text rendering of a record (what ``repro
  count --telemetry`` prints), including the pool-bucket split that
  attributes parallel-executor wall time.
* :func:`counter_samples` — converts recorded events into the counter
  samples the Perfetto exporter renders as ``"C"`` counter tracks.

Telemetry is strictly opt-in and additive: with no session attached the
engine and pool pay one ``is None`` check per instrumented site, and
counts, virtual clocks, counters and traces are bit-identical with or
without a session (telemetry only ever *observes* wall time).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Schema of the flight-recorder dump artifact.
FLIGHT_SCHEMA = 1

#: Schema of the per-run telemetry record (``repro diff`` / ``repro
#: history`` input).
TELEMETRY_RECORD_SCHEMA = 1


# ---------------------------------------------------------------------------
# host / memory probes
# ---------------------------------------------------------------------------


def host_metadata() -> dict[str, Any]:
    """Where wall-clock numbers came from: CPU budget, interpreter, platform.

    ``usable_cpus`` is the scheduling-affinity count when the OS exposes
    one (containers often pin fewer cores than ``os.cpu_count()``
    reports) — it is the honest parallelism budget for this process.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        usable = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def rss_bytes() -> int:
    """Current resident-set size of this process in bytes (0 if unknown)."""
    try:
        with open("/proc/self/statm") as f:
            pages = int(f.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


def peak_rss_bytes() -> int:
    """Lifetime peak resident-set size of this process in bytes.

    Monotone (the kernel high-water mark never resets), so per-run deltas
    need a baseline taken at run begin.  Returns 0 when unavailable.
    """
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0
    # Linux reports KiB; macOS reports bytes.
    if platform.system() == "Darwin":  # pragma: no cover - mac only
        return int(peak)
    return int(peak) * 1024


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryEvent:
    """One wall-clock telemetry event.

    Attributes
    ----------
    t:
        ``time.perf_counter`` seconds since the recorder was created.
    kind:
        Dotted event type, e.g. ``"phase"``, ``"pool.dispatch"``,
        ``"pool.queue"``, ``"sample.rss"``, ``"gc"``, ``"run.begin"``,
        ``"crash"``.
    detail:
        JSON-serializable payload.
    """

    t: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`TelemetryEvent`.

    When full, the oldest event is evicted and ``dropped`` incremented —
    the recorder keeps the *tail* of history, which is what a post-mortem
    wants.  :meth:`dump` writes the buffer as a JSON artifact (schema
    :data:`FLIGHT_SCHEMA`).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self.recorded = 0
        self._events: deque[TelemetryEvent] = deque(maxlen=capacity)
        # Reentrant on purpose: allocations made while the lock is held
        # (deque block growth, list copies in events()/snapshot()) can
        # trigger a GC collection, and the _GCWatch gc.callbacks hook
        # calls record() on whatever thread triggered it — with a plain
        # Lock that thread deadlocks on itself.
        self._lock = threading.RLock()
        self._t0 = time.perf_counter()

    def record(self, kind: str, **detail: Any) -> None:
        """Append one event (evicting the oldest when full)."""
        t = time.perf_counter() - self._t0
        evt = TelemetryEvent(t=t, kind=kind, detail=detail)
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self.recorded += 1
            self._events.append(evt)

    def events(self) -> list[TelemetryEvent]:
        """A stable copy of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self.recorded = 0

    def stats(self) -> dict[str, int]:
        """Buffer occupancy counters (for the telemetry record)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "buffered": len(self._events),
            }

    def snapshot(self, reason: str = "") -> dict[str, Any]:
        """The dump-artifact dictionary (JSON-serializable)."""
        with self._lock:
            events = list(self._events)
            doc = {
                "schema": FLIGHT_SCHEMA,
                "kind": "repro-flight-recorder",
                "reason": reason,
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "events": [
                    {"t": e.t, "kind": e.kind, "detail": e.detail}
                    for e in events
                ],
            }
        return doc

    def dump(self, path: Any, reason: str = "") -> Path:
        """Write :meth:`snapshot` to ``path`` (parents created) and
        return the path."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(
            json.dumps(self.snapshot(reason), indent=2, sort_keys=True,
                       default=str)
            + "\n"
        )
        return p


# ---------------------------------------------------------------------------
# samplers
# ---------------------------------------------------------------------------


class _GCWatch:
    """Measures garbage-collection pauses via ``gc.callbacks``."""

    def __init__(self, recorder: FlightRecorder):
        self._recorder = recorder
        self._begin = 0.0
        self.collections = 0
        self.total_pause_s = 0.0
        self.max_pause_s = 0.0

    def _cb(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._begin = time.perf_counter()
            return
        pause = time.perf_counter() - self._begin
        self.collections += 1
        self.total_pause_s += pause
        if pause > self.max_pause_s:
            self.max_pause_s = pause
        self._recorder.record(
            "gc",
            generation=info.get("generation"),
            collected=info.get("collected"),
            pause_s=pause,
        )

    def start(self) -> None:
        if self._cb not in gc.callbacks:
            gc.callbacks.append(self._cb)

    def stop(self) -> None:
        try:
            gc.callbacks.remove(self._cb)
        except ValueError:
            pass

    def stats(self) -> dict[str, Any]:
        return {
            "collections": self.collections,
            "total_pause_s": self.total_pause_s,
            "max_pause_s": self.max_pause_s,
        }


class _Sampler(threading.Thread):
    """Daemon thread sampling RSS (and pool queue depth) periodically."""

    def __init__(self, telemetry: "Telemetry", interval: float):
        super().__init__(name="repro-telemetry-sampler", daemon=True)
        self._telemetry = telemetry
        self._interval = interval
        # NB: not named _stop — that would shadow threading.Thread._stop,
        # which Thread.join() calls internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            self._telemetry._sample()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


# ---------------------------------------------------------------------------
# the telemetry session
# ---------------------------------------------------------------------------


class Telemetry:
    """One wall-clock recording session (usable across several runs).

    Parameters
    ----------
    recorder_capacity:
        Flight-recorder ring size (events).
    sample_interval:
        Seconds between background RSS samples; ``0`` disables the
        sampler thread (phase/pool events still record).
    crash_dir:
        Directory for :meth:`crash_dump` artifacts; ``None`` disables
        automatic dumps (callers can still use ``recorder.dump``).
    tracemalloc:
        Opt-in Python-allocation tracking (meaningful overhead; off by
        default).  When on, the telemetry record carries the per-run
        traced-memory delta and peak.

    Use as a context manager, or call :meth:`start` / :meth:`stop`
    (re-entrant: nested starts are depth-counted).
    """

    def __init__(
        self,
        recorder_capacity: int = 4096,
        sample_interval: float = 0.05,
        crash_dir: Any = None,
        tracemalloc: bool = False,
    ):
        self.recorder = FlightRecorder(recorder_capacity)
        self.sample_interval = sample_interval
        self.crash_dir = Path(crash_dir) if crash_dir is not None else None
        self.tracemalloc = tracemalloc
        self._gc = _GCWatch(self.recorder)
        self._sampler: _Sampler | None = None
        self._depth = 0
        self._dumps = 0
        self._pool: Any = None
        self._lock = threading.Lock()
        # per-run accumulators (reset by begin_run)
        self._run_label = ""
        self._run_t0 = time.perf_counter()
        self._phase_wall: dict[str, float] = {}
        self._phase_ranks: dict[str, int] = {}
        self._phase_rss: dict[str, int] = {}
        self._rss_begin = 0
        self._rss_sample_peak = 0
        self._pool_before: dict[str, Any] | None = None
        self._gc_before = self._gc.stats()
        self._tm_before: tuple[int, int] | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Telemetry":
        """Begin recording (GC watch, sampler thread, tracemalloc)."""
        self._depth += 1
        if self._depth > 1:
            return self
        self._gc.start()
        if self.tracemalloc:
            import tracemalloc as tm

            if not tm.is_tracing():
                tm.start()
        if self.sample_interval > 0:
            self._sampler = _Sampler(self, self.sample_interval)
            self._sampler.start()
        self.recorder.record("telemetry.start", host=host_metadata())
        return self

    def stop(self) -> None:
        """Stop recording (idempotent at depth 0)."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        self._gc.stop()
        if self.tracemalloc:
            import tracemalloc as tm

            if tm.is_tracing():
                tm.stop()
        self.recorder.record("telemetry.stop")

    def __enter__(self) -> "Telemetry":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- wiring -------------------------------------------------------------

    def attach_pool(self, pool: Any) -> None:
        """Attach a :class:`~repro.simmpi.parallel.SuperstepPool` so its
        dispatch buckets, queue depth and arena occupancy record here."""
        self._pool = pool
        pool.attach_telemetry(self)

    def note(self, kind: str, **detail: Any) -> None:
        """Record one free-form event into the flight recorder."""
        self.recorder.record(kind, **detail)

    # -- engine hooks -------------------------------------------------------

    def phase_exit(self, rank: int, name: str, wall_s: float) -> None:
        """One rank left phase ``name`` after ``wall_s`` seconds of
        *executing* wall time (parked/scheduler time already subtracted —
        see ``Engine._yield_to_scheduler``)."""
        rss = rss_bytes()
        with self._lock:
            self._phase_wall[name] = self._phase_wall.get(name, 0.0) + wall_s
            self._phase_ranks[name] = self._phase_ranks.get(name, 0) + 1
            if rss > self._phase_rss.get(name, 0):
                self._phase_rss[name] = rss
        self.recorder.record(
            "phase", rank=rank, name=name, wall_s=wall_s, rss_bytes=rss
        )

    # -- sampling -----------------------------------------------------------

    def _sample(self) -> None:
        rss = rss_bytes()
        if rss > self._rss_sample_peak:
            self._rss_sample_peak = rss
        detail: dict[str, Any] = {"rss_bytes": rss}
        pool = self._pool
        if pool is not None:
            try:
                detail["queue_depth"] = len(pool._pending)
            except Exception:
                pass
        self.recorder.record("sample.rss", **detail)

    # -- per-run record -----------------------------------------------------

    def begin_run(self, label: str = "") -> None:
        """Reset the per-run accumulators (call right before the engine
        runs; one session can record many runs back to back)."""
        with self._lock:
            self._phase_wall.clear()
            self._phase_ranks.clear()
            self._phase_rss.clear()
        self._run_label = label
        self._run_t0 = time.perf_counter()
        self._rss_begin = rss_bytes()
        self._rss_sample_peak = self._rss_begin
        self._gc_before = self._gc.stats()
        self._pool_before = (
            self._pool.stats_snapshot() if self._pool is not None else None
        )
        if self.tracemalloc:
            import tracemalloc as tm

            if tm.is_tracing():
                self._tm_before = tm.get_traced_memory()
        self.recorder.record("run.begin", label=label)

    def summarize(
        self,
        result: Any = None,
        run: Any = None,
        model: Any = None,
        cfg: Any = None,
    ) -> dict[str, Any]:
        """Fold the current run into a telemetry record (schema
        :data:`TELEMETRY_RECORD_SCHEMA`).

        ``result`` is a ``TriangleCountResult`` (count/dataset/store
        digest), ``run`` the engine's ``RunResult`` (virtual phase times),
        ``model`` the :class:`~repro.simmpi.costmodel.MachineModel`
        (fingerprint key), ``cfg`` the ``TC2DConfig`` (executor/workers).
        All are optional — missing inputs leave their fields ``None``.
        """
        wall_s = time.perf_counter() - self._run_t0
        rss_end = rss_bytes()
        with self._lock:
            phase_wall = dict(self._phase_wall)
            phase_ranks = dict(self._phase_ranks)
            phase_rss = dict(self._phase_rss)

        phases: dict[str, Any] = {}
        for name in sorted(phase_wall):
            entry: dict[str, Any] = {
                "wall_s": phase_wall[name],
                "ranks": phase_ranks.get(name, 0),
                "rss_max_bytes": phase_rss.get(name, 0),
                "virtual_s": None,
                "comm_fraction": None,
            }
            if run is not None:
                try:
                    entry["virtual_s"] = run.phase_time(name)
                    entry["comm_fraction"] = run.phase_comm_fraction(name)
                except KeyError:
                    pass
            phases[name] = entry

        gc_now = self._gc.stats()
        gc_delta = {
            k: gc_now[k] - self._gc_before.get(k, 0)
            for k in ("collections", "total_pause_s")
        }
        gc_delta["max_pause_s"] = gc_now["max_pause_s"]

        memory: dict[str, Any] = {
            "rss_begin_bytes": self._rss_begin,
            "rss_end_bytes": rss_end,
            "rss_sampled_peak_bytes": max(self._rss_sample_peak, rss_end),
            "peak_rss_bytes": peak_rss_bytes(),
            "tracemalloc": None,
        }
        if self.tracemalloc and self._tm_before is not None:
            import tracemalloc as tm

            if tm.is_tracing():
                cur, peak = tm.get_traced_memory()
                memory["tracemalloc"] = {
                    "delta_bytes": cur - self._tm_before[0],
                    "peak_bytes": peak,
                }

        pool_stats = None
        if self._pool is not None:
            pool_stats = self._pool.stats_snapshot()
            if self._pool_before is not None:
                pool_stats = _stats_delta(pool_stats, self._pool_before)

        cache = (result.extras.get("cache") if result is not None else None) or {}
        record = {
            "schema": TELEMETRY_RECORD_SCHEMA,
            "kind": "repro-telemetry",
            "label": self._run_label,
            "dataset": getattr(result, "dataset", None),
            "algorithm": getattr(result, "algorithm", None),
            "p": getattr(result, "p", None),
            "count": getattr(result, "count", None),
            "digest": cache.get("digest"),
            "cache_hit": cache.get("hit"),
            "model_fingerprint": (
                model.fingerprint() if model is not None else None
            ),
            "executor": getattr(cfg, "executor", None),
            "workers": getattr(cfg, "workers", None),
            "host": host_metadata(),
            "wall_s": wall_s,
            "virtual_makespan_s": (
                run.makespan if run is not None else None
            ),
            "phases": phases,
            "memory": memory,
            "gc": gc_delta,
            "pool": pool_stats,
            "flight_recorder": self.recorder.stats(),
        }
        self.recorder.record("run.end", label=self._run_label, wall_s=wall_s)
        return record

    # -- post-mortem --------------------------------------------------------

    def crash_dump(self, reason: str, path: Any = None) -> Path | None:
        """Dump the flight recorder on a failure.

        ``path`` overrides the target file; otherwise one is generated
        under ``crash_dir`` (``None`` when no ``crash_dir`` either).
        """
        self.recorder.record("crash", reason=reason)
        if path is None:
            if self.crash_dir is None:
                return None
            self._dumps += 1
            slug = "".join(
                ch if (ch.isalnum() or ch in "-_") else "-" for ch in reason
            )[:48] or "crash"
            path = self.crash_dir / f"flightrec-{self._dumps:03d}-{slug}.json"
        return self.recorder.dump(path, reason=reason)


def _stats_delta(
    now: dict[str, Any], before: dict[str, Any]
) -> dict[str, Any]:
    """Per-run pool-stat delta (cumulative counters minus the run-begin
    snapshot; non-numeric / high-water fields pass through)."""
    out: dict[str, Any] = {}
    for k, v in now.items():
        if isinstance(v, dict):
            prev = before.get(k, {})
            out[k] = {
                wk: wv - prev.get(wk, 0.0) for wk, wv in v.items()
            }
        elif isinstance(v, (int, float)) and not k.endswith("_peak"):
            out[k] = v - before.get(k, 0)
        else:
            out[k] = v
    return out


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def _fmt_bytes(n: Any) -> str:
    if not n:
        return "-"
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:,.1f} {unit}"
        n /= 1024
    return f"{n:,.1f} GiB"  # pragma: no cover - loop always returns


def telemetry_report(record: dict[str, Any]) -> str:
    """Render a telemetry record as the text report ``repro count
    --telemetry`` prints (phases, memory, GC, pool buckets)."""
    lines: list[str] = []
    head = (
        f"telemetry: {record.get('dataset') or record.get('label') or 'run'} "
        f"p={record.get('p')} executor={record.get('executor') or '?'}"
    )
    if record.get("workers"):
        head += f" workers={record['workers']}"
    lines.append(head)
    lines.append(
        f"  wall {record.get('wall_s', 0.0):.3f}s"
        + (
            f"  virtual makespan {record['virtual_makespan_s']:.3f}s"
            if record.get("virtual_makespan_s") is not None
            else ""
        )
    )
    phases = record.get("phases") or {}
    if phases:
        lines.append("  phase       exec-wall   virtual    comm%   max-rss")
        for name, ph in phases.items():
            virt = ph.get("virtual_s")
            comm = ph.get("comm_fraction")
            row = f"  {name:<10} {ph.get('wall_s', 0.0):>9.3f}s"
            row += f" {virt:>8.3f}s" if virt is not None else "        -"
            row += f" {100 * comm:>7.1f}%" if comm is not None else "       -"
            row += f"  {_fmt_bytes(ph.get('rss_max_bytes'))}"
            lines.append(row)
    mem = record.get("memory") or {}
    lines.append(
        "  memory: rss "
        f"{_fmt_bytes(mem.get('rss_begin_bytes'))} -> "
        f"{_fmt_bytes(mem.get('rss_end_bytes'))}, "
        f"process peak {_fmt_bytes(mem.get('peak_rss_bytes'))}"
    )
    tm = mem.get("tracemalloc")
    if tm:
        lines.append(
            f"  tracemalloc: delta {_fmt_bytes(tm.get('delta_bytes'))}, "
            f"peak {_fmt_bytes(tm.get('peak_bytes'))}"
        )
    gc_d = record.get("gc") or {}
    lines.append(
        f"  gc: {gc_d.get('collections', 0)} collections, "
        f"{1e3 * gc_d.get('total_pause_s', 0.0):.1f} ms total, "
        f"{1e3 * gc_d.get('max_pause_s', 0.0):.1f} ms max pause"
    )
    pool = record.get("pool")
    if pool and pool.get("dispatches"):
        lines.append(
            f"  pool: {pool['dispatches']} dispatches, "
            f"{pool.get('batches', 0)} batches, {pool.get('jobs', 0)} "
            f"jobs, wall {pool.get('wall_s', 0.0):.3f}s  "
            f"(serialize {pool.get('serialize_s', 0.0):.3f}s + dispatch "
            f"{pool.get('dispatch_s', 0.0):.3f}s + execute "
            f"{pool.get('execute_s', 0.0):.3f}s + collect "
            f"{pool.get('collect_s', 0.0):.3f}s)"
        )
        lines.append(
            f"  pool: payload {_fmt_bytes(pool.get('payload_bytes'))}, "
            f"arena {_fmt_bytes(pool.get('arena_capacity_bytes'))} "
            f"capacity, queue peak {pool.get('queue_peak', 0)}"
        )
        if pool.get("resident_puts") or pool.get("resident_hits"):
            lines.append(
                f"  pool residents: {pool.get('resident_puts', 0)} puts "
                f"({_fmt_bytes(pool.get('resident_bytes'))}), "
                f"{pool.get('resident_hits', 0)} zero-copy hits"
            )
        busy = pool.get("worker_busy_s") or {}
        if busy:
            per = ", ".join(
                f"pid {pid}: {s:.3f}s" for pid, s in sorted(busy.items())
            )
            lines.append(f"  pool workers: {per}")
    fr = record.get("flight_recorder") or {}
    lines.append(
        f"  flight recorder: {fr.get('recorded', 0)} events "
        f"({fr.get('dropped', 0)} dropped, capacity {fr.get('capacity', 0)})"
    )
    return "\n".join(lines)


def counter_samples(
    events: list[TelemetryEvent],
) -> list[dict[str, Any]]:
    """Convert recorded events into Perfetto counter samples.

    Returns ``{"t", "name", "value"}`` dicts (seconds, counter name,
    numeric value) for the RSS and pool-queue-depth timelines, time
    ordered — feed them to
    :func:`~repro.instrument.chrometrace.chrome_trace` via ``counters=``.
    """
    samples: list[dict[str, Any]] = []
    for e in events:
        if e.kind == "sample.rss" or e.kind == "phase":
            rss = e.detail.get("rss_bytes")
            if rss:
                samples.append({"t": e.t, "name": "rss_bytes", "value": rss})
        if e.kind == "pool.queue":
            samples.append(
                {
                    "t": e.t,
                    "name": "pool_queue_depth",
                    "value": e.detail.get("depth", 0),
                }
            )
        if e.kind == "sample.rss" and "queue_depth" in e.detail:
            samples.append(
                {
                    "t": e.t,
                    "name": "pool_queue_depth",
                    "value": e.detail["queue_depth"],
                }
            )
    samples.sort(key=lambda s: (s["t"], s["name"]))
    return samples
