"""Run-level metrics registry: per-phase timing aggregates over all ranks.

:class:`RunMetrics` condenses a :class:`~repro.simmpi.engine.RunResult`
into the summary statistics the paper's evaluation revolves around:

* per-phase busy-time min/max/mean over ranks and the **load-imbalance
  factor** ``max / mean`` (Table 3's metric);
* per-phase aggregate **communication fraction** (Figure 3's metric);
* merged operation counters (Tables 4-6 read these).

Everything here is computed from the per-rank clocks and counters that the
engine records unconditionally, so metrics work on *any* run — no tracing
required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.instrument.counters import merge_counters
from repro.instrument.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import RunResult


def imbalance_factor(values: Sequence[float]) -> float:
    """Load-imbalance factor ``max / mean`` (1.0 = perfectly balanced).

    Empty input or an all-zero load reports 1.0, matching Table 3's
    convention for idle configurations.
    """
    vals = list(values)
    if not vals:
        return 1.0
    mean = sum(vals) / len(vals)
    return max(vals) / mean if mean > 0 else 1.0


@dataclass(frozen=True)
class PhaseMetric:
    """Aggregated timing of one named phase across all ranks that ran it.

    Attributes
    ----------
    name:
        Phase label (nested phases appear as ``"outer/inner"``).
    ranks:
        Number of ranks that entered the phase.
    t_min, t_mean, t_max:
        Min/mean/max per-rank busy time (compute + comm) in the phase.
    imbalance:
        ``t_max / t_mean`` — Table 3's load-imbalance factor.
    compute, comm:
        Aggregate seconds over all ranks, split by accounting class.
    comm_fraction:
        ``comm / (comm + compute)`` — Figure 3's communication share.
    elapsed:
        Reported wall span: latest end minus earliest start.
    """

    name: str
    ranks: int
    t_min: float
    t_mean: float
    t_max: float
    imbalance: float
    compute: float
    comm: float
    comm_fraction: float
    elapsed: float


@dataclass
class RunMetrics:
    """Summary metrics of one engine run.

    Build with :meth:`from_run`; render with :meth:`phase_table` and
    :meth:`counter_table`.
    """

    num_ranks: int
    makespan: float
    phases: list[PhaseMetric] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    rank_busy: list[float] = field(default_factory=list)

    @classmethod
    def from_run(cls, run: "RunResult") -> "RunMetrics":
        """Aggregate the per-rank clocks and counters of ``run``."""
        phases: list[PhaseMetric] = []
        for name in run.phase_names():
            stats = run.phase_stats(name)
            busy = [s.compute + s.comm for s in stats]
            compute = sum(s.compute for s in stats)
            comm = sum(s.comm for s in stats)
            total = compute + comm
            phases.append(
                PhaseMetric(
                    name=name,
                    ranks=len(stats),
                    t_min=min(busy),
                    t_mean=sum(busy) / len(busy),
                    t_max=max(busy),
                    imbalance=imbalance_factor(busy),
                    compute=compute,
                    comm=comm,
                    comm_fraction=comm / total if total > 0 else 0.0,
                    elapsed=run.phase_time(name),
                )
            )
        return cls(
            num_ranks=run.num_ranks,
            makespan=run.makespan,
            phases=phases,
            counters=merge_counters(run.counters),
            rank_busy=[c.now for c in run.clocks],
        )

    def phase(self, name: str) -> PhaseMetric:
        """The metric record of phase ``name``."""
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(f"no phase named {name!r}")

    @property
    def run_imbalance(self) -> float:
        """Imbalance factor of the per-rank total virtual times."""
        return imbalance_factor(self.rank_busy)

    # -- rendering ----------------------------------------------------------

    def phase_table(self, unit: float = 1e3, unit_label: str = "ms") -> str:
        """Phase breakdown as an aligned text table (times scaled by
        ``unit``, milliseconds by default)."""
        rows = [
            (
                ph.name,
                ph.ranks,
                ph.t_min * unit,
                ph.t_mean * unit,
                ph.t_max * unit,
                ph.imbalance,
                100.0 * ph.comm_fraction,
            )
            for ph in self.phases
        ]
        return format_table(
            [
                "phase",
                "ranks",
                f"min ({unit_label})",
                f"mean ({unit_label})",
                f"max ({unit_label})",
                "imbalance",
                "comm %",
            ],
            rows,
            title=(
                f"Per-phase breakdown over {self.num_ranks} ranks "
                f"(makespan {self.makespan * unit:.3f} {unit_label}, "
                f"run imbalance {self.run_imbalance:.3f})"
            ),
            floatfmt=".3f",
        )

    def counter_table(self) -> str:
        """Merged operation counters as an aligned text table."""
        rows = [(k, int(v)) for k, v in sorted(self.counters.items())]
        return format_table(
            ["operation", "count"], rows, title="Operation counters (all ranks)"
        )
