"""Plain-text table and chart rendering for the benchmark harness.

The benchmark scripts regenerate the paper's tables and figures as text:
tables as aligned columns, figures as simple ASCII line charts (one series
per phase, as in Figures 1-3).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    floatfmt: str = ".2f",
) -> str:
    """Render rows as an aligned monospace table.

    Floats use ``floatfmt``; everything else is ``str()``-ed.  Right-align
    numeric columns, left-align text.
    """

    def cell(v: object) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rendered = [[cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for r in rendered:
        if len(r) != ncols:
            raise ValueError("row width does not match headers")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(ncols)
    ]
    numeric = [
        all(_is_number(row[c]) for row in rows) if rows else False
        for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for c, text in enumerate(cells):
            out.append(text.rjust(widths[c]) if numeric[c] else text.ljust(widths[c]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)


def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 68,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker character; points share one canvas.  Meant
    for the Figure 1-3 reproductions, where the qualitative shape (which
    curve is higher, where it bends) is what matters.
    """
    markers = "ox+*#@%&"
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1
    if ymax == ymin:
        ymax = ymin + 1
    grid = [[" "] * width for _ in range(height)]
    for si, (name, data) in enumerate(series.items()):
        mk = markers[si % len(markers)]
        for x, y in data:
            cx = int(round((x - xmin) / (xmax - xmin) * (width - 1)))
            cy = int(round((y - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - cy][cx] = mk
    lines = []
    if title:
        lines.append(title)
    top_label = f"{ymax:.3g}"
    bot_label = f"{ymin:.3g}"
    label_w = max(len(top_label), len(bot_label), len(ylabel))
    for r, row in enumerate(grid):
        if r == 0:
            left = top_label.rjust(label_w)
        elif r == height - 1:
            left = bot_label.rjust(label_w)
        elif r == height // 2 and ylabel:
            left = ylabel.rjust(label_w)[:label_w]
        else:
            left = " " * label_w
        lines.append(f"{left} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    xline = f"{xmin:.3g}".ljust(width // 2) + f"{xmax:.3g}".rjust(width // 2)
    lines.append(" " * label_w + "  " + xline + (f"   {xlabel}" if xlabel else ""))
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_w + "  legend: " + legend)
    return "\n".join(lines)
