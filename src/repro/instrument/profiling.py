"""One-call profile report combining every observability view of a run.

:func:`profile_report` is what ``repro profile`` and ``repro count
--profile`` print: the per-phase breakdown with imbalance factors and
communication fractions (always available), plus — when the run was
traced — byte totals per collective, the hottest rank pairs of the
communication matrix, the top wait-for edges, and the critical path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.instrument.commmatrix import CommMatrix
from repro.instrument.metrics import RunMetrics
from repro.instrument.report import format_table
from repro.instrument.waits import critical_path_table, wait_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import RunResult


def profile_report(
    run: "RunResult",
    top_waits: int = 10,
    counters: bool = True,
    matrix: bool = False,
    kernel_backend: str | None = None,
) -> str:
    """Render the full observability report of ``run`` as text.

    ``matrix`` additionally includes the dense rank-to-rank message
    matrix (readable up to a few dozen ranks).  ``kernel_backend`` is a
    free-form label of the intersection-kernel backend that produced the
    run (e.g. ``"auto (batch×36, row×12)"``), prepended as a
    header line when given.
    """
    metrics = RunMetrics.from_run(run)
    parts = []
    if kernel_backend:
        parts.append(f"kernel backend: {kernel_backend}")
    parts.append(metrics.phase_table())
    if counters and metrics.counters:
        parts.append(metrics.counter_table())

    traced = bool(run.tracer.events or run.tracer.spans)
    if traced:
        cm = CommMatrix.from_run(run)
        coll = run.tracer.collective_bytes()
        if coll:
            parts.append(
                format_table(
                    ["collective", "bytes"],
                    sorted(coll.items()),
                    title="Wire bytes inside collectives",
                )
            )
        pairs = cm.hottest_pairs()
        if pairs:
            parts.append(
                format_table(
                    ["src", "dst", "messages", "bytes"],
                    pairs,
                    title=(
                        f"Hottest communication pairs "
                        f"({cm.total_messages} msgs, {cm.total_bytes:,} "
                        "bytes total)"
                    ),
                )
            )
        if matrix:
            parts.append(cm.render("messages"))
        wt = wait_table(run, top=top_waits)
        parts.append(wt)
        parts.append(critical_path_table(run))
    else:
        parts.append(
            "(run was not traced: comm matrix, wait-for and critical-path "
            "analyses need trace=True)"
        )
    return "\n\n".join(parts)
