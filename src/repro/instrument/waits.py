"""Wait-for and critical-path analysis over an event trace.

Whenever a rank's receive completes later than it was posted, the gap is
stall time attributable to the *sender* of the matched message.  This
module aggregates those stalls into **wait edges** — "rank r stalled W
seconds on rank s inside phase ph" — and walks the message chain backward
from the last-finishing rank to reconstruct the run's **critical path**,
the alternating compute/wait chain that bounds the makespan.

Both analyses need a traced run (``Engine(..., trace=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.instrument.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import RunResult


@dataclass(frozen=True)
class WaitEdge:
    """Aggregate stall of one rank on one peer within one phase.

    Attributes
    ----------
    rank:
        The waiting (stalled) rank.
    src:
        The rank whose message ended the waits.
    phase:
        Innermost phase the waits occurred in (``""`` if outside any
        phase).
    seconds:
        Total stalled virtual seconds.
    count:
        Number of individual waits aggregated.
    """

    rank: int
    src: int
    phase: str
    seconds: float
    count: int


@dataclass(frozen=True)
class CriticalHop:
    """One segment of the critical path: ``rank`` was on the path from
    ``begin`` to ``end``; if ``waited_on`` is not ``None``, the segment
    was *preceded* by a stall that ended when ``waited_on``'s message
    arrived at ``begin``."""

    rank: int
    begin: float
    end: float
    waited_on: int | None


def _phase_lookup(run: "RunResult") -> dict[int, list]:
    """Per-rank phase spans sorted by begin time (deepest resolves last)."""
    by_rank: dict[int, list] = {r: [] for r in range(run.num_ranks)}
    for span in run.tracer.spans:
        if span.cat == "phase":
            by_rank[span.rank].append(span)
    return by_rank


def _phase_at(spans: list, t: float) -> str:
    """Name of the innermost phase span covering time ``t``."""
    best_name = ""
    best_depth = -1
    for s in spans:
        if s.begin <= t <= s.end and s.depth > best_depth:
            best_name, best_depth = s.name, s.depth
    return best_name


def wait_edges(run: "RunResult") -> list[WaitEdge]:
    """Aggregate every positive receive wait into per-(rank, src, phase)
    edges, sorted by total stall time (largest first)."""
    phases = _phase_lookup(run)
    acc: dict[tuple[int, int, str], tuple[float, int]] = {}
    for e in run.tracer.events:
        if e.kind != "recv":
            continue
        waited = float(e.detail.get("waited", 0.0))
        if waited <= 0:
            continue
        phase = _phase_at(phases[e.rank], e.t)
        key = (e.rank, int(e.detail["src"]), phase)
        sec, cnt = acc.get(key, (0.0, 0))
        acc[key] = (sec + waited, cnt + 1)
    edges = [
        WaitEdge(rank=r, src=s, phase=ph, seconds=sec, count=cnt)
        for (r, s, ph), (sec, cnt) in acc.items()
    ]
    edges.sort(key=lambda w: (-w.seconds, w.rank, w.src, w.phase))
    return edges


def wait_table(run: "RunResult", top: int = 10) -> str:
    """The ``top`` wait edges as an aligned text table."""
    rows = [
        (w.rank, w.src, w.phase or "-", w.seconds * 1e3, w.count)
        for w in wait_edges(run)[:top]
    ]
    return format_table(
        ["rank", "stalled on", "phase", "wait (ms)", "waits"],
        rows,
        title="Top wait-for edges (which rank each rank stalled on)",
        floatfmt=".3f",
    )


def critical_path(run: "RunResult", max_hops: int = 64) -> list[CriticalHop]:
    """Walk the message chain backward from the last-finishing rank.

    Starting at the makespan-defining rank, repeatedly find the latest
    receive wait before the current time; the path jumps to the sender of
    the message that ended that wait, at the time it was sent.  The walk
    stops at a rank that reached its current position without stalling
    (pure compute from t=0) or after ``max_hops`` segments.

    Returns hops in chronological order (earliest first).
    """
    # send time by message seq, for jumping from a wait to its sender.
    send_t: dict[int, float] = {}
    for e in run.tracer.events:
        if e.kind == "send" and "seq" in e.detail:
            send_t[int(e.detail["seq"])] = e.t
    # per-rank recv waits in time order.
    waits: dict[int, list] = {r: [] for r in range(run.num_ranks)}
    for e in run.tracer.events:
        if e.kind == "recv" and float(e.detail.get("waited", 0.0)) > 0:
            waits[e.rank].append(e)
    for lst in waits.values():
        lst.sort(key=lambda e: e.t)

    rank = max(range(run.num_ranks), key=lambda r: run.clocks[r].now)
    t = run.clocks[rank].now
    hops: list[CriticalHop] = []
    for _ in range(max_hops):
        last = None
        for e in waits[rank]:
            if e.t <= t:
                last = e
            else:
                break
        if last is None:
            hops.append(CriticalHop(rank=rank, begin=0.0, end=t, waited_on=None))
            break
        src = int(last.detail["src"])
        hops.append(CriticalHop(rank=rank, begin=last.t, end=t, waited_on=src))
        seq = last.detail.get("seq")
        t = send_t.get(int(seq), last.t) if seq is not None else last.t
        rank = src
    hops.reverse()
    return hops


def critical_path_table(run: "RunResult", max_hops: int = 64) -> str:
    """The critical path as an aligned text table."""
    rows = []
    for hop in critical_path(run, max_hops=max_hops):
        rows.append(
            (
                hop.rank,
                hop.begin * 1e3,
                hop.end * 1e3,
                "-" if hop.waited_on is None else str(hop.waited_on),
            )
        )
    return format_table(
        ["rank", "from (ms)", "to (ms)", "unblocked by"],
        rows,
        title="Critical path (chronological; last row ends at the makespan)",
        floatfmt=".3f",
    )
