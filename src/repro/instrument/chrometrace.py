"""Chrome trace-event (Perfetto-compatible) export of a traced run.

The exporter maps the simulated run onto the Chrome trace-event JSON
format (the ``traceEvents`` array format documented by the Trace Event
Profiling Tool and consumed by https://ui.perfetto.dev): one process, one
track (tid) per virtual rank, virtual seconds mapped to microseconds on
the trace clock.

* spans (phases, compute bursts, send overheads, receive waits) become
  ``"X"`` complete events;
* each delivered message becomes a flow arrow (``"s"``/``"f"`` flow
  events bound to the send and matching receive), so Perfetto draws
  Cannon's shift pattern as arrows between rank tracks;
* collective summary events become ``"i"`` instant events;
* injected-fault and checkpoint events (the resilience subsystem) become
  labeled ``"i"`` instant events (``cat`` ``"fault"`` / ``"ckpt"``);
* optionally, the parallel executor's wall-clock
  :class:`~repro.simmpi.parallel.WorkerSpan` records become a second
  process (one track per worker pid) so pool occupancy is visible next
  to the virtual rank timelines;
* optionally, telemetry counter samples (RSS, pool queue depth — see
  :func:`repro.instrument.telemetry.counter_samples`) become ``"C"``
  counter tracks on the wall-clock process.

Export is fully deterministic *and executor-invariant*: spans and events
are emitted rank-major (each rank's records in its own program order —
which is identical under the sequential and parallel executors — ranks
concatenated in id order) and serialized with sorted keys, so two runs
that differ only in executor or in wall-clock interleaving produce
byte-identical files.  The opt-in worker and counter tracks are the one
exception: they record real time and are therefore nondeterministic by
nature.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import RunResult
    from repro.simmpi.parallel import WorkerSpan

#: Trace clock: virtual seconds -> microseconds.
_US = 1e6
_PID = 0
#: Second trace process holding the pool workers' wall-clock lanes.
_WORKER_PID = 1


def _rank_major(records: Iterable[Any]) -> list[Any]:
    """Stable rank-major order: per-rank record order is engine-program
    order (executor-invariant); ranks concatenate in id order."""
    return sorted(records, key=lambda r: r.rank)


def _span_args(detail: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in detail.items() if k != "seq"}


def chrome_trace(
    run: "RunResult",
    worker_spans: Sequence["WorkerSpan"] | None = None,
    counters: Sequence[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """Build the trace-event dictionary for a traced ``run``.

    ``worker_spans`` (optional) merges the parallel executor's wall-clock
    worker occupancy as a second trace process — one lane per worker
    process, one ``"X"`` event per offloaded job, timestamps in real
    seconds since pool creation.  ``counters`` (optional) adds ``"C"``
    counter tracks to the same wall-clock process — each sample a dict
    with ``t`` (seconds), ``name`` and ``value``, as produced by
    :func:`repro.instrument.telemetry.counter_samples`.  Leave both
    ``None`` (the default) for a fully deterministic export.

    Raises ``ValueError`` if the run was executed without tracing (there
    would be nothing to export).
    """
    tracer = run.tracer
    if not tracer.enabled and not tracer.spans and not tracer.events:
        raise ValueError(
            "run has no trace; construct the engine with trace=True "
            "(or pass trace=True to the algorithm driver)"
        )
    events: list[dict[str, Any]] = []

    # Track naming/ordering metadata first.
    events.append(
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"simmpi run ({run.num_ranks} ranks)"},
        }
    )
    for r in range(run.num_ranks):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": r,
                "name": "thread_name",
                "args": {"name": f"rank {r}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": r,
                "name": "thread_sort_index",
                "args": {"sort_index": r},
            }
        )

    # Spans -> complete events.
    for span in _rank_major(tracer.spans):
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": span.rank,
                "ts": span.begin * _US,
                "dur": span.duration * _US,
                "name": span.name,
                "cat": span.cat,
                "args": _span_args(span.detail),
            }
        )

    # Message flows: bind each send to its matching receive by seq.  The
    # engine's seq numbers real execution interleaving (which a different
    # executor may legally change), so the exported flow ids are
    # renumbered in rank-major emission order to stay executor-invariant.
    recv_by_seq: dict[int, Any] = {}
    for e in tracer.events:
        if e.kind == "recv" and "seq" in e.detail:
            recv_by_seq[int(e.detail["seq"])] = e
    flow_id = 0
    for e in _rank_major(tracer.events):
        if e.kind == "send" and "seq" in e.detail:
            seq = int(e.detail["seq"])
            recv = recv_by_seq.get(seq)
            if recv is None:
                continue  # sent but never received (e.g. aborted run)
            flow_id += 1
            flow = {
                "cat": "msg",
                "name": f"{e.rank}->{recv.rank}",
                "id": flow_id,
                "pid": _PID,
            }
            events.append(
                {**flow, "ph": "s", "tid": e.rank, "ts": e.t * _US}
            )
            events.append(
                {
                    **flow,
                    "ph": "f",
                    "bp": "e",
                    "tid": recv.rank,
                    "ts": recv.t * _US,
                }
            )
        elif e.kind == "collective":
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": e.rank,
                    "ts": e.t * _US,
                    "name": str(e.detail.get("op", "collective")),
                    "cat": "collective",
                    "args": {"nbytes": e.detail.get("nbytes", 0)},
                }
            )
        elif e.kind == "fault":
            events.append(
                {
                    "ph": "i",
                    "s": "g",  # global scope: a fault is a run-wide incident
                    "pid": _PID,
                    "tid": e.rank,
                    "ts": e.t * _US,
                    "name": f"fault:{e.detail.get('fault', '?')}",
                    "cat": "fault",
                    "args": _span_args(e.detail),
                }
            )
        elif e.kind == "checkpoint":
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": e.rank,
                    "ts": e.t * _US,
                    "name": f"checkpoint:{e.detail.get('epoch', '?')}",
                    "cat": "ckpt",
                    "args": _span_args(e.detail),
                }
            )

    # Optional wall-clock worker track: a second trace process with one
    # lane per worker pid.  Real time, hence nondeterministic; opt-in.
    if worker_spans or counters:
        events.append(
            {
                "ph": "M",
                "pid": _WORKER_PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "superstep workers (wall clock)"},
            }
        )
    if worker_spans:
        lanes = {
            pid: lane
            for lane, pid in enumerate(sorted({s.worker for s in worker_spans}))
        }
        for pid, lane in lanes.items():
            events.append(
                {
                    "ph": "M",
                    "pid": _WORKER_PID,
                    "tid": lane,
                    "name": "thread_name",
                    "args": {"name": f"worker pid {pid}"},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "pid": _WORKER_PID,
                    "tid": lane,
                    "name": "thread_sort_index",
                    "args": {"sort_index": lane},
                }
            )
        for s in worker_spans:
            events.append(
                {
                    "ph": "X",
                    "pid": _WORKER_PID,
                    "tid": lanes[s.worker],
                    "ts": s.begin * _US,
                    "dur": s.duration * _US,
                    "name": s.label or "job",
                    "cat": "worker",
                    "args": {
                        "rank": s.rank,
                        "dispatch": s.dispatch,
                        "pid": s.worker,
                    },
                }
            )

    # Optional telemetry counter tracks (RSS, queue depth) on the same
    # wall-clock process.  Counter events carry no flow ids, so adding
    # them never renumbers the message arrows above.
    if counters:
        for c in counters:
            events.append(
                {
                    "ph": "C",
                    "pid": _WORKER_PID,
                    "tid": 0,
                    "ts": float(c["t"]) * _US,
                    "name": str(c["name"]),
                    "cat": "telemetry",
                    "args": {"value": c["value"]},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "ranks": run.num_ranks,
            "makespan_us": run.makespan * _US,
            "clock": "virtual",
        },
    }


def dumps_chrome_trace(
    run: "RunResult",
    worker_spans: Sequence["WorkerSpan"] | None = None,
    counters: Sequence[dict[str, Any]] | None = None,
) -> str:
    """Serialize :func:`chrome_trace` deterministically (sorted keys,
    fixed separators, trailing newline)."""
    return (
        json.dumps(
            chrome_trace(run, worker_spans=worker_spans, counters=counters),
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


def write_chrome_trace(
    path,
    run: "RunResult",
    worker_spans: Sequence["WorkerSpan"] | None = None,
    counters: Sequence[dict[str, Any]] | None = None,
) -> None:
    """Write the Perfetto-loadable trace of ``run`` to ``path``.

    Open the file at https://ui.perfetto.dev (or ``chrome://tracing``).
    """
    from pathlib import Path

    Path(path).write_text(
        dumps_chrome_trace(run, worker_spans=worker_spans, counters=counters)
    )
