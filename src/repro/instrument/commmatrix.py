"""Rank-to-rank communication matrix built from a run's event trace.

Every wire message (point-to-point sends *and* the messages collectives
are built from) appears as one ``"send"`` event in the tracer, so the
matrix is exact: entry ``(i, j)`` holds how many messages and bytes rank
``i`` pushed toward rank ``j``.  Requires the run to have been executed
with tracing enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.instrument.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.engine import RunResult
    from repro.simmpi.tracing import Tracer


@dataclass
class CommMatrix:
    """Dense ``p x p`` message/byte matrix, indexed ``[src][dst]``."""

    num_ranks: int
    messages: list[list[int]]
    nbytes: list[list[int]]

    @classmethod
    def from_tracer(cls, tracer: "Tracer", num_ranks: int) -> "CommMatrix":
        """Accumulate all ``"send"`` events of ``tracer``."""
        msgs = [[0] * num_ranks for _ in range(num_ranks)]
        byts = [[0] * num_ranks for _ in range(num_ranks)]
        for e in tracer.events:
            if e.kind != "send":
                continue
            dst = int(e.detail["dst"])
            msgs[e.rank][dst] += 1
            byts[e.rank][dst] += int(e.detail.get("nbytes", 0))
        return cls(num_ranks=num_ranks, messages=msgs, nbytes=byts)

    @classmethod
    def from_run(cls, run: "RunResult") -> "CommMatrix":
        """Accumulate the trace of a finished :class:`RunResult`."""
        return cls.from_tracer(run.tracer, run.num_ranks)

    # -- aggregates ---------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """All messages sent during the run."""
        return sum(sum(row) for row in self.messages)

    @property
    def total_bytes(self) -> int:
        """All bytes pushed onto the wire during the run."""
        return sum(sum(row) for row in self.nbytes)

    def sent_by(self, rank: int) -> tuple[int, int]:
        """``(messages, bytes)`` rank ``rank`` sent."""
        return sum(self.messages[rank]), sum(self.nbytes[rank])

    def received_by(self, rank: int) -> tuple[int, int]:
        """``(messages, bytes)`` addressed to rank ``rank``."""
        return (
            sum(row[rank] for row in self.messages),
            sum(row[rank] for row in self.nbytes),
        )

    def hottest_pairs(self, top: int = 5) -> list[tuple[int, int, int, int]]:
        """The ``top`` (src, dst, messages, bytes) pairs by byte volume."""
        pairs = [
            (s, d, self.messages[s][d], self.nbytes[s][d])
            for s in range(self.num_ranks)
            for d in range(self.num_ranks)
            if self.messages[s][d]
        ]
        pairs.sort(key=lambda x: (-x[3], -x[2], x[0], x[1]))
        return pairs[:top]

    def is_symmetric(self) -> bool:
        """True when every pair exchanged equal message counts both ways
        (e.g. a pure ``sendrecv``/pairwise-exchange pattern)."""
        return all(
            self.messages[i][j] == self.messages[j][i]
            for i in range(self.num_ranks)
            for j in range(i + 1, self.num_ranks)
        )

    # -- rendering ----------------------------------------------------------

    def render(self, what: str = "messages") -> str:
        """The matrix as an aligned text table (``what``: ``"messages"``
        or ``"bytes"``)."""
        if what not in ("messages", "bytes"):
            raise ValueError("what must be 'messages' or 'bytes'")
        grid = self.messages if what == "messages" else self.nbytes
        headers = ["src\\dst"] + [str(d) for d in range(self.num_ranks)]
        rows = [
            [str(s)] + [grid[s][d] for d in range(self.num_ranks)]
            for s in range(self.num_ranks)
        ]
        return format_table(
            headers,
            rows,
            title=(
                f"Communication matrix ({what}): {self.total_messages} msgs, "
                f"{self.total_bytes:,} bytes total"
            ),
        )
