"""Compare two recorded telemetry runs (``repro diff``).

A telemetry record (see :mod:`repro.instrument.telemetry`) captures one
run's wall/virtual phase breakdown, memory, GC and pool-bucket stats,
keyed by the preprocessing-store digest and the machine-model
fingerprint.  :func:`diff_records` lines two records up phase by phase
and reports the deltas; :func:`render_diff` is the text view.

Comparability is checked, not enforced: runs with different store
digests (different graph/config), model fingerprints or hosts still
diff, but the mismatch is listed under ``warnings`` so a "regression"
that is actually an input change is visible at a glance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.instrument.telemetry import TELEMETRY_RECORD_SCHEMA


def load_record(path: Any) -> dict[str, Any]:
    """Read and validate one telemetry-record JSON file."""
    doc = json.loads(Path(path).read_text())
    if doc.get("kind") != "repro-telemetry":
        raise ValueError(
            f"{path}: not a telemetry record (kind={doc.get('kind')!r})"
        )
    if int(doc.get("schema", 0)) > TELEMETRY_RECORD_SCHEMA:
        raise ValueError(
            f"{path}: record schema {doc.get('schema')} is newer than this "
            f"reader ({TELEMETRY_RECORD_SCHEMA})"
        )
    return doc


def _delta(a: Any, b: Any) -> float | None:
    if a is None or b is None:
        return None
    return float(b) - float(a)


def _ratio(a: Any, b: Any) -> float | None:
    if a is None or b is None or float(a) == 0.0:
        return None
    return float(b) / float(a)


def diff_records(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Structured diff of two telemetry records (A = reference, B = new).

    Returns a JSON-serializable document with ``warnings`` (key
    mismatches), ``totals`` (wall/makespan/memory deltas), per-phase
    rows, and ``pool`` bucket deltas when both runs used the pool.
    """
    warnings: list[str] = []
    for key, label in (
        ("digest", "store digest"),
        ("model_fingerprint", "machine-model fingerprint"),
        ("dataset", "dataset"),
        ("p", "rank count"),
        ("count", "triangle count"),
    ):
        va, vb = a.get(key), b.get(key)
        if va is not None and vb is not None and va != vb:
            warnings.append(f"{label} differs: {va!r} vs {vb!r}")
    ha, hb = a.get("host") or {}, b.get("host") or {}
    if ha and hb and ha != hb:
        keys = [k for k in ha if ha.get(k) != hb.get(k)]
        warnings.append(f"host differs ({', '.join(sorted(keys))})")

    phases: dict[str, Any] = {}
    pa, pb = a.get("phases") or {}, b.get("phases") or {}
    for name in sorted(set(pa) | set(pb)):
        ra, rb = pa.get(name) or {}, pb.get(name) or {}
        phases[name] = {
            "wall_a_s": ra.get("wall_s"),
            "wall_b_s": rb.get("wall_s"),
            "wall_delta_s": _delta(ra.get("wall_s"), rb.get("wall_s")),
            "wall_ratio": _ratio(ra.get("wall_s"), rb.get("wall_s")),
            "virtual_a_s": ra.get("virtual_s"),
            "virtual_b_s": rb.get("virtual_s"),
            "virtual_delta_s": _delta(
                ra.get("virtual_s"), rb.get("virtual_s")
            ),
            "comm_a": ra.get("comm_fraction"),
            "comm_b": rb.get("comm_fraction"),
            "rss_a_bytes": ra.get("rss_max_bytes"),
            "rss_b_bytes": rb.get("rss_max_bytes"),
            "only_in": ("a" if name not in pb else "b")
            if name not in pa or name not in pb
            else None,
        }

    ma, mb = a.get("memory") or {}, b.get("memory") or {}
    totals = {
        "wall_a_s": a.get("wall_s"),
        "wall_b_s": b.get("wall_s"),
        "wall_delta_s": _delta(a.get("wall_s"), b.get("wall_s")),
        "wall_ratio": _ratio(a.get("wall_s"), b.get("wall_s")),
        "virtual_makespan_a_s": a.get("virtual_makespan_s"),
        "virtual_makespan_b_s": b.get("virtual_makespan_s"),
        "virtual_makespan_delta_s": _delta(
            a.get("virtual_makespan_s"), b.get("virtual_makespan_s")
        ),
        "rss_end_delta_bytes": _delta(
            ma.get("rss_end_bytes"), mb.get("rss_end_bytes")
        ),
    }

    pool = None
    qa, qb = a.get("pool"), b.get("pool")
    if qa and qb:
        pool = {
            k: {
                "a": qa.get(k),
                "b": qb.get(k),
                "delta": _delta(qa.get(k), qb.get(k)),
            }
            for k in (
                "dispatches",
                "batches",
                "jobs",
                "wall_s",
                "serialize_s",
                "dispatch_s",
                "execute_s",
                "collect_s",
                "payload_bytes",
                "resident_puts",
                "resident_hits",
                "resident_bytes",
                "queue_peak",
            )
        }
    elif qa or qb:
        warnings.append(
            "pool stats present in only one run "
            f"({'A' if qa else 'B'}; executor mismatch?)"
        )

    return {
        "kind": "repro-telemetry-diff",
        "a": {"label": a.get("label"), "executor": a.get("executor")},
        "b": {"label": b.get("label"), "executor": b.get("executor")},
        "warnings": warnings,
        "totals": totals,
        "phases": phases,
        "pool": pool,
    }


def _fmt_s(v: Any) -> str:
    return f"{v:>9.3f}s" if v is not None else "        -"


def _fmt_ratio(v: Any) -> str:
    return f"{v:>6.2f}x" if v is not None else "     -"


def render_diff(diff: dict[str, Any]) -> str:
    """Text rendering of :func:`diff_records` (what ``repro diff``
    prints)."""
    lines: list[str] = []
    lines.append(
        f"diff: A={diff['a'].get('label') or '?'} "
        f"({diff['a'].get('executor') or '?'})  vs  "
        f"B={diff['b'].get('label') or '?'} "
        f"({diff['b'].get('executor') or '?'})"
    )
    for w in diff.get("warnings", []):
        lines.append(f"  WARNING: {w}")
    t = diff.get("totals", {})
    lines.append(
        f"  wall      A {_fmt_s(t.get('wall_a_s'))}  "
        f"B {_fmt_s(t.get('wall_b_s'))}  "
        f"delta {_fmt_s(t.get('wall_delta_s'))}  "
        f"{_fmt_ratio(t.get('wall_ratio'))}"
    )
    if t.get("virtual_makespan_a_s") is not None:
        lines.append(
            f"  makespan  A {_fmt_s(t.get('virtual_makespan_a_s'))}  "
            f"B {_fmt_s(t.get('virtual_makespan_b_s'))}  "
            f"delta {_fmt_s(t.get('virtual_makespan_delta_s'))}  (virtual)"
        )
    phases = diff.get("phases") or {}
    if phases:
        lines.append(
            "  phase       wall A     wall B      delta   ratio   "
            "virt delta"
        )
        for name, row in phases.items():
            lines.append(
                f"  {name:<10}{_fmt_s(row.get('wall_a_s'))} "
                f"{_fmt_s(row.get('wall_b_s'))} "
                f"{_fmt_s(row.get('wall_delta_s'))} "
                f"{_fmt_ratio(row.get('wall_ratio'))} "
                f"{_fmt_s(row.get('virtual_delta_s'))}"
                + (
                    f"   (only in {row['only_in'].upper()})"
                    if row.get("only_in")
                    else ""
                )
            )
    pool = diff.get("pool")
    if pool:
        lines.append("  pool bucket    A          B          delta")
        for k in (
            "wall_s",
            "serialize_s",
            "dispatch_s",
            "execute_s",
            "collect_s",
        ):
            row = pool.get(k) or {}
            lines.append(
                f"  {k:<12}{_fmt_s(row.get('a'))} {_fmt_s(row.get('b'))} "
                f"{_fmt_s(row.get('delta'))}"
            )
    return "\n".join(lines)
