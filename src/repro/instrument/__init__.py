"""Observability layer: metrics, comm matrix, wait analysis, exporters.

The subsystem has four pieces, all driven by the records a
:class:`~repro.simmpi.engine.RunResult` carries:

* :mod:`repro.instrument.metrics` — per-phase min/max/mean timings,
  load-imbalance factors (Table 3) and communication fractions (Figure 3);
* :mod:`repro.instrument.commmatrix` — rank-to-rank message/byte matrix;
* :mod:`repro.instrument.waits` — wait-for edges and critical-path walk;
* :mod:`repro.instrument.chrometrace` — Perfetto/Chrome trace-event JSON
  export of the span trace.

Plus the report/counter helpers that predate the layer
(:func:`format_table`, :func:`ascii_chart`, :func:`merge_counters`,
:func:`counters_diff`) and :func:`profile_report`, which stitches every
view into the text report the CLI prints.

See ``docs/observability.md`` for a walkthrough.
"""

from repro.instrument.chrometrace import (
    chrome_trace,
    dumps_chrome_trace,
    write_chrome_trace,
)
from repro.instrument.commmatrix import CommMatrix
from repro.instrument.counters import counters_diff, merge_counters
from repro.instrument.metrics import PhaseMetric, RunMetrics, imbalance_factor
from repro.instrument.profiling import profile_report
from repro.instrument.report import ascii_chart, format_table
from repro.instrument.waits import (
    CriticalHop,
    WaitEdge,
    critical_path,
    critical_path_table,
    wait_edges,
    wait_table,
)

__all__ = [
    "CommMatrix",
    "CriticalHop",
    "PhaseMetric",
    "RunMetrics",
    "WaitEdge",
    "ascii_chart",
    "chrome_trace",
    "counters_diff",
    "critical_path",
    "critical_path_table",
    "dumps_chrome_trace",
    "format_table",
    "imbalance_factor",
    "merge_counters",
    "profile_report",
    "wait_edges",
    "wait_table",
    "write_chrome_trace",
]
