"""Observability layer: metrics, comm matrix, wait analysis, exporters.

The subsystem has four pieces, all driven by the records a
:class:`~repro.simmpi.engine.RunResult` carries:

* :mod:`repro.instrument.metrics` — per-phase min/max/mean timings,
  load-imbalance factors (Table 3) and communication fractions (Figure 3);
* :mod:`repro.instrument.commmatrix` — rank-to-rank message/byte matrix;
* :mod:`repro.instrument.waits` — wait-for edges and critical-path walk;
* :mod:`repro.instrument.chrometrace` — Perfetto/Chrome trace-event JSON
  export of the span trace;
* :mod:`repro.instrument.telemetry` — wall-clock runtime telemetry: the
  structured event bus, flight-recorder ring buffer, RSS/GC/tracemalloc
  samplers and the per-run record ``repro diff`` compares;
* :mod:`repro.instrument.diffing` — compare two recorded telemetry runs.

Plus the report/counter helpers that predate the layer
(:func:`format_table`, :func:`ascii_chart`, :func:`merge_counters`,
:func:`counters_diff`) and :func:`profile_report`, which stitches every
view into the text report the CLI prints.

See ``docs/observability.md`` for a walkthrough.
"""

from repro.instrument.chrometrace import (
    chrome_trace,
    dumps_chrome_trace,
    write_chrome_trace,
)
from repro.instrument.commmatrix import CommMatrix
from repro.instrument.counters import counters_diff, merge_counters
from repro.instrument.diffing import diff_records, load_record, render_diff
from repro.instrument.metrics import PhaseMetric, RunMetrics, imbalance_factor
from repro.instrument.profiling import profile_report
from repro.instrument.report import ascii_chart, format_table
from repro.instrument.telemetry import (
    FlightRecorder,
    Telemetry,
    TelemetryEvent,
    counter_samples,
    host_metadata,
    peak_rss_bytes,
    rss_bytes,
    telemetry_report,
)
from repro.instrument.waits import (
    CriticalHop,
    WaitEdge,
    critical_path,
    critical_path_table,
    wait_edges,
    wait_table,
)

__all__ = [
    "CommMatrix",
    "CriticalHop",
    "FlightRecorder",
    "PhaseMetric",
    "RunMetrics",
    "Telemetry",
    "TelemetryEvent",
    "WaitEdge",
    "ascii_chart",
    "chrome_trace",
    "counter_samples",
    "counters_diff",
    "critical_path",
    "critical_path_table",
    "diff_records",
    "dumps_chrome_trace",
    "format_table",
    "host_metadata",
    "imbalance_factor",
    "load_record",
    "merge_counters",
    "peak_rss_bytes",
    "profile_report",
    "render_diff",
    "rss_bytes",
    "telemetry_report",
    "wait_edges",
    "wait_table",
    "write_chrome_trace",
]
