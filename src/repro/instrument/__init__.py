"""Instrumentation helpers: counter aggregation and report formatting."""

from repro.instrument.counters import merge_counters, counters_diff
from repro.instrument.report import ascii_chart, format_table

__all__ = ["ascii_chart", "counters_diff", "format_table", "merge_counters"]
