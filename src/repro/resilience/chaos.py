"""Chaos-test harness: seeded fault schedules vs. checkpoint/restart.

Run as ``python -m repro.resilience.chaos``.  The harness sweeps a matrix
of *(graph generator, grid size, fault-schedule seed)* cases; for each
case it

1. computes the fault-free baseline count with
   :func:`~repro.core.tc2d.count_triangles_2d`;
2. derives a deterministic :class:`~repro.resilience.faults.FaultPlan`
   from the schedule seed (:meth:`FaultPlan.random`);
3. runs :func:`~repro.resilience.recovery.count_triangles_2d_resilient`
   under that plan, checkpointing every shift step;
4. asserts the recovered count is **bit-identical** to the baseline, the
   restart count stays within the :class:`RecoveryPolicy` budget, and
   every recorded backoff is bounded by the policy cap.

Everything is derived from ``--seed``: the graphs, the fault schedules
and therefore the whole pass/fail outcome — a chaos failure reproduces
from the one number printed in its report row.

With ``--out`` the harness writes a ``chaos_report.json`` (one row per
case), keeps each case's checkpoint directory (with its JSON manifest —
the artifact CI uploads), and exports Perfetto traces: the successful
attempt (checkpoint instants visible) plus every failed attempt (the
injected faults visible as ``cat="fault"`` events).  Each case also runs
under a :class:`~repro.instrument.telemetry.Telemetry` flight recorder;
a case that *fails* (budget exhausted, count mismatch, backoff violation)
dumps its recent event history to ``<out>/flightrec/<case-slug>.json``
for post-mortem — passing cases write nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.config import TC2DConfig
from repro.core.tc2d import count_triangles_2d
from repro.graph.csr import Graph
from repro.graph.generators import (
    erdos_renyi_gnm,
    powerlaw_cluster_fast,
    rmat_graph,
    watts_strogatz,
)
from repro.instrument.chrometrace import write_chrome_trace
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RecoveryPolicy, count_triangles_2d_resilient
from repro.simmpi.errors import ResilienceExhaustedError

#: Graph generators the harness sweeps.  Each takes the case seed and
#: returns a small-but-triangle-rich graph (chaos is a correctness
#: harness, not a benchmark; graphs stay small so the matrix stays fast).
GRAPH_GENERATORS: dict[str, Callable[[int], Graph]] = {
    "rmat": lambda seed: rmat_graph(scale=8, edge_factor=8, seed=seed),
    "gnm": lambda seed: erdos_renyi_gnm(n=600, m=4000, seed=seed),
    "plc": lambda seed: powerlaw_cluster_fast(n=500, m=6, p_triad=0.4, seed=seed),
    "ws": lambda seed: watts_strogatz(n=600, k=10, p_rewire=0.1, seed=seed),
}

_FAULTS_PER_SCHEDULE = 4


@dataclass
class ChaosCase:
    """One cell of the chaos matrix."""

    graph_name: str
    p: int
    schedule: int  # schedule index within the sweep
    seed: int  # fault-plan seed (derived from the master seed)


@dataclass
class CaseResult:
    """Outcome of one case (one row of ``chaos_report.json``)."""

    case: ChaosCase
    ok: bool
    baseline: int
    recovered: int | None
    restarts: int
    faults_fired: list[str]
    fault_plan: str
    error: str = ""
    checkpoint_manifest: str | None = None
    attempts: list[dict[str, Any]] = field(default_factory=list)

    def row(self) -> dict[str, Any]:
        return {
            "graph": self.case.graph_name,
            "p": self.case.p,
            "schedule": self.case.schedule,
            "seed": self.case.seed,
            "ok": self.ok,
            "baseline_count": self.baseline,
            "recovered_count": self.recovered,
            "restarts": self.restarts,
            "faults_fired": self.faults_fired,
            "fault_plan": json.loads(self.fault_plan),
            "error": self.error,
            "checkpoint_manifest": self.checkpoint_manifest,
            "attempts": self.attempts,
        }


def _case_seed(master: int, graph_name: str, p: int, schedule: int) -> int:
    """Stable per-case fault-plan seed derived from the master seed.

    Plain arithmetic (no hashing) so the derivation is obvious and the
    printed seed alone reproduces the plan.
    """
    gidx = sorted(GRAPH_GENERATORS).index(graph_name)
    return master * 10_000 + gidx * 1_000 + p * 10 + schedule


def run_case(
    case: ChaosCase,
    policy: RecoveryPolicy,
    checkpoint_interval: int = 1,
    out_dir: Path | None = None,
    graph: Graph | None = None,
    baseline: int | None = None,
    base_cfg: TC2DConfig | None = None,
    store: Any = None,
) -> CaseResult:
    """Execute one chaos case; never raises (failures land in the row).

    ``base_cfg`` carries run-wide toggles (executor, workers,
    real_timeout, ...); the case's fault-plan seed is layered on top.
    ``store`` (an optional :class:`~repro.graph.store.GraphStore`) lets
    the fault-free baseline warm the preprocessing cache and every
    recovery attempt start counting off it — the store layer itself is
    then also exercised under chaos, read-only (fault runs never write).
    """
    from repro.core.grid import ProcessorGrid

    base_cfg = base_cfg if base_cfg is not None else TC2DConfig()

    if graph is None:
        graph = GRAPH_GENERATORS[case.graph_name](case.seed % 100)
    if baseline is None:
        baseline = count_triangles_2d(
            graph, case.p, base_cfg, cache=store
        ).count
    q = ProcessorGrid.for_ranks(case.p).q
    plan = FaultPlan.random(
        case.seed, case.p, q, n_faults=_FAULTS_PER_SCHEDULE
    )

    ckpt_dir = None
    tele = None
    if out_dir is not None:
        from repro.instrument.telemetry import Telemetry

        ckpt_dir = out_dir / "checkpoints" / _case_slug(case)
        # Sampler off: chaos cases are milliseconds each; the recorder
        # still captures phase, pool, fault-attempt and crash events.
        tele = Telemetry(sample_interval=0.0)
        tele.start()
    try:
        res = count_triangles_2d_resilient(
            graph,
            case.p,
            cfg=base_cfg.replace(seed=case.seed),
            fault_plan=plan,
            checkpoint_dir=ckpt_dir,
            policy=policy,
            checkpoint_interval=checkpoint_interval,
            trace=out_dir is not None,
            cache=store,
            telemetry=tele,
        )
    except ResilienceExhaustedError as exc:
        if tele is not None:
            tele.recorder.dump(
                out_dir / "flightrec" / f"{_case_slug(case)}.json",
                reason=f"{type(exc).__name__}: {exc}",
            )
        return CaseResult(
            case=case,
            ok=False,
            baseline=baseline,
            recovered=None,
            restarts=policy.max_restarts,
            faults_fired=[],
            fault_plan=plan.to_json(),
            error=f"{type(exc).__name__}: {exc}",
            checkpoint_manifest=str(ckpt_dir / "manifest.json")
            if ckpt_dir is not None
            else None,
        )
    finally:
        if tele is not None:
            tele.stop()

    restarts = res.extras["restarts"]
    backoffs_ok = all(
        a.backoff <= policy.backoff_cap for a in res.extras["attempts"]
    )
    ok = (
        res.count == baseline
        and restarts <= policy.max_restarts
        and backoffs_ok
    )
    result = CaseResult(
        case=case,
        ok=ok,
        baseline=baseline,
        recovered=res.count,
        restarts=restarts,
        faults_fired=res.extras["faults_fired"],
        fault_plan=plan.to_json(),
        error=""
        if ok
        else (
            f"count mismatch {res.count} != {baseline}"
            if res.count != baseline
            else "retry/backoff budget exceeded"
        ),
        checkpoint_manifest=res.extras["checkpoint_manifest"],
        attempts=[
            {
                "attempt": a.attempt,
                "restored_epoch": a.restored_epoch,
                "outcome": a.outcome,
                "backoff": a.backoff,
                "faults_fired": a.faults_fired,
            }
            for a in res.extras["attempts"]
        ],
    )
    if out_dir is not None:
        _export_traces(case, res, out_dir)
        if not ok and tele is not None:
            tele.recorder.dump(
                out_dir / "flightrec" / f"{_case_slug(case)}.json",
                reason=result.error,
            )
    return result


def _case_slug(case: ChaosCase) -> str:
    return f"{case.graph_name}-p{case.p}-s{case.schedule}"


def _export_traces(case: ChaosCase, res, out_dir: Path) -> None:
    """Write Perfetto traces: failed attempts (faults visible) + success
    (checkpoints visible)."""
    tdir = out_dir / "traces"
    tdir.mkdir(parents=True, exist_ok=True)
    slug = _case_slug(case)
    for i, at in enumerate(res.extras.get("attempt_traces", [])):
        write_chrome_trace(tdir / f"{slug}-attempt{i}.json", at)
    if "run" in res.extras:
        write_chrome_trace(tdir / f"{slug}-ok.json", res.extras["run"])


def sweep(
    graphs: list[str],
    ranks: list[int],
    schedules: int,
    master_seed: int,
    policy: RecoveryPolicy,
    checkpoint_interval: int = 1,
    out_dir: Path | None = None,
    verbose: bool = True,
    base_cfg: TC2DConfig | None = None,
    store: Any = None,
) -> list[CaseResult]:
    """Run the full chaos matrix; returns one :class:`CaseResult` per cell."""
    base_cfg = base_cfg if base_cfg is not None else TC2DConfig()
    results: list[CaseResult] = []
    # Baselines depend on (graph, p) only; cache them across schedules.
    graph_cache: dict[str, Graph] = {}
    baseline_cache: dict[tuple[str, int], int] = {}
    for gname in graphs:
        graph_cache[gname] = GRAPH_GENERATORS[gname](master_seed)
    for gname in graphs:
        for p in ranks:
            g = graph_cache[gname]
            key = (gname, p)
            if key not in baseline_cache:
                baseline_cache[key] = count_triangles_2d(
                    g, p, base_cfg, cache=store
                ).count
            for s in range(schedules):
                case = ChaosCase(
                    graph_name=gname,
                    p=p,
                    schedule=s,
                    seed=_case_seed(master_seed, gname, p, s),
                )
                r = run_case(
                    case,
                    policy,
                    checkpoint_interval=checkpoint_interval,
                    out_dir=out_dir,
                    graph=g,
                    baseline=baseline_cache[key],
                    base_cfg=base_cfg,
                    store=store,
                )
                results.append(r)
                if verbose:
                    mark = "ok " if r.ok else "FAIL"
                    fired = ", ".join(r.faults_fired) or "-"
                    print(
                        f"[{mark}] {_case_slug(case)} seed={case.seed} "
                        f"count={r.recovered}/{r.baseline} "
                        f"restarts={r.restarts} faults: {fired}"
                        + (f"  ({r.error})" if r.error else "")
                    )
    return results


def write_report(
    results: list[CaseResult], out_dir: Path, master_seed: int
) -> Path:
    """Write ``chaos_report.json`` summarizing the sweep."""
    out_dir.mkdir(parents=True, exist_ok=True)
    doc = {
        "seed": master_seed,
        "cases": len(results),
        "failures": sum(1 for r in results if not r.ok),
        "total_restarts": sum(r.restarts for r in results),
        "rows": [r.row() for r in results],
    }
    path = out_dir / "chaos_report.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description=(
            "Sweep seeded fault schedules across grid sizes and graph "
            "generators, asserting exact-count recovery via "
            "checkpoint/restart."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; every schedule derives from it (default 0)",
    )
    parser.add_argument(
        "--graphs", default="rmat,gnm",
        help=(
            "comma-separated generators to sweep "
            f"(available: {','.join(sorted(GRAPH_GENERATORS))})"
        ),
    )
    parser.add_argument(
        "--ranks", default="4,9",
        help="comma-separated grid sizes (perfect squares)",
    )
    parser.add_argument(
        "--schedules", type=int, default=3,
        help="fault schedules per (graph, p) cell (default 3)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=8,
        help="restart budget per case (default 8)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=1,
        help="snapshot every k-th shift step (default 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help=(
            "artifact directory: chaos_report.json, per-case checkpoint "
            "dirs (with manifests) and Perfetto traces"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixed matrix for CI (overrides --graphs/--ranks/--schedules)",
    )
    parser.add_argument(
        "--executor", choices=["sequential", "parallel"], default="sequential",
        help="superstep executor for every run in the sweep (baselines and "
        "recovery attempts); identical counts either way",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for --executor parallel (0 = cpu count)",
    )
    parser.add_argument(
        "--dispatch", choices=["perjob", "batched", "amortized"],
        default="amortized",
        help="parallel-executor dispatch strategy (fault-injected runs "
        "degrade amortized block residency to batched automatically)",
    )
    parser.add_argument(
        "--real-timeout", type=float, default=600.0, dest="real_timeout",
        help="wall-clock seconds before a wedged rank/worker fails the run "
        "(default 600; CI tightens it)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="preprocessing-cache store root (see docs/datasets.md): "
        "fault-free baselines warm it, recovery attempts read from it "
        "(never write under faults)",
    )
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        graphs = ["rmat", "gnm"]
        ranks = [4, 9]
        schedules = 2
    else:
        graphs = [g.strip() for g in args.graphs.split(",") if g.strip()]
        ranks = [int(r) for r in args.ranks.split(",") if r.strip()]
        schedules = args.schedules
    for g in graphs:
        if g not in GRAPH_GENERATORS:
            print(f"unknown graph generator {g!r}", file=sys.stderr)
            return 2

    policy = RecoveryPolicy(max_restarts=args.max_restarts)
    out_dir = Path(args.out) if args.out else None
    base_cfg = TC2DConfig(
        executor=args.executor,
        workers=args.workers,
        dispatch=args.dispatch,
        real_timeout=args.real_timeout,
    )
    from repro.graph.store import store_from_env

    # --store wins; $REPRO_STORE_DIR opts in when the flag is absent
    # (the same resolution rule as parallelbench and the serve layer).
    store = store_from_env(args.store)
    results = sweep(
        graphs,
        ranks,
        schedules,
        args.seed,
        policy,
        checkpoint_interval=args.checkpoint_interval,
        out_dir=out_dir,
        verbose=not args.quiet,
        base_cfg=base_cfg,
        store=store,
    )
    failures = [r for r in results if not r.ok]
    if out_dir is not None:
        path = write_report(results, out_dir, args.seed)
        if not args.quiet:
            print(f"report: {path}")
    if not args.quiet:
        fired = sum(len(r.faults_fired) for r in results)
        print(
            f"{len(results)} cases, {fired} faults fired, "
            f"{sum(r.restarts for r in results)} restarts, "
            f"{len(failures)} failures"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
