"""Checkpoint-restart recovery driver for the 2D counting pipeline.

:func:`count_triangles_2d_resilient` wraps
:func:`~repro.core.tc2d.count_triangles_2d`'s rank program in a restart
loop: each attempt resumes every rank from the latest *complete*
checkpoint epoch (see :mod:`repro.resilience.checkpoint`); a
fault-induced failure — injected crash, deadlock from a dropped message,
blob-checksum corruption, collective mismatch from a duplicated envelope —
records an attempt, backs off, and retries until the
:class:`RecoveryPolicy` budget is spent.

Because the engine is deterministic and faults are one-shot, the
recovered run's triangle count is bit-identical to the fault-free run's:
the restored state at epoch ``e`` *is* the fault-free state at epoch
``e`` (blob checksums verify the bytes, the Eq. 6 residue assertion
verifies the operand positions), and everything after ``e`` re-executes
cleanly.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.blocks import Block
from repro.core.config import TC2DConfig
from repro.core.counts import TriangleCountResult
from repro.core.grid import ProcessorGrid
from repro.core.preprocess import partition_1d
from repro.core.tc2d import assemble_tc2d_result, tc2d_rank_program
from repro.graph.csr import Graph
from repro.resilience.checkpoint import CheckpointStore, RankSnapshot
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.simmpi import Engine, MachineModel
from repro.simmpi.engine import RankContext
from repro.simmpi.errors import (
    DeadlockError,
    RankFailedError,
    ResilienceExhaustedError,
    SimMPIError,
)
from repro.simmpi.tracing import Tracer


@dataclass(frozen=True)
class RecoveryPolicy:
    """Retry/backoff budget for the restart loop.

    ``backoff(attempt)`` grows exponentially from ``backoff_base`` and is
    clamped at ``backoff_cap``; the delay is always *recorded* in the
    attempt log (chaos asserts it is bounded) but only actually slept when
    ``sleep`` is true — the simulated cluster does not need real seconds
    to pass, production deployments against flaky shared storage would.
    """

    max_restarts: int = 8
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_cap: float = 1.0
    sleep: bool = False

    def backoff(self, attempt: int) -> float:
        """Backoff (seconds) after failed attempt number ``attempt``."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor**attempt,
        )


@dataclass
class AttemptRecord:
    """One row of the recovery log."""

    attempt: int
    restored_epoch: int | None
    outcome: str  # "ok" or the failure's exception type name
    error: str = ""
    backoff: float = 0.0
    faults_fired: int = 0


@dataclass
class AttemptTrace:
    """Duck-types :class:`~repro.simmpi.engine.RunResult` for the Perfetto
    exporter so failed attempts' traces (where faults fired) can be
    exported with :func:`~repro.instrument.write_chrome_trace` too."""

    tracer: Tracer
    num_ranks: int

    @property
    def makespan(self) -> float:
        ts = [e.t for e in self.tracer.events]
        ts += [s.end for s in self.tracer.spans]
        return max(ts) if ts else 0.0


class ResilienceContext:
    """Rank-side checkpoint hooks handed to ``tc2d_rank_program``.

    One instance per attempt, shared by all rank threads (safe: the engine
    serializes rank execution).  ``restore_epoch`` is fixed before the
    attempt starts so every rank resumes from the same consistent cut.
    """

    def __init__(
        self,
        store: CheckpointStore,
        restore_epoch: int | None,
        interval: int = 1,
    ):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.store = store
        self.restore_epoch = restore_epoch
        self.interval = interval

    def restore_snapshot(self, rank: int) -> RankSnapshot | None:
        """The snapshot this rank must resume from (None = fresh start)."""
        if self.restore_epoch is None:
            return None
        return self.store.load(self.restore_epoch, rank)

    def save(
        self,
        ctx: RankContext,
        epoch: int,
        local_count: int,
        u_block: Block,
        l_block: Block,
        task_block: Block,
    ) -> None:
        """Snapshot one rank at one epoch boundary (honoring ``interval``).

        The final epoch (no outstanding shifts) is always saved so a crash
        during the closing reduction never replays counting work.
        """
        q = ProcessorGrid.for_ranks(ctx.num_ranks).q
        if epoch % self.interval != 0 and epoch != q:
            return
        snap = RankSnapshot.capture(
            ctx.rank, epoch, local_count, u_block, l_block, task_block
        )
        nbytes = self.store.save(snap)
        t0 = ctx.clock.now
        ctx.charge("checkpoint_io", nbytes)
        tr = ctx.tracer
        if tr.enabled:
            tr.emit(
                ctx.clock.now, ctx.rank, "checkpoint", epoch=epoch,
                nbytes=nbytes,
            )
            tr.span_point(
                t0, ctx.clock.now, ctx.rank, "ckpt", f"checkpoint:{epoch}",
                nbytes=nbytes,
            )


def count_triangles_2d_resilient(
    graph: Graph,
    p: int,
    cfg: TC2DConfig | None = None,
    model: MachineModel | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint_dir: Any = None,
    policy: RecoveryPolicy | None = None,
    checkpoint_interval: int = 1,
    trace: bool = False,
    dataset: str = "",
    superstep: Any = None,
    cache: Any = None,
    telemetry: Any = None,
) -> TriangleCountResult:
    """Count triangles with checkpoint/restart under (optional) faults.

    Parameters
    ----------
    graph, p, cfg, model, dataset:
        As for :func:`~repro.core.tc2d.count_triangles_2d`.
    fault_plan:
        Seeded :class:`FaultPlan` to inject (``None`` = clean run; the
        checkpointing machinery still exercises, and any failure is then
        re-raised instead of retried).
    checkpoint_dir:
        Directory for the checkpoint store; a temporary directory is used
        (and cleaned up) when omitted.
    policy:
        Retry/backoff budget; defaults to :class:`RecoveryPolicy()`.
    checkpoint_interval:
        Snapshot every k-th epoch (1 = every shift step).
    trace:
        Trace every attempt; failed attempts' traces (where the faults
        fired) land in ``extras["attempt_traces"]``, the successful run in
        ``extras["run"]``.
    superstep:
        Existing :class:`~repro.simmpi.parallel.SuperstepPool` to reuse
        across attempts.  When omitted and ``cfg.executor ==
        "parallel"``, one pool is created for the whole restart loop
        (workers persist across attempts — an aborted attempt only drops
        its pending jobs) and shut down on return.  Recovery semantics
        are executor-independent: checkpoints capture rank-side state
        only, and a restored attempt re-offloads from its resume epoch.
    cache:
        Preprocessing cache, as for
        :func:`~repro.core.tc2d.count_triangles_2d` (``True``, a path, a
        ``GraphStore`` or a ``RunCache``).  A store hit skips the ppt
        phase on *every* attempt; a checkpoint restore still takes
        precedence (it carries later, mid-tct state).  Cache **writes**
        are disabled whenever a fault plan is active — an injected fault
        can corrupt preprocessing traffic, and a poisoned artifact would
        outlive the run — so only fault-free runs warm the store.
    telemetry:
        Optional :class:`~repro.instrument.telemetry.Telemetry` session
        shared by every attempt.  Each restart begins a fresh per-run
        window; attempt outcomes (restored epoch, failure type, backoff)
        are recorded as flight-recorder events, and exhausting the
        restart budget dumps the recorder before
        :class:`ResilienceExhaustedError` propagates.  The successful
        attempt's summary lands in ``result.extras["telemetry"]``.

    Returns
    -------
    TriangleCountResult
        The standard result record; ``extras`` additionally carries
        ``attempts`` (list of :class:`AttemptRecord`), ``restarts``,
        ``faults_fired``, ``checkpoint_manifest`` and
        ``attempt_traces``.

    Raises
    ------
    ResilienceExhaustedError
        If the run still fails after ``policy.max_restarts`` restarts.
    """
    cfg = cfg if cfg is not None else TC2DConfig()
    policy = policy if policy is not None else RecoveryPolicy()
    grid = ProcessorGrid.for_ranks(p)
    injector = FaultInjector(fault_plan) if fault_plan is not None else None

    run_cache = None
    if cache is not None:
        from repro.core.tc2d import _open_run_cache

        run_cache = _open_run_cache(cache, graph, p, cfg, model, dataset)
        if injector is not None:
            run_cache.writable = False
    if run_cache is not None and run_cache.hit:
        chunks = [None] * p
    else:
        chunks = partition_1d(graph, p)

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
        checkpoint_dir = tmp.name
    store = CheckpointStore(checkpoint_dir)

    pool = superstep
    pool_owned = False
    if pool is None and cfg.executor == "parallel":
        from repro.simmpi.parallel import SuperstepPool

        pool = SuperstepPool(
            workers=cfg.workers,
            timeout=cfg.real_timeout,
            dispatch_mode="perjob" if cfg.dispatch == "perjob" else "batched",
        )
        pool_owned = True

    if telemetry is not None and pool is not None:
        telemetry.attach_pool(pool)

    attempts: list[AttemptRecord] = []
    failed_traces: list[AttemptTrace] = []
    try:
        for attempt in range(policy.max_restarts + 1):
            if injector is not None:
                injector.new_attempt()
            restore_epoch = store.latest_complete_epoch(p)
            rctx = ResilienceContext(
                store, restore_epoch, interval=checkpoint_interval
            )
            if telemetry is not None:
                telemetry.begin_run(
                    label=f"{dataset or 'graph'}-p{p}-attempt{attempt}"
                )
            engine = Engine(
                p,
                model=model,
                trace=trace,
                real_timeout=cfg.real_timeout,
                fault_injector=injector,
                superstep=pool,
                telemetry=telemetry,
            )
            try:
                run = engine.run(tc2d_rank_program, chunks, cfg, rctx, run_cache)
            except (RankFailedError, DeadlockError, SimMPIError) as exc:
                fired = len(injector.fired) if injector is not None else 0
                rec = AttemptRecord(
                    attempt=attempt,
                    restored_epoch=restore_epoch,
                    outcome=type(exc).__name__,
                    error=str(exc),
                    backoff=policy.backoff(attempt),
                    faults_fired=fired,
                )
                attempts.append(rec)
                if telemetry is not None:
                    telemetry.note(
                        "attempt",
                        attempt=attempt,
                        restored_epoch=restore_epoch,
                        outcome=rec.outcome,
                        faults_fired=fired,
                        backoff=rec.backoff,
                    )
                if trace:
                    failed_traces.append(AttemptTrace(engine.tracer, p))
                if injector is None:
                    # No faults were injected: this is a real bug, not a
                    # simulated outage — never mask it behind retries.
                    if telemetry is not None:
                        telemetry.crash_dump(reason=type(exc).__name__)
                    raise
                if attempt == policy.max_restarts:
                    if telemetry is not None:
                        telemetry.crash_dump(reason="ResilienceExhausted")
                    raise ResilienceExhaustedError(attempt + 1, exc) from exc
                if policy.sleep and rec.backoff > 0:
                    time.sleep(rec.backoff)
                continue

            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    restored_epoch=restore_epoch,
                    outcome="ok",
                    faults_fired=(
                        len(injector.fired) if injector is not None else 0
                    ),
                )
            )
            if telemetry is not None:
                telemetry.note(
                    "attempt",
                    attempt=attempt,
                    restored_epoch=restore_epoch,
                    outcome="ok",
                )
            manifest = store.write_manifest(
                p,
                grid.q,
                extra={
                    "fault_plan": (
                        fault_plan.to_json() if fault_plan is not None else None
                    ),
                    "attempts": len(attempts),
                },
            )
            result = assemble_tc2d_result(
                run, p, cfg, dataset=dataset, keep_run=trace
            )
            if run_cache is not None:
                from repro.core.tc2d import _finish_run_cache

                _finish_run_cache(run_cache, result)
            result.algorithm = "tc2d-resilient"
            if pool is not None:
                result.extras["executor"] = "parallel"
                result.extras["workers"] = pool.workers
                result.extras["worker_spans"] = pool.drain_spans()
            result.extras["attempts"] = attempts
            result.extras["restarts"] = len(attempts) - 1
            result.extras["faults_fired"] = (
                [f.spec.describe() for f in injector.fired]
                if injector is not None
                else []
            )
            result.extras["checkpoint_manifest"] = (
                None if tmp is not None else str(manifest)
            )
            result.extras["attempt_traces"] = failed_traces
            if telemetry is not None:
                result.extras["telemetry"] = telemetry.summarize(
                    result=result, run=run, model=engine.model, cfg=cfg
                )
            return result
        raise AssertionError("unreachable: restart loop neither returned nor raised")
    finally:
        if run_cache is not None:
            # Releases the per-digest writer lock even when every attempt
            # failed, so other writers of the same artifact can proceed.
            run_cache.close()
        if pool_owned:
            pool.shutdown()
        if tmp is not None:
            tmp.cleanup()
