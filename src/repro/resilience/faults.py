"""Deterministic, seeded fault plans and the engine-side injector.

A :class:`FaultPlan` is a schedule of :class:`FaultSpec` entries — the
*what*, *who* and *when* of every fault a run will suffer.  Plans are pure
data: they serialize to JSON for chaos-run artifacts, and
:meth:`FaultPlan.random` derives a whole schedule from one integer seed, so
any chaos failure reproduces from a single number.

The :class:`FaultInjector` wraps a plan and implements the duck-typed
protocol the :class:`~repro.simmpi.engine.Engine` consults:

* :meth:`FaultInjector.on_send` for every wire message (drop / delay /
  dup / corrupt);
* :meth:`FaultInjector.at_point` at named execution sites — phase
  boundaries (``"phase:ppt"``, ``"phase:tct"``) and Cannon shift steps
  (``"shift:3"``, ``"shift:3:exchange"``) — for stall / crash.

Faults are **one-shot**: each spec fires at most once per plan, modelling
transient failures.  The injector survives restarts (the recovery driver
reuses it across attempts), so a fault that already crashed one attempt
does not crash the retry; per-attempt occurrence counters reset via
:meth:`FaultInjector.new_attempt`.

Corruption targets the single-buffer block blobs (``tag`` filters default
to the skew/shift tags): the payload is copied and one int64 beyond the
header is flipped, which the crc32 added to the blob wire format converts
from silent count skew into a typed
:class:`~repro.simmpi.errors.BlobChecksumError`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

#: Fault kinds that perturb one wire message (matched in ``on_send``).
MESSAGE_FAULT_KINDS = ("drop", "delay", "dup", "corrupt")
#: Fault kinds that strike a rank at a named execution site.
POINT_FAULT_KINDS = ("stall", "crash")

#: The user tags the Cannon skew/shift exchanges use (see ``core.tc2d``);
#: random plans restrict ``corrupt`` faults to these so corruption lands on
#: crc-protected blob traffic instead of silently skewing preprocessing.
BLOB_TAGS = (100, 110, 120, 130)

#: XOR mask applied to one payload element by ``corrupt`` faults.
_CORRUPT_MASK = 0x5A5A5A5A

#: Blob header length (mirrors ``repro.core.blocks._HEADER_LEN``); kept
#: here as a plain constant so corruption flips a *payload* element and the
#: header stays parseable (the crc check is what must catch it).
_BLOB_HEADER_LEN = 7


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`MESSAGE_FAULT_KINDS` or :data:`POINT_FAULT_KINDS`.
    rank:
        World rank whose action triggers the fault (the *sender* for
        message faults).
    site:
        Execution-site name for point faults (``"phase:tct"``,
        ``"shift:2"``, ``"shift:2:exchange"``); must be ``None`` for
        message faults.
    nth:
        Fire on the nth matching occurrence (0-based) within one attempt.
    tag:
        Message faults only: restrict matching to sends with this user
        tag (``None`` matches any tag).
    delay:
        Extra seconds of wire latency (``delay``) or of rank compute
        (``stall``).
    """

    kind: str
    rank: int
    site: str | None = None
    nth: int = 0
    tag: int | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind in MESSAGE_FAULT_KINDS:
            if self.site is not None:
                raise ValueError(
                    f"message fault {self.kind!r} must not name a site"
                )
        elif self.kind in POINT_FAULT_KINDS:
            if not self.site:
                raise ValueError(f"point fault {self.kind!r} needs a site")
        else:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 0:
            raise ValueError("nth must be >= 0")
        if self.kind in ("delay", "stall") and self.delay <= 0:
            raise ValueError(f"{self.kind} fault needs a positive delay")

    def describe(self) -> str:
        """One-line human-readable form for reports and logs."""
        where = self.site if self.site else (
            f"send#{self.nth}" + (f" tag={self.tag}" if self.tag is not None else "")
        )
        extra = f" (+{self.delay:g}s)" if self.delay else ""
        return f"{self.kind}@rank{self.rank}:{where}{extra}"


@dataclass
class FaultAction:
    """Injector verdict handed back to the engine for one consultation."""

    kind: str
    delay: float = 0.0
    payload: Any = None


@dataclass
class FiredFault:
    """Record of one spec having fired (kept for reports/assertions)."""

    spec: FaultSpec
    attempt: int
    detail: dict[str, Any] = field(default_factory=dict)


class FaultPlan:
    """An ordered, seeded schedule of faults.

    Parameters
    ----------
    faults:
        The :class:`FaultSpec` entries, in priority order (at most one
        fault fires per engine consultation; earlier specs win).
    seed:
        The seed the plan was derived from (carried for reporting; the
        specs themselves are already concrete).
    """

    def __init__(self, faults: list[FaultSpec] | tuple[FaultSpec, ...] = (),
                 seed: int | None = None):
        self.faults = list(faults)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def describe(self) -> str:
        head = f"FaultPlan(seed={self.seed}, {len(self.faults)} faults)"
        return "\n".join([head] + [f"  {s.describe()}" for s in self.faults])

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        """Deterministic JSON form (chaos artifacts embed this)."""
        return json.dumps(
            {"seed": self.seed, "faults": [asdict(s) for s in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        return cls(
            faults=[FaultSpec(**f) for f in doc["faults"]],
            seed=doc.get("seed"),
        )

    # -- seeded generation --------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        p: int,
        q: int,
        n_faults: int = 3,
        kinds: tuple[str, ...] = MESSAGE_FAULT_KINDS + POINT_FAULT_KINDS,
        max_crashes: int = 2,
        stall_seconds: float = 0.005,
        delay_seconds: float = 0.002,
    ) -> "FaultPlan":
        """Derive a deterministic schedule from one integer seed.

        ``p``/``q`` bound the rank and shift-step choices.  Crash faults
        are capped at ``max_crashes`` so the recovery driver's restart
        budget stays bounded by construction (each crash costs at most one
        restart; drops and corruptions cost at most one each as well).
        """
        for k in kinds:
            if k not in MESSAGE_FAULT_KINDS + POINT_FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        rng = np.random.default_rng(seed)
        sites = [f"phase:{name}" for name in ("ppt", "tct")]
        sites += [f"shift:{z}" for z in range(q)]
        sites += [f"shift:{z}:exchange" for z in range(max(0, q - 1))]
        specs: list[FaultSpec] = []
        crashes = 0
        while len(specs) < n_faults:
            kind = str(rng.choice(list(kinds)))
            if kind == "crash":
                if crashes >= max_crashes:
                    continue
                crashes += 1
            rank = int(rng.integers(p))
            if kind in MESSAGE_FAULT_KINDS:
                tag = (
                    int(rng.choice(BLOB_TAGS))
                    if kind == "corrupt"
                    else (int(rng.choice(BLOB_TAGS)) if rng.random() < 0.5 else None)
                )
                specs.append(
                    FaultSpec(
                        kind=kind,
                        rank=rank,
                        nth=int(rng.integers(max(1, q))),
                        tag=tag,
                        delay=delay_seconds if kind == "delay" else 0.0,
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        rank=rank,
                        site=str(rng.choice(sites)),
                        delay=stall_seconds if kind == "stall" else 0.0,
                    )
                )
        return cls(specs, seed=seed)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` for the engine.

    One injector is shared across all restart attempts of a recovery run:
    fired specs stay fired (transient-fault semantics), while per-attempt
    occurrence counters reset in :meth:`new_attempt`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired: list[FiredFault] = []
        self._fired_idx: set[int] = set()
        self._attempt = 0
        self._send_seen: list[int] = [0] * len(plan.faults)
        self._point_seen: list[int] = [0] * len(plan.faults)

    # -- lifecycle ----------------------------------------------------------

    def new_attempt(self) -> None:
        """Reset per-attempt occurrence counters (fired specs stay fired)."""
        self._attempt += 1
        self._send_seen = [0] * len(self.plan.faults)
        self._point_seen = [0] * len(self.plan.faults)

    @property
    def remaining(self) -> int:
        """Specs that have not fired yet."""
        return len(self.plan.faults) - len(self._fired_idx)

    def fired_by_kind(self) -> dict[str, int]:
        """Histogram of fired fault kinds (for reports)."""
        out: dict[str, int] = {}
        for f in self.fired:
            out[f.spec.kind] = out.get(f.spec.kind, 0) + 1
        return out

    def _fire(self, idx: int, **detail: Any) -> FaultSpec:
        self._fired_idx.add(idx)
        spec = self.plan.faults[idx]
        self.fired.append(
            FiredFault(spec=spec, attempt=self._attempt, detail=detail)
        )
        return spec

    # -- engine protocol ----------------------------------------------------

    def on_send(
        self,
        src: int,
        dst: int,
        tag: int,
        comm_id: Any,
        nbytes: int,
        payload: Any,
    ) -> FaultAction | None:
        """Consulted by ``Engine.post_send`` for every wire message."""
        for i, spec in enumerate(self.plan.faults):
            if spec.kind not in MESSAGE_FAULT_KINDS or i in self._fired_idx:
                continue
            if spec.rank != src:
                continue
            if spec.tag is not None and spec.tag != tag:
                continue
            if spec.kind == "corrupt" and not _corruptible(payload):
                continue
            self._send_seen[i] += 1
            if self._send_seen[i] - 1 != spec.nth:
                continue
            self._fire(i, src=src, dst=dst, tag=tag, nbytes=nbytes)
            if spec.kind == "corrupt":
                return FaultAction("corrupt", payload=_corrupted(payload))
            return FaultAction(spec.kind, delay=spec.delay)
        return None

    def at_point(self, rank: int, site: str) -> FaultAction | None:
        """Consulted by ``RankContext.fault_point`` at named sites."""
        for i, spec in enumerate(self.plan.faults):
            if spec.kind not in POINT_FAULT_KINDS or i in self._fired_idx:
                continue
            if spec.rank != rank or spec.site != site:
                continue
            self._point_seen[i] += 1
            if self._point_seen[i] - 1 != spec.nth:
                continue
            self._fire(i, site=site)
            return FaultAction(spec.kind, delay=spec.delay)
        return None


def _corruptible(payload: Any) -> bool:
    """Only flat int64 buffers longer than the blob header are targets —
    i.e. the block blobs whose crc32 makes the corruption detectable."""
    return (
        isinstance(payload, np.ndarray)
        and payload.ndim == 1
        and payload.dtype.kind == "i"
        and len(payload) > _BLOB_HEADER_LEN
    )


def _corrupted(payload: np.ndarray) -> np.ndarray:
    """Copy ``payload`` and flip one element in the middle of its body.

    The header is left intact so deserialization reaches the checksum
    check — the failure mode under test is *payload* corruption that only
    the crc32 can see.
    """
    out = payload.copy()
    idx = _BLOB_HEADER_LEN + (len(out) - _BLOB_HEADER_LEN) // 2
    out[idx] ^= _CORRUPT_MASK
    return out
