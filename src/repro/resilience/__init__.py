"""Resilience subsystem: fault injection, checkpoint/restart, chaos tests.

Production distributed analytics treats failure handling as first-class;
this package grows the reproduction the same way, in three cooperating
layers built on the simulated-MPI runtime:

* :mod:`repro.resilience.faults` — deterministic, seeded fault plans
  (message drop/delay/duplication, blob corruption, rank stall/crash at
  named phases or shift steps) and the injector the
  :class:`~repro.simmpi.engine.Engine` consults;
* :mod:`repro.resilience.checkpoint` — phase-level snapshots of each
  rank's state (the travelling U/L blocks and resident task block via the
  crc-protected blob wire format, the partial count, the shift index) in
  an on-disk checkpoint directory with a JSON manifest;
* :mod:`repro.resilience.recovery` — a restarting driver that reruns
  :func:`~repro.core.tc2d.count_triangles_2d` from the latest complete
  checkpoint after a fault-induced failure, with bounded retry/backoff;
* :mod:`repro.resilience.chaos` — the chaos harness
  (``python -m repro.resilience.chaos``) sweeping seeded fault schedules
  across grid sizes and graph generators and asserting exact-count
  recovery.

Every injected fault is emitted through the PR-1 tracer as a ``"fault"``
event plus a ``cat="fault"`` span, so faults are visible in exported
Perfetto traces and attributable next to the comm matrix.

See ``docs/resilience.md`` for the fault taxonomy, the checkpoint
manifest format and chaos-harness usage.
"""

from repro.resilience.checkpoint import CheckpointStore, RankSnapshot
from repro.resilience.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    MESSAGE_FAULT_KINDS,
    POINT_FAULT_KINDS,
)
from repro.resilience.recovery import (
    AttemptRecord,
    RecoveryPolicy,
    count_triangles_2d_resilient,
)

__all__ = [
    "AttemptRecord",
    "CheckpointStore",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MESSAGE_FAULT_KINDS",
    "POINT_FAULT_KINDS",
    "RankSnapshot",
    "RecoveryPolicy",
    "count_triangles_2d_resilient",
]
