"""NetworkX interoperability.

networkx is an optional dependency used by tests as an independent oracle
and by users who want to feed arbitrary networkx graphs into the counting
algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import INDEX_DTYPE, Graph


def to_networkx(g: Graph):
    """Convert to an undirected ``networkx.Graph`` with integer nodes."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(map(tuple, g.edge_array()))
    return G


def from_networkx(G) -> Graph:
    """Convert any networkx graph to a :class:`Graph`.

    Non-integer node labels are mapped to 0..n-1 in sorted order; self
    loops and parallel edges are dropped by the simple-graph constructor.
    """
    nodes = list(G.nodes())
    try:
        ids = {v: int(v) for v in nodes}
        n = max(ids.values()) + 1 if ids else 0
        if any(i < 0 for i in ids.values()):
            raise ValueError
    except (ValueError, TypeError):
        ordering = sorted(nodes, key=repr)
        ids = {v: i for i, v in enumerate(ordering)}
        n = len(ordering)
    if G.number_of_edges() == 0:
        return Graph.from_edges(n, np.empty((0, 2), dtype=INDEX_DTYPE))
    edges = np.array(
        [(ids[u], ids[v]) for u, v in G.edges()], dtype=INDEX_DTYPE
    )
    return Graph.from_edges(n, edges)
