"""Content-addressed on-disk cache of preprocessed graph artifacts.

The paper's Section 4 preprocessing pipeline (cyclic redistribution,
distributed degree reorder, U/L split, 2D cyclic distribution) is a pure
function of the graph bytes, the grid shape and three config toggles —
yet the reproduction used to re-execute it on every ``repro count``,
every benchmark table and every chaos sweep.  :class:`GraphStore`
persists the pipeline's output once and replays it on demand:

* artifacts are keyed by a **content digest** — sha256 over the canonical
  ``u < v`` edge-list bytes plus the grid shape, the preprocessing-relevant
  config toggles and the blob/store format versions — so a changed graph,
  grid or toggle can never alias a stale entry;
* per-rank state is stored in the same crc32-checked single-buffer blob
  format blocks travel the simulated wire in
  (:meth:`~repro.core.blocks.Block.to_blob`), so a corrupted file fails
  loudly with :class:`~repro.simmpi.errors.BlobChecksumError` instead of
  silently skewing counts;
* a JSON manifest records provenance (source dataset, graph stats, config)
  plus the deterministic ppt-phase statistics of the cold run, keyed by
  :meth:`~repro.simmpi.costmodel.MachineModel.fingerprint`, so a warm run
  can report the exact preprocessing cost it skipped (the simulation is
  deterministic: the recorded numbers *are* what a re-run would measure);
* a schema bump or half-written entry raises :class:`StoreVersionError`,
  which :meth:`GraphStore.open_run` turns into automatic invalidation.

On-disk layout (all writes are atomic via temp-file + rename)::

    <root>/
      objects/<digest>/manifest.json     # schema, provenance, recorded ppt
      objects/<digest>/rank000.npz       # u/l/task blobs + labels + meta
      objects/<digest>/rank001.npz
      ...
      graphs/<key>.npz                   # generated-dataset graph cache

The default root is ``$REPRO_STORE_DIR`` or ``~/.cache/repro/store``.
See ``docs/datasets.md`` for the full digest/invalidation rules and the
``repro store`` CLI.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.blocks import Block
from repro.graph.csr import Graph

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import TC2DConfig
    from repro.simmpi.costmodel import MachineModel

#: Store layout schema.  Bump on any change to the manifest structure or
#: the per-rank file layout; existing entries then fail with
#: :class:`StoreVersionError` and are re-preprocessed.
STORE_SCHEMA_VERSION = 1

#: Version of the :meth:`Block.to_blob` wire format the store persists.
#: Folded into the artifact digest so a blob layout change orphans (rather
#: than misreads) old entries.
BLOB_FORMAT_VERSION = 1

#: Environment variable naming the default store root.
STORE_DIR_ENV = "REPRO_STORE_DIR"

_RANK_ARRAY_KEYS = ("u", "l", "task")


class StoreVersionError(RuntimeError):
    """A store entry was written under an incompatible schema (or is
    structurally broken: missing files, digest mismatch).  Callers going
    through :meth:`GraphStore.open_run` never see it — the entry is
    invalidated and preprocessing runs fresh."""


def default_store_root() -> Path:
    """The store root used when none is given: ``$REPRO_STORE_DIR`` if
    set, else ``~/.cache/repro/store``."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "store"


def resolve_store_dir(explicit: "str | Path | None" = None) -> Path | None:
    """The one rule for opt-in store resolution: an explicit ``--store``
    value wins, else ``$REPRO_STORE_DIR``, else ``None`` (no store).

    Every harness that takes a ``--store DIR`` flag (parallelbench,
    chaos, servebench, the serve layer) resolves it through here, so the
    environment variable means the same thing everywhere.  Callers that
    must never touch the user's home directory without opt-in (benchmark
    runners, test fixtures) use this instead of
    :func:`default_store_root`.
    """
    if explicit:
        return Path(explicit)
    env = os.environ.get(STORE_DIR_ENV)
    return Path(env) if env else None


def store_from_env(explicit: "str | Path | None" = None) -> "GraphStore | None":
    """A :class:`GraphStore` at :func:`resolve_store_dir`'s answer, or
    ``None`` when neither a flag nor ``$REPRO_STORE_DIR`` opted in."""
    root = resolve_store_dir(explicit)
    return GraphStore(root) if root is not None else None


class DigestLock:
    """Advisory cross-process writer lock for one store entry.

    Two clients cold-running the same digest must not interleave their
    rank-file and manifest writes, and — worse — a second client's
    ``open_run`` must not mistake the first's half-written entry for an
    abandoned one and delete it mid-write.  The lock is ``flock(2)`` on a
    sidecar file under ``objects/.locks/``: advisory (readers never take
    it), per-open-file-description (so two threads of one process exclude
    each other too), and self-releasing when the holder dies.

    On platforms without ``fcntl`` the lock degrades to a no-op that
    always acquires; the rename-wins manifest protocol keeps the store
    consistent there, at the cost of duplicated cold work.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fh = None

    def acquire(self, blocking: bool = False) -> bool:
        """Take the lock; returns False when non-blocking and held
        elsewhere.  Reentrant acquire of a held instance returns True."""
        if self._fh is not None:
            return True
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            self._fh = True  # degrade: pretend-held, rename-wins protects
            return True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+b")
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fh.fileno(), flags)
        except OSError:
            fh.close()
            return False
        self._fh = fh
        return True

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        fh, self._fh = self._fh, None
        if fh is not None and fh is not True:
            fh.close()  # closing the fd releases the flock

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._fh is not None

    def __enter__(self) -> "DigestLock":
        self.acquire(blocking=True)
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


def graph_digest(graph: Graph) -> str:
    """Stable sha256 of a graph's content (canonical ``u < v`` edge bytes).

    Two graphs digest equal iff they have the same vertex count and the
    same edge set — independent of how they were generated or loaded.
    """
    edges = np.ascontiguousarray(graph.edge_array(), dtype=np.int64)
    h = hashlib.sha256()
    h.update(b"repro-graph-v1")
    h.update(np.array([graph.n, edges.shape[0]], dtype=np.int64).tobytes())
    h.update(edges.tobytes())
    return h.hexdigest()


def artifact_digest(
    graph_sha: str,
    p: int,
    q: int,
    cfg: "TC2DConfig",
    key_extra: dict | None = None,
) -> str:
    """Content address of one preprocessed artifact.

    Covers everything the preprocessing output depends on: the graph
    bytes (via ``graph_sha``), the rank count and grid shape, the
    preprocessing-relevant config toggles
    (:meth:`~repro.core.config.TC2DConfig.store_key`), and the blob/store
    format versions.  Anything else (kernel backend, executor, seeds used
    only by faults/kernels) deliberately does **not** change the digest.

    ``key_extra`` lets a driver distinguish several artifacts produced
    under one config — the cover-edge pipeline stores its two passes
    (cover + horizontal blocks) as separate entries keyed by a
    ``{"pass": ...}`` component.  ``None`` and ``{}`` digest identically
    to the historical single-artifact layout.
    """
    payload = {
        "store_schema": STORE_SCHEMA_VERSION,
        "blob_format": BLOB_FORMAT_VERSION,
        "graph": graph_sha,
        "p": int(p),
        "q": int(q),
        "cfg": cfg.store_key(),
    }
    if key_extra:
        payload["extra"] = dict(key_extra)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _atomic_write_bytes(path: Path, write_fn) -> None:
    """Write a file atomically: ``write_fn(tmp_handle)`` then rename.

    The temp name carries the writer's pid so two unlocked writers (e.g.
    a no-``fcntl`` platform) can never interleave bytes in one temp file;
    the final ``os.replace`` makes the last complete writer win.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        write_fn(fh)
    os.replace(tmp, path)


class MappedRankFile:
    """Read-only ``mmap`` view of one rank's npz file — zero copies.

    ``np.savez`` (the non-compressed variant :meth:`RunCache.save_rank`
    uses) writes a plain ZIP archive with **stored** (uncompressed)
    members, so every contained ``.npy`` array lives at a fixed byte
    offset in the file.  This class parses the zip directory and each
    member's npy header once, then exposes the arrays as read-only
    ``np.frombuffer`` views into a single shared ``mmap`` — the bytes
    page in lazily on first touch (for a block blob, that first touch is
    the crc32 verification pass in
    :meth:`~repro.core.blocks.Block.from_mmap`).

    A compressed or otherwise non-stored member raises ``ValueError``;
    callers (``RunCache.load_rank``) fall back to the copying
    ``np.load`` path in that case.  Keep the instance alive as long as
    any view into it is in use — dropping it unmaps the pages.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
            #: name (without ``.npy``) -> (data offset, dtype, count, shape)
            self._members: dict[str, tuple[int, np.dtype, int, tuple]] = {}
            self._parse()
        except Exception:
            self.close()
            raise

    def _parse(self) -> None:
        with zipfile.ZipFile(self._fh) as zf:
            infos = zf.infolist()
        for info in infos:
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"{self.path.name}: member {info.filename!r} is "
                    "compressed; mmap serving needs stored members"
                )
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            # The central directory records where the member's *local*
            # header starts; the data follows the 30-byte fixed header
            # plus the (possibly zip64-extended) name and extra fields.
            local = bytes(
                self._mm[info.header_offset : info.header_offset + 30]
            )
            if local[:4] != b"PK\x03\x04":
                raise ValueError(
                    f"{self.path.name}: bad local header for {name!r}"
                )
            fnlen = int.from_bytes(local[26:28], "little")
            extralen = int.from_bytes(local[28:30], "little")
            npy_off = info.header_offset + 30 + fnlen + extralen
            self._fh.seek(npy_off)
            version = np.lib.format.read_magic(self._fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    self._fh
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    self._fh
                )
            else:
                raise ValueError(
                    f"{self.path.name}: unsupported npy version {version}"
                )
            if fortran:
                raise ValueError(
                    f"{self.path.name}: {name!r} is Fortran-ordered"
                )
            count = 1
            for dim in shape:
                count *= int(dim)
            self._members[name] = (self._fh.tell(), dtype, count, shape)

    @property
    def buffer(self) -> mmap.mmap:
        """The shared read-only map of the whole file."""
        return self._mm

    def keys(self) -> list[str]:
        """Member array names (npz keys)."""
        return sorted(self._members)

    def slot(self, name: str) -> tuple[int, str, int]:
        """``(byte offset, dtype string, element count)`` of one member's
        data within the file — the address a file-backed resident slot
        needs."""
        off, dtype, count, _shape = self._members[name]
        return off, str(dtype), count

    def array(self, name: str) -> np.ndarray:
        """Read-only zero-copy view of one member array."""
        off, dtype, count, shape = self._members[name]
        return np.frombuffer(
            self._mm, dtype=dtype, count=count, offset=off
        ).reshape(shape)

    def block(self, name: str) -> Block:
        """Deserialize (and crc-verify) one member as a mapped
        :class:`~repro.core.blocks.Block`."""
        off, _dtype, _count, _shape = self._members[name]
        return Block.from_mmap(self._mm, off)

    def close(self) -> None:
        """Unmap the file (idempotent).  Outstanding views go invalid."""
        mm = getattr(self, "_mm", None)
        if mm is not None:
            try:
                mm.close()
            except BufferError:  # pragma: no cover - live exported views
                pass
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class RunCache:
    """One run's view of a store entry, handed to the rank program.

    Created by :meth:`GraphStore.open_run`.  ``hit`` is fixed at creation:
    a hit means every rank loads its blocks from disk inside a ``cache``
    phase and the ``ppt`` phase stays empty; a miss means preprocessing
    runs normally and (when ``writable``) each rank persists its blocks as
    a side effect, after which the driver calls :meth:`finalize` to write
    the manifest.  Instances are shared by all rank threads — safe because
    the engine serializes rank execution.
    """

    def __init__(
        self,
        store: "GraphStore",
        digest: str,
        graph_sha: str,
        graph_stats: tuple[int, int],
        p: int,
        q: int,
        cfg: "TC2DConfig",
        manifest: dict | None,
        source: str = "",
        model_fp: str = "",
        writable: bool = True,
        lock: "DigestLock | None" = None,
        serve_mode: str = "mmap",
    ):
        if serve_mode not in ("mmap", "copy"):
            raise ValueError(f"serve_mode must be 'mmap' or 'copy', got {serve_mode!r}")
        self.store = store
        self.digest = digest
        self.graph_sha = graph_sha
        self.graph_stats = graph_stats
        self.p = p
        self.q = q
        self.cfg = cfg
        self.manifest = manifest
        self.source = source
        self.model_fp = model_fp
        self.writable = writable
        #: Writer lock held for the duration of a cold materialization
        #: (released by :meth:`finalize` / :meth:`close`).
        self._lock = lock
        #: How warm hits serve blobs: ``"mmap"`` (zero-copy views into
        #: the rank file, lazy page-in) or ``"copy"`` (full ``np.load``).
        self.serve_mode = serve_mode
        #: (rank -> manifest entry) of files written during a cold run.
        self._saved: dict[int, dict] = {}
        #: rank -> live :class:`MappedRankFile` keepalive (mmap serving).
        self._mapped: dict[int, MappedRankFile] = {}
        #: Bytes loaded per rank during a warm run (for reporting).
        self.loaded_nbytes = 0
        #: Ranks served via mmap (vs. copied) during this run.
        self.mapped_ranks = 0
        #: Every rank file pre-validated as mappable (:meth:`premap`):
        #: rank programs may then publish **file-backed** resident slots
        #: instead of copying blobs into the pool arena.
        self.file_serving = False

    @property
    def hit(self) -> bool:
        """Whether the store already holds this run's artifact."""
        return self.manifest is not None

    def premap(self, p: int | None = None) -> bool:
        """Validate up front that *every* rank file can be served via
        mmap; records the verdict in :attr:`file_serving`.

        All-or-nothing on purpose: the amortized dispatcher's resident
        keys form a cross-rank protocol (each rank publishes blocks the
        *other* ranks of its grid row/column will reference), and the
        pre-skew file-backed key set only covers every Cannon epoch when
        every rank participates.  Mixing file-backed and arena
        publication per rank could leave residues unpublished, so a
        single unmappable file sends the whole run down the arena path.
        """
        self.file_serving = False
        if self.serve_mode != "mmap" or not self.hit:
            return False
        try:
            for rank in range(self.p if p is None else p):
                mapped = self.mapped_file(rank)
                for key in _RANK_ARRAY_KEYS:
                    mapped.slot(key)
        except (ValueError, OSError, KeyError):
            return False
        self.file_serving = True
        return True

    # -- rank-side hooks ----------------------------------------------------

    def load_rank(self, rank: int) -> tuple[Block, Block, Block, int]:
        """Load (and crc-verify) one rank's blocks from the store.

        Under ``serve_mode="mmap"`` (the default) the blocks are
        **served, not loaded**: their arrays are read-only views into a
        shared map of the rank file, the crc verification pass is what
        pages the bytes in, and the map is retained on this cache (see
        :meth:`mapped_file`) so downstream resident publication can
        reference the same pages.  Any structural mapping failure (a
        compressed npz from an external writer, an exotic platform)
        falls back to the copying ``np.load`` path — corruption does
        not: a bad payload raises
        :class:`~repro.simmpi.errors.BlobChecksumError` either way.

        Returns ``(u_block, l_block, task_block, nbytes)``.
        """
        from repro.simmpi.errors import BlobChecksumError

        path = self.store.rank_path(self.digest, rank)
        if self.serve_mode == "mmap":
            mapped = None
            try:
                mapped = self.mapped_file(rank)
                blocks = {k: mapped.block(k) for k in _RANK_ARRAY_KEYS}
            except BlobChecksumError:
                # Corruption is NOT a structural fallback case: retrying
                # via np.load would just hand out the same bad bytes
                # (BlobChecksumError subclasses ValueError, so it must be
                # re-raised before the mappability net below).
                raise
            except (ValueError, OSError, KeyError):
                # Unmappable file layout — serve by copy instead.
                if mapped is not None:
                    self._mapped.pop(rank, None)
                    mapped.close()
            else:
                nbytes = int(sum(b.blob.nbytes for b in blocks.values()))
                self.loaded_nbytes += nbytes
                self.mapped_ranks += 1
                return blocks["u"], blocks["l"], blocks["task"], nbytes
        with np.load(path) as doc:
            blobs = {k: doc[k].copy() for k in _RANK_ARRAY_KEYS}
        nbytes = int(sum(b.nbytes for b in blobs.values()))
        self.loaded_nbytes += nbytes
        return (
            Block.from_blob(blobs["u"]),
            Block.from_blob(blobs["l"]),
            Block.from_blob(blobs["task"]),
            nbytes,
        )

    def mapped_file(self, rank: int) -> MappedRankFile:
        """The (cached) read-only map of one rank's npz file.

        Raises ``ValueError``/``OSError`` when the file cannot be mapped
        as stored-member zip; see :class:`MappedRankFile`.
        """
        mapped = self._mapped.get(rank)
        if mapped is None:
            mapped = MappedRankFile(self.store.rank_path(self.digest, rank))
            self._mapped[rank] = mapped
        return mapped

    def blob_slot(self, rank: int, key: str) -> tuple[str, int, str, int]:
        """File-backed resident address of one served blob:
        ``(path, byte offset, dtype string, element count)``.

        Only meaningful after :meth:`load_rank` mapped the rank (the
        store file is immutable once finalized, so the address stays
        valid for the process lifetime).
        """
        offset, dtype, count = self.mapped_file(rank).slot(key)
        return str(self.store.rank_path(self.digest, rank)), offset, dtype, count

    def save_rank(
        self,
        rank: int,
        u_block: Block,
        l_block: Block,
        task_block: Block,
        lo: int,
        labels: np.ndarray,
    ) -> None:
        """Persist one rank's preprocessed state (cold, writable runs only).

        Pure side effect: nothing is charged to the virtual clock, so a
        cold cached run stays bit-identical to an uncached run.
        """
        if self.hit or not self.writable:
            return
        blobs = {
            "u": u_block.to_blob(),
            "l": l_block.to_blob(),
            "task": task_block.to_blob(),
        }
        path = self.store.rank_path(self.digest, rank)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            path,
            lambda fh: np.savez(
                fh,
                labels=np.ascontiguousarray(labels, dtype=np.int64),
                meta=np.array([rank, lo], dtype=np.int64),
                **blobs,
            ),
        )
        self._saved[rank] = {
            "file": path.name,
            "nbytes": int(sum(b.nbytes for b in blobs.values())),
            "crc32": {k: int(b[6]) for k, b in blobs.items()},
        }

    # -- driver-side hooks --------------------------------------------------

    def recorded_ppt(self) -> dict | None:
        """The cold run's ppt statistics for this run's machine-model
        fingerprint, if the manifest recorded them."""
        if self.manifest is None:
            return None
        return self.manifest.get("recorded", {}).get(self.model_fp)

    def finalize(self, ppt_stats: dict | None = None) -> bool:
        """After a successful cold run: write the entry manifest.

        ``ppt_stats`` (``ppt_time`` / ``comm_fraction_ppt`` /
        ``counters_ppt``) is recorded under the model fingerprint so warm
        runs under the same model can report the skipped phase honestly.
        Returns False (and writes nothing) if any rank file is missing,
        or if a concurrent writer already completed the entry
        (rename-wins: the existing manifest is adopted, never clobbered
        — the artifacts are deterministic, so both writers produced the
        same bytes anyway).  Always releases the writer lock.
        """
        try:
            if self.hit or not self.writable:
                return False
            if sorted(self._saved) != list(range(self.p)):
                return False
            try:
                # Rename-wins: an unlocked concurrent writer (or one on a
                # lock-less platform) may have finished first.
                self.manifest = self.store.read_manifest(self.digest)
                return False
            except (FileNotFoundError, StoreVersionError):
                pass
            n, m = self.graph_stats
            doc = {
                "store_schema": STORE_SCHEMA_VERSION,
                "blob_format": BLOB_FORMAT_VERSION,
                "digest": self.digest,
                "graph": {"sha256": self.graph_sha, "n": n, "m": m},
                "p": self.p,
                "q": self.q,
                "cfg": self.cfg.store_key(),
                "source": self.source,
                "ranks": {str(r): e for r, e in sorted(self._saved.items())},
                "recorded": {},
            }
            if ppt_stats is not None and self.model_fp:
                doc["recorded"][self.model_fp] = ppt_stats
            self.store.write_manifest(self.digest, doc)
            self.manifest = doc
            return True
        finally:
            self.close()

    def close(self) -> None:
        """Release the per-digest writer lock, if held (idempotent).

        Drivers call it from a ``finally`` so a run that raises mid-cold
        materialization cannot wedge other writers until process exit.
        """
        if self._lock is not None:
            self._lock.release()


class GraphStore:
    """Filesystem-backed, content-addressed artifact store.

    One store serves any number of (graph, grid, config) artifacts; the
    CLI (``repro store``), the benchmark runner, the chaos harness and the
    dataset registry can all point at the same root and share warm
    entries.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.objects_dir = self.root / "objects"
        self.graphs_dir = self.root / "graphs"

    # -- paths --------------------------------------------------------------

    def entry_dir(self, digest: str) -> Path:
        """Directory holding one artifact's manifest and rank files."""
        return self.objects_dir / digest

    def manifest_path(self, digest: str) -> Path:
        """Path of one artifact's ``manifest.json``."""
        return self.entry_dir(digest) / "manifest.json"

    def rank_path(self, digest: str, rank: int) -> Path:
        """Path of one artifact's per-rank npz file."""
        return self.entry_dir(digest) / f"rank{rank:03d}.npz"

    # -- manifest / inventory -----------------------------------------------

    def write_manifest(self, digest: str, doc: dict) -> Path:
        """Atomically write one entry's manifest; returns its path."""
        path = self.manifest_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def writer_lock(self, digest: str) -> DigestLock:
        """The advisory per-digest writer lock (see :class:`DigestLock`)."""
        return DigestLock(self.objects_dir / ".locks" / f"{digest}.lock")

    def read_manifest(self, digest: str) -> dict:
        """Parse and validate one entry's manifest.

        Raises
        ------
        FileNotFoundError
            If the entry has no manifest (never written, or pruned).
        StoreVersionError
            If the manifest was written under a different store/blob
            schema, claims a different digest, or lists rank files that
            are not on disk.
        """
        doc = json.loads(self.manifest_path(digest).read_text())
        if (
            doc.get("store_schema") != STORE_SCHEMA_VERSION
            or doc.get("blob_format") != BLOB_FORMAT_VERSION
        ):
            raise StoreVersionError(
                f"store entry {digest[:12]} has schema "
                f"{doc.get('store_schema')}/{doc.get('blob_format')}, "
                f"this build expects {STORE_SCHEMA_VERSION}/"
                f"{BLOB_FORMAT_VERSION}"
            )
        if doc.get("digest") != digest:
            raise StoreVersionError(
                f"store entry {digest[:12]} manifest claims digest "
                f"{str(doc.get('digest'))[:12]}"
            )
        for rank in range(int(doc.get("p", 0))):
            if not self.rank_path(digest, rank).exists():
                raise StoreVersionError(
                    f"store entry {digest[:12]} is missing rank {rank}"
                )
        return doc

    def digests(self) -> list[str]:
        """Digests of every entry directory under ``objects/``."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            d.name
            for d in self.objects_dir.iterdir()
            if d.is_dir() and not d.name.startswith(".")  # skip .locks
        )

    def entries(self) -> list[dict]:
        """One summary dict per entry (broken entries flagged, not raised)."""
        out = []
        for digest in self.digests():
            row: dict[str, Any] = {"digest": digest}
            try:
                doc = self.read_manifest(digest)
            except FileNotFoundError:
                row["error"] = "no manifest (incomplete write?)"
            except StoreVersionError as exc:
                row["error"] = str(exc)
            else:
                row.update(
                    source=doc.get("source", ""),
                    p=doc.get("p"),
                    q=doc.get("q"),
                    graph=doc.get("graph", {}),
                    cfg=doc.get("cfg", {}),
                    nbytes=sum(
                        e.get("nbytes", 0) for e in doc.get("ranks", {}).values()
                    ),
                    recorded_models=sorted(doc.get("recorded", {})),
                )
            out.append(row)
        return out

    def verify(self, digest: str | None = None) -> list[str]:
        """Deep-check entries: manifest schema, file presence, and a full
        crc-verified deserialization of every blob.  Returns a list of
        problem strings (empty = healthy)."""
        from repro.simmpi.errors import BlobChecksumError

        problems = []
        targets = [digest] if digest is not None else self.digests()
        for d in targets:
            try:
                doc = self.read_manifest(d)
            except (FileNotFoundError, StoreVersionError) as exc:
                problems.append(f"{d[:12]}: {exc}")
                continue
            for rank_str, entry in doc.get("ranks", {}).items():
                rank = int(rank_str)
                try:
                    with np.load(self.rank_path(d, rank)) as npz:
                        blobs = {k: npz[k].copy() for k in _RANK_ARRAY_KEYS}
                    for key, blob in blobs.items():
                        Block.from_blob(blob)
                        want = entry.get("crc32", {}).get(key)
                        if want is not None and int(blob[6]) != int(want):
                            problems.append(
                                f"{d[:12]} rank {rank}: {key} crc32 differs "
                                "from manifest"
                            )
                except BlobChecksumError as exc:
                    problems.append(f"{d[:12]} rank {rank}: {exc}")
                except Exception as exc:  # unreadable/truncated file
                    problems.append(
                        f"{d[:12]} rank {rank}: {type(exc).__name__}: {exc}"
                    )
        return problems

    def invalidate(self, digest: str) -> None:
        """Remove one entry (its whole directory) from the store."""
        import shutil

        d = self.entry_dir(digest)
        if d.is_dir():
            shutil.rmtree(d)

    def prune(self, digest: str | None = None) -> int:
        """Remove one entry (or, with ``None``, every entry and every
        cached graph blob).  Returns the number of entries removed."""
        if digest is not None:
            existed = self.entry_dir(digest).is_dir()
            self.invalidate(digest)
            return int(existed)
        count = 0
        for d in self.digests():
            self.invalidate(d)
            count += 1
        if self.graphs_dir.is_dir():
            import shutil

            shutil.rmtree(self.graphs_dir)
        return count

    # -- run integration ----------------------------------------------------

    def open_run(
        self,
        graph: Graph,
        p: int,
        cfg: "TC2DConfig",
        model: "MachineModel | None" = None,
        source: str = "",
        writable: bool = True,
        key_extra: dict | None = None,
    ) -> RunCache:
        """Resolve the artifact for one run and return its :class:`RunCache`.

        ``key_extra`` is folded into the artifact digest (see
        :func:`artifact_digest`) so one config can address several
        stored artifacts — e.g. the cover-edge pipeline's two passes.

        A schema-incompatible or structurally broken entry is invalidated
        here (automatic invalidation): the run then proceeds as a cold
        miss and rewrites the entry under the current schema.

        Concurrent materialization is safe: a cold, writable miss takes
        the per-digest :class:`DigestLock` before touching the entry
        directory.  When another writer already holds it, this run
        degrades to a non-persisting cold run (``writable=False``) and —
        critically — never invalidates the other writer's half-written
        files.  The manifest is re-read after acquiring the lock, so a
        run that raced a just-finished writer turns into a warm hit.
        """
        from repro.core.grid import ProcessorGrid
        from repro.simmpi.costmodel import MachineModel

        q = ProcessorGrid.for_ranks(p).q
        graph_sha = graph_digest(graph)
        digest = artifact_digest(graph_sha, p, q, cfg, key_extra=key_extra)
        model_fp = (model if model is not None else MachineModel()).fingerprint()
        manifest: dict | None = None
        lock: DigestLock | None = None
        try:
            manifest = self.read_manifest(digest)
        except (FileNotFoundError, StoreVersionError):
            if writable and (lock := self.writer_lock(digest)).acquire():
                # We own the materialization.  Re-check under the lock: a
                # concurrent writer may have completed between the read
                # and the acquire (then this run is warm after all).
                try:
                    manifest = self.read_manifest(digest)
                    lock.release()
                    lock = None
                except FileNotFoundError:
                    if self.entry_dir(digest).is_dir():
                        # Rank files without a manifest *while holding the
                        # lock*: the previous cold run died before
                        # finalize.  Start over.
                        self.invalidate(digest)
                except StoreVersionError:
                    self.invalidate(digest)
            else:
                # Another writer is mid-materialization (or this run is
                # read-only): run cold without persisting and leave the
                # entry directory strictly alone.
                lock = None
                writable = False
        return RunCache(
            store=self,
            digest=digest,
            graph_sha=graph_sha,
            graph_stats=(int(graph.n), int(graph.num_edges)),
            p=p,
            q=q,
            cfg=cfg,
            manifest=manifest,
            source=source,
            model_fp=model_fp,
            writable=writable,
            lock=lock,
        )

    # -- generated-graph cache ----------------------------------------------

    def graph_key(self, *parts: Any) -> str:
        """Content key for a cached generated graph (hash of ``parts``)."""
        blob = json.dumps([str(p) for p in parts], separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def graph_path(self, key: str) -> Path:
        """Path of one cached graph blob."""
        return self.graphs_dir / f"{key}.npz"

    def load_graph(self, key: str) -> Graph | None:
        """Fetch a cached generated graph, or ``None`` on miss."""
        from repro.graph.io import load_npz

        path = self.graph_path(key)
        if not path.exists():
            return None
        try:
            return load_npz(path)
        except Exception:
            # A truncated blob is a miss, not an error: regenerate.
            path.unlink(missing_ok=True)
            return None

    def save_graph(self, key: str, graph: Graph) -> None:
        """Persist a generated graph under ``key`` (atomic)."""
        from repro.graph.io import save_npz

        self.graphs_dir.mkdir(parents=True, exist_ok=True)
        path = self.graph_path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp.npz")
        save_npz(graph, tmp)
        os.replace(tmp, path)


def resolve_store(cache: Any) -> "GraphStore | None":
    """Coerce a driver-level ``cache=`` argument into a :class:`GraphStore`.

    Accepts ``None`` (no caching), ``True`` (default root), a path, or an
    existing :class:`GraphStore` (returned as-is).
    """
    if cache is None or isinstance(cache, GraphStore):
        return cache
    if cache is True:
        return GraphStore()
    if isinstance(cache, (str, Path)):
        return GraphStore(cache)
    raise TypeError(
        f"cache must be None, True, a path or a GraphStore; got {cache!r}"
    )
