"""Graph serialization: whitespace edge lists, MatrixMarket pattern files,
and a compact NumPy binary format.

The paper's pipeline converts every input to an undirected simple graph
before counting; the readers here do the same via
:meth:`repro.graph.csr.Graph.from_edges`.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graph.csr import INDEX_DTYPE, Graph


def write_edge_list(g: Graph, path: str | Path, comments: str | None = None) -> None:
    """Write one ``u v`` line per undirected edge (u < v), 0-based ids."""
    path = Path(path)
    edges = g.edge_array()
    with path.open("w") as fh:
        fh.write(f"# repro edge list: n={g.n} m={g.num_edges}\n")
        if comments:
            for line in comments.splitlines():
                fh.write(f"# {line}\n")
        np.savetxt(fh, edges, fmt="%d")


def read_edge_list(path: str | Path, n: int | None = None) -> Graph:
    """Read a whitespace-separated edge list (``#``/``%`` comment lines
    allowed).  ``n`` defaults to ``max id + 1``; the header written by
    :func:`write_edge_list` is honored when present."""
    path = Path(path)
    header_n = None
    rows: list[str] = []
    with path.open() as fh:
        for line in fh:
            s = line.strip()
            if not s:
                continue
            if s.startswith(("#", "%")):
                if "n=" in s and header_n is None:
                    try:
                        header_n = int(s.split("n=")[1].split()[0])
                    except (ValueError, IndexError):
                        pass
                continue
            rows.append(s)
    if not rows:
        return Graph.from_edges(n or header_n or 0, np.empty((0, 2), dtype=INDEX_DTYPE))
    edges = np.loadtxt(io.StringIO("\n".join(rows)), dtype=INDEX_DTYPE, ndmin=2)[
        :, :2
    ]
    if n is None:
        n = header_n if header_n is not None else int(edges.max()) + 1
    return Graph.from_edges(n, edges)


def write_matrix_market(g: Graph, path: str | Path) -> None:
    """Write the MatrixMarket ``pattern symmetric`` form (1-based ids,
    strict lower triangle as per the format's symmetric convention)."""
    path = Path(path)
    edges = g.edge_array()
    with path.open("w") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        fh.write(f"{g.n} {g.n} {len(edges)}\n")
        # Symmetric MM stores the lower triangle: row >= col.
        for u, v in edges:
            fh.write(f"{v + 1} {u + 1}\n")


def read_matrix_market(path: str | Path) -> Graph:
    """Read a MatrixMarket coordinate file as an undirected simple graph
    (values, if present, are ignored; both symmetric and general forms)."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path} is not a MatrixMarket file")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(x) for x in line.split()[:3])
        n = max(nrows, ncols)
        data = np.loadtxt(fh, ndmin=2)
    if data.size == 0:
        edges = np.empty((0, 2), dtype=INDEX_DTYPE)
    else:
        edges = data[:, :2].astype(INDEX_DTYPE) - 1
    return Graph.from_edges(n, edges)


def save_npz(g: Graph, path: str | Path) -> None:
    """Save in the compact binary format (CSR arrays in an ``.npz``)."""
    np.savez_compressed(
        Path(path), n=g.n, indptr=g.adj.indptr, indices=g.adj.indices
    )


def load_npz(path: str | Path) -> Graph:
    """Load a graph previously written by :func:`save_npz`."""
    from repro.graph.csr import CSR

    with np.load(Path(path)) as z:
        n = int(z["n"])
        return Graph(CSR(n, z["indptr"], z["indices"]))


def write_metis(g: Graph, path: str | Path) -> None:
    """Write the METIS graph format: a ``n m`` header line followed by one
    line per vertex listing its neighbors with 1-based ids (the format
    graph partitioners and many triangle-counting codes consume)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"{g.n} {g.num_edges}\n")
        for v in range(g.n):
            fh.write(" ".join(str(int(u) + 1) for u in g.neighbors(v)) + "\n")


def read_metis(path: str | Path) -> Graph:
    """Read a METIS graph file (plain, unweighted flavor)."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().split()
        if len(header) < 2:
            raise ValueError(f"{path}: malformed METIS header")
        n = int(header[0])
        src: list[int] = []
        dst: list[int] = []
        for v in range(n):
            line = fh.readline()
            if not line:
                break
            for tok in line.split():
                src.append(v)
                dst.append(int(tok) - 1)
    if not src:
        return Graph.from_edges(n, np.empty((0, 2), dtype=INDEX_DTYPE))
    edges = np.stack(
        [np.array(src, dtype=INDEX_DTYPE), np.array(dst, dtype=INDEX_DTYPE)],
        axis=1,
    )
    return Graph.from_edges(n, edges)
