"""Compressed sparse row adjacency storage and the undirected Graph type.

The paper stores graphs in CSR before triangle counting (Section 5); all of
our algorithms operate on these structures.  Construction is fully
vectorized (sorting + bincount), so building a graph with a few hundred
thousand edges takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

INDEX_DTYPE = np.int64


class CSR:
    """A compressed-sparse-row pattern matrix (no values, structure only).

    Parameters
    ----------
    n_rows:
        Number of rows.
    indptr:
        ``int64`` array of length ``n_rows + 1``; row ``i`` owns
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column ids, concatenated row by row.  Rows are kept sorted
        ascending (the backward early-break optimization in
        :mod:`repro.core.intersect` relies on this, as the paper notes the
        initial sort is amortized over the intersections).
    n_cols:
        Number of columns; defaults to ``n_rows``.
    """

    __slots__ = ("n_rows", "n_cols", "indptr", "indices")

    def __init__(
        self,
        n_rows: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        n_cols: int | None = None,
    ):
        if len(indptr) != n_rows + 1:
            raise ValueError(
                f"indptr has length {len(indptr)}, expected n_rows+1={n_rows + 1}"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols) if n_cols is not None else int(n_rows)
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        n_rows: int,
        rows: np.ndarray,
        cols: np.ndarray,
        n_cols: int | None = None,
        dedup: bool = False,
    ) -> "CSR":
        """Build a CSR from coordinate pairs, sorting each row ascending.

        With ``dedup``, duplicate (row, col) pairs collapse to one entry.
        """
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        cols = np.asarray(cols, dtype=INDEX_DTYPE)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same shape")
        if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row index out of range")
        ncol = int(n_cols) if n_cols is not None else int(n_rows)
        if len(cols) and (cols.min() < 0 or cols.max() >= ncol):
            raise ValueError("col index out of range")
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        if dedup and len(rows):
            keep = np.empty(len(rows), dtype=bool)
            keep[0] = True
            np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=keep[1:])
            rows, cols = rows[keep], cols[keep]
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        return cls(n_rows, indptr, cols, n_cols=n_cols)

    @classmethod
    def empty(cls, n_rows: int, n_cols: int | None = None) -> "CSR":
        """A CSR with no entries."""
        return cls(
            n_rows,
            np.zeros(n_rows + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
            n_cols=n_cols,
        )

    # -- accessors ----------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.shape[0])

    def row(self, i: int) -> np.ndarray:
        """The (sorted) column ids of row ``i`` — a zero-copy view."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_lengths(self) -> np.ndarray:
        """Array of per-row entry counts (vertex degrees for adjacency)."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(row_id, columns)`` for every row (including empty)."""
        for i in range(self.n_rows):
            yield i, self.row(i)

    def nonempty_rows(self) -> np.ndarray:
        """Row ids that have at least one entry (the DCSR auxiliary list)."""
        return np.nonzero(np.diff(self.indptr) > 0)[0].astype(INDEX_DTYPE)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(rows, cols)`` coordinate arrays in row-major order."""
        rows = np.repeat(
            np.arange(self.n_rows, dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return rows, self.indices.copy()

    def transpose(self) -> "CSR":
        """Return the transposed pattern (CSC view materialized as CSR)."""
        rows, cols = self.to_coo()
        return CSR.from_coo(self.n_cols, cols, rows, n_cols=self.n_rows)

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` of ones."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (np.ones(self.nnz, dtype=np.int64), self.indices, self.indptr),
            shape=(self.n_rows, self.n_cols),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSR):
            return NotImplemented
        return (
            self.n_rows == other.n_rows
            and self.n_cols == other.n_cols
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # CSRs are mutable arrays; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSR({self.n_rows}x{self.n_cols}, nnz={self.nnz})"

    def nbytes_estimate(self) -> int:
        """Approximate in-memory/message size (used by the cost model)."""
        return int(self.indptr.nbytes + self.indices.nbytes + 64)


@dataclass(frozen=True)
class Graph:
    """An undirected simple graph stored as a symmetric CSR.

    Invariants (enforced by :meth:`from_edges`): no self loops, no
    duplicate edges, every edge stored in both directions, rows sorted.
    """

    adj: CSR

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.adj.n_rows

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.adj.nnz // 2

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree."""
        return self.adj.row_lengths()

    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray) -> "Graph":
        """Build a simple undirected graph from an ``(m, 2)`` edge array.

        Self loops are dropped; duplicates (in either orientation)
        collapse; both directions are stored.
        """
        edges = np.asarray(edges, dtype=INDEX_DTYPE)
        if edges.size == 0:
            return cls(CSR.empty(n))
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (m, 2), got {edges.shape}")
        u, v = edges[:, 0], edges[:, 1]
        mask = u != v
        u, v = u[mask], v[mask]
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        return cls(CSR.from_coo(n, rows, cols, dedup=True))

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of vertex ``v``."""
        return self.adj.row(v)

    def edge_array(self) -> np.ndarray:
        """Canonical ``(m, 2)`` edge list with ``u < v`` in each row."""
        rows, cols = self.adj.to_coo()
        keep = rows < cols
        return np.stack([rows[keep], cols[keep]], axis=1)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < len(nbrs) and nbrs[i] == v)

    def relabel(self, perm: np.ndarray) -> "Graph":
        """Return the graph with vertex ``v`` renamed to ``perm[v]``."""
        perm = np.asarray(perm, dtype=INDEX_DTYPE)
        if len(perm) != self.n or len(np.unique(perm)) != self.n:
            raise ValueError("perm must be a permutation of range(n)")
        edges = self.edge_array()
        return Graph.from_edges(self.n, perm[edges])

    def upper_csr(self) -> CSR:
        """The strict upper-triangular part U (per-row neighbors > row id)."""
        rows, cols = self.adj.to_coo()
        keep = rows < cols
        return CSR.from_coo(self.n, rows[keep], cols[keep])

    def lower_csr(self) -> CSR:
        """The strict lower-triangular part L (per-row neighbors < row id)."""
        rows, cols = self.adj.to_coo()
        keep = rows > cols
        return CSR.from_coo(self.n, rows[keep], cols[keep])

    def nbytes_estimate(self) -> int:
        """Approximate resident bytes of the adjacency structure."""
        return self.adj.nbytes_estimate()
