"""Synthetic graph generators.

The paper evaluates on graph500 RMAT graphs (scales 26-29) and two
real-world social networks.  We regenerate the same *families* at scales a
single-core pure-Python run can sweep:

* :func:`rmat_graph` — the graph500 Kronecker/RMAT generator with the
  standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) parameters [6, 12];
* :func:`powerlaw_cluster` — Holme-Kim style preferential attachment with
  triad formation: heavy-tailed degrees *and* high clustering, standing in
  for twitter (which is triangle-rich: 34.8e9 triangles on 1.2e9 edges);
* :func:`configuration_model` — power-law degree stubs wired uniformly at
  random: heavy-tailed degrees but vanishing clustering, standing in for
  friendster (191,716 triangles on 1.8e9 edges — essentially triangle-free
  at that scale);
* :func:`erdos_renyi_gnm` and :func:`barabasi_albert` for tests.

All generators take an integer ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import INDEX_DTYPE, Graph

#: graph500 RMAT parameters.
GRAPH500_A, GRAPH500_B, GRAPH500_C, GRAPH500_D = 0.57, 0.19, 0.19, 0.05


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    d: float = GRAPH500_D,
    seed: int = 0,
) -> np.ndarray:
    """Generate an RMAT directed edge list of ``edge_factor * 2**scale``
    edges over ``2**scale`` vertices (may contain duplicates/self loops,
    exactly like the graph500 kernel-1 input).

    Vectorized: one uniform draw per (edge, level) selects the recursion
    quadrant with probabilities (a, b, c, d).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("RMAT probabilities must sum to 1")
    n_edges = edge_factor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=INDEX_DTYPE)
    dst = np.zeros(n_edges, dtype=INDEX_DTYPE)
    for _level in range(scale):
        r = rng.random(n_edges)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        src_bit = (r >= a + b).astype(INDEX_DTYPE)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(INDEX_DTYPE)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return np.stack([src, dst], axis=1)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    shuffle_labels: bool = True,
) -> Graph:
    """Simple undirected graph from an RMAT edge list.

    ``shuffle_labels`` applies a random vertex permutation, as the graph500
    specification requires, so that vertex ids carry no degree information
    (the algorithm's degree-reordering preprocessing must actually work for
    it).
    """
    edges = rmat_edges(scale, edge_factor=edge_factor, seed=seed)
    n = 1 << scale
    if shuffle_labels:
        rng = np.random.default_rng(seed + 0x5EED)
        perm = rng.permutation(n).astype(INDEX_DTYPE)
        edges = perm[edges]
    return Graph.from_edges(n, edges)


def erdos_renyi_gnm(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m)-style random graph: ``m`` uniform vertex pairs, simplified.

    The realized edge count can be slightly below ``m`` after removing
    duplicates and self loops.
    """
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=m, dtype=INDEX_DTYPE)
    v = rng.integers(0, n, size=m, dtype=INDEX_DTYPE)
    return Graph.from_edges(n, np.stack([u, v], axis=1))


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Barabasi-Albert preferential attachment: each new vertex attaches to
    ``m`` existing vertices chosen proportionally to degree."""
    if n < m + 1:
        raise ValueError("need n > m")
    rng = np.random.default_rng(seed)
    # repeated_nodes holds one copy of each endpoint per incident edge,
    # so uniform sampling from it is degree-proportional sampling.
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    targets = list(range(m))
    for v in range(m, n):
        chosen = set()
        for t in targets:
            if t != v and t not in chosen:
                chosen.add(t)
                edges.append((v, t))
                repeated.extend((v, t))
        targets = [repeated[rng.integers(0, len(repeated))] for _ in range(m)]
    return Graph.from_edges(n, np.array(edges, dtype=INDEX_DTYPE))


def powerlaw_cluster(n: int, m: int, p_triad: float, seed: int = 0) -> Graph:
    """Holme-Kim powerlaw-cluster graph: preferential attachment where each
    additional link follows a triad-formation step with probability
    ``p_triad`` (connect to a random neighbor of the previously chosen
    target, closing a triangle).

    Produces heavy-tailed degrees with tunable, high clustering — the
    twitter-like regime the paper's real-world experiments probe.
    """
    if not 0.0 <= p_triad <= 1.0:
        raise ValueError("p_triad must be in [0, 1]")
    if n < m + 1:
        raise ValueError("need n > m")
    rng = np.random.default_rng(seed)
    repeated: list[int] = []
    edges: set[tuple[int, int]] = set()

    def add_edge(u: int, w: int) -> bool:
        if u == w:
            return False
        key = (u, w) if u < w else (w, u)
        if key in edges:
            return False
        edges.add(key)
        repeated.extend((u, w))
        return True

    # Seed clique-ish core so preferential sampling has mass.
    for u in range(m):
        for w in range(u + 1, m):
            add_edge(u, w)

    for v in range(m, n):
        count = 0
        prev_target = -1
        guard = 0
        while count < m and guard < 50 * m:
            guard += 1
            if prev_target >= 0 and rng.random() < p_triad:
                # Triad formation: neighbor of the previous target.
                nbrs = [
                    (b if a == prev_target else a)
                    for (a, b) in edges
                    if a == prev_target or b == prev_target
                ]
                target = nbrs[rng.integers(0, len(nbrs))] if nbrs else -1
            else:
                target = repeated[rng.integers(0, len(repeated))]
            if target >= 0 and add_edge(v, target):
                count += 1
                prev_target = target
    arr = np.array(sorted(edges), dtype=INDEX_DTYPE)
    return Graph.from_edges(n, arr)


def powerlaw_cluster_fast(n: int, m: int, p_triad: float, seed: int = 0) -> Graph:
    """Faster Holme-Kim variant using adjacency lists for the triad step.

    Produces a different (but same-family) graph than
    :func:`powerlaw_cluster` for the same seed; preferred for the dataset
    registry where ``n`` is in the tens of thousands.
    """
    if n < m + 1:
        raise ValueError("need n > m")
    rng = np.random.default_rng(seed)
    adj: list[list[int]] = [[] for _ in range(n)]
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []

    def add_edge(u: int, w: int) -> bool:
        if u == w or w in adj[u]:
            return False
        adj[u].append(w)
        adj[w].append(u)
        repeated.extend((u, w))
        edges.append((u, w))
        return True

    for u in range(m):
        for w in range(u + 1, m):
            add_edge(u, w)

    rand_cache = rng.random(4 * n * m + 16)
    ri = 0

    def nextrand() -> float:
        nonlocal ri, rand_cache
        if ri >= len(rand_cache):
            rand_cache = rng.random(len(rand_cache))
            ri = 0
        x = rand_cache[ri]
        ri += 1
        return x

    for v in range(m, n):
        count = 0
        prev_target = -1
        guard = 0
        while count < m and guard < 50 * m:
            guard += 1
            if prev_target >= 0 and adj[prev_target] and nextrand() < p_triad:
                nbrs = adj[prev_target]
                target = nbrs[int(nextrand() * len(nbrs))]
            else:
                target = repeated[int(nextrand() * len(repeated))]
            if add_edge(v, target):
                count += 1
                prev_target = target
    return Graph.from_edges(n, np.array(edges, dtype=INDEX_DTYPE))


def configuration_model(
    n: int,
    gamma: float = 2.4,
    d_min: int = 2,
    d_max: int | None = None,
    seed: int = 0,
) -> Graph:
    """Power-law configuration model: degrees sampled from a truncated
    discrete power law with exponent ``gamma``, stubs matched uniformly at
    random, then simplified.

    Uniform stub matching produces clustering that vanishes with ``n``, so
    triangle counts stay tiny relative to the edge count — the friendster
    regime (Table 1: 1.8e9 edges, 1.9e5 triangles).
    """
    if d_max is None:
        d_max = max(d_min + 1, int(round(n**0.5)))
    rng = np.random.default_rng(seed)
    # Inverse-CDF sampling of a discrete truncated power law.
    ks = np.arange(d_min, d_max + 1, dtype=np.float64)
    pmf = ks**-gamma
    pmf /= pmf.sum()
    cdf = np.cumsum(pmf)
    degrees = d_min + np.searchsorted(cdf, rng.random(n))
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n, dtype=INDEX_DTYPE), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    edges = np.stack([stubs[:half], stubs[half : 2 * half]], axis=1)
    return Graph.from_edges(n, edges)


def watts_strogatz(n: int, k: int, p_rewire: float, seed: int = 0) -> Graph:
    """Watts-Strogatz small-world graph: a ring lattice where every vertex
    connects to its ``k`` nearest neighbors (k even), with each edge
    rewired to a uniform random target with probability ``p_rewire``.

    At ``p_rewire = 0`` the triangle count is exactly
    ``n * k/2 * (k/2 - 1) / 2 * ...`` — concretely, each vertex closes
    ``3/4 * (k/2) * (k/2 - 1) / ...`` wedges; tests use the closed form
    ``n * k/2 * (k - 2) / 4 / ...`` via networkx parity instead of
    hand-derivation.  Small-world graphs are the classic
    clustering-coefficient benchmark (Watts & Strogatz [24], cited in the
    paper's introduction).
    """
    if k < 2 or k % 2:
        raise ValueError("k must be even and >= 2")
    if not 0.0 <= p_rewire <= 1.0:
        raise ValueError("p_rewire must be in [0, 1]")
    if n <= k:
        raise ValueError("need n > k")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for offset in range(1, k // 2 + 1):
        for u in range(n):
            v = (u + offset) % n
            edges.add((u, v) if u < v else (v, u))
    if p_rewire > 0:
        current = sorted(edges)
        for (u, v) in current:
            if rng.random() < p_rewire:
                w = int(rng.integers(0, n))
                attempts = 0
                key = (u, w) if u < w else (w, u)
                while (w == u or key in edges) and attempts < 20:
                    w = int(rng.integers(0, n))
                    key = (u, w) if u < w else (w, u)
                    attempts += 1
                if w != u and key not in edges:
                    edges.discard((u, v) if u < v else (v, u))
                    edges.add(key)
    return Graph.from_edges(n, np.array(sorted(edges), dtype=INDEX_DTYPE))


def grid_2d(rows: int, cols: int, diagonal: bool = False) -> Graph:
    """Rectangular 2D lattice; with ``diagonal`` each cell also gets one
    diagonal, making the triangle count exactly ``2 * (rows-1) * (cols-1)``
    — a handy closed-form oracle for tests."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    edges = []
    idx = lambda r, c: r * cols + c  # noqa: E731 - local shorthand
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
            if diagonal and r + 1 < rows and c + 1 < cols:
                edges.append((idx(r, c), idx(r + 1, c + 1)))
    arr = (
        np.array(edges, dtype=INDEX_DTYPE)
        if edges
        else np.empty((0, 2), dtype=INDEX_DTYPE)
    )
    return Graph.from_edges(rows * cols, arr)


def complete_graph(n: int) -> Graph:
    """K_n: the n-clique, with exactly C(n, 3) triangles."""
    if n < 1:
        raise ValueError("n must be >= 1")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    arr = (
        np.array(pairs, dtype=INDEX_DTYPE)
        if pairs
        else np.empty((0, 2), dtype=INDEX_DTYPE)
    )
    return Graph.from_edges(n, arr)
