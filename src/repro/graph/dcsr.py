"""Doubly-compressed sparse row structure (Buluc & Gilbert style).

The paper's 2D blocks are hyper-sparse: after cyclic decomposition a rank
holds roughly ``1/sqrt(p)`` of each adjacency list, so many local rows are
empty.  The paper keeps the plain CSR indexing scheme (local row id =
``vertex // sqrt(p)``, so random access stays O(1)) and *adds* a list of
rows with non-empty adjacency lists; iteration walks that list and never
touches empty rows.  :class:`DCSR` packages exactly that: a CSR plus its
non-empty-row index.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSR, INDEX_DTYPE


class DCSR:
    """CSR with an auxiliary non-empty-row list for sparse iteration.

    Random access by local row id goes through the full-width ``indptr``
    (the paper keeps this to avoid maintaining per-row offsets); iteration
    uses :attr:`nonempty_rows` when the doubly-sparse optimization is on,
    or the full row range when it is off (the Section 7.3 ablation).
    """

    __slots__ = ("csr", "nonempty_rows")

    def __init__(self, csr: CSR):
        self.csr = csr
        self.nonempty_rows = csr.nonempty_rows()

    @classmethod
    def from_coo(
        cls, n_rows: int, rows: np.ndarray, cols: np.ndarray, n_cols: int | None = None
    ) -> "DCSR":
        """Build from coordinate pairs (rows end up sorted ascending)."""
        return cls(CSR.from_coo(n_rows, rows, cols, n_cols=n_cols))

    @property
    def n_rows(self) -> int:
        """Number of *present* (non-empty) rows."""
        return self.csr.n_rows

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return self.csr.nnz

    @property
    def indptr(self) -> np.ndarray:
        """Row-pointer array of the compacted row structure."""
        return self.csr.indptr

    @property
    def indices(self) -> np.ndarray:
        """Column-index array (concatenated sorted rows)."""
        return self.csr.indices

    def row(self, i: int) -> np.ndarray:
        """Sorted entries of local row ``i`` (may be empty)."""
        return self.csr.row(i)

    def iter_rows(self, doubly_sparse: bool = True):
        """Yield ``(row_id, entries)``.

        With ``doubly_sparse`` only non-empty rows are visited (cost: one
        step per non-empty row); without it every local row is visited
        (cost: one step per row), which is what the paper's un-optimized
        variant pays.
        """
        if doubly_sparse:
            for i in self.nonempty_rows:
                yield int(i), self.csr.row(int(i))
        else:
            for i in range(self.csr.n_rows):
                yield i, self.csr.row(i)

    def row_visit_cost(self, doubly_sparse: bool) -> int:
        """Number of row-iteration steps a full sweep performs."""
        return len(self.nonempty_rows) if doubly_sparse else self.csr.n_rows

    def max_row_length(self) -> int:
        """Longest local adjacency list (sizes the per-block hash map)."""
        if self.csr.nnz == 0:
            return 0
        return int(np.diff(self.csr.indptr).max())

    def nbytes_estimate(self) -> int:
        """Approximate memory/message footprint in bytes."""
        return int(
            self.csr.nbytes_estimate() + self.nonempty_rows.nbytes + 16
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DCSR({self.csr.n_rows} rows, {len(self.nonempty_rows)} nonempty, "
            f"nnz={self.csr.nnz})"
        )
