"""Graph substrate: CSR storage, generators, IO, statistics, datasets.

Everything the triangle-counting algorithms consume is built here from
scratch: a compressed-sparse-row adjacency structure (:class:`CSR`), an
undirected simple-graph wrapper (:class:`Graph`), RMAT/Kronecker and
social-network-like generators, edge-list/MatrixMarket IO, and the named
scaled-down dataset registry that mirrors the paper's Table 1.
"""

from repro.graph.csr import CSR, Graph
from repro.graph.dcsr import DCSR
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    configuration_model,
    erdos_renyi_gnm,
    grid_2d,
    powerlaw_cluster,
    rmat_edges,
    rmat_graph,
    watts_strogatz,
)
from repro.graph.datasets import DatasetSpec, dataset_names, load_dataset
from repro.graph.stats import (
    clustering_coefficients,
    degree_summary,
    global_clustering,
    triangle_count_linalg,
    wedge_count,
)

__all__ = [
    "CSR",
    "DCSR",
    "DatasetSpec",
    "Graph",
    "barabasi_albert",
    "clustering_coefficients",
    "complete_graph",
    "configuration_model",
    "dataset_names",
    "degree_summary",
    "erdos_renyi_gnm",
    "global_clustering",
    "grid_2d",
    "load_dataset",
    "powerlaw_cluster",
    "rmat_edges",
    "rmat_graph",
    "triangle_count_linalg",
    "watts_strogatz",
    "wedge_count",
]
