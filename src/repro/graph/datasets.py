"""Named dataset registry mirroring the paper's Table 1 at reduced scale.

The paper's graphs (Table 1) range from 1.2e9 to 8.6e9 edges, which a
pure-Python single-core reproduction cannot sweep.  The registry keeps the
same *families* and the same relative roles:

===============  =====================  ====================================
ours             paper analogue         role
===============  =====================  ====================================
g500-s12..s16    g500-s26..s29          RMAT/Kronecker, graph500 parameters
twitter-like     twitter [11]           power-law, triangle-rich social net
friendster-like  friendster [17]        power-law, almost triangle-free
===============  =====================  ====================================

Graphs are generated on demand and cached in-process.  The environment
variable ``REPRO_DATASET_SCALE`` (a float, default 1.0) scales dataset
sizes globally: 0.5 halves vertex counts for quick runs, 2.0 doubles them
for longer, higher-fidelity sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.graph.csr import Graph
from repro.graph.generators import (
    configuration_model,
    powerlaw_cluster_fast,
    rmat_graph,
)

#: Paper Table 1 ground truth, for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1: dict[str, dict[str, int]] = {
    "twitter": {
        "vertices": 41_652_230,
        "edges": 1_202_513_046,
        "triangles": 34_824_916_864,
    },
    "friendster": {
        "vertices": 119_432_957,
        "edges": 1_799_999_986,
        "triangles": 191_716,
    },
    "g500-s26": {
        "vertices": 67_108_864,
        "edges": 1_073_741_824,
        "triangles": 49_158_464_716,
    },
    "g500-s27": {
        "vertices": 134_217_728,
        "edges": 2_147_483_648,
        "triangles": 106_858_898_940,
    },
    "g500-s28": {
        "vertices": 268_435_456,
        "edges": 4_294_967_296,
        "triangles": 231_425_307_324,
    },
    "g500-s29": {
        "vertices": 536_870_912,
        "edges": 8_589_934_592,
        "triangles": 499_542_556_876,
    },
}


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_DATASET_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Registry key.
    paper_name:
        The Table 1 graph this dataset stands in for.
    description:
        What the generator produces and why it is a faithful analogue.
    builder:
        ``builder(seed, scale) -> Graph``.
    """

    name: str
    paper_name: str
    description: str
    builder: Callable[[int, float], Graph] = field(repr=False)


def _rmat_builder(scale_exp: int) -> Callable[[int, float], Graph]:
    def build(seed: int, scale: float) -> Graph:
        # Global scaling nudges the RMAT scale exponent by whole levels.
        adj = 0
        s = scale
        while s >= 2.0:
            adj += 1
            s /= 2.0
        while s <= 0.5:
            adj -= 1
            s *= 2.0
        return rmat_graph(max(4, scale_exp + adj), edge_factor=16, seed=seed)

    return build


def _twitter_builder(seed: int, scale: float) -> Graph:
    n = max(64, int(9_000 * scale))
    return powerlaw_cluster_fast(n, m=12, p_triad=0.45, seed=seed)


def _friendster_builder(seed: int, scale: float) -> Graph:
    n = max(64, int(40_000 * scale))
    return configuration_model(n, gamma=2.4, d_min=3, seed=seed)


REGISTRY: dict[str, DatasetSpec] = {
    "g500-s12": DatasetSpec(
        "g500-s12",
        "g500-s26",
        "RMAT scale 12, edge factor 16 (graph500 parameters)",
        _rmat_builder(12),
    ),
    "g500-s13": DatasetSpec(
        "g500-s13",
        "g500-s27",
        "RMAT scale 13, edge factor 16 (graph500 parameters)",
        _rmat_builder(13),
    ),
    "g500-s14": DatasetSpec(
        "g500-s14",
        "g500-s28",
        "RMAT scale 14, edge factor 16 (graph500 parameters)",
        _rmat_builder(14),
    ),
    "g500-s15": DatasetSpec(
        "g500-s15",
        "g500-s29",
        "RMAT scale 15, edge factor 16 (graph500 parameters)",
        _rmat_builder(15),
    ),
    "g500-s16": DatasetSpec(
        "g500-s16",
        "g500-s29",
        "RMAT scale 16, edge factor 16 (larger optional sweep)",
        _rmat_builder(16),
    ),
    "twitter-like": DatasetSpec(
        "twitter-like",
        "twitter",
        "Holme-Kim powerlaw-cluster graph: heavy-tailed degrees with high "
        "clustering (triangle-rich, like twitter)",
        _twitter_builder,
    ),
    "friendster-like": DatasetSpec(
        "friendster-like",
        "friendster",
        "power-law configuration model: heavy-tailed degrees with vanishing "
        "clustering (almost triangle-free, like friendster)",
        _friendster_builder,
    ),
}

_CACHE: dict[tuple[str, int, float], Graph] = {}


def dataset_names() -> list[str]:
    """All registered dataset names."""
    return list(REGISTRY)


def load_dataset(name: str, seed: int = 0) -> Graph:
    """Build (or fetch from cache) the named dataset."""
    if name not in REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(REGISTRY)}"
        )
    key = (name, seed, _scale())
    if key not in _CACHE:
        _CACHE[key] = REGISTRY[name].builder(seed, _scale())
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (mostly for tests)."""
    _CACHE.clear()
