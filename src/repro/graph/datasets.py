"""Named dataset registry mirroring the paper's Table 1 at reduced scale.

The paper's graphs (Table 1) range from 1.2e9 to 8.6e9 edges, which a
pure-Python single-core reproduction cannot sweep.  The registry keeps the
same *families* and the same relative roles:

===============  =====================  ====================================
ours             paper analogue         role
===============  =====================  ====================================
g500-s12..s16    g500-s26..s29          RMAT/Kronecker, graph500 parameters
twitter-like     twitter [11]           power-law, triangle-rich social net
friendster-like  friendster [17]        power-law, almost triangle-free
===============  =====================  ====================================

Graphs are generated on demand and cached in-process; a
:class:`DatasetRegistry` constructed with a
:class:`~repro.graph.store.GraphStore` additionally persists generated
graphs on disk (keyed by name/seed/scale/registry version) and can warm
the store's preprocessed artifacts (:meth:`DatasetRegistry.warm`), so the
CLI, the benchmark suite and the chaos harness share one warm store.  The
environment variable ``REPRO_DATASET_SCALE`` (a float, default 1.0)
scales dataset sizes globally: 0.5 halves vertex counts for quick runs,
2.0 doubles them for longer, higher-fidelity sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.graph.csr import Graph
from repro.graph.generators import (
    configuration_model,
    powerlaw_cluster_fast,
    rmat_graph,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.graph.store import GraphStore

#: Bump when a generator change alters the graphs a registry name
#: produces; on-disk graph blobs cached under the old version then miss
#: instead of serving stale bytes.
REGISTRY_VERSION = 1

#: Paper Table 1 ground truth, for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1: dict[str, dict[str, int]] = {
    "twitter": {
        "vertices": 41_652_230,
        "edges": 1_202_513_046,
        "triangles": 34_824_916_864,
    },
    "friendster": {
        "vertices": 119_432_957,
        "edges": 1_799_999_986,
        "triangles": 191_716,
    },
    "g500-s26": {
        "vertices": 67_108_864,
        "edges": 1_073_741_824,
        "triangles": 49_158_464_716,
    },
    "g500-s27": {
        "vertices": 134_217_728,
        "edges": 2_147_483_648,
        "triangles": 106_858_898_940,
    },
    "g500-s28": {
        "vertices": 268_435_456,
        "edges": 4_294_967_296,
        "triangles": 231_425_307_324,
    },
    "g500-s29": {
        "vertices": 536_870_912,
        "edges": 8_589_934_592,
        "triangles": 499_542_556_876,
    },
}


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_DATASET_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Registry key.
    paper_name:
        The Table 1 graph this dataset stands in for.
    description:
        What the generator produces and why it is a faithful analogue.
    builder:
        ``builder(seed, scale) -> Graph``.
    """

    name: str
    paper_name: str
    description: str
    builder: Callable[[int, float], Graph] = field(repr=False)


def _rmat_builder(scale_exp: int) -> Callable[[int, float], Graph]:
    def build(seed: int, scale: float) -> Graph:
        # Global scaling nudges the RMAT scale exponent by whole levels.
        adj = 0
        s = scale
        while s >= 2.0:
            adj += 1
            s /= 2.0
        while s <= 0.5:
            adj -= 1
            s *= 2.0
        return rmat_graph(max(4, scale_exp + adj), edge_factor=16, seed=seed)

    return build


def _twitter_builder(seed: int, scale: float) -> Graph:
    n = max(64, int(9_000 * scale))
    return powerlaw_cluster_fast(n, m=12, p_triad=0.45, seed=seed)


def _friendster_builder(seed: int, scale: float) -> Graph:
    n = max(64, int(40_000 * scale))
    return configuration_model(n, gamma=2.4, d_min=3, seed=seed)


REGISTRY: dict[str, DatasetSpec] = {
    "g500-s12": DatasetSpec(
        "g500-s12",
        "g500-s26",
        "RMAT scale 12, edge factor 16 (graph500 parameters)",
        _rmat_builder(12),
    ),
    "g500-s13": DatasetSpec(
        "g500-s13",
        "g500-s27",
        "RMAT scale 13, edge factor 16 (graph500 parameters)",
        _rmat_builder(13),
    ),
    "g500-s14": DatasetSpec(
        "g500-s14",
        "g500-s28",
        "RMAT scale 14, edge factor 16 (graph500 parameters)",
        _rmat_builder(14),
    ),
    "g500-s15": DatasetSpec(
        "g500-s15",
        "g500-s29",
        "RMAT scale 15, edge factor 16 (graph500 parameters)",
        _rmat_builder(15),
    ),
    "g500-s16": DatasetSpec(
        "g500-s16",
        "g500-s29",
        "RMAT scale 16, edge factor 16 (larger optional sweep)",
        _rmat_builder(16),
    ),
    "twitter-like": DatasetSpec(
        "twitter-like",
        "twitter",
        "Holme-Kim powerlaw-cluster graph: heavy-tailed degrees with high "
        "clustering (triangle-rich, like twitter)",
        _twitter_builder,
    ),
    "friendster-like": DatasetSpec(
        "friendster-like",
        "friendster",
        "power-law configuration model: heavy-tailed degrees with vanishing "
        "clustering (almost triangle-free, like friendster)",
        _friendster_builder,
    ),
}

class DatasetRegistry:
    """Named access to the scaled paper analogues, optionally store-backed.

    Wraps a ``name -> DatasetSpec`` mapping with three layers of reuse:

    1. an in-process graph cache keyed by ``(name, seed, scale)``;
    2. when constructed with (or later given) a
       :class:`~repro.graph.store.GraphStore`, an on-disk graph-blob
       cache, so expensive generators run once per machine rather than
       once per process;
    3. :meth:`warm`, which preprocesses a named dataset into the store so
       subsequent counting runs skip the ppt phase entirely.
    """

    def __init__(
        self,
        specs: dict[str, DatasetSpec] | None = None,
        store: "GraphStore | None" = None,
    ):
        self.specs = dict(specs) if specs is not None else dict(REGISTRY)
        self.store = store
        self._cache: dict[tuple[str, int, float], Graph] = {}

    def names(self) -> list[str]:
        """All registered dataset names."""
        return list(self.specs)

    def spec(self, name: str) -> DatasetSpec:
        """The :class:`DatasetSpec` for ``name`` (KeyError if unknown)."""
        if name not in self.specs:
            raise KeyError(
                f"unknown dataset {name!r}; available: "
                f"{', '.join(self.specs)}"
            )
        return self.specs[name]

    def provenance(self, name: str, seed: int = 0) -> dict[str, Any]:
        """How a graph was (or would be) produced: generator identity,
        seed, global scale and registry version — the store records this
        next to cached artifacts."""
        spec = self.spec(name)
        return {
            "dataset": spec.name,
            "paper_name": spec.paper_name,
            "seed": int(seed),
            "scale": _scale(),
            "registry_version": REGISTRY_VERSION,
        }

    def load(self, name: str, seed: int = 0) -> Graph:
        """Build (or fetch from the in-process / on-disk cache) a dataset."""
        spec = self.spec(name)
        key = (name, seed, _scale())
        if key in self._cache:
            return self._cache[key]
        graph = None
        store_key = None
        if self.store is not None:
            store_key = self.store.graph_key(
                "dataset", REGISTRY_VERSION, name, seed, _scale()
            )
            graph = self.store.load_graph(store_key)
        if graph is None:
            graph = spec.builder(seed, _scale())
            if self.store is not None:
                self.store.save_graph(store_key, graph)
        self._cache[key] = graph
        return graph

    def warm(
        self,
        name: str,
        p: int,
        cfg: Any = None,
        model: Any = None,
        seed: int = 0,
    ) -> Any:
        """Preprocess ``name`` at ``p`` ranks into the store (a cold cached
        run) and return the :class:`~repro.core.counts.TriangleCountResult`.
        Requires a store; a no-op beyond the count if the artifact is
        already warm."""
        if self.store is None:
            raise ValueError("DatasetRegistry.warm needs a GraphStore")
        from repro.core.tc2d import count_triangles_2d

        graph = self.load(name, seed=seed)
        return count_triangles_2d(
            graph, p, cfg=cfg, model=model, dataset=name, cache=self.store
        )

    def clear_cache(self) -> None:
        """Drop the in-process graph cache (on-disk blobs are kept)."""
        self._cache.clear()


#: Default registry instance behind the module-level helpers.
DEFAULT_REGISTRY = DatasetRegistry(REGISTRY)


def dataset_names() -> list[str]:
    """All registered dataset names."""
    return DEFAULT_REGISTRY.names()


def load_dataset(name: str, seed: int = 0) -> Graph:
    """Build (or fetch from cache) the named dataset."""
    return DEFAULT_REGISTRY.load(name, seed=seed)


def clear_cache() -> None:
    """Drop all cached datasets (mostly for tests)."""
    DEFAULT_REGISTRY.clear_cache()
