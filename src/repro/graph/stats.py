"""Graph statistics: degrees, wedges, clustering, linear-algebra triangle
count.

:func:`triangle_count_linalg` implements the paper's Equation 4 literally
(``C[U] = U @ L`` masked by the non-zeros of ``U``) with scipy sparse
matrices.  It is the fast, independent reference against which every
distributed algorithm in this repository is validated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph


def triangle_count_linalg(g: Graph) -> int:
    """Exact global triangle count via sparse matrix algebra.

    With ``U`` the strict upper triangle of the adjacency matrix,
    ``(U @ U)[i, j]`` counts the wedges ``i < k < j`` and masking by
    ``U``'s pattern keeps only closed ones, counting each triangle exactly
    once (at its ordered (i, j) edge) — Equations 1-4 of the paper.
    """
    U = g.upper_csr().to_scipy()
    if U.nnz == 0:
        return 0
    return int((U @ U).multiply(U).sum())


def triangles_per_vertex(g: Graph) -> np.ndarray:
    """Number of triangles incident on each vertex.

    ``diag(A^3) / 2`` computed sparsely; sums to ``3 * total_triangles``.
    """
    A = g.adj.to_scipy()
    if A.nnz == 0:
        return np.zeros(g.n, dtype=np.int64)
    A2 = A @ A
    # diag(A @ A2) without materializing the product: row_i(A) . col_i(A2).
    d = np.asarray(A.multiply(A2.T).sum(axis=1)).ravel()
    return (d // 2).astype(np.int64)


def wedge_count(g: Graph) -> int:
    """Number of wedges (paths of length 2): sum over v of C(d(v), 2)."""
    d = g.degrees.astype(np.int64)
    return int((d * (d - 1) // 2).sum())


def clustering_coefficients(g: Graph) -> np.ndarray:
    """Local clustering coefficient per vertex (0 where degree < 2)."""
    tri = triangles_per_vertex(g)
    d = g.degrees.astype(np.float64)
    wedges = d * (d - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(wedges > 0, tri / wedges, 0.0)
    return cc


def global_clustering(g: Graph) -> float:
    """Transitivity ratio: 3 * triangles / wedges (0 for wedge-free)."""
    w = wedge_count(g)
    if w == 0:
        return 0.0
    return 3.0 * triangle_count_linalg(g) / w


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution summary for dataset tables."""

    n: int
    m: int
    d_avg: float
    d_max: int
    d_min: int

    def __str__(self) -> str:
        return (
            f"n={self.n:,} m={self.m:,} d_avg={self.d_avg:.2f} "
            f"d_max={self.d_max} d_min={self.d_min}"
        )


def degree_summary(g: Graph) -> DegreeSummary:
    """Summarize the degree distribution of ``g``."""
    d = g.degrees
    if g.n == 0:
        return DegreeSummary(0, 0, 0.0, 0, 0)
    return DegreeSummary(
        n=g.n,
        m=g.num_edges,
        d_avg=float(d.mean()),
        d_max=int(d.max()),
        d_min=int(d.min()),
    )


def bfs_levels(g: Graph) -> np.ndarray:
    """BFS level of every vertex, rooted at each component's minimum-label
    vertex (level 0); isolated vertices are their own roots.

    This is the level structure the cover-edge algorithm
    (:mod:`repro.core.coveredge`) derives in its distributed
    preprocessing; the sequential version here feeds the auto-tuner's
    cheap signal collection and the tests' oracles.  Frontier-vectorized:
    one ``np.unique`` pass per BFS level.
    """
    n = g.n
    level = np.full(n, -1, dtype=np.int64)
    indptr, indices = g.adj.indptr, g.adj.indices
    for root in range(n):
        if level[root] >= 0:
            continue
        level[root] = 0
        frontier = np.array([root], dtype=np.int64)
        depth = 0
        while len(frontier):
            gathered = np.concatenate(
                [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            ) if len(frontier) else indices[:0]
            nxt = np.unique(gathered)
            nxt = nxt[level[nxt] < 0]
            depth += 1
            level[nxt] = depth
            frontier = nxt
    return level


def cover_edge_stats(g: Graph, level: np.ndarray | None = None) -> dict:
    """Cheap statistics of the cover-edge decomposition.

    Returns ``horizontal_edges`` (undirected edges whose endpoints share
    a BFS level — the cover set S), ``horizontal_fraction`` (|S| / m),
    ``horizontal_wedges`` (wedge count of the horizontal subgraph H) and
    ``bfs_depth`` (max level).  These are the signals that decide whether
    cover-edge counting beats tc2d: small cover sets mean both of its
    passes operate on far fewer tasks than tc2d's m.
    """
    if level is None:
        level = bfs_levels(g)
    indptr, indices = g.adj.indptr, g.adj.indices
    row_rep = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(indptr))
    horiz = level[indices] == level[row_rep]
    m_h_directed = int(np.count_nonzero(horiz))
    d_h = np.bincount(row_rep[horiz], minlength=g.n).astype(np.int64)
    m = g.num_edges
    return {
        "horizontal_edges": m_h_directed // 2,
        "horizontal_fraction": (m_h_directed / 2) / m if m else 0.0,
        "horizontal_wedges": int((d_h * (d_h - 1) // 2).sum()),
        "bfs_depth": int(level.max()) if g.n else 0,
    }


def clustering_estimate(g: Graph, samples: int = 128, seed: int = 0) -> float:
    """Sampled mean local clustering coefficient — a cheap stand-in for
    :func:`global_clustering` that never counts all triangles.

    Deterministic for a given ``(graph, samples, seed)``: the sample is
    drawn with a seeded generator from the degree-≥2 vertices (all of
    them when there are at most ``samples``).  Exactness is not the
    point; the auto-tuner only needs the order of magnitude.
    """
    d = g.degrees.astype(np.int64)
    eligible = np.flatnonzero(d >= 2)
    if len(eligible) == 0:
        return 0.0
    if len(eligible) > samples:
        rng = np.random.default_rng(seed)
        eligible = np.sort(rng.choice(eligible, size=samples, replace=False))
    indptr, indices = g.adj.indptr, g.adj.indices
    total = 0.0
    for v in eligible:
        nb = indices[indptr[v] : indptr[v + 1]]
        closed = 0
        for u in nb:
            closed += int(np.isin(indices[indptr[u] : indptr[u + 1]], nb).sum())
        dv = len(nb)
        total += closed / (dv * (dv - 1))
    return float(total / len(eligible))
