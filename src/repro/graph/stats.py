"""Graph statistics: degrees, wedges, clustering, linear-algebra triangle
count.

:func:`triangle_count_linalg` implements the paper's Equation 4 literally
(``C[U] = U @ L`` masked by the non-zeros of ``U``) with scipy sparse
matrices.  It is the fast, independent reference against which every
distributed algorithm in this repository is validated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import Graph


def triangle_count_linalg(g: Graph) -> int:
    """Exact global triangle count via sparse matrix algebra.

    With ``U`` the strict upper triangle of the adjacency matrix,
    ``(U @ U)[i, j]`` counts the wedges ``i < k < j`` and masking by
    ``U``'s pattern keeps only closed ones, counting each triangle exactly
    once (at its ordered (i, j) edge) — Equations 1-4 of the paper.
    """
    U = g.upper_csr().to_scipy()
    if U.nnz == 0:
        return 0
    return int((U @ U).multiply(U).sum())


def triangles_per_vertex(g: Graph) -> np.ndarray:
    """Number of triangles incident on each vertex.

    ``diag(A^3) / 2`` computed sparsely; sums to ``3 * total_triangles``.
    """
    A = g.adj.to_scipy()
    if A.nnz == 0:
        return np.zeros(g.n, dtype=np.int64)
    A2 = A @ A
    # diag(A @ A2) without materializing the product: row_i(A) . col_i(A2).
    d = np.asarray(A.multiply(A2.T).sum(axis=1)).ravel()
    return (d // 2).astype(np.int64)


def wedge_count(g: Graph) -> int:
    """Number of wedges (paths of length 2): sum over v of C(d(v), 2)."""
    d = g.degrees.astype(np.int64)
    return int((d * (d - 1) // 2).sum())


def clustering_coefficients(g: Graph) -> np.ndarray:
    """Local clustering coefficient per vertex (0 where degree < 2)."""
    tri = triangles_per_vertex(g)
    d = g.degrees.astype(np.float64)
    wedges = d * (d - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        cc = np.where(wedges > 0, tri / wedges, 0.0)
    return cc


def global_clustering(g: Graph) -> float:
    """Transitivity ratio: 3 * triangles / wedges (0 for wedge-free)."""
    w = wedge_count(g)
    if w == 0:
        return 0.0
    return 3.0 * triangle_count_linalg(g) / w


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution summary for dataset tables."""

    n: int
    m: int
    d_avg: float
    d_max: int
    d_min: int

    def __str__(self) -> str:
        return (
            f"n={self.n:,} m={self.m:,} d_avg={self.d_avg:.2f} "
            f"d_max={self.d_max} d_min={self.d_min}"
        )


def degree_summary(g: Graph) -> DegreeSummary:
    """Summarize the degree distribution of ``g``."""
    d = g.degrees
    if g.n == 0:
        return DegreeSummary(0, 0, 0.0, 0, 0)
    return DegreeSummary(
        n=g.n,
        m=g.num_edges,
        d_avg=float(d.mean()),
        d_max=int(d.max()),
        d_min=int(d.min()),
    )
