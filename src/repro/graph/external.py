"""Out-of-core (external-memory) preprocessing for graphs ≫ RAM.

Every other path in the repo materializes the full edge list — and all
per-rank U/L/task blocks — in one process, so the largest countable
graph is bounded by resident memory.  This module rebuilds Section 5.3's
preprocessing pipeline as a sequence of **streaming external-memory
passes** whose peak memory is bounded by a ``chunk_bytes`` budget, never
by the graph size:

1. **ingest** — the raw edge list is read in fixed-size chunks,
   canonicalized (self loops dropped, endpoints ordered ``u < v``),
   encoded as single int64 keys ``u * n + v`` and spilled to disk as
   sorted runs (:class:`SpillSorter`);
2. **merge** — the runs are pairwise stream-merged (with dedup) into one
   sorted key file: the canonical ``u < v`` edge array, byte-for-byte
   the order :meth:`~repro.graph.csr.Graph.edge_array` produces, which
   is what lets the streaming sha256 reproduce
   :func:`~repro.graph.store.graph_digest` exactly;
3. **degrees** — a directed (both-endpoint) re-sort makes per-vertex
   run lengths the degrees; the dense degree table and its histogram
   are written/accumulated sequentially;
4. **reorder** — the distributed counting sort collapses to a closed
   form: ties order by (owning rank, local position), which in the
   lambda1 layout is simply ascending lambda1 label, so streaming the
   degree table through :func:`~repro.core.preprocess.
   counting_sort_placement` with a running ``seen`` histogram yields
   the exact same final labels the in-memory pipeline assigns;
5. **translate + route** — two merge-join passes attach the final
   labels of both endpoints to every directed edge occurrence, classify
   it upper/lower, and append it directly into per-grid-rank spill
   files (the streaming 2D cyclic redistribution);
6. **assemble** — each rank's pairs are read back and fed through the
   same pure :func:`~repro.core.preprocess.assemble_blocks` the engine
   uses (its CSR builds fully sort their input, so arrival order is
   irrelevant), then persisted via the ordinary
   :class:`~repro.graph.store.RunCache` writer — the resulting store
   entry is **bit-identical** to one written by an in-memory cold run
   and serves warm (mmap-backed) counting runs interchangeably.

Honest memory bound: ``O(chunk_bytes + largest per-rank block +
dmax)`` — the per-rank term is the paper's ``O(m/p)`` working set (the
engine holds it anyway), and the histogram term matches the in-memory
``np.bincount(minlength=dmax + 1)``.

:func:`count_triangles_oocore` is the driver: ensure the store entry
exists (running the external pipeline only on a store miss), then count
via :func:`~repro.core.tc2d.count_triangles_2d` against the warm,
mmap-served cache.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.graph.csr import INDEX_DTYPE

#: Default spill-chunk budget (bytes) when the caller sets none.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024

#: Floor for the budget: below this the chunking overhead dominates and
#: block sizes degenerate to a handful of rows.
MIN_CHUNK_BYTES = 1 << 16

#: Magic prefix of the binary edge-list format (fixed 8 bytes), followed
#: by two int64 fields ``n`` and ``m`` and then ``m`` int64 pairs.
BINARY_EDGE_MAGIC = b"REDGE01\n"
_BINARY_HEADER_BYTES = len(BINARY_EDGE_MAGIC) + 16

#: Largest vertex count for which the ``u * n + v`` key encoding fits
#: int64 (``n**2 < 2**63``).
MAX_ENCODABLE_N = 3_037_000_499


def _budget_rows(chunk_bytes: int, width: int) -> int:
    """Rows per buffered block for one stream of ``width``-column int64
    rows: sized so the transient copies a sort/merge step makes (input
    blocks, the concatenation, the sorted copy — about eight block
    volumes across two streams) stay within ``chunk_bytes``."""
    return max(1024, int(chunk_bytes) // (64 * width))


# ---------------------------------------------------------------------------
# binary edge-list format (chunk-writable, used by oocbench and tests)
# ---------------------------------------------------------------------------


class BinaryEdgeWriter:
    """Stream edges into the binary format without holding them all.

    Writes the header with a placeholder edge count, appends int64 pair
    chunks, and patches the count on :meth:`close` — so a benchmark can
    generate a graph far larger than RAM in bounded memory.
    """

    def __init__(self, path: str | Path, n: int):
        self.path = Path(path)
        self.n = int(n)
        self.m = 0
        self._fh = open(self.path, "wb")
        self._fh.write(BINARY_EDGE_MAGIC)
        np.array([self.n, 0], dtype=np.int64).tofile(self._fh)

    def write(self, edges: np.ndarray) -> None:
        """Append one ``(k, 2)`` int64 chunk of edges."""
        arr = np.ascontiguousarray(edges, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be a (k, 2) array")
        arr.tofile(self._fh)
        self.m += len(arr)

    def close(self) -> None:
        """Patch the edge count into the header and close the file."""
        if self._fh is None:
            return
        self._fh.seek(len(BINARY_EDGE_MAGIC) + 8)
        np.array([self.m], dtype=np.int64).tofile(self._fh)
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "BinaryEdgeWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_binary_edges(path: str | Path, n: int, edges: np.ndarray) -> None:
    """Write a complete edge array in the binary format (small inputs)."""
    with BinaryEdgeWriter(path, n) as w:
        w.write(np.asarray(edges, dtype=np.int64).reshape(-1, 2))


def read_binary_header(path: str | Path) -> tuple[int, int] | None:
    """``(n, m)`` if ``path`` is a binary edge file, else ``None``."""
    with open(path, "rb") as fh:
        if fh.read(len(BINARY_EDGE_MAGIC)) != BINARY_EDGE_MAGIC:
            return None
        header = np.fromfile(fh, dtype=np.int64, count=2)
    if len(header) != 2:
        raise ValueError(f"{path}: truncated binary edge header")
    return int(header[0]), int(header[1])


def _iter_binary_pairs(
    path: Path, chunk_rows: int
) -> Iterator[np.ndarray]:
    with open(path, "rb") as fh:
        fh.seek(_BINARY_HEADER_BYTES)
        while True:
            arr = np.fromfile(fh, dtype=np.int64, count=chunk_rows * 2)
            if arr.size == 0:
                return
            if arr.size % 2:
                raise ValueError(f"{path}: truncated edge pair")
            yield arr.reshape(-1, 2)


def _sniff_text_header_n(path: Path) -> int | None:
    """The ``n=`` value of a leading ``# repro edge list`` comment."""
    with open(path) as fh:
        for line in fh:
            s = line.strip()
            if not s:
                continue
            if not s.startswith(("#", "%")):
                return None
            if "n=" in s:
                try:
                    return int(s.split("n=")[1].split()[0])
                except (ValueError, IndexError):
                    continue
    return None


def _iter_text_pairs(path: Path, chunk_rows: int) -> Iterator[np.ndarray]:
    rows: list[tuple[int, int]] = []
    with open(path) as fh:
        for line in fh:
            s = line.strip()
            if not s or s[0] in "#%":
                continue
            parts = s.split()
            rows.append((int(parts[0]), int(parts[1])))
            if len(rows) >= chunk_rows:
                yield np.array(rows, dtype=INDEX_DTYPE)
                rows = []
    if rows:
        yield np.array(rows, dtype=INDEX_DTYPE)


def _iter_input_pairs(path: Path, chunk_rows: int) -> Iterator[np.ndarray]:
    """Chunked reader over either input flavor (binary or text)."""
    if read_binary_header(path) is not None:
        yield from _iter_binary_pairs(path, chunk_rows)
    else:
        yield from _iter_text_pairs(path, chunk_rows)


def input_vertex_count(path: str | Path, chunk_bytes: int) -> int:
    """``n`` for an edge-list file: the binary/text header when present,
    else ``max id + 1`` from one extra streaming pass."""
    path = Path(path)
    header = read_binary_header(path)
    if header is not None:
        return header[0]
    n = _sniff_text_header_n(path)
    if n is not None:
        return n
    top = -1
    for pairs in _iter_input_pairs(path, _budget_rows(chunk_bytes, 2)):
        if pairs.size:
            top = max(top, int(pairs.max()))
    return top + 1


# ---------------------------------------------------------------------------
# external sorting: spill runs + streaming pairwise merge
# ---------------------------------------------------------------------------


def _iter_i8_blocks(
    path: Path, chunk_rows: int, width: int = 1
) -> Iterator[np.ndarray]:
    """Sequential blocks of a flat int64 file, shaped ``(k,)`` or
    ``(k, width)``."""
    with open(path, "rb") as fh:
        while True:
            arr = np.fromfile(fh, dtype=INDEX_DTYPE, count=chunk_rows * width)
            if arr.size == 0:
                return
            yield arr if width == 1 else arr.reshape(-1, width)


class _BlockReader:
    """Pull-based block iterator with a ``next()`` returning ``None`` at
    end of stream (what the merge loop wants)."""

    def __init__(self, path: Path, chunk_rows: int, width: int):
        self._it = _iter_i8_blocks(path, chunk_rows, width)

    def next(self) -> np.ndarray | None:
        return next(self._it, None)


def _sort_rows(arr: np.ndarray) -> np.ndarray:
    """Sort rows by their first column (stable), or a flat key array."""
    if arr.ndim == 1:
        out = arr.copy()
        out.sort()
        return out
    return arr[np.argsort(arr[:, 0], kind="stable")]


def _dedup_sorted(arr: np.ndarray, last: int | None) -> tuple[np.ndarray, int | None]:
    """Drop repeats from a sorted key block, deduping across block
    boundaries via ``last`` (the final key already emitted)."""
    if arr.size == 0:
        return arr, last
    mask = np.empty(len(arr), dtype=bool)
    mask[0] = last is None or int(arr[0]) != last
    mask[1:] = arr[1:] != arr[:-1]
    return arr[mask], int(arr[-1])


def _merge_pair(
    a_path: Path,
    b_path: Path,
    out_path: Path,
    chunk_rows: int,
    width: int,
    dedup: bool,
) -> None:
    """Stream-merge two sorted run files into one (bounded memory).

    Each iteration merges everything ``<=`` the smaller of the two
    blocks' last keys — that block is fully consumed, so the loop makes
    progress and emitted output never interleaves with later input.
    """
    ra = _BlockReader(a_path, chunk_rows, width)
    rb = _BlockReader(b_path, chunk_rows, width)
    a, b = ra.next(), rb.next()
    last: int | None = None
    with open(out_path, "wb") as fh:

        def emit(block: np.ndarray) -> None:
            nonlocal last
            if dedup:
                block, last = _dedup_sorted(block, last)
            block.tofile(fh)

        while a is not None and b is not None:
            ka = a if width == 1 else a[:, 0]
            kb = b if width == 1 else b[:, 0]
            bound = min(int(ka[-1]), int(kb[-1]))
            ca = int(np.searchsorted(ka, bound, side="right"))
            cb = int(np.searchsorted(kb, bound, side="right"))
            emit(_sort_rows(np.concatenate([a[:ca], b[:cb]])))
            a = a[ca:] if ca < len(a) else ra.next()
            b = b[cb:] if cb < len(b) else rb.next()
        for rest, reader in ((a, ra), (b, rb)):
            while rest is not None:
                emit(rest)
                rest = reader.next()


class SpillSorter:
    """External sort of int64 rows: buffer, spill sorted runs, merge.

    ``width == 1`` sorts flat keys (optionally deduplicating, applied
    per run and again at every merge so duplicates never survive a
    round); ``width >= 2`` sorts rows by their first column with a
    stable tie order.  Peak memory is a few buffered blocks — see
    :func:`_budget_rows`.
    """

    def __init__(
        self,
        tmpdir: str | Path,
        chunk_bytes: int,
        width: int = 1,
        dedup: bool = False,
        tag: str = "run",
    ):
        self.tmpdir = Path(tmpdir)
        self.width = width
        self.dedup = dedup
        self.tag = tag
        self.chunk_rows = _budget_rows(chunk_bytes, width)
        self.spilled_bytes = 0
        self._runs: list[Path] = []
        self._buf: list[np.ndarray] = []
        self._buf_rows = 0

    def add(self, rows: np.ndarray) -> None:
        """Append rows (``(k,)`` keys or ``(k, width)`` arrays)."""
        if rows.size == 0:
            return
        self._buf.append(rows)
        self._buf_rows += len(rows)
        while self._buf_rows >= self.chunk_rows:
            self._spill()

    def _spill(self) -> None:
        if not self._buf_rows:
            return
        arr = np.concatenate(self._buf)
        self._buf, self._buf_rows = [], 0
        take, rest = arr[: self.chunk_rows], arr[self.chunk_rows :]
        if rest.size:
            self._buf, self._buf_rows = [rest], len(rest)
        take = _sort_rows(take)
        if self.dedup and self.width == 1:
            take, _ = _dedup_sorted(take, None)
        path = self.tmpdir / f"{self.tag}{len(self._runs):05d}.i8"
        take.tofile(path)
        self.spilled_bytes += take.nbytes
        self._runs.append(path)

    def finish(self, out_path: str | Path) -> int:
        """Merge all runs into ``out_path``; returns the row count."""
        while self._buf_rows:
            self._spill()
        out_path = Path(out_path)
        runs = self._runs
        self._runs = []
        if not runs:
            out_path.write_bytes(b"")
            return 0
        gen = 0
        while len(runs) > 1:
            merged: list[Path] = []
            for i in range(0, len(runs) - 1, 2):
                dst = self.tmpdir / f"{self.tag}m{gen:03d}_{i // 2:05d}.i8"
                _merge_pair(
                    runs[i], runs[i + 1], dst, self.chunk_rows, self.width,
                    self.dedup,
                )
                self.spilled_bytes += dst.stat().st_size
                runs[i].unlink()
                runs[i + 1].unlink()
                merged.append(dst)
            if len(runs) % 2:
                merged.append(runs[-1])
            runs = merged
            gen += 1
        os.replace(runs[0], out_path)
        return out_path.stat().st_size // (8 * self.width)


class _TableJoin:
    """Merge-join lookups against an on-disk int64 table.

    ``lookup(ids)`` requires ``ids`` sorted ascending and each call's
    ids no smaller than the previous call's — exactly what a pass over
    a first-column-sorted edge stream provides.  The table is read in
    forward windows of at most ``chunk_rows`` elements, so lookups are
    sequential I/O with bounded memory regardless of table size.
    """

    def __init__(self, path: Path, chunk_bytes: int):
        self._fh = open(path, "rb")
        self.chunk_rows = _budget_rows(chunk_bytes, 1)
        self._start = 0
        self._buf = np.empty(0, dtype=INDEX_DTYPE)

    def lookup(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty(len(ids), dtype=INDEX_DTYPE)
        i = 0
        while i < len(ids):
            lo = int(ids[i])
            if lo >= self._start + len(self._buf):
                self._fh.seek(8 * lo)
                self._buf = np.fromfile(
                    self._fh, dtype=INDEX_DTYPE, count=self.chunk_rows
                )
                self._start = lo
                if self._buf.size == 0:
                    raise IndexError(f"table lookup past end (id {lo})")
            end = self._start + len(self._buf)
            j = int(np.searchsorted(ids, end, side="left"))
            out[i:j] = self._buf[ids[i:j] - self._start]
            i = j
        return out

    def close(self) -> None:
        self._fh.close()


# ---------------------------------------------------------------------------
# pipeline stages
# ---------------------------------------------------------------------------


def _emit_zeros(fh, count: int, cap: int) -> None:
    if count <= 0:
        return
    zeros = np.zeros(min(count, cap), dtype=INDEX_DTYPE)
    while count > 0:
        k = min(count, cap)
        zeros[:k].tofile(fh)
        count -= k


class _DenseCountWriter:
    """Turn sorted (vertex, multiplicity) run-lengths into a dense int64
    per-vertex table, zero-filling gaps, in bounded memory.

    The last vertex of each input chunk may continue into the next, so
    its count is carried rather than finalized.
    """

    def __init__(self, fh, n: int, cap: int):
        self._fh = fh
        self.n = n
        self.cap = cap
        self._next = 0  # first vertex not yet written
        self._carry: tuple[int, int] | None = None  # (vertex, count so far)

    def _write_segment(self, uniq: np.ndarray, counts: np.ndarray) -> None:
        i = 0
        while i < len(uniq):
            lo = int(uniq[i])
            _emit_zeros(self._fh, lo - self._next, self.cap)
            j = int(np.searchsorted(uniq, lo + self.cap, side="left"))
            hi = int(uniq[j - 1])
            dense = np.zeros(hi - lo + 1, dtype=INDEX_DTYPE)
            dense[uniq[i:j] - lo] = counts[i:j]
            dense.tofile(self._fh)
            self._next = hi + 1
            i = j

    def feed(self, vertices: np.ndarray) -> None:
        """Consume one sorted chunk of vertex occurrences."""
        if vertices.size == 0:
            return
        uniq, counts = np.unique(vertices, return_counts=True)
        if self._carry is not None:
            v, c = self._carry
            if int(uniq[0]) == v:
                counts[0] += c
            else:
                self._write_segment(
                    np.array([v], dtype=INDEX_DTYPE),
                    np.array([c], dtype=INDEX_DTYPE),
                )
            self._carry = None
        # Hold back the final vertex: the next chunk may continue it.
        self._carry = (int(uniq[-1]), int(counts[-1]))
        if len(uniq) > 1:
            self._write_segment(uniq[:-1], counts[:-1])

    def close(self) -> None:
        """Flush the carried vertex and zero-fill through ``n``."""
        if self._carry is not None:
            v, c = self._carry
            self._write_segment(
                np.array([v], dtype=INDEX_DTYPE),
                np.array([c], dtype=INDEX_DTYPE),
            )
            self._carry = None
        _emit_zeros(self._fh, self.n - self._next, self.cap)
        self._next = self.n


class _RankPairFiles:
    """Buffered appenders for the per-rank U/L pair spill files (the
    streaming 2D cyclic redistribution's destination)."""

    def __init__(self, tmpdir: Path, p: int, chunk_bytes: int):
        self.p = p
        self._paths = {
            (r, kind): tmpdir / f"rank{r:03d}.{kind}.pairs"
            for r in range(p)
            for kind in ("u", "l")
        }
        self._fhs = {key: open(path, "wb") for key, path in self._paths.items()}
        # Small per-rank staging buffers; flushed by size, not count.
        self._bufs: dict[tuple[int, str], list[np.ndarray]] = {
            key: [] for key in self._paths
        }
        self._buf_rows = {key: 0 for key in self._paths}
        self._flush_rows = max(
            256, _budget_rows(chunk_bytes, 2) // max(1, 2 * p)
        )

    def append(self, rank_ids: np.ndarray, upper: np.ndarray, pairs: np.ndarray) -> None:
        """Route one classified chunk: ``pairs[k]`` goes to rank
        ``rank_ids[k]``'s U file when ``upper[k]`` else its L file."""
        for kind, mask in (("u", upper), ("l", ~upper)):
            if not mask.any():
                continue
            dests = rank_ids[mask]
            sel = pairs[mask]
            order = np.argsort(dests, kind="stable")
            dests_sorted = dests[order]
            sel = sel[order]
            bounds = np.searchsorted(
                dests_sorted, np.arange(self.p + 1, dtype=INDEX_DTYPE)
            )
            for r in range(self.p):
                lo, hi = int(bounds[r]), int(bounds[r + 1])
                if lo == hi:
                    continue
                key = (r, kind)
                self._bufs[key].append(sel[lo:hi])
                self._buf_rows[key] += hi - lo
                if self._buf_rows[key] >= self._flush_rows:
                    self._flush(key)

    def _flush(self, key: tuple[int, str]) -> None:
        if self._buf_rows[key]:
            np.concatenate(self._bufs[key]).tofile(self._fhs[key])
            self._bufs[key] = []
            self._buf_rows[key] = 0

    def finish(self) -> dict[tuple[int, str], Path]:
        """Flush and close everything; returns the path map."""
        for key in self._paths:
            self._flush(key)
            self._fhs[key].close()
        return dict(self._paths)

    def read_pairs(self, rank: int, kind: str) -> np.ndarray:
        """One rank's received pairs as a ``(k, 2)`` array (the paper's
        ``O(m/p)`` per-rank working set)."""
        arr = np.fromfile(self._paths[(rank, kind)], dtype=INDEX_DTYPE)
        return arr.reshape(-1, 2)


class _StageClock:
    """Tiny per-stage wall/RSS ledger for the pipeline report."""

    def __init__(self) -> None:
        from repro.instrument.telemetry import rss_bytes

        self._rss = rss_bytes
        self.stages: dict[str, dict[str, float]] = {}
        self._t0 = time.perf_counter()

    def done(self, name: str, **extra: Any) -> None:
        now = time.perf_counter()
        self.stages[name] = {
            "wall_s": now - self._t0,
            "rss_bytes": int(self._rss()),
            **extra,
        }
        self._t0 = now


def external_preprocess(
    path: str | Path,
    store: Any,
    p: int,
    cfg: Any = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    source: str = "",
    workdir: str | Path | None = None,
    stop_after: str | None = None,
) -> dict[str, Any]:
    """Materialize the store entry for ``path`` × grid × config without
    ever holding the graph in memory.

    Returns an info dict: ``digest``, ``graph_sha``, ``n``, ``m``,
    ``reused`` (the entry already existed — nothing was recomputed),
    ``chunk_bytes``, ``spilled_bytes`` and per-``stages`` wall/RSS.
    The written entry is bit-identical to an in-memory cold run's (same
    digest, same rank-file bytes), so it serves both pipelines' warm
    runs interchangeably.

    ``stop_after="translate"`` is a measurement probe: run every
    *streaming* stage (ingest, digest, degrees, reorder, translate +
    route) but skip the per-rank assembly and write **no** store entry.
    The streaming stages are the part whose peak memory is bounded by
    ``chunk_bytes`` alone; assembly additionally holds one rank's
    ``O(m/p)`` working set (the same per-node memory a real distributed
    rank needs), so the out-of-core benchmark gates the two separately.
    """
    from repro.core.config import TC2DConfig
    from repro.core.grid import ProcessorGrid
    from repro.core.preprocess import (
        assemble_blocks,
        chunk_bounds,
        counting_sort_placement,
        cyclic_bounds,
    )
    from repro.graph.store import (
        RunCache,
        StoreVersionError,
        artifact_digest,
        resolve_store,
    )

    path = Path(path)
    cfg = cfg if cfg is not None else TC2DConfig()
    store = resolve_store(store)
    if store is None:
        raise ValueError(
            "external_preprocess requires a store (the blocks live there); "
            "pass a GraphStore, a directory, or True for the default root"
        )
    chunk_bytes = max(MIN_CHUNK_BYTES, int(chunk_bytes))
    grid = ProcessorGrid.for_ranks(p)
    q = grid.q
    clock = _StageClock()

    n = input_vertex_count(path, chunk_bytes)
    if n > MAX_ENCODABLE_N:
        raise ValueError(
            f"{n} vertices exceeds the int64 pair-key encoding limit "
            f"({MAX_ENCODABLE_N})"
        )
    tmp_root = Path(tempfile.mkdtemp(prefix="repro-ooc-", dir=workdir))
    spilled = 0
    try:
        # -- 1+2: ingest + merge -> canonical sorted unique u < v keys --
        sorter = SpillSorter(tmp_root, chunk_bytes, width=1, dedup=True, tag="e")
        for pairs in _iter_input_pairs(path, _budget_rows(chunk_bytes, 2)):
            lo = pairs.min(axis=1)
            hi = pairs.max(axis=1)
            keep = lo != hi  # drop self loops
            sorter.add(lo[keep] * n + hi[keep])
        edges_path = tmp_root / "edges.i8"
        m = sorter.finish(edges_path)
        spilled += sorter.spilled_bytes
        clock.done("ingest_merge", edges=m)

        # -- digest: the sorted unique key stream *is* edge_array order --
        h = hashlib.sha256()
        h.update(b"repro-graph-v1")
        h.update(np.array([n, m], dtype=np.int64).tobytes())
        for keys in _iter_i8_blocks(edges_path, _budget_rows(chunk_bytes, 2)):
            h.update(
                np.stack([keys // n, keys % n], axis=1).tobytes()
            )
        graph_sha = h.hexdigest()
        digest = artifact_digest(graph_sha, p, q, cfg)
        clock.done("digest")

        info: dict[str, Any] = {
            "digest": digest,
            "graph_sha": graph_sha,
            "n": n,
            "m": m,
            "p": p,
            "q": q,
            "chunk_bytes": chunk_bytes,
        }

        def _finish(reused: bool) -> dict[str, Any]:
            info["reused"] = reused
            info["spilled_bytes"] = spilled
            info["stages"] = clock.stages
            return info

        try:
            store.read_manifest(digest)
            return _finish(True)
        except (FileNotFoundError, StoreVersionError):
            pass
        lock = store.writer_lock(digest)
        lock.acquire(blocking=True)
        try:
            try:
                store.read_manifest(digest)
                lock.release()
                return _finish(True)
            except FileNotFoundError:
                if store.entry_dir(digest).is_dir():
                    store.invalidate(digest)  # died before finalize
            except StoreVersionError:
                store.invalidate(digest)
        except BaseException:
            lock.release()
            raise
        cache = RunCache(
            store=store,
            digest=digest,
            graph_sha=graph_sha,
            graph_stats=(n, m),
            p=p,
            q=q,
            cfg=cfg,
            manifest=None,
            source=source or str(path),
            writable=True,
            lock=lock,
        )
        try:
            _materialize_entry(
                cache, edges_path, n, m, p, q, cfg, chunk_bytes, tmp_root,
                clock, grid, chunk_bounds, cyclic_bounds,
                counting_sort_placement, assemble_blocks,
                stop_after=stop_after,
            )
            spilled += int(clock.stages.get("translate", {}).get("spilled", 0))
            if stop_after is not None:
                # Probe mode: leave no partial entry behind.
                store.invalidate(digest)
                info["partial"] = stop_after
            elif not cache.finalize(None):
                raise RuntimeError(
                    f"external preprocessing failed to finalize {digest[:12]}"
                )
        finally:
            cache.close()
        return _finish(False)
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)


def _materialize_entry(
    cache: Any,
    edges_path: Path,
    n: int,
    m: int,
    p: int,
    q: int,
    cfg: Any,
    chunk_bytes: int,
    tmp_root: Path,
    clock: _StageClock,
    grid: Any,
    chunk_bounds: Any,
    cyclic_bounds: Any,
    counting_sort_placement: Any,
    assemble_blocks: Any,
    stop_after: str | None = None,
) -> None:
    """Stages 3-6: degrees, reorder, translate+route, assemble."""
    key_rows = _budget_rows(chunk_bytes, 2)
    if cfg.initial_cyclic:
        offsets = cyclic_bounds(n, p)
        offs_by_res = offsets[:-1]  # lambda1(v) = offs[v % p] + v // p

        def lam(v: np.ndarray) -> np.ndarray:
            return offs_by_res[v % p] + v // p

    else:
        offsets = chunk_bounds(n, p)

        def lam(v: np.ndarray) -> np.ndarray:
            return v

    # -- 3a: directed occurrences in lambda1 space, sorted by source ----
    sorter = SpillSorter(tmp_root, chunk_bytes, width=1, dedup=False, tag="d")
    for keys in _iter_i8_blocks(edges_path, key_rows):
        a = lam(keys // n)
        b = lam(keys % n)
        sorter.add(a * n + b)
        sorter.add(b * n + a)
    directed_path = tmp_root / "directed.i8"
    directed = sorter.finish(directed_path)
    if directed != 2 * m:
        raise AssertionError(
            f"directed stream has {directed} entries, expected {2 * m}"
        )
    clock.done("directed", spilled=sorter.spilled_bytes)

    # -- 3b: dense degree table (by lambda1 id) + histogram -------------
    deg_path = tmp_root / "deg.i8"
    hist = np.zeros(1, dtype=INDEX_DTYPE)
    with open(deg_path, "wb") as fh:
        writer = _DenseCountWriter(fh, n, cap=_budget_rows(chunk_bytes, 1))
        for keys in _iter_i8_blocks(directed_path, key_rows):
            writer.feed(keys // n)
        writer.close()
    for degs in _iter_i8_blocks(deg_path, key_rows):
        c = np.bincount(degs)
        if len(c) > len(hist):
            hist = np.concatenate(
                [hist, np.zeros(len(c) - len(hist), dtype=INDEX_DTYPE)]
            )
        hist[: len(c)] += c.astype(INDEX_DTYPE)
    dmax = len(hist) - 1
    clock.done("degrees", dmax=dmax)

    # -- 4: final labels via the streamed counting sort ------------------
    final_path = tmp_root / "final.i8"
    if cfg.degree_reorder:
        global_start = np.zeros(dmax + 1, dtype=INDEX_DTYPE)
        np.cumsum(hist[:-1], out=global_start[1:])
        seen = np.zeros(dmax + 1, dtype=INDEX_DTYPE)
        with open(final_path, "wb") as fh:
            for degs in _iter_i8_blocks(deg_path, key_rows):
                # Identical math to the in-memory distributed counting
                # sort: ties order by ascending lambda1 label, and
                # ``seen`` plays the role of the exscan'd lower-rank
                # counts for every chunk processed so far.
                counting_sort_placement(degs, global_start, seen).tofile(fh)
                seen += np.bincount(degs, minlength=dmax + 1).astype(
                    INDEX_DTYPE
                )
        clock.done("reorder")

    # -- 5: translate endpoints + classify + route to rank files --------
    pair_files = _RankPairFiles(tmp_root, p, chunk_bytes)
    spilled = 0
    if cfg.degree_reorder:
        # Pass A: attach the source's final label, re-key by target.
        join = _TableJoin(final_path, chunk_bytes)
        sorter = SpillSorter(
            tmp_root, chunk_bytes, width=1, dedup=False, tag="t"
        )
        for keys in _iter_i8_blocks(directed_path, key_rows):
            a = keys // n
            b = keys % n
            fa = join.lookup(a)
            sorter.add(b * n + fa)
        join.close()
        bykey2 = tmp_root / "directed2.i8"
        sorter.finish(bykey2)
        spilled += sorter.spilled_bytes
        # Pass B: attach the target's final label; the occurrence
        # (row=a, col=b) becomes the translated pair (fa, fb).
        join = _TableJoin(final_path, chunk_bytes)
        for keys in _iter_i8_blocks(bykey2, key_rows):
            b = keys // n
            fa = keys % n
            fb = join.lookup(b)
            upper = fb > fa
            pairs = np.stack([fa, fb], axis=1)
            pair_files.append((fa % q) * q + fb % q, upper, pairs)
        join.close()
    else:
        # Labels stay lambda1; classification compares (degree, label).
        join = _TableJoin(deg_path, chunk_bytes)
        sorter = SpillSorter(
            tmp_root, chunk_bytes, width=3, dedup=False, tag="t"
        )
        for keys in _iter_i8_blocks(directed_path, key_rows):
            a = keys // n
            b = keys % n
            da = join.lookup(a)
            sorter.add(np.stack([b, a, da], axis=1))
        join.close()
        byb = tmp_root / "directed2.i8"
        sorter.finish(byb)
        spilled += sorter.spilled_bytes
        join = _TableJoin(deg_path, chunk_bytes)
        for rows in _iter_i8_blocks(byb, _budget_rows(chunk_bytes, 3), width=3):
            b, a, da = rows[:, 0], rows[:, 1], rows[:, 2]
            db = join.lookup(b)
            upper = (db > da) | ((db == da) & (b > a))
            pairs = np.stack([a, b], axis=1)
            pair_files.append((a % q) * q + b % q, upper, pairs)
        join.close()
    pair_files.finish()
    clock.done("translate", spilled=spilled)
    if stop_after == "translate":
        return

    # -- 6: per-rank assembly through the engine's own block builder ----
    n_inner = (n + q - 1) // q
    for rank in range(p):
        x, y = grid.coords(rank)
        u_recv = pair_files.read_pairs(rank, "u")
        l_recv = pair_files.read_pairs(rank, "l")
        u_block, l_block, task_block = assemble_blocks(
            u_recv,
            l_recv,
            x,
            y,
            q,
            grid.local_count(x, n),
            grid.local_count(y, n),
            n_inner,
            cfg.enumeration,
        )
        lo, hi = int(offsets[rank]), int(offsets[rank + 1])
        if cfg.degree_reorder:
            with open(final_path, "rb") as fh:
                fh.seek(8 * lo)
                labels = np.fromfile(fh, dtype=INDEX_DTYPE, count=hi - lo)
        else:
            labels = np.arange(lo, hi, dtype=INDEX_DTYPE)
        cache.save_rank(rank, u_block, l_block, task_block, lo, labels)
    clock.done("assemble")


def count_triangles_oocore(
    path: str | Path,
    p: int,
    cfg: Any = None,
    store: Any = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    model: Any = None,
    trace: bool = False,
    dataset: str = "",
    keep_run: bool = False,
    superstep: Any = None,
    telemetry: Any = None,
    workdir: str | Path | None = None,
) -> Any:
    """Count triangles of an edge-list file without loading the graph.

    Ensures the preprocessed store entry exists (running
    :func:`external_preprocess` only on a miss), then opens a warm
    mmap-served :class:`~repro.graph.store.RunCache` and runs the
    ordinary 2D counting driver against it — the graph itself is never
    materialized in this process.  ``store=None`` uses a temporary
    store deleted afterwards (counting then costs one full external
    preprocessing every call; pass a real store to amortize).

    ``result.extras["out_of_core"]`` records the pipeline info
    (digest, n/m, per-stage wall + RSS, spill volume).
    """
    from repro.core.config import TC2DConfig
    from repro.core.tc2d import count_triangles_2d
    from repro.graph.store import RunCache, resolve_store
    from repro.simmpi.costmodel import MachineModel

    cfg = cfg if cfg is not None else TC2DConfig()
    tmp_store_dir: str | None = None
    resolved = resolve_store(store) if store is not None else None
    if resolved is None:
        from repro.graph.store import GraphStore

        tmp_store_dir = tempfile.mkdtemp(prefix="repro-ooc-store-")
        resolved = GraphStore(tmp_store_dir)
    try:
        info = external_preprocess(
            path,
            resolved,
            p,
            cfg,
            chunk_bytes=chunk_bytes,
            source=dataset or str(path),
            workdir=workdir,
        )
        manifest = resolved.read_manifest(info["digest"])
        model_fp = (model if model is not None else MachineModel()).fingerprint()
        run_cache = RunCache(
            store=resolved,
            digest=info["digest"],
            graph_sha=info["graph_sha"],
            graph_stats=(info["n"], info["m"]),
            p=p,
            q=info["q"],
            cfg=cfg,
            manifest=manifest,
            source=dataset or str(path),
            model_fp=model_fp,
            writable=False,
        )
        result = count_triangles_2d(
            None,
            p,
            cfg,
            model=model,
            trace=trace,
            dataset=dataset or Path(path).name,
            keep_run=keep_run,
            superstep=superstep,
            cache=run_cache,
            telemetry=telemetry,
        )
        result.extras["out_of_core"] = info
        return result
    finally:
        if tmp_store_dir is not None:
            shutil.rmtree(tmp_store_dir, ignore_errors=True)
