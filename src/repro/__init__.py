"""repro — reproduction of "A 2D Parallel Triangle Counting Algorithm for
Distributed-Memory Architectures" (Tom & Karypis, ICPP 2019).

Quickstart::

    from repro import rmat_graph, count_triangles_2d

    g = rmat_graph(scale=12, seed=0)
    result = count_triangles_2d(g, p=16)
    print(result.count, result.tct_time)

Packages:

* :mod:`repro.core` — the 2D cyclic / Cannon-pattern algorithm and its
  SUMMA extension;
* :mod:`repro.simmpi` — the deterministic simulated-MPI runtime the
  distributed algorithms execute on;
* :mod:`repro.graph` — CSR structures, generators, IO, datasets;
* :mod:`repro.hashing` — the map-based intersection hash table;
* :mod:`repro.baselines` — serial references and the 1D/wedge competitors;
* :mod:`repro.bench` — harness regenerating the paper's tables/figures;
* :mod:`repro.instrument` — observability: per-phase metrics, comm
  matrix, wait-for analysis, Perfetto trace export, counters, reports.
"""

from repro.core import (
    TC2DConfig,
    TriangleCountResult,
    count_triangles_2d,
    count_triangles_summa,
)
from repro.graph import (
    CSR,
    Graph,
    erdos_renyi_gnm,
    load_dataset,
    rmat_graph,
    triangle_count_linalg,
)
from repro.simmpi import CacheModel, Engine, MachineModel

__version__ = "1.0.0"

__all__ = [
    "CSR",
    "CacheModel",
    "Engine",
    "Graph",
    "MachineModel",
    "TC2DConfig",
    "TriangleCountResult",
    "count_triangles_2d",
    "count_triangles_summa",
    "erdos_renyi_gnm",
    "load_dataset",
    "rmat_graph",
    "triangle_count_linalg",
    "__version__",
]
