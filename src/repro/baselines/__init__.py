"""Reference and competitor triangle-counting algorithms.

* :mod:`repro.baselines.serial` — exact single-process counters (list- and
  map-based, Section 3.1) used as ground truth by the test suite.
* :mod:`repro.baselines.havoq` — a HavoqGT-style distributed baseline
  (2-core peeling + directed wedge generation + wedge-closure queries,
  Pearce et al. [14, 15]); Table 5's competitor.
* :mod:`repro.baselines.aop` — Arifuzzaman et al.'s communication-avoiding
  1D "overlapping partition" algorithm (AOP) [1]; Table 6.
* :mod:`repro.baselines.surrogate` — their space-efficient push-based
  variant (Surrogate) [1]; Table 6.
* :mod:`repro.baselines.psp` — a blocked 1D algorithm in the spirit of
  Kanewala et al.'s OPT-PSP [10]; Table 6.

All distributed baselines run on the same simulated-MPI substrate and
machine model as the 2D algorithm, so their modeled times are directly
comparable.
"""

from repro.baselines.serial import (
    count_triangles_list_based,
    count_triangles_map_based,
    count_triangles_node_iterator,
)
from repro.baselines.havoq import count_triangles_havoq
from repro.baselines.aop import count_triangles_aop
from repro.baselines.surrogate import count_triangles_surrogate
from repro.baselines.psp import count_triangles_psp

__all__ = [
    "count_triangles_aop",
    "count_triangles_havoq",
    "count_triangles_list_based",
    "count_triangles_map_based",
    "count_triangles_node_iterator",
    "count_triangles_psp",
    "count_triangles_surrogate",
]
