"""Shared plumbing for the 1D distributed baselines.

All competitors in Section 4 operate on a 1D vertex partition of the
degree-ordered oriented graph (DODG): vertex ``v``'s out-neighbors are its
neighbors that come later in the non-decreasing-degree order.  The driver
prepares that structure once and slices it into contiguous chunks; chunk
boundaries can balance vertices (naive) or out-edges (the load-balanced
partitioning Arifuzzaman et al. emphasize).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.serial import degree_order_upper
from repro.core.arrayutil import segment_lengths_to_offsets
from repro.graph.csr import CSR, INDEX_DTYPE, Graph


@dataclass(frozen=True)
class OneDChunk:
    """One rank's contiguous slice of the degree-ordered DODG.

    Attributes
    ----------
    lo, hi:
        Global (degree-ordered) vertex range owned by this rank.
    csr:
        Out-neighbor rows for vertices ``lo..hi-1`` (global ids).
    bounds:
        Global partition offsets (length p+1) for owner lookups.
    n:
        Total vertex count.
    """

    lo: int
    hi: int
    csr: CSR
    bounds: np.ndarray
    n: int

    def owner_of(self, labels: np.ndarray) -> np.ndarray:
        """Owning rank of each global vertex id."""
        return (
            np.searchsorted(self.bounds, labels, side="right").astype(INDEX_DTYPE)
            - 1
        )

    def row(self, v: int) -> np.ndarray:
        """Out-neighbors of owned global vertex ``v``."""
        return self.csr.row(v - self.lo)


def partition_dodg(
    graph: Graph, p: int, balance: str = "vertices"
) -> list[OneDChunk]:
    """Build the DODG and slice it into ``p`` contiguous chunks.

    ``balance="vertices"`` gives equal vertex counts; ``balance="edges"``
    picks boundaries so each chunk holds roughly the same number of
    out-edges (the partitioning that keeps AOP's local work even).
    """
    U = degree_order_upper(graph)
    n = graph.n
    if balance == "vertices":
        base, extra = divmod(n, p)
        sizes = np.full(p, base, dtype=INDEX_DTYPE)
        sizes[:extra] += 1
        bounds = segment_lengths_to_offsets(sizes)
    elif balance == "edges":
        target = np.linspace(0, U.nnz, p + 1)
        bounds = np.searchsorted(U.indptr, target, side="left").astype(INDEX_DTYPE)
        bounds[0], bounds[-1] = 0, n
        # Boundaries must be non-decreasing even for skewed prefixes.
        np.maximum.accumulate(bounds, out=bounds)
    else:
        raise ValueError(f"unknown balance mode {balance!r}")

    chunks = []
    for r in range(p):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        indptr = U.indptr[lo : hi + 1] - U.indptr[lo]
        indices = U.indices[U.indptr[lo] : U.indptr[hi]].copy()
        chunks.append(
            OneDChunk(
                lo=lo,
                hi=hi,
                csr=CSR(hi - lo, indptr.copy(), indices, n_cols=n),
                bounds=bounds,
                n=n,
            )
        )
    return chunks


def rows_payload(csr: CSR, local_ids: np.ndarray, base: int) -> tuple:
    """Pack selected rows as ``(global_ids, lengths, concatenated entries)``
    for shipping (ghost exchange / push)."""
    from repro.core.arrayutil import multirange

    local_ids = np.asarray(local_ids, dtype=INDEX_DTYPE)
    starts = csr.indptr[local_ids]
    lens = csr.indptr[local_ids + 1] - starts
    gather = multirange(starts, lens)
    entries = csr.indices[gather] if len(gather) else csr.indices[:0]
    return (local_ids + base, lens, entries)


def assemble_row_table(
    payloads: list[tuple],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge row payloads into a lookup table ``(ids, indptr, entries)``
    with ids sorted ascending (duplicate ids collapse to the first copy)."""
    ids_parts = [np.asarray(pl[0], dtype=INDEX_DTYPE) for pl in payloads]
    lens_parts = [np.asarray(pl[1], dtype=INDEX_DTYPE) for pl in payloads]
    ent_parts = [np.asarray(pl[2], dtype=INDEX_DTYPE) for pl in payloads]
    ids = np.concatenate(ids_parts) if ids_parts else np.empty(0, INDEX_DTYPE)
    lens = np.concatenate(lens_parts) if lens_parts else np.empty(0, INDEX_DTYPE)
    ents = np.concatenate(ent_parts) if ent_parts else np.empty(0, INDEX_DTYPE)
    if len(ids) == 0:
        return ids, np.zeros(1, dtype=INDEX_DTYPE), ents
    order = np.argsort(ids, kind="stable")
    from repro.core.arrayutil import multirange

    starts = segment_lengths_to_offsets(lens)[:-1]
    keep_rows = np.empty(len(ids), dtype=bool)
    sorted_ids = ids[order]
    keep_rows[0] = True
    keep_rows[1:] = sorted_ids[1:] != sorted_ids[:-1]
    sel = order[keep_rows]
    sel_ids = ids[sel]
    sel_lens = lens[sel]
    gather = multirange(starts[sel], sel_lens)
    sel_ents = ents[gather] if len(gather) else ents[:0]
    return sel_ids, segment_lengths_to_offsets(sel_lens), sel_ents
