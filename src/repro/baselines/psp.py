"""Blocked 1D baseline in the spirit of OPT-PSP (Kanewala et al. [10]).

Kanewala et al. decompose the adjacency matrix 1D and send adjacency lists
to the ranks holding the adjacent vertices, *blocking* vertices to curb
the number of messages.  We reproduce that structure as a ring pipeline:
over ``p`` rounds, every rank's whole row block visits every other rank
(one block-sized message per round), and each rank counts the tasks whose
partner row is in the visiting block.  This keeps exactly one copy of the
graph (like Surrogate) while batching all per-vertex messages into one
block message per peer (the "process them in blocks" optimization).

Phases: ``"ppt"`` = barrier only, ``"tct"`` = ring rounds.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.common import OneDChunk, partition_dodg
from repro.core.counts import TriangleCountResult
from repro.graph.csr import CSR, INDEX_DTYPE, Graph
from repro.hashing import BlockHashMap
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


def _psp_rank_program(ctx: RankContext, chunks: list[OneDChunk]) -> dict[str, Any]:
    comm = ctx.comm
    p = comm.size
    chunk = chunks[ctx.rank]
    csr = chunk.csr

    with ctx.phase("ppt"):
        comm.barrier()

    with ctx.phase("tct"):
        local = 0
        tasks = 0
        probes = 0
        inserts = 0
        # The visiting block starts as our own and walks the ring.
        visiting_lo = chunk.lo
        visiting = (csr.indptr.copy(), csr.indices.copy())
        # Pre-bucket our edges by owner of the partner endpoint so each
        # round only touches the relevant tasks.
        lens = csr.row_lengths()
        src = np.repeat(np.arange(csr.n_rows, dtype=INDEX_DTYPE), lens)
        dst = csr.indices
        owner = chunk.owner_of(dst)
        ctx.charge("scan", csr.nnz)
        order = np.lexsort((src, owner))
        src_o, dst_o = src[order], dst[order]
        counts = np.bincount(owner, minlength=p)
        offs = np.zeros(p + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=offs[1:])

        max_len = int(lens.max()) if csr.nnz else 0
        hm_local = BlockHashMap(max(4, 2 * max(max_len, 1)))

        for round_idx in range(p):
            owner_rank = (ctx.rank + round_idx) % p
            v_indptr, v_indices = visiting
            v_lo = visiting_lo
            lo_t, hi_t = int(offs[owner_rank]), int(offs[owner_rank + 1])
            # Tasks in this bucket are sorted by source row i (lexsort
            # above), so rows form contiguous runs: hash each U_i once.
            seg_src = src_o[lo_t:hi_t]
            seg_dst = dst_o[lo_t:hi_t]
            uniq_rows, run_starts = np.unique(seg_src, return_index=True)
            run_bounds = np.append(run_starts, len(seg_src))
            for u_idx, i_local in enumerate(uniq_rows.tolist()):
                row_i = csr.row(int(i_local))
                js = seg_dst[run_bounds[u_idx] : run_bounds[u_idx + 1]]
                ins0 = hm_local.stats.insert_steps
                hm_local.build(row_i)
                inserts += hm_local.stats.insert_steps - ins0
                for j in js.tolist():
                    jj = int(j) - v_lo
                    row_j = v_indices[v_indptr[jj] : v_indptr[jj + 1]]
                    if len(row_j) == 0:
                        continue
                    tasks += 1
                    hits, steps = hm_local.lookup_many(row_j)
                    probes += steps
                    local += hits
            if round_idx < p - 1:
                # Pass the visiting block along the ring.
                dest = (ctx.rank - 1) % p
                src_rank = (ctx.rank + 1) % p
                payload = (visiting_lo, visiting[0], visiting[1])
                visiting_lo, vp, vi = comm.sendrecv(
                    payload, dest=dest, source=src_rank, sendtag=7, recvtag=7
                )
                visiting = (vp, vi)
        ctx.charge("task", tasks)
        ctx.charge("hash_insert", inserts)
        ctx.charge("hash_probe", probes)
        total = comm.allreduce(local, SUM)

    return {"total": int(total), "local": int(local), "tasks": tasks}


def count_triangles_psp(
    graph: Graph,
    p: int,
    model: MachineModel | None = None,
    balance: str = "vertices",
    dataset: str = "",
) -> TriangleCountResult:
    """Run the blocked-1D (OPT-PSP-style) baseline on ``p`` ranks."""
    chunks = partition_dodg(graph, p, balance=balance)
    engine = Engine(p, model=model)
    run = engine.run(_psp_rank_program, chunks)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("PSP local counts do not sum to the total")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="opt-psp",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
    )
    result.extras["makespan"] = run.makespan
    return result
