"""HavoqGT-style baseline: 2-core peeling + directed wedge checking
(Pearce [14], Pearce et al. [15]) — Table 5's competitor.

The algorithm family differs fundamentally from intersection-based
counting: after removing vertices that cannot be in any triangle (the
2-core decomposition), it orders vertices by degree, generates the
*directed wedges* (pairs of out-neighbors of each vertex in the oriented
graph), and queries the owner of each wedge's endpoint edge for closure.
The work is Theta(sum of C(outdeg, 2)) wedge generations plus one remote
edge-existence query per wedge — far more traffic per triangle than the
2D algorithm's block intersections, which is the structural reason the
paper measures a ~10x average advantage (Table 5).

Phases mirror the paper's Table 5 columns: ``"2core"`` (peeling time) and
``"wedge"`` (directed wedge counting time).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.common import OneDChunk, partition_dodg
from repro.core.arrayutil import multirange, split_by_owner
from repro.core.counts import TriangleCountResult
from repro.graph.csr import INDEX_DTYPE, Graph
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


def _peel_two_core(ctx: RankContext, chunk: OneDChunk) -> np.ndarray:
    """Synchronous distributed 2-core peeling.

    Returns a boolean mask over the *full undirected* degree of owned
    vertices... here the DODG chunk only stores out-edges, so peeling works
    on full degrees reconstructed via one alltoall of in-edge counts, then
    iterates: drop vertices with remaining degree < 2, notify neighbor
    owners, repeat until a global fixed point.
    """
    comm = ctx.comm
    csr = chunk.csr
    n_local = csr.n_rows

    # Full degree = out-degree + in-degree; in-degrees need one exchange.
    owners = chunk.owner_of(csr.indices)
    per_owner = split_by_owner(owners, csr.indices, comm.size)
    got = comm.alltoallv(per_owner)
    indeg = np.zeros(n_local, dtype=INDEX_DTYPE)
    for arr in got:
        if len(arr):
            indeg += np.bincount(
                np.asarray(arr, dtype=INDEX_DTYPE) - chunk.lo, minlength=n_local
            )
    degree = csr.row_lengths().astype(INDEX_DTYPE) + indeg
    ctx.charge("scan", csr.nnz + n_local)

    # Undirected neighbor lists are needed to propagate removals both ways;
    # materialize them from out-edges plus the received in-edges.
    lens = csr.row_lengths()
    pairs_out = np.stack(
        [
            np.repeat(np.arange(n_local, dtype=INDEX_DTYPE) + chunk.lo, lens),
            csr.indices,
        ],
        axis=1,
    )
    per_owner_pairs = split_by_owner(owners, pairs_out, comm.size)
    got_pairs = comm.alltoallv(per_owner_pairs)
    keep = [g for g in got_pairs if len(g)]
    in_pairs = (
        np.concatenate(keep, axis=0) if keep else np.empty((0, 2), dtype=INDEX_DTYPE)
    )
    # neighbor table: for each owned vertex, out-neighbors + in-neighbors.
    all_src = np.concatenate([pairs_out[:, 0], in_pairs[:, 1]]) - chunk.lo
    all_dst = np.concatenate([pairs_out[:, 1], in_pairs[:, 0]])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]
    nbr_off = np.zeros(n_local + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(all_src, minlength=n_local), out=nbr_off[1:])
    ctx.charge("csr_build", len(all_dst))

    alive = np.ones(n_local, dtype=bool)
    deg = degree.copy()
    while True:
        drop = np.nonzero(alive & (deg < 2))[0]
        any_drop = comm.allreduce(int(len(drop)), SUM)
        if any_drop == 0:
            break
        alive[drop] = False
        # Tell every neighbor's owner to decrement.
        if len(drop):
            gather = multirange(nbr_off[drop], nbr_off[drop + 1] - nbr_off[drop])
            notified = all_dst[gather]
        else:
            notified = np.empty(0, dtype=INDEX_DTYPE)
        per_owner_n = split_by_owner(
            chunk.owner_of(notified), notified, comm.size
        )
        got_n = comm.alltoallv(per_owner_n)
        for arr in got_n:
            if len(arr):
                deg -= np.bincount(
                    np.asarray(arr, dtype=INDEX_DTYPE) - chunk.lo,
                    minlength=n_local,
                ).astype(INDEX_DTYPE)
        ctx.charge("scan", n_local + len(notified))
    return alive


def _havoq_rank_program(ctx: RankContext, chunks: list[OneDChunk]) -> dict[str, Any]:
    comm = ctx.comm
    chunk = chunks[ctx.rank]
    csr = chunk.csr

    with ctx.phase("2core"):
        alive = _peel_two_core(ctx, chunk)
        comm.barrier()

    with ctx.phase("wedge"):
        # Directed wedges: for each live vertex v, every ordered pair
        # (a, b), a < b, of live out-neighbors.  The wedge closes iff edge
        # (a, b) exists; the owner of a checks that locally.
        lens = csr.row_lengths()
        wedge_count = 0
        q_first: list[np.ndarray] = []
        q_second: list[np.ndarray] = []
        for v_local in np.nonzero(alive & (lens >= 2))[0].tolist():
            row = csr.row(v_local)
            k = len(row)
            # Pairs (row[a], row[b]) with a < b; row is sorted so the
            # first element is the smaller (query) endpoint.
            ia, ib = np.triu_indices(k, k=1)
            q_first.append(row[ia])
            q_second.append(row[ib])
            wedge_count += len(ia)
        firsts = (
            np.concatenate(q_first) if q_first else np.empty(0, INDEX_DTYPE)
        )
        seconds = (
            np.concatenate(q_second) if q_second else np.empty(0, INDEX_DTYPE)
        )
        ctx.charge("wedge_gen", wedge_count)

        owners = chunk.owner_of(firsts)
        queries = np.stack([firsts, seconds], axis=1) if len(firsts) else np.empty(
            (0, 2), dtype=INDEX_DTYPE
        )
        per_owner = split_by_owner(owners, queries, comm.size)
        got = comm.alltoallv(per_owner)
        # Encode the local edge set as sorted a*n+b keys so closure checks
        # are one vectorized searchsorted per query batch.
        n = chunk.n
        src_enc = (
            np.repeat(np.arange(csr.n_rows, dtype=INDEX_DTYPE) + chunk.lo, lens)
            * n
            + csr.indices
        )
        src_enc.sort()
        ctx.charge("sort", csr.nnz)
        local_closed = 0
        checks = 0
        for arr in got:
            if not len(arr) or not len(src_enc):
                continue
            arr = np.asarray(arr, dtype=INDEX_DTYPE)
            enc = arr[:, 0] * n + arr[:, 1]
            pos = np.searchsorted(src_enc, enc)
            found = (pos < len(src_enc)) & (
                src_enc[np.minimum(pos, len(src_enc) - 1)] == enc
            )
            local_closed += int(np.count_nonzero(found))
            checks += len(arr)
        ctx.charge("edge_check", checks)
        total = comm.allreduce(local_closed, SUM)

    return {
        "total": int(total),
        "local": int(local_closed),
        "wedges": wedge_count,
        "checks": checks,
    }


def count_triangles_havoq(
    graph: Graph,
    p: int,
    model: MachineModel | None = None,
    dataset: str = "",
) -> TriangleCountResult:
    """Run the HavoqGT-style wedge-checking baseline on ``p`` ranks.

    The result maps the paper's Table 5 columns onto the record:
    ``ppt_time`` = 2-core time, ``tct_time`` = directed wedge counting
    time.
    """
    chunks = partition_dodg(graph, p, balance="edges")
    engine = Engine(p, model=model)
    run = engine.run(_havoq_rank_program, chunks)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("Havoq local counts do not sum to the total")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="havoq",
        ppt_time=run.phase_time("2core"),
        tct_time=run.phase_time("wedge"),
        comm_fraction_ppt=run.phase_comm_fraction("2core"),
        comm_fraction_tct=run.phase_comm_fraction("wedge"),
    )
    result.extras["wedges_total"] = sum(r["wedges"] for r in rets)
    result.extras["makespan"] = run.makespan
    return result
