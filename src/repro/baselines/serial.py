"""Serial exact triangle counters (Section 3.1's two intersection styles).

These are the single-process reference implementations the paper builds
on [21]: vertices are ordered by non-decreasing degree, the adjacency
matrix is split into U (neighbors later in the order), and each edge's
triangles come from intersecting two U rows.

Three variants:

* :func:`count_triangles_list_based` — merge-style joint traversal of the
  two sorted lists;
* :func:`count_triangles_map_based` — hash one row (reused across the
  row's edges, the ``<j,i,k>`` trick) and probe with the other;
* :func:`count_triangles_node_iterator` — vectorized numpy variant used
  as a fast oracle for larger graphs.

All three return identical counts; tests exercise that.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSR, INDEX_DTYPE, Graph
from repro.hashing import BlockHashMap


def degree_order_upper(g: Graph) -> CSR:
    """U after relabeling vertices in non-decreasing degree.

    Row ``v`` holds the neighbors that come after ``v`` in the degree
    order, which is the directed (DODG) form every serial counter uses.
    """
    order = np.argsort(g.degrees, kind="stable")
    rank_of = np.empty(g.n, dtype=INDEX_DTYPE)
    rank_of[order] = np.arange(g.n, dtype=INDEX_DTYPE)
    edges = g.edge_array()
    a = rank_of[edges[:, 0]]
    b = rank_of[edges[:, 1]]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    return CSR.from_coo(g.n, lo, hi)


def count_triangles_list_based(g: Graph) -> int:
    """Merge-based counting: for each U edge (i, j), jointly walk the two
    sorted rows and count common entries."""
    U = degree_order_upper(g)
    indptr, indices = U.indptr, U.indices
    total = 0
    for i in range(U.n_rows):
        row_i = indices[indptr[i] : indptr[i + 1]]
        if len(row_i) == 0:
            continue
        for j in row_i.tolist():
            row_j = indices[indptr[j] : indptr[j + 1]]
            # Two-pointer merge intersection.
            a = b = 0
            na, nb = len(row_i), len(row_j)
            while a < na and b < nb:
                va, vb = row_i[a], row_j[b]
                if va == vb:
                    total += 1
                    a += 1
                    b += 1
                elif va < vb:
                    a += 1
                else:
                    b += 1
    return total


def count_triangles_map_based(g: Graph) -> int:
    """Map-based counting with the ``<j,i,k>``-style map reuse: hash each
    row once and probe it with all of its edges' partner rows."""
    U = degree_order_upper(g)
    indptr, indices = U.indptr, U.indices
    max_len = int(np.diff(indptr).max()) if U.nnz else 0
    hm = BlockHashMap(max(4, 2 * max_len))
    total = 0
    for i in range(U.n_rows):
        row_i = indices[indptr[i] : indptr[i + 1]]
        if len(row_i) == 0:
            continue
        hm.build(row_i)
        for j in row_i.tolist():
            row_j = indices[indptr[j] : indptr[j + 1]]
            if len(row_j):
                hits, _ = hm.lookup_many(row_j)
                total += hits
    return total


def count_triangles_node_iterator(g: Graph) -> int:
    """Vectorized forward/node-iterator counting (fast oracle).

    For each vertex ``i`` in degree order, mark its U row in a dense flag
    array and sum flag hits over its neighbors' U rows.
    """
    U = degree_order_upper(g)
    indptr, indices = U.indptr, U.indices
    marks = np.zeros(U.n_rows, dtype=bool)
    total = 0
    for i in range(U.n_rows):
        row_i = indices[indptr[i] : indptr[i + 1]]
        if len(row_i) == 0:
            continue
        marks[row_i] = True
        lo = indptr[row_i]
        hi = indptr[row_i + 1]
        lens = (hi - lo).astype(np.int64)
        nz = lens > 0
        if nz.any():
            # Gather all partner rows at once and count marked entries.
            starts, counts = lo[nz], lens[nz]
            idx = np.concatenate(
                [indices[s : s + c] for s, c in zip(starts.tolist(), counts.tolist())]
            )
            total += int(np.count_nonzero(marks[idx]))
        marks[row_i] = False
    return total
