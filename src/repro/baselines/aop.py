"""AOP: the communication-avoiding 1D baseline (Arifuzzaman et al. [1]).

Each rank owns a contiguous chunk of the degree-ordered DODG *plus ghost
copies of every out-neighbor row its edges reference* ("overlapping
partitions").  One up-front ghost exchange buys a counting phase with no
communication at all — at the price of replicated memory and whatever load
imbalance the partitioning leaves (the paper's Section 4 discussion).

Phases: ``"ppt"`` = ghost exchange, ``"tct"`` = pure-local counting.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.common import (
    OneDChunk,
    assemble_row_table,
    partition_dodg,
    rows_payload,
)
from repro.core.arrayutil import split_by_owner
from repro.core.counts import TriangleCountResult
from repro.graph.csr import INDEX_DTYPE, Graph
from repro.hashing import BlockHashMap
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


def _aop_rank_program(ctx: RankContext, chunks: list[OneDChunk]) -> dict[str, Any]:
    comm = ctx.comm
    chunk = chunks[ctx.rank]
    csr = chunk.csr

    with ctx.phase("ppt"):
        # Which remote rows do my edges reference?
        needed = np.unique(csr.indices)
        remote = needed[(needed < chunk.lo) | (needed >= chunk.hi)]
        owners = chunk.owner_of(remote)
        requests = split_by_owner(owners, remote, comm.size)
        got_requests = comm.alltoallv(requests)
        replies = [
            rows_payload(csr, np.asarray(q, dtype=INDEX_DTYPE) - chunk.lo, chunk.lo)
            for q in got_requests
        ]
        ctx.charge("scan", csr.nnz + sum(len(q) for q in got_requests))
        ghosts = comm.alltoallv(replies)
        ghost_ids, ghost_indptr, ghost_entries = assemble_row_table(ghosts)
        ghost_bytes = int(ghost_entries.nbytes + ghost_ids.nbytes)
        ctx.charge("csr_build", len(ghost_entries) + len(ghost_ids))
        comm.barrier()

    with ctx.phase("tct"):
        local = 0
        max_len = int(np.diff(csr.indptr).max()) if csr.nnz else 0
        ghost_max = (
            int(np.diff(ghost_indptr).max()) if len(ghost_ids) else 0
        )
        hm = BlockHashMap(max(4, 2 * max(max_len, ghost_max, 1)))
        tasks = 0
        probes = 0
        inserts = 0

        def partner_row(j: int) -> np.ndarray:
            if chunk.lo <= j < chunk.hi:
                return csr.row(j - chunk.lo)
            k = int(np.searchsorted(ghost_ids, j))
            if k >= len(ghost_ids) or ghost_ids[k] != j:
                raise AssertionError(f"ghost row {j} missing on rank {ctx.rank}")
            return ghost_entries[ghost_indptr[k] : ghost_indptr[k + 1]]

        for i_local in range(csr.n_rows):
            row_i = csr.row(i_local)
            if len(row_i) == 0:
                continue
            ins0 = hm.stats.insert_steps
            hm.build(row_i)
            inserts += hm.stats.insert_steps - ins0
            for j in row_i.tolist():
                row_j = partner_row(int(j))
                if len(row_j) == 0:
                    continue
                tasks += 1
                hits, steps = hm.lookup_many(row_j)
                probes += steps
                local += hits
        working_set = csr.nbytes_estimate() + ghost_bytes
        ctx.charge("task", tasks, working_set)
        ctx.charge("hash_insert", inserts, working_set)
        ctx.charge("hash_probe", probes, working_set)
        total = comm.allreduce(local, SUM)

    return {
        "total": int(total),
        "local": int(local),
        "ghost_bytes": ghost_bytes,
        "tasks": tasks,
    }


def count_triangles_aop(
    graph: Graph,
    p: int,
    model: MachineModel | None = None,
    balance: str = "edges",
    dataset: str = "",
) -> TriangleCountResult:
    """Run the AOP baseline on ``p`` simulated ranks.

    ``balance`` picks the partitioning ("edges" reproduces the
    load-balanced variant the authors recommend; "vertices" is the naive
    split whose imbalance the paper discusses).
    """
    chunks = partition_dodg(graph, p, balance=balance)
    engine = Engine(p, model=model)
    run = engine.run(_aop_rank_program, chunks)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("AOP local counts do not sum to the total")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="aop",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
    )
    result.extras["ghost_bytes_total"] = sum(r["ghost_bytes"] for r in rets)
    result.extras["makespan"] = run.makespan
    return result
