"""Surrogate: the space-efficient push-based 1D baseline
(Arifuzzaman et al. [1]).

Partitions are disjoint — only one copy of the graph exists across ranks.
For every cut edge (i, j) with j owned remotely, the owner of ``i``
*pushes* row ``U_i`` to the owner of ``j``, which performs the
intersection with its local ``U_j``.  Each (source row, destination rank)
pair is shipped at most once, but the aggregate volume is still the sum of
row lengths over cut edges — the high communication cost the paper
contrasts with AOP's replication.

Phases: ``"ppt"`` = none beyond input layout (a barrier), ``"tct"`` =
push + count.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.common import OneDChunk, assemble_row_table, partition_dodg, rows_payload
from repro.core.arrayutil import split_by_owner
from repro.core.counts import TriangleCountResult
from repro.graph.csr import INDEX_DTYPE, Graph
from repro.hashing import BlockHashMap
from repro.simmpi import SUM, Engine, MachineModel
from repro.simmpi.engine import RankContext


def _surrogate_rank_program(
    ctx: RankContext, chunks: list[OneDChunk]
) -> dict[str, Any]:
    comm = ctx.comm
    chunk = chunks[ctx.rank]
    csr = chunk.csr

    with ctx.phase("ppt"):
        comm.barrier()

    with ctx.phase("tct"):
        # Who needs which of my rows?  Edge (i, j): owner(j) needs U_i.
        lens = csr.row_lengths()
        src_rows = np.repeat(
            np.arange(csr.n_rows, dtype=INDEX_DTYPE), lens
        )
        dst_owner = chunk.owner_of(csr.indices)
        ctx.charge("scan", csr.nnz)
        # Deduplicate (row, destination) pairs: one copy per destination.
        pair_key = src_rows * comm.size + dst_owner
        uniq_keys = np.unique(pair_key)
        u_rows = uniq_keys // comm.size
        u_dest = uniq_keys % comm.size
        # Ship each needed row once per destination (skipping self).
        remote_mask = u_dest != comm.rank
        packages = []
        by_dest_rows = split_by_owner(
            u_dest[remote_mask], u_rows[remote_mask], comm.size
        )
        for r in range(comm.size):
            packages.append(rows_payload(csr, by_dest_rows[r], chunk.lo))
        pushed = comm.alltoallv(packages)
        row_ids, row_indptr, row_entries = assemble_row_table(pushed)
        ctx.charge("csr_build", len(row_entries) + len(row_ids))

        # Count: group incoming edges by their local endpoint j, hash U_j
        # once, probe with every pushed U_i fragment.
        local = 0
        tasks = 0
        probes = 0
        inserts = 0
        max_len = int(np.diff(csr.indptr).max()) if csr.nnz else 0
        hm = BlockHashMap(max(4, 2 * max(max_len, 1)))

        def row_of(i: int) -> np.ndarray:
            if chunk.lo <= i < chunk.hi:
                return csr.row(i - chunk.lo)
            k = int(np.searchsorted(row_ids, i))
            if k >= len(row_ids) or row_ids[k] != i:
                raise AssertionError(f"pushed row {i} missing on rank {ctx.rank}")
            return row_entries[row_indptr[k] : row_indptr[k + 1]]

        # Incoming edges (i, j) with j local: all edges whose head j lives
        # here — i.e. every (i_global, j) where j in [lo, hi).  Each rank
        # discovers them from the pushed rows plus its own rows.
        edges_by_j: dict[int, list[int]] = {}
        for r_local in range(csr.n_rows):
            for j in csr.row(r_local).tolist():
                if chunk.lo <= j < chunk.hi:
                    edges_by_j.setdefault(int(j), []).append(chunk.lo + r_local)
        for k in range(len(row_ids)):
            i = int(row_ids[k])
            for j in row_entries[row_indptr[k] : row_indptr[k + 1]].tolist():
                if chunk.lo <= j < chunk.hi:
                    edges_by_j.setdefault(int(j), []).append(i)

        for j, sources in edges_by_j.items():
            row_j = csr.row(j - chunk.lo)
            if len(row_j) == 0:
                continue
            ins0 = hm.stats.insert_steps
            hm.build(row_j)
            inserts += hm.stats.insert_steps - ins0
            for i in sources:
                row_i = row_of(i)
                if len(row_i) == 0:
                    continue
                tasks += 1
                hits, steps = hm.lookup_many(row_i)
                probes += steps
                local += hits
        ctx.charge("task", tasks)
        ctx.charge("hash_insert", inserts)
        ctx.charge("hash_probe", probes)
        total = comm.allreduce(local, SUM)

    return {"total": int(total), "local": int(local), "tasks": tasks}


def count_triangles_surrogate(
    graph: Graph,
    p: int,
    model: MachineModel | None = None,
    balance: str = "edges",
    dataset: str = "",
) -> TriangleCountResult:
    """Run the Surrogate (push-based, space-efficient) baseline."""
    chunks = partition_dodg(graph, p, balance=balance)
    engine = Engine(p, model=model)
    run = engine.run(_surrogate_rank_program, chunks)
    rets = run.returns
    count = rets[0]["total"]
    if sum(r["local"] for r in rets) != count:
        raise AssertionError("Surrogate local counts do not sum to the total")
    result = TriangleCountResult(
        count=count,
        p=p,
        dataset=dataset,
        algorithm="surrogate",
        ppt_time=run.phase_time("ppt"),
        tct_time=run.phase_time("tct"),
        comm_fraction_ppt=run.phase_comm_fraction("ppt"),
        comm_fraction_tct=run.phase_comm_fraction("tct"),
    )
    result.extras["makespan"] = run.makespan
    return result
