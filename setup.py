"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (`pip install -e .`) fail with
``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or
``python setup.py develop``) work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
