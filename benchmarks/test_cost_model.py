"""Section 5.4: does the paper's analytical cost model explain our
measured scaling?

The paper uses its complexity analysis to *explain* the measured scaling
(tct scales better than ppt because its computation term carries an extra
``d_avg / sqrt(p)`` factor).  This bench fits each phase's analytical
shape (one scale constant) to the measured sweep and asserts strong
agreement for the counting phase and directional agreement for
preprocessing.
"""

from __future__ import annotations

from repro.bench.calibration import bench_ranks, paper_model
from repro.bench.costcheck import fit_phase
from repro.bench.runner import sweep
from repro.bench.tables import BIG_DATASET
from repro.graph import load_dataset
from repro.instrument import format_table


def test_cost_model(benchmark, save_artifact):
    ranks = list(bench_ranks())
    model = paper_model()
    g = load_dataset(BIG_DATASET)
    results = sweep(BIG_DATASET, ranks, model=model)

    fits = {phase: fit_phase(g, results, phase) for phase in ("ppt", "tct")}
    rows = []
    for phase, fit in fits.items():
        for p, meas, pred in fit.points:
            rows.append((phase, p, meas * 1e3, pred * 1e3, pred / meas))
    text = format_table(
        ["phase", "ranks", "measured (ms)", "Section 5.4 model (ms)", "ratio"],
        rows,
        title=(
            f"Section 5.4 cost-model check on {BIG_DATASET}: analytical "
            f"shapes fitted with one constant per phase "
            f"(tct corr={fits['tct'].correlation:.3f}, "
            f"ppt corr={fits['ppt'].correlation:.3f})"
        ),
        floatfmt=".3f",
    )
    save_artifact("cost_model", text)

    # The counting-phase analysis must track the measurements closely.
    assert fits["tct"].correlation > 0.9, fits["tct"]
    assert fits["tct"].max_ratio_error < 3.0, fits["tct"]
    # Preprocessing: the analysis captures the trend (it omits constants
    # for the communication waits, so we only require direction + order).
    assert fits["ppt"].correlation > 0.5, fits["ppt"]
    assert fits["ppt"].max_ratio_error < 6.0, fits["ppt"]
    # The paper's explanation for the scaling difference: the tct shape
    # falls faster with p than the ppt shape.
    tct_drop = fits["tct"].points[0][2] / fits["tct"].points[-1][2]
    ppt_drop = fits["ppt"].points[0][2] / fits["ppt"].points[-1][2]
    assert tct_drop > ppt_drop

    benchmark(fit_phase, g, results, "tct")
