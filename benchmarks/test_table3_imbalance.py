"""Table 3: triangle-counting load imbalance at 25 and 36 ranks.

Shape claim (Section 7.2): the cyclic distribution keeps the per-rank
compute imbalance small — the paper measures 1.05 at 25 ranks and 1.14 at
36, and attributes it to the <6% imbalance in per-rank task counts.
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.bench.tables import BIG_DATASET, table3


def test_table3(benchmark, save_artifact):
    text, data = table3()
    save_artifact("table3", text)

    for row in data:
        assert row["max_ms"] >= row["avg_ms"] > 0
        assert 1.0 <= row["imbalance"] < 1.6, row

    # Task-count imbalance across ranks stays modest (the paper's <6%
    # becomes <~35% at our 1000x smaller block granularity).
    res = run_point(BIG_DATASET, 25, model=paper_model())
    per_rank: dict[int, int] = {}
    for rec in res.shift_records:
        per_rank[rec.rank] = per_rank.get(rec.rank, 0) + rec.tasks
    counts = list(per_rank.values())
    imb = max(counts) / (sum(counts) / len(counts))
    assert imb < 1.4

    benchmark.pedantic(
        lambda: run_point(BIG_DATASET, 36, model=paper_model()),
        rounds=1,
        iterations=1,
    )
