"""Micro-benchmarks of the hot kernels (wall time, pytest-benchmark).

These time the actual Python implementations (not simulated seconds):
the per-row hash build/probe cycle, the block intersection kernel, and
blob (de)serialization.  They exist to catch wall-time regressions in the
kernels that dominate every experiment's run time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blocks import Block, build_block
from repro.core.config import TC2DConfig
from repro.core.intersect import count_block_pair
from repro.graph import rmat_graph
from repro.hashing import BlockHashMap


@pytest.fixture(scope="module")
def block_triple():
    """A realistic (task, U, L) triple from an RMAT graph's 2D split."""
    g = rmat_graph(11, seed=2)
    q = 3
    U = g.upper_csr()
    rows, cols = U.to_coo()
    # Block (0, 0) with inner residue 0.
    sel_u = (rows % q == 0) & (cols % q == 0)
    u_blk = build_block(
        "U-row",
        0,
        0,
        (g.n + q - 1) // q,
        (g.n + q - 1) // q,
        rows[sel_u] // q,
        cols[sel_u] // q,
    )
    l_blk = build_block(
        "L-col",
        0,
        0,
        (g.n + q - 1) // q,
        (g.n + q - 1) // q,
        rows[sel_u] // q,
        cols[sel_u] // q,
    )
    t_blk = build_block(
        "task",
        0,
        0,
        (g.n + q - 1) // q,
        (g.n + q - 1) // q,
        cols[sel_u] // q,
        rows[sel_u] // q,
    )
    return t_blk, u_blk, l_blk


def test_bench_hashmap_build_probe(benchmark):
    rng = np.random.default_rng(0)
    keys = rng.choice(4096, size=48, replace=False).astype(np.int64)
    queries = rng.integers(0, 4096, size=256).astype(np.int64)
    hm = BlockHashMap(128)

    def cycle():
        hm.build(keys)
        hits, _ = hm.lookup_many(queries)
        return hits

    result = benchmark(cycle)
    assert result == int(np.isin(queries, keys).sum())


def test_bench_hashmap_probed_mode(benchmark):
    rng = np.random.default_rng(1)
    keys = rng.choice(4096, size=48, replace=False).astype(np.int64)
    queries = rng.integers(0, 4096, size=256).astype(np.int64)
    hm = BlockHashMap(128)

    def cycle():
        hm.build(keys, allow_fast=False)
        hits, _ = hm.lookup_many(queries)
        return hits

    result = benchmark(cycle)
    assert result == int(np.isin(queries, keys).sum())


def test_bench_intersection_kernel(benchmark, block_triple):
    t_blk, u_blk, l_blk = block_triple
    cfg = TC2DConfig()
    st = benchmark(count_block_pair, t_blk, u_blk, l_blk, cfg)
    assert st.triangles >= 0
    assert st.tasks > 0


@pytest.mark.parametrize("backend", ["row", "batch"])
def test_bench_intersection_kernel_backend(benchmark, block_triple, backend):
    """Per-backend timing of the same block triple (the regression pair
    that ``repro.bench.kernelbench`` gates on in CI)."""
    t_blk, u_blk, l_blk = block_triple
    cfg = TC2DConfig(kernel_backend=backend)
    st = benchmark(count_block_pair, t_blk, u_blk, l_blk, cfg)
    assert st.triangles >= 0
    assert st.tasks > 0


def test_backend_parity_on_bench_input(block_triple):
    """Before trusting any timing: row and batch must agree bit-for-bit
    on the benchmark input (counts AND logical counters)."""
    from dataclasses import asdict

    t_blk, u_blk, l_blk = block_triple
    cfg = TC2DConfig()
    st_row = count_block_pair(t_blk, u_blk, l_blk, cfg, backend="row")
    st_batch = count_block_pair(t_blk, u_blk, l_blk, cfg, backend="batch")
    assert asdict(st_row) == asdict(st_batch)


def test_kernelbench_smoke(tmp_path):
    """The standalone harness runs end to end and writes a well-formed
    BENCH_kernels.json with the expected schema."""
    import json

    from repro.bench.kernelbench import check_regressions, main

    out = tmp_path / "BENCH_kernels.json"
    rc = main(["--smoke", "--reps", "3", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["mode"] == "smoke"
    assert all(
        {"row", "batch"} <= set(c["backends"]) for c in report["cases"]
    )
    assert isinstance(check_regressions(report), list)


def test_bench_intersection_kernel_no_optimizations(benchmark, block_triple):
    t_blk, u_blk, l_blk = block_triple
    cfg = TC2DConfig(doubly_sparse=False, modified_hashing=False, early_stop=False)
    st = benchmark(count_block_pair, t_blk, u_blk, l_blk, cfg)
    assert st.triangles >= 0


def test_bench_blob_roundtrip(benchmark, block_triple):
    _t, u_blk, _l = block_triple

    def roundtrip():
        return Block.from_blob(u_blk.to_blob()).nnz

    assert benchmark(roundtrip) == u_blk.nnz
