"""Design-choice ablation: cell-cyclic vs naive 2D-block task distribution.

Section 5.1 argues for the cyclic distribution with two observations:
blocks of the triangular task matrix above/below the diagonal are
structurally lopsided, and the degree ordering makes high-index
rows/columns heavy.  This bench quantifies both effects for every swept
grid size and asserts that the cyclic scheme's imbalance stays near 1
while the block scheme's explodes.
"""

from __future__ import annotations

from repro.core.balance import compare_distributions
from repro.graph import load_dataset
from repro.instrument import format_table

DATASET = "g500-s14"


def test_distribution_ablation(benchmark, save_artifact):
    g = load_dataset(DATASET)
    rows = []
    data = []
    for p in (16, 36, 64, 100, 169):
        both = compare_distributions(g, p)
        cyc, blk = both["cyclic"], both["block"]
        rows.append(
            (
                p,
                cyc.task_imbalance,
                blk.task_imbalance,
                cyc.work_imbalance,
                blk.work_imbalance,
                blk.empty_ranks,
            )
        )
        data.append((p, cyc, blk))
    text = format_table(
        [
            "ranks",
            "cyclic task imb",
            "block task imb",
            "cyclic work imb",
            "block work imb",
            "block empty ranks",
        ],
        rows,
        title=(
            f"Design ablation: task-distribution imbalance on {DATASET} "
            "(max/avg per-rank load; 1.0 = perfect)"
        ),
    )
    save_artifact("distribution_ablation", text)

    for p, cyc, blk in data:
        assert cyc.task_imbalance < blk.task_imbalance, p
        assert cyc.work_imbalance < blk.work_imbalance, p
        assert cyc.task_imbalance < 1.5, (p, cyc.task_imbalance)
        assert blk.empty_ranks > 0, p
        assert cyc.empty_ranks == 0, p

    benchmark(compare_distributions, g, 36)
