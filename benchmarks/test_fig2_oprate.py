"""Figure 2: operation rate (kOps/s) of both phases vs ranks (largest
synthetic graph).

Shape claims (Section 7.1): the preprocessing phase keeps gaining
operation rate with more ranks (more aggregate cache, no redundant work),
while the counting phase's rate improvement flattens or reverses well
before the largest grid (its redundant work grows with sqrt(p) and its
communication share rises).
"""

from __future__ import annotations

from repro.bench.figures import fig2_op_rate
from repro.bench.tables import BIG_DATASET
from repro.bench.calibration import paper_model
from repro.bench.runner import run_point


def test_fig2(benchmark, save_artifact):
    text, series = fig2_op_rate()
    save_artifact("fig2_oprate", text)

    ppt = dict(series["ppt"])
    tct = dict(series["tct"])
    ranks = sorted(ppt)
    top, first = max(ranks), min(ranks)

    # ppt rate grows from 16 to the largest grid.
    assert ppt[top] > ppt[first]
    # tct rate jumps at 25 (cache effect: the paper's peak-at-25).
    assert tct[25] > tct[first]
    # tct rate gains flatten: the relative gain over the last doubling of
    # ranks is smaller than the first step's gain.
    gain_first = tct[25] / tct[first]
    gain_last = tct[top] / tct[ranks[-2]]
    assert gain_last < gain_first
    assert all(v > 0 for v in list(ppt.values()) + list(tct.values()))

    benchmark.pedantic(
        lambda: run_point(BIG_DATASET, 25, model=paper_model()),
        rounds=1,
        iterations=1,
    )
