"""Table 4: map-intersection task-count growth with the rank count.

Shape claim (Section 7.2): tasks are visited once per Cannon shift, so the
total count grows roughly like sqrt(p) — the paper measures +25% from 16
to 25 ranks and +20% from 25 to 36; the doubly-sparse elimination keeps
the totals slightly below m * sqrt(p).
"""

from __future__ import annotations

import math

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.bench.tables import BIG_DATASET, table4
from repro.graph import load_dataset


def test_table4(benchmark, save_artifact):
    text, data = table4()
    save_artifact("table4", text)

    tasks = {d["ranks"]: d["tasks"] for d in data}
    g16, g25, g36 = tasks[16], tasks[25], tasks[36]
    growth_25 = (g25 - g16) / g16
    growth_36 = (g36 - g25) / g25
    # Paper: +25% then +20% (the sqrt(p) schedule: 4->5 shifts = +25%,
    # 5->6 shifts = +20%); allow slack for the elimination optimizations.
    assert 0.10 <= growth_25 <= 0.32, growth_25
    assert 0.08 <= growth_36 <= 0.28, growth_36
    # Upper bound: tasks never exceed m per shift.
    m = load_dataset(BIG_DATASET).num_edges
    for p, t in tasks.items():
        assert t <= m * math.isqrt(p)

    benchmark.pedantic(
        lambda: run_point(BIG_DATASET, 16, model=paper_model()),
        rounds=1,
        iterations=1,
    )
