"""Design-choice ablation: Cannon shifts vs the collect-first formulation.

Section 5.1 rejects collecting all needed U/L blocks up front because
"such an approach will increase the memory overhead of the algorithm" and
chooses Cannon's pattern, which "ensures that our algorithm is memory
scalable".  This bench runs both formulations and measures the claim: the
collect-first variant's per-rank memory high-water mark grows like
sqrt(p) relative to Cannon's constant two travelling blocks, while the
counts stay identical.
"""

from __future__ import annotations

import math

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.core.allgather_variant import count_triangles_2d_allgather
from repro.graph import load_dataset
from repro.instrument import format_table

DATASET = "g500-s14"


def test_memory_scalability(benchmark, save_artifact):
    model = paper_model()
    g = load_dataset(DATASET)
    rows = []
    points = []
    for p in (16, 36, 64, 100, 169):
        cannon = run_point(DATASET, p, model=model)
        allg = count_triangles_2d_allgather(g, p, model=model, dataset=DATASET)
        assert allg.count == cannon.count
        c_mem = cannon.extras["mem_peak_bytes"]
        a_mem = allg.extras["mem_peak_bytes"]
        rows.append(
            (
                p,
                c_mem / 1024,
                a_mem / 1024,
                a_mem / c_mem,
                cannon.tct_time * 1e3,
                allg.tct_time * 1e3,
            )
        )
        points.append((p, c_mem, a_mem))
    text = format_table(
        [
            "ranks",
            "Cannon peak (KiB)",
            "collect-first peak (KiB)",
            "memory ratio",
            "Cannon tct (ms)",
            "collect-first tct (ms)",
        ],
        rows,
        title=(
            f"Design ablation on {DATASET}: Cannon shifting vs collecting "
            "all blocks up front (the Section 5.1 memory-scalability claim)"
        ),
    )
    save_artifact("memory_scalability", text)

    # The collect-first overhead grows with sqrt(p): each rank holds
    # ~2*sqrt(p)+1 blocks instead of 3.
    ratios = {p: a / c for p, c, a in points}
    assert ratios[169] > ratios[16] > 1.5
    expected_169 = (2 * math.isqrt(169) + 1) / 3
    assert 0.5 * expected_169 < ratios[169] < 1.5 * expected_169
    # Cannon's own per-rank peak *shrinks* as p grows (memory scalable).
    cannon_peaks = {p: c for p, c, _a in points}
    assert cannon_peaks[169] < cannon_peaks[16]

    benchmark.pedantic(
        lambda: count_triangles_2d_allgather(
            load_dataset("g500-s12"), 16, model=model
        ),
        rounds=1,
        iterations=1,
    )
