"""Figure 3: communication share of each phase's time vs ranks (largest
synthetic graph).

Shape claims (Section 7.2): computation dominates both phases at every
grid size we sweep, but the communication share keeps increasing with the
number of ranks.
"""

from __future__ import annotations

from repro.bench.figures import fig3_comm_fraction
from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.bench.tables import BIG_DATASET


def test_fig3(benchmark, save_artifact):
    text, series = fig3_comm_fraction()
    save_artifact("fig3_commfrac", text)

    ppt = dict(series["ppt"])
    tct = dict(series["tct"])
    ranks = sorted(tct)
    top, first = max(ranks), min(ranks)

    # Communication share increases with ranks for both phases.
    assert tct[top] > tct[first]
    assert ppt[top] > ppt[first]
    # The counting phase stays computation-dominated (< 50%).
    assert tct[top] < 50.0
    # Fractions are valid percentages.
    for v in list(ppt.values()) + list(tct.values()):
        assert 0.0 <= v <= 100.0

    benchmark.pedantic(
        lambda: run_point(BIG_DATASET, 49, model=paper_model()),
        rounds=1,
        iterations=1,
    )
