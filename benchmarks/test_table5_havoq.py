"""Table 5: the 2D algorithm vs the HavoqGT-style wedge baseline.

Shape claims (Section 7.4): the intersection-based 2D algorithm beats
wedge checking by a large factor on the RMAT and twitter-like graphs
(paper: 6.2x-14.6x, average 10.2x), while the advantage collapses on the
friendster-like graph (paper: Havoq actually wins there).
"""

from __future__ import annotations

from repro.baselines import count_triangles_havoq
from repro.bench.calibration import paper_model
from repro.bench.tables import table5
from repro.graph import load_dataset


def test_table5(benchmark, save_artifact):
    text, data = table5()
    save_artifact("table5", text)

    by_name = {d["dataset"]: d for d in data}
    rmat_speedups = [
        by_name[n]["speedup"] for n in ("g500-s12", "g500-s13", "g500-s14")
    ]
    # Big win on the triangle-rich graphs.
    assert all(s > 2.0 for s in rmat_speedups), rmat_speedups
    assert by_name["twitter-like"]["speedup"] > 2.0
    # The advantage shrinks on the nearly triangle-free graph.
    fr = by_name["friendster-like"]["speedup"]
    assert fr < min(rmat_speedups)
    # Wedge growth with scale drives the gap: larger RMAT -> more wedges.
    assert by_name["g500-s14"]["wedges"] > by_name["g500-s12"]["wedges"]

    g = load_dataset("g500-s12")
    benchmark.pedantic(
        lambda: count_triangles_havoq(g, 16, model=paper_model()),
        rounds=1,
        iterations=1,
    )
