"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures, prints it,
and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can link the
artifacts.  The expensive sweeps are memoized in-process
(:mod:`repro.bench.runner`), so the suite shares one Table 2 grid across
Figures 1-3 and Tables 3-4.

Set ``REPRO_BENCH_QUICK=1`` to sweep 5 rank counts instead of the paper's
10.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Write one experiment's text artifact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
