"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures, prints it,
and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can link the
artifacts.  The expensive sweeps are memoized in-process
(:mod:`repro.bench.runner`), so the suite shares one Table 2 grid across
Figures 1-3 and Tables 3-4.

Set ``REPRO_BENCH_QUICK=1`` to sweep 5 rank counts instead of the paper's
10.  Set ``REPRO_STORE_DIR`` to share the on-disk preprocessing cache
(:mod:`repro.graph.store`) across benchmark *processes*: the first suite
run warms it, subsequent runs (and ``repro count``/``profile``/chaos runs
pointed at the same root) skip the ppt phase with bit-identical results.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def shared_store() -> Path | None:
    """Create the shared store root early so every worker/bench module
    sees the same directory (the runner picks it up from the env)."""
    from repro.graph.store import resolve_store_dir

    path = resolve_store_dir()
    if path is None:
        return None
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Write one experiment's text artifact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
