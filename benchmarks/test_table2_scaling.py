"""Table 2: parallel performance, 16-169 ranks, four datasets.

The shape claims verified against the paper (Section 7.1):

1. overall speedup at 169 ranks lands well below the ideal 10.56 but above
   ~2.5 for the g500 graphs (paper: 6.59 / 6.93);
2. the triangle-counting phase scales better than preprocessing (paper:
   tct speedup ~1.7x the ppt speedup on average);
3. the synthetic (g500) graphs out-scale the real-world-like graphs
   (paper: 6.6-6.9 vs 3.1-3.4);
4. super-linear overall speedup appears at 25 ranks for the largest graph
   (paper: 1.90 for g500-s29 vs ideal 1.56).
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.bench.tables import TABLE2_DATASETS, table2
from repro.graph import load_dataset
from repro.core import count_triangles_2d


def _speedups(data, dataset):
    rows = [d for d in data if d["dataset"] == dataset]
    return {d["ranks"]: d for d in rows}


def test_table2(benchmark, save_artifact):
    text, data = table2()
    save_artifact("table2", text)

    g500a = _speedups(data, "g500-s14")
    g500b = _speedups(data, "g500-s15")
    tw = _speedups(data, "twitter-like")
    fr = _speedups(data, "friendster-like")
    top = max(r["ranks"] for r in data)

    # (1) overall speedup at the largest grid: below ideal, above 2.5.
    for ds in (g500a, g500b):
        s = ds[top]["overall_speedup"]
        assert 2.5 < s < ds[top]["expected_speedup"] + 1.0, s

    # (2) tct scales better than ppt at the largest grid on the
    # triangle-rich graphs.  friendster-like is the paper's thin-margin
    # case (tct 3.24 vs ppt 2.90): its counting phase is so light that at
    # our scale the ordering flips, so we only require the two phases to
    # stay comparable there.
    for ds in (g500a, g500b, tw):
        assert ds[top]["tct_speedup"] > ds[top]["ppt_speedup"]
    assert fr[top]["tct_speedup"] > 0.5 * fr[top]["ppt_speedup"]

    # (3) synthetic graphs out-scale the real-world-like ones.
    g500_best = max(g500a[top]["overall_speedup"], g500b[top]["overall_speedup"])
    real_best = max(tw[top]["overall_speedup"], fr[top]["overall_speedup"])
    assert g500_best > real_best

    # (4) super-linear speedup at 25 ranks for the largest synthetic graph.
    assert g500b[25]["overall_speedup"] > 25 / 16

    # Speedups generally grow with p for the synthetic graphs.
    for ds in (g500a, g500b):
        assert ds[top]["overall_speedup"] > ds[25]["overall_speedup"]

    # Counts are exact at every grid size (cross-checked in run_point
    # against rank-local sums; here vs the oracle on one dataset).
    from repro.graph.stats import triangle_count_linalg

    want = triangle_count_linalg(load_dataset("g500-s14"))
    assert all(
        d["count"] == want for d in data if d["dataset"] == "g500-s14"
    )

    # Benchmark one representative grid point end-to-end (small dataset).
    g = load_dataset("g500-s12")
    benchmark.pedantic(
        lambda: count_triangles_2d(g, 16, model=paper_model()),
        rounds=1,
        iterations=1,
    )
