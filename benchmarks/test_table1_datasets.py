"""Table 1: dataset summary (scaled analogues of the paper's graphs)."""

from __future__ import annotations

from repro.bench.tables import table1
from repro.graph import load_dataset
from repro.graph.stats import triangle_count_linalg


def test_table1(benchmark, save_artifact):
    text, data = table1()
    save_artifact("table1", text)

    by_name = {d["dataset"]: d for d in data}
    # Every dataset is non-trivial and correctly sized relative to family.
    for d in data:
        assert d["vertices"] > 0 and d["edges"] > 0
    # RMAT sizes double per scale level (within simplification slack).
    assert by_name["g500-s13"]["edges"] > 1.5 * by_name["g500-s12"]["edges"]
    assert by_name["g500-s14"]["edges"] > 1.5 * by_name["g500-s13"]["edges"]
    # The twitter/friendster contrast: triangle density differs by >10x
    # (paper: 29 triangles/edge vs ~1e-4).
    tw = by_name["twitter-like"]
    fr = by_name["friendster-like"]
    assert tw["triangles"] / tw["edges"] > 10 * fr["triangles"] / fr["edges"]

    # Benchmark the oracle counter used to produce the table.
    g = load_dataset("g500-s12")
    benchmark(triangle_count_linalg, g)
