"""Table 6: twitter-like graph vs the 1D distributed-memory competitors.

Shape claims (Section 7.4): the 2D decomposition beats the
communication-heavy 1D approaches at comparable core counts (paper: 51.7s
vs Surrogate's 739.8s), with the push-based Surrogate paying the most.
AOP's communication *avoidance* buys it speed at the price of replicated
memory — at our miniature scale the replication is affordable, so AOP's
runtime is competitive; what the bench verifies instead is the structural
cost the paper highlights (Section 4: "high memory overheads"): the
aggregate owned+ghost storage is several graph copies, which is exactly
what removes AOP from contention at billion-edge scale (4 GB/processor in
their setup).
"""

from __future__ import annotations

from repro.baselines import count_triangles_aop
from repro.bench.calibration import paper_model
from repro.bench.tables import table6
from repro.graph import load_dataset


def test_table6(benchmark, save_artifact):
    text, data = table6()
    save_artifact("table6", text)

    times = {d["algorithm"]: d["runtime_ms"] for d in data}
    repl = {d["algorithm"]: d["memory_replication"] for d in data}
    ours = times["Our work (2D)"]
    # 2D beats the communication-heavy 1D competitors.
    assert ours < times["Surrogate [1]"]
    assert ours < times["OPT-PSP [10]"]
    # Push-based Surrogate pays more than replication-based AOP (the
    # paper's 739.8s vs 564.0s ordering).
    assert times["Surrogate [1]"] > times["AOP [1]"]
    # AOP's memory replication: several full graph copies across ranks.
    assert repl["AOP [1]"] > 3.0
    assert repl["Our work (2D)"] == 1.0
    assert all(t > 0 for t in times.values())

    g = load_dataset("twitter-like")
    benchmark.pedantic(
        lambda: count_triangles_aop(g, 16, model=paper_model()),
        rounds=1,
        iterations=1,
    )
