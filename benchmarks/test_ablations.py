"""Section 7.3: what each optimization buys.

Shape claims: (i) the jik enumeration massively reduces counting time vs
ijk (paper: -72.8%); (ii) the doubly-sparse traversal and the modified
hashing routine both reduce the counting time, with benefits that *grow*
with the rank count (paper: 10%->15% and 1.2%->8.7% from 16 to 100
ranks); (iii) disabling any optimization never changes the count (checked
inside the builder).
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.bench.tables import BIG_DATASET, ablation_table
from repro.core import TC2DConfig


def _get(data, p, label_fragment):
    for d in data:
        if d["ranks"] == p and label_fragment in d["variant"]:
            return d
    raise KeyError((p, label_fragment))


def test_ablations(benchmark, save_artifact):
    text, data = ablation_table()
    save_artifact("ablations", text)

    # (i) jik vs ijk: large reduction at both rank counts.
    for p in (16, 100):
        jik = _get(data, p, "ijk enumeration")
        assert jik["reduction"] > 0.30, jik

    # (ii) doubly-sparse helps at both scales and more at 100 ranks.
    ds16 = _get(data, 16, "doubly-sparse")
    ds100 = _get(data, 100, "doubly-sparse")
    assert ds16["reduction"] > 0.0
    assert ds100["reduction"] > ds16["reduction"]

    # modified hashing helps and helps more at scale.
    mh16 = _get(data, 16, "modified hashing")
    mh100 = _get(data, 100, "modified hashing")
    assert mh100["reduction"] > 0.0
    assert mh100["reduction"] >= mh16["reduction"]

    # early-stop is a large win (the backward early break removes probe
    # candidates wholesale); blob serialization is a non-regression whose
    # absolute benefit is below our model's noise floor (the paper also
    # only claims "some savings" for it).
    for p in (16, 100):
        assert _get(data, p, "early-stop")["reduction"] > 0.10
        assert _get(data, p, "blob")["reduction"] > -0.02

    benchmark.pedantic(
        lambda: run_point(
            BIG_DATASET, 16, cfg=TC2DConfig(enumeration="ijk"), model=paper_model()
        ),
        rounds=1,
        iterations=1,
    )
