"""Figure 1: efficiency (ppt / tct / overall) vs ranks, per dataset.

Shape claims (Section 7.1): efficiency decays as ranks grow, and the
preprocessing phase's efficiency decays faster than the counting phase's.
"""

from __future__ import annotations

from repro.bench.figures import fig1_efficiency
from repro.bench.calibration import paper_model
from repro.core import count_triangles_2d
from repro.graph import load_dataset


def test_fig1(benchmark, save_artifact):
    text, data = fig1_efficiency()
    save_artifact("fig1_efficiency", text)

    for ds, series in data.items():
        ranks = [p for p, _ in series["overall"]]
        top = max(ranks)
        eff = {name: dict(pts) for name, pts in series.items()}
        # Efficiency at the largest grid is below the 25-rank level.
        assert eff["overall"][top] < eff["overall"][25]
        # tct holds efficiency better than ppt at scale on the
        # triangle-rich graphs (the nearly triangle-free friendster-like
        # graph is the paper's thin-margin case; see Table 2's notes).
        if ds != "friendster-like":
            assert eff["tct"][top] > eff["ppt"][top]
        # Efficiencies are positive and bounded by the super-linear cap.
        for name in ("ppt", "tct", "overall"):
            for _p, e in series[name]:
                assert 0 < e < 2.5

    g = load_dataset("g500-s12")
    benchmark.pedantic(
        lambda: count_triangles_2d(g, 25, model=paper_model()),
        rounds=1,
        iterations=1,
    )
