"""Extension benchmark: weak scaling (not in the paper).

The paper only reports strong scaling.  Its Section 5.4 analysis predicts
how the algorithm should *weak*-scale: with edges per rank held constant
(RMAT scale +1 for every 2x ranks), the counting phase's per-rank work is
``d_avg * (n / sqrt(p)) * (d_avg / sqrt(p) + 1)`` — n/sqrt(p) grows like
sqrt(p) under weak scaling, so runtime should grow sublinearly in p
rather than stay flat.  This bench runs the weak-scaled series and checks
that prediction: time grows, but far slower than total work does.
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.core import count_triangles_2d
from repro.graph import rmat_graph
from repro.instrument import format_table

#: (ranks, RMAT scale): doubling the scale quadruples edges, matching the
#: 4x rank growth, so edges per rank stay ~constant.
SERIES = [(16, 12), (64, 14), (144, 15)]


def test_weak_scaling(benchmark, save_artifact):
    model = paper_model()
    rows = []
    results = []
    for p, scale in SERIES:
        g = rmat_graph(scale, seed=1)
        res = count_triangles_2d(g, p, model=model, dataset=f"rmat-s{scale}")
        results.append((p, g, res))
        rows.append(
            (
                p,
                f"s{scale}",
                g.num_edges,
                g.num_edges / p,
                res.tct_time * 1e3,
                res.overall_time * 1e3,
            )
        )
    text = format_table(
        ["ranks", "RMAT", "edges", "edges/rank", "tct (ms)", "overall (ms)"],
        rows,
        title=(
            "Extension: weak scaling (edges per rank ~constant; Section 5.4 "
            "predicts sublinear-in-p growth of the counting time)"
        ),
    )
    save_artifact("weak_scaling", text)

    # Edges per rank stays within 2x across the series (the weak-scaling
    # setup itself).
    per_rank = [g.num_edges / p for p, g, _ in results]
    assert max(per_rank) / min(per_rank) < 2.0

    # Counting time grows (the sqrt(p) factor) ...
    t16 = results[0][2].tct_time
    t144 = results[-1][2].tct_time
    assert t144 > t16
    # ... but far more slowly than total work (9x ranks, ~8x edges).
    assert t144 / t16 < 6.0

    g12 = rmat_graph(12, seed=1)
    benchmark.pedantic(
        lambda: count_triangles_2d(g12, 16, model=model), rounds=1, iterations=1
    )
