"""Extension benchmark: the SUMMA rectangular-grid variant.

The paper's conclusion proposes extending the algorithm to rectangular
grids via SUMMA [22].  This benchmark compares the Cannon formulation on
square grids against SUMMA on square *and* rectangular grids with the
same total rank count, verifying (i) identical counts everywhere, and
(ii) that the rectangular grids land in the same performance regime —
i.e. the extension makes odd rank counts usable without a cliff.
"""

from __future__ import annotations

from repro.bench.calibration import paper_model
from repro.bench.runner import run_point
from repro.core import count_triangles_summa
from repro.graph import load_dataset
from repro.instrument import format_table

DATASET = "g500-s13"


def test_summa_rectangular_grids(benchmark, save_artifact):
    model = paper_model()
    g = load_dataset(DATASET)

    cannon = run_point(DATASET, 36, model=model)
    grids = [(6, 6), (4, 9), (3, 12), (2, 18)]
    rows = [
        (
            "Cannon 6x6 (paper)",
            cannon.count,
            cannon.tct_time * 1e3,
            cannon.overall_time * 1e3,
        )
    ]
    results = []
    for pr, pc in grids:
        res = count_triangles_summa(g, pr, pc, model=model, dataset=DATASET)
        results.append(((pr, pc), res))
        rows.append(
            (
                f"SUMMA {pr}x{pc}",
                res.count,
                res.tct_time * 1e3,
                res.overall_time * 1e3,
            )
        )
    text = format_table(
        ["variant", "count", "tct (ms)", "overall (ms)"],
        rows,
        title=(
            f"Extension: SUMMA rectangular grids on {DATASET}, p=36 "
            "(simulated ms)"
        ),
        floatfmt=".3f",
    )
    save_artifact("summa_extension", text)

    # Identical counts across every geometry.
    assert all(res.count == cannon.count for _g, res in results)
    # Rectangular grids stay within a small factor of the square one
    # (no cliff: the extension is usable).
    square_summa = dict(results)[(6, 6)]
    for (pr, pc), res in results:
        assert res.tct_time < 6 * square_summa.tct_time, (pr, pc)

    benchmark.pedantic(
        lambda: count_triangles_summa(
            load_dataset("g500-s12"), 4, 4, model=model
        ),
        rounds=1,
        iterations=1,
    )
