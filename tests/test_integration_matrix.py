"""Cross-product integration matrix: every algorithm family against every
graph family, all validated against the linear-algebra oracle.

This is the repository's broadest single correctness net: if any
combination of (generator regime x algorithm x decomposition geometry)
miscounts, it fails here with a precise parameter id.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    count_triangles_aop,
    count_triangles_havoq,
    count_triangles_psp,
    count_triangles_surrogate,
)
from repro.core import (
    TC2DConfig,
    count_triangles_2d,
    count_triangles_2d_allgather,
    count_triangles_summa,
    triangle_census_2d,
)
from repro.graph import (
    Graph,
    barabasi_albert,
    complete_graph,
    erdos_renyi_gnm,
    grid_2d,
    rmat_graph,
    triangle_count_linalg,
    watts_strogatz,
)
from repro.graph.generators import configuration_model, powerlaw_cluster_fast


def star_graph(n: int) -> Graph:
    edges = np.array([[0, i] for i in range(1, n)])
    return Graph.from_edges(n, edges)


GRAPHS = {
    "er": lambda: erdos_renyi_gnm(250, 2000, seed=1),
    "rmat": lambda: rmat_graph(9, edge_factor=8, seed=2),
    "ba": lambda: barabasi_albert(200, 4, seed=3),
    "holme-kim": lambda: powerlaw_cluster_fast(200, 5, 0.6, seed=4),
    "config": lambda: configuration_model(400, d_min=3, seed=5),
    "small-world": lambda: watts_strogatz(200, 6, 0.2, seed=6),
    "lattice-diag": lambda: grid_2d(12, 12, diagonal=True),
    "clique": lambda: complete_graph(16),
    "star": lambda: star_graph(40),
    "empty": lambda: Graph.from_edges(20, np.empty((0, 2), dtype=np.int64)),
}

ALGOS = {
    "tc2d-p4": lambda g: count_triangles_2d(g, 4).count,
    "tc2d-p9": lambda g: count_triangles_2d(g, 9).count,
    "tc2d-ijk": lambda g: count_triangles_2d(
        g, 4, cfg=TC2DConfig(enumeration="ijk")
    ).count,
    "tc2d-allgather": lambda g: count_triangles_2d_allgather(g, 9).count,
    "summa-2x3": lambda g: count_triangles_summa(g, 2, 3).count,
    "census": lambda g: triangle_census_2d(g, 4).count,
    "aop": lambda g: count_triangles_aop(g, 5).count,
    "surrogate": lambda g: count_triangles_surrogate(g, 5).count,
    "psp": lambda g: count_triangles_psp(g, 5).count,
    "havoq": lambda g: count_triangles_havoq(g, 5).count,
}

_CACHE: dict[str, tuple[Graph, int]] = {}


def _graph_and_truth(name: str) -> tuple[Graph, int]:
    if name not in _CACHE:
        g = GRAPHS[name]()
        _CACHE[name] = (g, triangle_count_linalg(g))
    return _CACHE[name]


@pytest.mark.parametrize("algo_name", list(ALGOS))
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_matrix(graph_name, algo_name):
    g, truth = _graph_and_truth(graph_name)
    assert ALGOS[algo_name](g) == truth
