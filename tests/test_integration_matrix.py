"""Cross-product integration matrix: every algorithm family against every
graph family, all validated against the linear-algebra oracle.

This is the repository's broadest single correctness net: if any
combination of (generator regime x algorithm x decomposition geometry)
miscounts, it fails here with a precise parameter id.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    count_triangles_aop,
    count_triangles_havoq,
    count_triangles_psp,
    count_triangles_surrogate,
)
from repro.core import (
    TC2DConfig,
    count_triangles_2d,
    count_triangles_2d_allgather,
    count_triangles_summa,
    triangle_census_2d,
)
from repro.graph import (
    Graph,
    barabasi_albert,
    complete_graph,
    erdos_renyi_gnm,
    grid_2d,
    rmat_graph,
    triangle_count_linalg,
    watts_strogatz,
)
from repro.graph.generators import configuration_model, powerlaw_cluster_fast


def star_graph(n: int) -> Graph:
    edges = np.array([[0, i] for i in range(1, n)])
    return Graph.from_edges(n, edges)


GRAPHS = {
    "er": lambda: erdos_renyi_gnm(250, 2000, seed=1),
    "rmat": lambda: rmat_graph(9, edge_factor=8, seed=2),
    "ba": lambda: barabasi_albert(200, 4, seed=3),
    "holme-kim": lambda: powerlaw_cluster_fast(200, 5, 0.6, seed=4),
    "config": lambda: configuration_model(400, d_min=3, seed=5),
    "small-world": lambda: watts_strogatz(200, 6, 0.2, seed=6),
    "lattice-diag": lambda: grid_2d(12, 12, diagonal=True),
    "clique": lambda: complete_graph(16),
    "star": lambda: star_graph(40),
    "empty": lambda: Graph.from_edges(20, np.empty((0, 2), dtype=np.int64)),
}

ALGOS = {
    "tc2d-p4": lambda g: count_triangles_2d(g, 4).count,
    "tc2d-p9": lambda g: count_triangles_2d(g, 9).count,
    "tc2d-ijk": lambda g: count_triangles_2d(
        g, 4, cfg=TC2DConfig(enumeration="ijk")
    ).count,
    "tc2d-allgather": lambda g: count_triangles_2d_allgather(g, 9).count,
    "summa-2x3": lambda g: count_triangles_summa(g, 2, 3).count,
    "census": lambda g: triangle_census_2d(g, 4).count,
    "aop": lambda g: count_triangles_aop(g, 5).count,
    "surrogate": lambda g: count_triangles_surrogate(g, 5).count,
    "psp": lambda g: count_triangles_psp(g, 5).count,
    "havoq": lambda g: count_triangles_havoq(g, 5).count,
}

_CACHE: dict[str, tuple[Graph, int]] = {}


def _graph_and_truth(name: str) -> tuple[Graph, int]:
    if name not in _CACHE:
        g = GRAPHS[name]()
        _CACHE[name] = (g, triangle_count_linalg(g))
    return _CACHE[name]


@pytest.mark.parametrize("algo_name", list(ALGOS))
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_matrix(graph_name, algo_name):
    g, truth = _graph_and_truth(graph_name)
    assert ALGOS[algo_name](g) == truth


# ---------------------------------------------------------------------------
# Executor parity: the parallel superstep executor must be bit-identical
# to the sequential engine — counts, simulated times, counters, per-rank
# per-shift KernelStats, virtual clocks, and the exported trace bytes.
# ---------------------------------------------------------------------------

PARITY_TOGGLES = {
    "default": TC2DConfig(),
    "probed": TC2DConfig(modified_hashing=False),
    "noearlystop": TC2DConfig(early_stop=False),
    "ijk": TC2DConfig(enumeration="ijk"),
}
PARITY_GRIDS = (4, 9)
PARITY_WORKERS = (1, 2, 4)

#: Sequential reference runs, computed once per (toggle, p) and compared
#: against every worker count.
_SEQ_CACHE: dict = {}


@pytest.fixture(scope="module")
def pools():
    from repro.simmpi.parallel import SuperstepPool

    ps = {w: SuperstepPool(workers=w) for w in PARITY_WORKERS}
    yield ps
    for pool in ps.values():
        pool.shutdown()


def _sequential_reference(toggle: str, p: int):
    if (toggle, p) not in _SEQ_CACHE:
        g, truth = _graph_and_truth("rmat")
        res = count_triangles_2d(
            g, p, PARITY_TOGGLES[toggle], trace=True, keep_run=True
        )
        assert res.count == truth
        _SEQ_CACHE[toggle, p] = res
    return _SEQ_CACHE[toggle, p]


@pytest.mark.parametrize("workers", PARITY_WORKERS)
@pytest.mark.parametrize("p", PARITY_GRIDS)
@pytest.mark.parametrize("toggle", list(PARITY_TOGGLES))
def test_parallel_executor_parity(toggle, p, workers, pools):
    from repro.instrument import dumps_chrome_trace

    g, truth = _graph_and_truth("rmat")
    seq = _sequential_reference(toggle, p)
    cfg = PARITY_TOGGLES[toggle].replace(executor="parallel", workers=workers)
    par = count_triangles_2d(
        g, p, cfg, trace=True, keep_run=True, superstep=pools[workers]
    )

    assert par.count == truth == seq.count
    assert par.extras["executor"] == "parallel"
    assert par.extras["workers"] == workers
    assert par.extras["worker_spans"]  # the pool really ran the kernels

    # Simulated time, counters and per-rank per-shift kernel stats are
    # bit-identical, not merely close.
    assert (par.ppt_time, par.tct_time) == (seq.ppt_time, seq.tct_time)
    assert par.counters_ppt == seq.counters_ppt
    assert par.counters_tct == seq.counters_tct
    assert par.shift_records == seq.shift_records
    assert (par.hash_builds, par.hash_fast_builds) == (
        seq.hash_builds,
        seq.hash_fast_builds,
    )

    run_seq, run_par = seq.extras["run"], par.extras["run"]
    for cs, cp in zip(run_seq.clocks, run_par.clocks):
        assert cs.now == cp.now
    assert len(run_par.tracer.spans) == len(run_seq.tracer.spans)
    assert dumps_chrome_trace(run_par) == dumps_chrome_trace(run_seq)


@pytest.fixture(scope="module")
def mode_pools(pools):
    """One pool per *transport* mode (amortized shares the batched one —
    residency is a rank-side protocol atop batched dispatch)."""
    from repro.simmpi.parallel import SuperstepPool

    perjob = SuperstepPool(workers=2, dispatch_mode="perjob")
    yield {"perjob": perjob, "batched": pools[2]}
    perjob.shutdown()


@pytest.mark.parametrize("offload", [True, False])
@pytest.mark.parametrize("dispatch", ["perjob", "batched", "amortized"])
def test_parallel_dispatch_mode_parity(dispatch, offload, mode_pools):
    """Every dispatch mode x ppt-offload combination is bit-identical to
    the sequential engine, down to the exported trace bytes."""
    from repro.instrument import dumps_chrome_trace

    g, truth = _graph_and_truth("rmat")
    seq = _sequential_reference("default", 9)
    cfg = TC2DConfig(
        executor="parallel", workers=2, dispatch=dispatch, offload_ppt=offload
    )
    pool = mode_pools["perjob" if dispatch == "perjob" else "batched"]
    par = count_triangles_2d(
        g, 9, cfg, trace=True, keep_run=True, superstep=pool
    )

    assert par.count == truth == seq.count
    assert par.extras["dispatch"] == dispatch
    assert (par.ppt_time, par.tct_time) == (seq.ppt_time, seq.tct_time)
    assert par.counters_ppt == seq.counters_ppt
    assert par.counters_tct == seq.counters_tct
    assert par.shift_records == seq.shift_records
    assert dumps_chrome_trace(par.extras["run"]) == dumps_chrome_trace(
        seq.extras["run"]
    )
    if dispatch == "amortized":
        # steady-state epochs resolved their operands from resident slots
        assert pool.stats.resident_hits > 0


def test_parallel_worker_crash_is_typed(monkeypatch):
    from repro.simmpi.errors import WorkerCrashError

    g, _ = _graph_and_truth("rmat")
    monkeypatch.setattr(
        "repro.core.tc2d.KERNEL_JOB_ENTRY",
        "repro.simmpi.parallel:_crash_for_tests",
    )
    with pytest.raises(WorkerCrashError):
        count_triangles_2d(
            g, 4, TC2DConfig(executor="parallel", workers=1)
        )
