"""Cost model algebra: rates, transfer times, cache factor, payload sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import CacheModel, MachineModel
from repro.simmpi.costmodel import payload_nbytes


class TestMachineModel:
    def test_known_kind_uses_table_rate(self):
        m = MachineModel(rates={"op": 1e6}, cache=None)
        assert m.compute_time("op", 1e6) == pytest.approx(1.0)

    def test_unknown_kind_uses_default_rate(self):
        m = MachineModel(default_rate=2e6, cache=None)
        assert m.compute_time("mystery", 2e6) == pytest.approx(1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MachineModel().compute_time("op", -1)

    def test_transfer_time_is_alpha_plus_beta(self):
        m = MachineModel(alpha=1e-6, beta=1e-9)
        assert m.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)
        assert m.transfer_time(0) == pytest.approx(1e-6)

    def test_replace_returns_modified_copy(self):
        m = MachineModel(alpha=1.0)
        m2 = m.replace(alpha=2.0)
        assert m.alpha == 1.0 and m2.alpha == 2.0
        assert m2.beta == m.beta


class TestCacheModel:
    def test_fitting_working_set_no_penalty(self):
        c = CacheModel(cache_bytes=1000, max_penalty=2.0)
        assert c.factor(500) == 1.0
        assert c.factor(1000) == 1.0
        assert c.factor(None) == 1.0

    def test_saturated_working_set_max_penalty(self):
        c = CacheModel(cache_bytes=1000, max_penalty=2.0, saturate_ratio=4.0)
        assert c.factor(4000) == pytest.approx(2.0)
        assert c.factor(1_000_000) == pytest.approx(2.0)

    def test_factor_monotone_in_working_set(self):
        c = CacheModel(cache_bytes=1000, max_penalty=3.0, saturate_ratio=16.0)
        sizes = [1000, 2000, 4000, 8000, 16000, 32000]
        factors = [c.factor(s) for s in sizes]
        assert factors == sorted(factors)
        assert 1.0 <= min(factors) and max(factors) <= 3.0

    def test_compute_time_applies_cache_factor(self):
        m = MachineModel(
            rates={"op": 1e6},
            cache=CacheModel(cache_bytes=10, max_penalty=2.0, saturate_ratio=2.0),
        )
        fits = m.compute_time("op", 1e6, working_set_bytes=5)
        spills = m.compute_time("op", 1e6, working_set_bytes=1000)
        assert spills == pytest.approx(2 * fits)


class TestPayloadNbytes:
    def test_numpy_exact_buffer_plus_envelope(self):
        a = np.zeros(100, dtype=np.int64)
        assert payload_nbytes(a) == 800 + 96

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4 + 33

    def test_scalars_and_none(self):
        assert payload_nbytes(None) == 8
        assert payload_nbytes(3) == 32
        assert payload_nbytes(3.5) == 32
        assert payload_nbytes(True) == 32

    def test_string_utf8(self):
        assert payload_nbytes("hi") == 2 + 49

    def test_containers_recurse(self):
        inner = np.zeros(10, dtype=np.int8)
        t = (inner, 5)
        assert payload_nbytes(t) == 56 + (10 + 96) + 32

    def test_dict_recurse(self):
        d = {"k": 1}
        assert payload_nbytes(d) == 64 + (1 + 49) + 32

    def test_object_with_nbytes_estimate(self):
        class Obj:
            def nbytes_estimate(self):
                return 12345

        assert payload_nbytes(Obj()) == 12345

    def test_plain_object_uses_dict(self):
        class Obj:
            def __init__(self):
                self.a = 1
                self.b = 2

        assert payload_nbytes(Obj()) == 64 + 32 + 32

    def test_bigger_arrays_cost_more(self):
        small = payload_nbytes(np.zeros(10))
        big = payload_nbytes(np.zeros(10000))
        assert big > small
