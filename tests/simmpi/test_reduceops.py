"""Reduction operator algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import BAND, BOR, MAX, MIN, PROD, SUM
from repro.simmpi.reduceops import ReduceOp


def test_sum_prod_scalars():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6


def test_max_min_scalars():
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2


def test_max_min_numpy_elementwise():
    a = np.array([1, 5])
    b = np.array([4, 2])
    assert np.array_equal(MAX(a, b), [4, 5])
    assert np.array_equal(MIN(a, b), [1, 2])


def test_bitwise():
    assert BAND(0b110, 0b011) == 0b010
    assert BOR(0b110, 0b011) == 0b111


def test_reduce_list():
    assert SUM.reduce([1, 2, 3, 4]) == 10
    assert MAX.reduce([3]) == 3


def test_reduce_empty_raises():
    with pytest.raises(ValueError):
        SUM.reduce([])


def test_custom_op():
    concat = ReduceOp("concat", lambda a, b: a + b)
    assert concat.reduce(["a", "b", "c"]) == "abc"
    assert concat.name == "concat"
