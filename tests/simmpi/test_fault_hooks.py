"""Engine fault-injection hooks: the duck-typed injector protocol.

These tests drive ``Engine(fault_injector=...)`` with minimal stub
injectors (no dependency on ``repro.resilience``) to pin down the
engine-side contract: what each verdict kind does to the message or
rank, that the sender always pays the full send cost, and that every
injected fault is visible in the tracer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import (
    DeadlockError,
    Engine,
    RankCrashError,
    RankFailedError,
)


class _Verdict:
    def __init__(self, kind, delay=0.0, payload=None):
        self.kind = kind
        self.delay = delay
        self.payload = payload


class _OneShotSendFault:
    """Fires one verdict on the first send from ``src`` then goes quiet."""

    def __init__(self, src, verdict):
        self.src = src
        self.verdict = verdict
        self.calls = []

    def on_send(self, src, dst, tag, comm_id, nbytes, payload):
        self.calls.append((src, dst, tag, nbytes))
        if src == self.src and self.verdict is not None:
            v, self.verdict = self.verdict, None
            return v
        return None

    def at_point(self, rank, site):
        return None


class _PointFault:
    def __init__(self, rank, site, verdict):
        self.target = (rank, site)
        self.verdict = verdict
        self.sites = []

    def on_send(self, *a):
        return None

    def at_point(self, rank, site):
        self.sites.append((rank, site))
        if (rank, site) == self.target and self.verdict is not None:
            v, self.verdict = self.verdict, None
            return v
        return None


def _pingpong(ctx):
    if ctx.rank == 0:
        ctx.comm.send(np.arange(64, dtype=np.int64), dest=1, tag=9)
        return None
    return ctx.comm.recv(source=0, tag=9)


def test_no_injector_is_the_default():
    eng = Engine(2)
    assert eng.faults is None
    run = eng.run(_pingpong)
    assert run.returns[1] is not None


def test_injector_consulted_for_every_send():
    inj = _OneShotSendFault(src=99, verdict=None)
    Engine(2, fault_injector=inj).run(_pingpong)
    assert inj.calls, "on_send was never consulted"
    assert all(c[0] == 0 for c in inj.calls)


def test_drop_starves_receiver_into_deadlock():
    inj = _OneShotSendFault(0, _Verdict("drop"))
    with pytest.raises(DeadlockError):
        Engine(2, fault_injector=inj).run(_pingpong)


def test_delay_defers_delivery_not_correctness():
    clean = Engine(2).run(_pingpong)
    inj = _OneShotSendFault(0, _Verdict("delay", delay=0.25))
    faulty = Engine(2, fault_injector=inj).run(_pingpong)
    assert np.array_equal(faulty.returns[1], clean.returns[1])
    # the receiver's clock absorbs the extra wire latency
    assert faulty.makespan >= clean.makespan + 0.25


def test_corrupt_swaps_payload():
    poison = np.full(64, -1, dtype=np.int64)
    inj = _OneShotSendFault(0, _Verdict("corrupt", payload=poison))
    run = Engine(2, fault_injector=inj).run(_pingpong)
    assert np.array_equal(run.returns[1], poison)


def test_dup_leaves_stale_copy_for_next_recv():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.array([1], dtype=np.int64), dest=1, tag=9)
            ctx.comm.send(np.array([2], dtype=np.int64), dest=1, tag=9)
            return None
        a = ctx.comm.recv(source=0, tag=9)
        b = ctx.comm.recv(source=0, tag=9)
        return int(a[0]), int(b[0])

    inj = _OneShotSendFault(0, _Verdict("dup"))
    run = Engine(2, fault_injector=inj).run(program)
    # the duplicate of message 1 is matched before message 2
    assert run.returns[1] == (1, 1)


def test_dropped_send_still_emits_traced_fault():
    """The drop happens after the sender is charged: the traced fault
    event sits at the sender's post-charge clock, on the sender's track."""
    eng = Engine(2, fault_injector=_OneShotSendFault(0, _Verdict("drop")),
                 trace=True)
    with pytest.raises(DeadlockError):
        eng.run(_pingpong)
    (ev,) = eng.tracer.faults()
    assert ev.detail["fault"] == "drop"
    assert ev.rank == 0
    assert ev.t > 0  # charged before the verdict was applied


def test_stall_advances_clock_at_site():
    def program(ctx):
        ctx.fault_point("custom:site")
        return ctx.clock.now

    inj = _PointFault(1, "custom:site", _Verdict("stall", delay=0.5))
    run = Engine(4, fault_injector=inj).run(program)
    assert run.returns[1] >= 0.5
    assert all(t < 0.5 for r, t in enumerate(run.returns) if r != 1)


def test_crash_raises_rank_crash_error():
    def program(ctx):
        ctx.fault_point("before:work")
        return "survived"

    inj = _PointFault(2, "before:work", _Verdict("crash"))
    with pytest.raises(RankFailedError) as ei:
        Engine(4, fault_injector=inj).run(program)
    assert ei.value.rank == 2
    assert isinstance(ei.value.original, RankCrashError)
    assert ei.value.original.site == "before:work"


def test_phase_declares_fault_point():
    inj = _PointFault(0, "phase:tct", _Verdict("crash"))

    def program(ctx):
        with ctx.phase("tct"):
            pass

    with pytest.raises(RankFailedError):
        Engine(2, fault_injector=inj).run(program)
    assert (0, "phase:tct") in inj.sites


def test_fault_points_are_noops_without_injector():
    def program(ctx):
        ctx.fault_point("anything")
        return "ok"

    run = Engine(2).run(program)
    assert run.returns == ["ok", "ok"]


def test_traced_faults_carry_spans_and_events():
    inj = _OneShotSendFault(0, _Verdict("delay", delay=0.1))
    eng = Engine(2, fault_injector=inj, trace=True)
    eng.run(_pingpong)
    (ev,) = eng.tracer.faults()
    assert ev.detail["fault"] == "delay"
    fault_spans = [s for s in eng.tracer.spans if s.cat == "fault"]
    assert fault_spans and fault_spans[0].name == "fault:delay"
