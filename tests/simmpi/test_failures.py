"""Failure injection and virtual-time semantics of the engine."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.simmpi import (
    DeadlockError,
    Engine,
    MachineModel,
    RankFailedError,
    SUM,
)


class TestFailureInjection:
    def test_failure_mid_collective_unwinds_all_threads(self):
        before = threading.active_count()

        def program(ctx):
            if ctx.rank == 1:
                raise RuntimeError("injected")
            ctx.comm.allreduce(1, SUM)
            ctx.comm.barrier()

        eng = Engine(6)
        with pytest.raises(RankFailedError):
            eng.run(program)
        for st in eng._states:
            st.thread.join(timeout=5)
            assert not st.thread.is_alive()
        assert threading.active_count() <= before + 1

    def test_failure_after_partial_sends_reports_first_failure(self):
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send("x", dest=1)
                raise ValueError("late failure")
            ctx.comm.recv(source=0)
            ctx.comm.recv(source=0)  # second recv never satisfied

        with pytest.raises(RankFailedError) as ei:
            Engine(2).run(program)
        assert ei.value.rank == 0

    def test_deadlock_after_failure_cleanup_reusable(self):
        eng = Engine(3)

        def deadlocked(ctx):
            ctx.comm.recv(source=(ctx.rank + 1) % 3, tag=1)

        with pytest.raises(DeadlockError):
            eng.run(deadlocked)
        res = eng.run(lambda ctx: ctx.comm.allreduce(1, SUM))
        assert res.returns == [3, 3, 3]

    def test_exception_in_rank_zero_before_any_comm(self):
        def program(ctx):
            if ctx.rank == 0:
                raise KeyError("early")
            return ctx.rank

        with pytest.raises(RankFailedError) as ei:
            Engine(4).run(program)
        assert isinstance(ei.value.original, KeyError)

    def test_base_exception_subclasses_propagate(self):
        class Custom(Exception):
            pass

        def program(ctx):
            raise Custom("x")

        with pytest.raises(RankFailedError) as ei:
            Engine(2).run(program)
        assert isinstance(ei.value.original, Custom)

    def test_all_ranks_fail_reports_one(self):
        def program(ctx):
            raise ValueError(f"rank {ctx.rank}")

        with pytest.raises(RankFailedError):
            Engine(4).run(program)


class TestVirtualTimeSemantics:
    def test_sender_pays_byte_serialization(self):
        model = MachineModel(
            alpha=0.0, beta=1e-6, send_overhead=0.0, cache=None
        )

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(np.zeros(1000, dtype=np.int8), dest=1)
                return ctx.clock.now
            ctx.comm.recv(source=0)
            return ctx.clock.now

        res = Engine(2, model=model).run(program)
        # payload = 1000 bytes + 96 envelope at beta=1us/byte.
        assert res.returns[0] == pytest.approx(1096e-6)
        assert res.returns[1] >= res.returns[0]

    def test_back_to_back_sends_serialize(self):
        model = MachineModel(alpha=0.0, beta=1e-6, send_overhead=0.0, cache=None)

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(3):
                    ctx.comm.send(np.zeros(1000, dtype=np.int8), dest=1)
                return ctx.clock.now
            for _ in range(3):
                ctx.comm.recv(source=0)
            return ctx.clock.now

        res = Engine(2, model=model).run(program)
        assert res.returns[0] == pytest.approx(3 * 1096e-6)

    def test_alpha_delays_arrival(self):
        model = MachineModel(alpha=1.0, beta=0.0, send_overhead=0.0, cache=None)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send("x", dest=1)
            else:
                ctx.comm.recv(source=0)
            return ctx.clock.now

        res = Engine(2, model=model).run(program)
        assert res.returns[0] == pytest.approx(0.0)
        assert res.returns[1] == pytest.approx(1.0)

    def test_receiver_not_delayed_when_message_already_arrived(self):
        model = MachineModel(alpha=1e-3, beta=0.0, send_overhead=0.0, cache=None)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send("x", dest=1)
            else:
                ctx.charge("op", int(0.5 * model.rate("op")))  # 0.5 s >> alpha
                t0 = ctx.clock.now
                ctx.comm.recv(source=0)
                return ctx.clock.now - t0
            return 0.0

        res = Engine(2, model=model).run(program)
        assert res.returns[1] == pytest.approx(0.0)  # no waiting charged

    def test_compute_and_comm_compose_in_phase(self):
        model = MachineModel(
            alpha=0.0, beta=1e-6, send_overhead=0.0, cache=None, rates={"op": 1e6}
        )

        def program(ctx):
            with ctx.phase("ph"):
                ctx.charge("op", 1000)  # 1 ms compute
                if ctx.rank == 0:
                    ctx.comm.send(np.zeros(904, dtype=np.int8), dest=1)  # 1 ms
                else:
                    ctx.comm.recv(source=0)
            ph = ctx.clock.phases["ph"]
            return (ph.compute, ph.comm)

        res = Engine(2, model=model).run(program)
        compute0, comm0 = res.returns[0]
        assert compute0 == pytest.approx(1e-3)
        assert comm0 == pytest.approx(1e-3)  # sender-side serialization

    def test_barrier_synchronizes_clocks(self):
        def program(ctx):
            ctx.charge("op", 10_000_000 * (ctx.rank + 1))
            ctx.comm.barrier()
            return ctx.clock.now

        res = Engine(4).run(program)
        slowest_work = max(res.returns)
        # After the barrier every rank's clock is at least the slowest
        # rank's pre-barrier time.
        assert min(res.returns) >= 10_000_000 * 4 / MachineModel().rate("op")
        assert slowest_work == max(res.returns)
