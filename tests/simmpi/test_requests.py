"""Non-blocking communication requests."""

from __future__ import annotations

import pytest

from repro.simmpi import Engine
from repro.simmpi.requests import wait_all


def test_isend_completes_immediately():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend("x", dest=1)
            done, payload = req.test()
            assert done and payload is None
            assert req.wait() is None
            return "sent"
        return ctx.comm.recv(source=0)

    res = Engine(2).run(program)
    assert res.returns == ["sent", "x"]


def test_irecv_wait():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=3)
            return req.wait()
        ctx.comm.send({"v": 42}, dest=0, tag=3)
        return None

    res = Engine(2).run(program)
    assert res.returns[0] == {"v": 42}


def test_irecv_test_before_and_after_arrival():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1, tag=1)
            first = req.test()[0]  # nothing sent yet
            ctx.comm.send("go", dest=1, tag=2)
            ctx.comm.recv(source=1, tag=3)  # rank 1 has now sent tag 1
            done, payload = req.test()
            return (first, done, payload)
        ctx.comm.recv(source=0, tag=2)
        ctx.comm.send("answer", dest=0, tag=1)
        ctx.comm.send("sync", dest=0, tag=3)
        return None

    res = Engine(2).run(program)
    assert res.returns[0] == (False, True, "answer")


def test_wait_repeated_is_idempotent():
    def program(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1)
            a = req.wait()
            b = req.wait()
            return a is b
        ctx.comm.send([1, 2], dest=0)
        return None

    assert Engine(2).run(program).returns[0] is True


def test_multiple_outstanding_receives_complete_in_post_order():
    def program(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=7) for _ in range(3)]
            return wait_all(reqs)
        for i in range(3):
            ctx.comm.send(i, dest=0, tag=7)
        return None

    res = Engine(2).run(program)
    assert res.returns[0] == [0, 1, 2]


def test_overlap_pattern_ring():
    """Post the receive first, then send — the classic overlap idiom."""

    def program(ctx):
        left = (ctx.rank - 1) % ctx.num_ranks
        right = (ctx.rank + 1) % ctx.num_ranks
        req = ctx.comm.irecv(source=left, tag=5)
        ctx.comm.isend(ctx.rank * 10, dest=right, tag=5)
        return req.wait()

    res = Engine(5).run(program)
    assert res.returns == [((r - 1) % 5) * 10 for r in range(5)]
