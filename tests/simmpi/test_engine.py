"""Engine scheduling, determinism, and failure semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import (
    DeadlockError,
    Engine,
    MachineModel,
    RankFailedError,
    SUM,
)


def test_single_rank_runs_and_returns():
    res = Engine(1).run(lambda ctx: ctx.rank * 10 + 7)
    assert res.returns == [7]
    assert res.num_ranks == 1


def test_all_ranks_run_and_return_in_order():
    res = Engine(8).run(lambda ctx: ctx.rank)
    assert res.returns == list(range(8))


def test_args_and_kwargs_are_forwarded():
    def program(ctx, a, b, scale=1):
        return (a + b * ctx.rank) * scale

    res = Engine(3).run(program, 1, 2, scale=10)
    assert res.returns == [10, 30, 50]


def test_send_recv_roundtrip():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send({"x": 1}, dest=1, tag=4)
            return None
        return ctx.comm.recv(source=0, tag=4)

    res = Engine(2).run(program)
    assert res.returns[1] == {"x": 1}


def test_messages_preserve_numpy_payloads():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(np.arange(100, dtype=np.int64), dest=1)
            return None
        arr = ctx.comm.recv(source=0)
        return int(arr.sum())

    res = Engine(2).run(program)
    assert res.returns[1] == sum(range(100))


def test_deterministic_clocks_and_counters():
    def program(ctx):
        ctx.charge("op", 100 * (ctx.rank + 1))
        return ctx.comm.allreduce(ctx.rank, SUM)

    r1 = Engine(6).run(program)
    r2 = Engine(6).run(program)
    assert [c.now for c in r1.clocks] == [c.now for c in r2.clocks]
    assert r1.counters == r2.counters
    assert r1.returns == r2.returns


def test_deadlock_detected_with_blocked_rank_report():
    def program(ctx):
        ctx.comm.recv(source=(ctx.rank + 1) % ctx.num_ranks, tag=9)

    with pytest.raises(DeadlockError) as ei:
        Engine(3).run(program)
    assert set(ei.value.blocked) == {0, 1, 2}
    assert "tag=9" in ei.value.blocked[0]


def test_partial_deadlock_detected():
    # Rank 0 finishes; ranks 1 and 2 wait on each other with wrong tags.
    def program(ctx):
        if ctx.rank == 0:
            return "done"
        if ctx.rank == 1:
            ctx.comm.send("x", dest=2, tag=1)
            return ctx.comm.recv(source=2, tag=2)
        return ctx.comm.recv(source=1, tag=3)  # tag mismatch: never matches

    with pytest.raises(DeadlockError) as ei:
        Engine(3).run(program)
    assert 0 not in ei.value.blocked
    assert set(ei.value.blocked) == {1, 2}


def test_rank_exception_propagates_with_rank_id():
    def program(ctx):
        if ctx.rank == 3:
            raise KeyError("broken")
        ctx.comm.barrier()

    with pytest.raises(RankFailedError) as ei:
        Engine(5).run(program)
    assert ei.value.rank == 3
    assert isinstance(ei.value.original, KeyError)


def test_engine_reusable_after_failure():
    eng = Engine(4)

    def bad(ctx):
        raise ValueError("nope")

    with pytest.raises(RankFailedError):
        eng.run(bad)
    res = eng.run(lambda ctx: ctx.rank)
    assert res.returns == [0, 1, 2, 3]


def test_num_ranks_must_be_positive():
    with pytest.raises(ValueError):
        Engine(0)


def test_charge_advances_clock_by_model_rate():
    model = MachineModel(cache=None)

    def program(ctx):
        ctx.charge("op", 2_000_000)
        return ctx.clock.now

    res = Engine(1, model=model).run(program)
    assert res.returns[0] == pytest.approx(2_000_000 / model.rate("op"))


def test_charge_zero_is_free():
    def program(ctx):
        ctx.charge("op", 0)
        return ctx.clock.now

    assert Engine(1).run(program).returns[0] == 0.0


def test_recv_wait_counts_as_comm_time():
    model = MachineModel(cache=None)

    def program(ctx):
        with ctx.phase("ph"):
            if ctx.rank == 0:
                ctx.charge("op", 10_000_000)  # rank 1 must wait for this
                ctx.comm.send(b"x" * 1000, dest=1)
            else:
                ctx.comm.recv(source=0)
        return ctx.clock.phases["ph"]

    res = Engine(2, model=model).run(program)
    ph1 = res.returns[1]
    assert ph1.comm > 0.04  # waited ~10M ops worth
    assert res.clocks[1].now >= res.clocks[0].now


def test_makespan_is_max_clock():
    def program(ctx):
        ctx.charge("op", 1000 * (ctx.rank + 1))

    res = Engine(4).run(program)
    assert res.makespan == max(c.now for c in res.clocks)
    assert res.makespan == res.clocks[3].now


def test_counter_total_sums_ranks():
    def program(ctx):
        ctx.charge("op", ctx.rank)

    res = Engine(5).run(program)
    assert res.counter_total("op") == sum(range(5))
    assert res.counter_total("missing") == 0


def test_phase_time_requires_recorded_phase():
    res = Engine(2).run(lambda ctx: None)
    with pytest.raises(KeyError):
        res.phase_time("nope")


def test_probe_nonblocking():
    def program(ctx):
        if ctx.rank == 0:
            assert not ctx.comm.probe(source=1, tag=5)
            ctx.comm.send("go", dest=1, tag=3)
            return ctx.comm.recv(source=1, tag=5)
        ctx.comm.recv(source=0, tag=3)
        ctx.comm.send("back", dest=0, tag=5)
        return None

    res = Engine(2).run(program)
    assert res.returns[0] == "back"


def test_many_ranks_complete_quickly():
    res = Engine(169).run(lambda ctx: ctx.comm.allreduce(1, SUM))
    assert res.returns == [169] * 169


def test_trace_records_events():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send("m", dest=1, tag=2)
        elif ctx.rank == 1:
            ctx.comm.recv(source=0, tag=2)
        ctx.charge("op", 5)

    res = Engine(2, trace=True).run(program)
    kinds = {e.kind for e in res.tracer.events}
    assert {"send", "recv", "compute"} <= kinds
    sends = res.tracer.of_kind("send")
    assert sends and sends[0].detail["dst"] == 1
