"""Point-to-point semantics: matching, ordering, wildcards, validation."""

from __future__ import annotations

import pytest

from repro.simmpi import ANY_SOURCE, ANY_TAG, Engine
from repro.simmpi.errors import InvalidRankError


def test_tag_selective_matching():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send("a", dest=1, tag=1)
            ctx.comm.send("b", dest=1, tag=2)
            return None
        second = ctx.comm.recv(source=0, tag=2)
        first = ctx.comm.recv(source=0, tag=1)
        return (first, second)

    res = Engine(2).run(program)
    assert res.returns[1] == ("a", "b")


def test_non_overtaking_same_tag():
    def program(ctx):
        if ctx.rank == 0:
            for i in range(10):
                ctx.comm.send(i, dest=1, tag=7)
            return None
        return [ctx.comm.recv(source=0, tag=7) for _ in range(10)]

    res = Engine(2).run(program)
    assert res.returns[1] == list(range(10))


def test_any_source_receives_earliest_sent():
    def program(ctx):
        if ctx.rank == 0:
            got = []
            for _ in range(2):
                payload, status = ctx.comm.recv(
                    source=ANY_SOURCE, tag=ANY_TAG, return_status=True
                )
                got.append((payload, status.source, status.tag))
            return got
        ctx.comm.send(f"from{ctx.rank}", dest=0, tag=ctx.rank)
        return None

    res = Engine(3).run(program)
    payloads = {p for (p, _s, _t) in res.returns[0]}
    sources = {s for (_p, s, _t) in res.returns[0]}
    assert payloads == {"from1", "from2"}
    assert sources == {1, 2}
    for p, s, t in res.returns[0]:
        assert p == f"from{s}" and t == s


def test_sendrecv_exchanges_between_neighbors():
    def program(ctx):
        right = (ctx.rank + 1) % ctx.num_ranks
        left = (ctx.rank - 1) % ctx.num_ranks
        return ctx.comm.sendrecv(ctx.rank, dest=right, source=left)

    res = Engine(5).run(program)
    assert res.returns == [(r - 1) % 5 for r in range(5)]


def test_sendrecv_self():
    def program(ctx):
        return ctx.comm.sendrecv(f"self{ctx.rank}", dest=ctx.rank, source=ctx.rank)

    res = Engine(3).run(program)
    assert res.returns == ["self0", "self1", "self2"]


def test_invalid_dest_raises():
    def program(ctx):
        ctx.comm.send("x", dest=99)

    from repro.simmpi import RankFailedError

    with pytest.raises(RankFailedError) as ei:
        Engine(2).run(program)
    assert isinstance(ei.value.original, InvalidRankError)


def test_negative_user_tag_rejected():
    def program(ctx):
        ctx.comm.send("x", dest=0, tag=-3)

    from repro.simmpi import RankFailedError

    with pytest.raises(RankFailedError) as ei:
        Engine(1).run(program)
    assert isinstance(ei.value.original, ValueError)


def test_messages_between_split_comms_are_isolated():
    def program(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        # World-comm message must not be received by a sub-comm recv.
        if ctx.rank == 0:
            ctx.comm.send("world", dest=2, tag=5)
            sub.send("sub", dest=1, tag=5)  # to rank 2 in world terms
            return None
        if ctx.rank == 2:
            got_sub = sub.recv(source=0, tag=5)
            got_world = ctx.comm.recv(source=0, tag=5)
            return (got_sub, got_world)
        return None

    res = Engine(4).run(program)
    assert res.returns[2] == ("sub", "world")


def test_message_to_self_via_comm():
    def program(ctx):
        ctx.comm.send("me", dest=ctx.rank, tag=1)
        return ctx.comm.recv(source=ctx.rank, tag=1)

    assert Engine(2).run(program).returns == ["me", "me"]
