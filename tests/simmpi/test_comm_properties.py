"""Property-based tests of the communication layer (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simmpi import BOR, Engine, MAX, MIN, PROD, SUM

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**SETTINGS)
@given(
    p=st.integers(1, 9),
    values=st.lists(st.integers(-1000, 1000), min_size=9, max_size=9),
    op=st.sampled_from([SUM, MAX, MIN, BOR]),
)
def test_allreduce_equals_serial_fold(p, values, op):
    vals = values[:p]

    def program(ctx):
        return ctx.comm.allreduce(vals[ctx.rank], op)

    expected = op.reduce(vals)
    res = Engine(p).run(program)
    assert res.returns == [expected] * p


@settings(**SETTINGS)
@given(
    p=st.integers(1, 8),
    root=st.integers(0, 7),
    payload=st.one_of(
        st.integers(),
        st.text(max_size=20),
        st.lists(st.integers(), max_size=5),
        st.dictionaries(st.text(max_size=3), st.integers(), max_size=3),
    ),
)
def test_bcast_delivers_everywhere(p, root, payload):
    root = root % p

    def program(ctx):
        obj = payload if ctx.rank == root else None
        return ctx.comm.bcast(obj, root=root)

    res = Engine(p).run(program)
    assert all(x == payload for x in res.returns)


@settings(**SETTINGS)
@given(p=st.integers(1, 8), seed=st.integers(0, 2**16))
def test_random_point_to_point_permutation(p, seed):
    """Every rank sends one message to a random destination; every rank
    receives exactly the messages addressed to it."""
    rng = np.random.default_rng(seed)
    dests = rng.integers(0, p, size=p).tolist()
    expected_counts = [dests.count(r) for r in range(p)]

    def program(ctx):
        ctx.comm.send(("from", ctx.rank), dests[ctx.rank], tag=1)
        ctx.comm.barrier()  # all sends are in flight (eager) after this
        got = []
        while ctx.comm.probe(tag=1):
            got.append(ctx.comm.recv(tag=1))
        return sorted(s for (_f, s) in got)

    res = Engine(p).run(program)
    for r in range(p):
        assert len(res.returns[r]) == expected_counts[r]
        assert res.returns[r] == sorted(
            s for s in range(p) if dests[s] == r
        )


@settings(**SETTINGS)
@given(
    p=st.integers(2, 8),
    n_msgs=st.integers(1, 10),
)
def test_fifo_per_pair_under_load(p, n_msgs):
    def program(ctx):
        nxt = (ctx.rank + 1) % ctx.num_ranks
        prev = (ctx.rank - 1) % ctx.num_ranks
        for i in range(n_msgs):
            ctx.comm.send(i, nxt, tag=2)
        return [ctx.comm.recv(source=prev, tag=2) for _ in range(n_msgs)]

    res = Engine(p).run(program)
    for got in res.returns:
        assert got == list(range(n_msgs))


@settings(**SETTINGS)
@given(
    p=st.integers(1, 9),
    values=st.lists(st.integers(0, 100), min_size=9, max_size=9),
)
def test_scan_prefixes(p, values):
    vals = values[:p]

    def program(ctx):
        return ctx.comm.scan(vals[ctx.rank], SUM)

    res = Engine(p).run(program)
    assert res.returns == [sum(vals[: r + 1]) for r in range(p)]


@settings(**SETTINGS)
@given(p=st.integers(1, 9), ncolors=st.integers(1, 4))
def test_split_partitions_exactly(p, ncolors):
    def program(ctx):
        color = ctx.rank % ncolors
        sub = ctx.comm.split(color)
        return (color, sub.rank, sub.size, tuple(sub.allgather(ctx.rank)))

    res = Engine(p).run(program)
    for color in range(min(ncolors, p)):
        members = [r for r in range(p) if r % ncolors == color]
        for idx, r in enumerate(members):
            c, sub_rank, sub_size, gathered = res.returns[r]
            assert c == color
            assert sub_rank == idx
            assert sub_size == len(members)
            assert list(gathered) == members
