"""Communicator edge cases: odd splits, payload aliasing, self-loops."""

from __future__ import annotations

import numpy as np

from repro.simmpi import Engine, SUM


def test_split_negative_colors():
    def program(ctx):
        color = -1 if ctx.rank < 2 else -7
        sub = ctx.comm.split(color)
        return (sub.size, sub.allreduce(1, SUM))

    res = Engine(5).run(program)
    assert res.returns[0] == (2, 2)
    assert res.returns[4] == (3, 3)


def test_split_singleton_groups():
    def program(ctx):
        sub = ctx.comm.split(ctx.rank)  # every rank alone
        assert sub.size == 1 and sub.rank == 0
        return sub.allreduce(ctx.rank * 3, SUM)

    res = Engine(4).run(program)
    assert res.returns == [0, 3, 6, 9]


def test_split_of_split():
    def program(ctx):
        half = ctx.comm.split(ctx.rank // 4)  # two groups of 4
        quarter = half.split(half.rank // 2)  # four groups of 2
        return (half.size, quarter.size, quarter.allgather(ctx.rank))

    res = Engine(8).run(program)
    assert res.returns[0] == (4, 2, [0, 1])
    assert res.returns[7] == (4, 2, [6, 7])


def test_sent_array_alias_is_not_copied_but_safe_pattern_works():
    """The engine passes payloads by reference (documented); senders that
    rebuild arrays rather than mutating them in place are safe."""

    def program(ctx):
        if ctx.rank == 0:
            arr = np.array([1, 2, 3])
            ctx.comm.send(arr, dest=1)
            arr = arr + 10  # rebind, do not mutate
            ctx.comm.send(arr, dest=1)
            return None
        a = ctx.comm.recv(source=0)
        b = ctx.comm.recv(source=0)
        return (a.tolist(), b.tolist())

    res = Engine(2).run(program)
    assert res.returns[1] == ([1, 2, 3], [11, 12, 13])


def test_zero_byte_payloads():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"", dest=1)
            ctx.comm.send(np.empty(0, dtype=np.int64), dest=1)
            return None
        a = ctx.comm.recv(source=0)
        b = ctx.comm.recv(source=0)
        return (a, len(b))

    res = Engine(2).run(program)
    assert res.returns[1] == (b"", 0)


def test_alltoall_with_none_entries():
    def program(ctx):
        objs = [None if d == ctx.rank else (ctx.rank, d) for d in range(ctx.comm.size)]
        got = ctx.comm.alltoall(objs)
        assert got[ctx.rank] is None
        return all(
            got[s] == (s, ctx.rank) for s in range(ctx.comm.size) if s != ctx.rank
        )

    res = Engine(4).run(program)
    assert all(res.returns)


def test_bcast_large_array_binomial():
    def program(ctx):
        data = np.arange(5000, dtype=np.int64) if ctx.rank == 2 else None
        out = ctx.comm.bcast(data, root=2)
        return int(out.sum())

    res = Engine(7).run(program)
    assert res.returns == [sum(range(5000))] * 7


def test_clock_monotone_through_heavy_traffic():
    def program(ctx):
        ts = []
        for round_ in range(5):
            ctx.comm.alltoall([round_] * ctx.comm.size)
            ts.append(ctx.clock.now)
        assert ts == sorted(ts)
        return True

    assert all(Engine(6).run(program).returns)
