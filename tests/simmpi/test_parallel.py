"""Unit tests for the shared-memory superstep pool (engine-free).

These drive :class:`~repro.simmpi.parallel.SuperstepPool` directly —
submit/dispatch round trips, arena reuse, span bookkeeping, the typed
crash paths — without an engine attached.  Engine integration (parity
with the sequential executor) lives in ``tests/test_integration_matrix``.

Worker entries used here live at module level so spawned interpreters
can re-import them by their ``"tests.simmpi.test_parallel:..."`` names.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi.errors import SimMPIError, WorkerCrashError
from repro.simmpi.parallel import (
    Resident,
    SuperstepPool,
    WorkerSpan,
    _resolve_entry,
    take_result_arrays,
)

#: Set by :func:`set_init_flag` — observable proof the worker_init hook
#: ran in a spawned worker (the parent's copy stays False).
_INIT_FLAG = False


def set_init_flag() -> None:
    global _INIT_FLAG
    _INIT_FLAG = True


def probe(arrays, meta):
    """Echo entry: array sums/dtypes, the meta dict, and the init flag."""
    return {
        "sums": [float(a.sum()) for a in arrays],
        "dtypes": [str(a.dtype) for a in arrays],
        "meta": meta,
        "init_flag": _INIT_FLAG,
    }


def sleepy(arrays, meta):
    import time

    time.sleep(float(meta["seconds"]))
    return {}


def raising(arrays, meta):
    raise RuntimeError("job blew up on purpose")


def shm_echo(arrays, meta):
    """Return doubled inputs through a worker-created shm segment."""
    from repro.simmpi.parallel import pack_result_arrays

    return pack_result_arrays([np.asarray(a) * 2 for a in arrays])


PROBE = "tests.simmpi.test_parallel:probe"


@pytest.fixture(scope="module")
def pool():
    with SuperstepPool(workers=2) as p:
        yield p


def test_resolve_entry():
    fn = _resolve_entry(PROBE)
    assert fn is probe
    with pytest.raises(ValueError):
        _resolve_entry("no.colon.here")
    with pytest.raises(ValueError):
        _resolve_entry("tests.simmpi.test_parallel:nope")
    with pytest.raises(ModuleNotFoundError):
        _resolve_entry("no.such.module:fn")


def test_roundtrip_two_ranks(pool):
    a = np.arange(10, dtype=np.int64)
    b = np.linspace(0.0, 1.0, 7)
    pool.submit(0, PROBE, (a, b), meta={"tag": "r0"})
    pool.submit(3, PROBE, (b,), meta={"tag": "r3"})
    assert pool.pending()
    served = pool.dispatch()
    assert served == [0, 3]  # rank order, always
    assert not pool.pending()
    r0 = pool.take_result(0)
    assert r0["sums"] == [float(a.sum()), float(b.sum())]
    assert r0["dtypes"] == ["int64", "float64"]
    assert r0["meta"] == {"tag": "r0"}
    assert pool.take_result(3)["sums"] == [float(b.sum())]
    assert not pool.has_result(0)


def test_arena_reused_across_dispatches(pool):
    arr = np.ones(64, dtype=np.int64)
    pool.submit(0, PROBE, (arr,))
    pool.dispatch()
    pool.take_result(0)
    before = pool.arena_allocations
    for _ in range(4):
        pool.submit(0, PROBE, (arr,))
        pool.dispatch()
        pool.take_result(0)
    assert pool.arena_allocations == before  # same size -> zero growth


def test_arena_grows_on_demand(pool):
    big = np.ones(1 << 17, dtype=np.int64)  # 1 MiB > the minimum arena
    before = pool.arena_allocations
    pool.submit(1, PROBE, (big,))
    pool.dispatch()
    assert pool.take_result(1)["sums"] == [float(big.size)]
    assert pool.arena_allocations == before + 1


def test_worker_spans_recorded_and_drained(pool):
    pool.drain_spans()
    pool.submit(2, PROBE, (np.arange(4),), label="probe:x")
    pool.dispatch()
    pool.take_result(2)
    spans = pool.drain_spans()
    assert len(spans) == 1
    s = spans[0]
    assert isinstance(s, WorkerSpan)
    assert (s.rank, s.label) == (2, "probe:x")
    assert s.end >= s.begin >= 0.0 and s.duration >= 0.0
    assert pool.drain_spans() == []  # drained means gone


def test_double_submit_rejected(pool):
    pool.submit(5, PROBE, (np.arange(3),))
    with pytest.raises(SimMPIError, match="already has a superstep job"):
        pool.submit(5, PROBE, (np.arange(3),))
    pool.reset()


def test_bad_entry_fails_fast_in_parent(pool):
    with pytest.raises(ValueError):
        pool.submit(0, "tests.simmpi.test_parallel:nope", (np.arange(3),))
    assert not pool.pending()


def test_reset_drops_pending_and_results(pool):
    pool.submit(0, PROBE, (np.arange(3),))
    pool.submit(1, PROBE, (np.arange(3),))
    pool.dispatch()
    pool.submit(2, PROBE, (np.arange(3),))
    pool.reset()
    assert not pool.pending()
    assert not pool.has_result(0) and not pool.has_result(1)


def test_job_exception_is_typed(pool):
    pool.submit(4, "tests.simmpi.test_parallel:raising", (np.arange(3),))
    with pytest.raises(WorkerCrashError, match="rank 4"):
        pool.dispatch()
    assert not pool.pending()  # cleared so an engine can abort cleanly


def test_worker_init_hook_runs_in_workers():
    init = "tests.simmpi.test_parallel:set_init_flag"
    with SuperstepPool(workers=1, worker_init=init) as p:
        p.submit(0, PROBE, (np.arange(2),))
        p.dispatch()
        assert p.take_result(0)["init_flag"] is True
    assert _INIT_FLAG is False  # the hook ran in the worker, not here


def test_worker_crash_is_typed():
    with SuperstepPool(workers=1) as p:
        p.submit(0, PROBE, (np.arange(2),))
        p.dispatch()
        assert p.take_result(0)["init_flag"] is False  # no hook by default
        p.submit(1, "repro.simmpi.parallel:_crash_for_tests", (np.arange(2),))
        with pytest.raises(WorkerCrashError, match="rank 1"):
            p.dispatch()


def test_timeout_is_typed():
    with SuperstepPool(workers=1) as p:
        p.submit(
            0,
            "tests.simmpi.test_parallel:sleepy",
            (np.arange(2),),
            meta={"seconds": 2.0},
        )
        with pytest.raises(WorkerCrashError, match="no result within"):
            p.dispatch(timeout=0.1)


def test_shutdown_rejects_new_work():
    p = SuperstepPool(workers=1)
    p.shutdown()
    p.shutdown()  # idempotent
    with pytest.raises(SimMPIError, match="shut down"):
        p.submit(0, PROBE, (np.arange(2),))
    with pytest.raises(SimMPIError, match="shut down"):
        p.dispatch()


def test_workers_validation():
    with pytest.raises(ValueError):
        SuperstepPool(workers=-1)
    with pytest.raises(ValueError):
        SuperstepPool(workers=1, dispatch_mode="bogus")


# ---------------------------------------------------------------------------
# batched dispatch + resident arena (the amortized transport layer)
# ---------------------------------------------------------------------------


def test_batched_dispatch_caps_futures(pool):
    """Five jobs on two workers coalesce into at most two batches."""
    before = pool.stats.batches
    for r in range(5):
        pool.submit(r, PROBE, (np.arange(4, dtype=np.int64),))
    served = pool.dispatch()
    assert served == list(range(5))
    for r in range(5):
        pool.take_result(r)
    assert pool.stats.batches - before <= 2


def test_batched_crash_attributes_exact_rank():
    """A raising job inside a multi-job batch names its own rank, not the
    batch's first rank."""
    with SuperstepPool(workers=1, dispatch_mode="batched") as p:
        p.submit(0, PROBE, (np.arange(2),))
        p.submit(1, "tests.simmpi.test_parallel:raising", (np.arange(2),))
        p.submit(2, PROBE, (np.arange(2),))
        with pytest.raises(WorkerCrashError, match="rank 1"):
            p.dispatch()


def test_resident_blocks_ship_zero_transient_bytes(pool):
    arr = np.arange(128, dtype=np.int64)
    pool.put_resident(("blk", 0), arr)
    assert pool.has_resident(("blk", 0))
    payload_before = pool.stats.payload_bytes
    hits_before = pool.stats.resident_hits
    pool.submit(0, PROBE, (Resident(("blk", 0)),))
    pool.dispatch()
    assert pool.take_result(0)["sums"] == [float(arr.sum())]
    assert pool.stats.payload_bytes == payload_before  # slot ref only
    assert pool.stats.resident_hits == hits_before + 1
    pool.invalidate_residents()


def test_resident_overwrite_same_key(pool):
    key = ("blk", "rw")
    pool.put_resident(key, np.full(32, 1, dtype=np.int64))
    pool.put_resident(key, np.full(32, 7, dtype=np.int64))
    pool.submit(0, PROBE, (Resident(key),))
    pool.dispatch()
    assert pool.take_result(0)["sums"] == [7.0 * 32]
    pool.invalidate_residents()


def test_resident_survives_arena_growth(pool):
    key = ("blk", "grow")
    small = np.arange(16, dtype=np.int64)
    pool.put_resident(key, small)
    big = np.ones(1 << 18, dtype=np.int64)  # forces a segment regrow
    pool.submit(0, PROBE, (Resident(key), big))
    pool.dispatch()
    out = pool.take_result(0)
    assert out["sums"] == [float(small.sum()), float(big.size)]
    pool.invalidate_residents()


def test_unpublished_resident_rejected_and_generation_bumps(pool):
    pool.put_resident(("blk", "gen"), np.arange(8, dtype=np.int64))
    gen = pool.resident_generation
    pool.invalidate_residents()
    assert pool.resident_generation == gen + 1
    assert not pool.has_resident(("blk", "gen"))
    with pytest.raises(SimMPIError, match="unpublished resident"):
        pool.submit(0, PROBE, (Resident(("blk", "gen")),))
    assert not pool.pending()


def test_reset_invalidates_residents(pool):
    pool.put_resident(("blk", "reset"), np.arange(8, dtype=np.int64))
    pool.reset()
    assert not pool.has_resident(("blk", "reset"))


def test_shm_return_roundtrip(pool):
    a = np.arange(6, dtype=np.int64)
    b = np.linspace(0.0, 1.0, 5)
    pool.submit(0, "tests.simmpi.test_parallel:shm_echo", (a, b))
    pool.dispatch()
    out = pool.take_result(0)
    arrs = take_result_arrays(out)
    assert np.array_equal(arrs[0], a * 2)
    assert np.allclose(arrs[1], b * 2)
    assert arrs[1].dtype == np.float64
