"""Tracer behaviour: enablement, filtering, byte totals."""

from __future__ import annotations

from repro.simmpi import Engine, Tracer


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.emit(1.0, 0, "send", nbytes=10)
    assert t.events == []


def test_emit_and_filter_by_kind():
    t = Tracer()
    t.emit(2.0, 1, "send", nbytes=5)
    t.emit(1.0, 0, "recv", nbytes=5)
    t.emit(3.0, 0, "compute", op="x")
    sends = t.of_kind("send")
    assert len(sends) == 1 and sends[0].rank == 1
    both = t.of_kind("send", "recv")
    assert [e.kind for e in both] == ["recv", "send"]  # time ordered


def test_for_rank():
    t = Tracer()
    t.emit(1.0, 0, "send")
    t.emit(2.0, 1, "send")
    assert len(t.for_rank(0)) == 1


def test_total_bytes():
    t = Tracer()
    t.emit(1.0, 0, "send", nbytes=10)
    t.emit(1.0, 0, "send", nbytes=32)
    t.emit(1.0, 0, "recv", nbytes=999)
    assert t.total_bytes() == 42
    assert t.total_bytes(("recv",)) == 999


def test_clear():
    t = Tracer()
    t.emit(1.0, 0, "send")
    t.clear()
    assert t.events == []


def test_engine_trace_has_phase_markers():
    def program(ctx):
        with ctx.phase("ph"):
            ctx.charge("op", 1)

    res = Engine(2, trace=True).run(program)
    names = [
        e.detail["name"] for e in res.tracer.of_kind("phase_begin", "phase_end")
    ]
    assert names.count("ph") == 4  # begin+end on each of 2 ranks
