"""RankClock: phase nesting, accounting, monotonicity."""

from __future__ import annotations

import pytest

from repro.simmpi import RankClock


def test_clock_starts_at_zero():
    c = RankClock(0)
    assert c.now == 0.0


def test_compute_and_comm_advance():
    c = RankClock(0)
    c.advance_compute(1.5)
    c.advance_comm(0.5)
    assert c.now == pytest.approx(2.0)


def test_negative_advances_rejected():
    c = RankClock(0)
    with pytest.raises(ValueError):
        c.advance_compute(-1)
    with pytest.raises(ValueError):
        c.advance_comm(-0.1)


def test_wait_until_future_counts_as_comm():
    c = RankClock(0)
    ph = c.phase_begin("p")
    waited = c.wait_until(3.0)
    c.phase_end(ph)
    assert waited == pytest.approx(3.0)
    assert c.now == pytest.approx(3.0)
    assert c.phases["p"].comm == pytest.approx(3.0)
    assert c.phases["p"].compute == 0.0


def test_wait_until_past_is_free():
    c = RankClock(0)
    c.advance_compute(5.0)
    assert c.wait_until(2.0) == 0.0
    assert c.now == pytest.approx(5.0)


def test_phase_accounting_split():
    c = RankClock(0)
    ph = c.phase_begin("work")
    c.advance_compute(2.0)
    c.advance_comm(1.0)
    c.phase_end(ph)
    rec = c.phases["work"]
    assert rec.compute == pytest.approx(2.0)
    assert rec.comm == pytest.approx(1.0)
    assert rec.elapsed == pytest.approx(3.0)
    assert rec.comm_fraction == pytest.approx(1 / 3)


def test_nested_phases_both_charged():
    c = RankClock(0)
    outer = c.phase_begin("outer")
    c.advance_compute(1.0)
    inner = c.phase_begin("shift")
    c.advance_compute(2.0)
    c.phase_end(inner)
    c.phase_end(outer)
    assert c.phases["outer"].compute == pytest.approx(3.0)
    assert c.phases["outer/shift"].compute == pytest.approx(2.0)


def test_reentered_phase_accumulates():
    c = RankClock(0)
    for dt in (1.0, 2.0):
        ph = c.phase_begin("p")
        c.advance_compute(dt)
        c.phase_end(ph)
    assert c.phases["p"].compute == pytest.approx(3.0)


def test_mismatched_phase_end_raises():
    c = RankClock(0)
    a = c.phase_begin("a")
    c.phase_begin("b")
    with pytest.raises(RuntimeError):
        c.phase_end(a)


def test_comm_fraction_idle_phase_is_zero():
    c = RankClock(0)
    ph = c.phase_begin("idle")
    c.phase_end(ph)
    assert c.phases["idle"].comm_fraction == 0.0
