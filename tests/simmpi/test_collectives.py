"""Collective operations across sizes, roots, payload types and misuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import (
    BAND,
    BOR,
    CollectiveMismatchError,
    Engine,
    MAX,
    MIN,
    PROD,
    RankFailedError,
    SUM,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 13]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_completes(p):
    def program(ctx):
        for _ in range(3):
            ctx.comm.barrier()
        return True

    assert Engine(p).run(program).returns == [True] * p


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_all_roots(p, root):
    r = p - 1 if root == "last" else 0

    def program(ctx):
        obj = {"data": list(range(5))} if ctx.rank == r else None
        return ctx.comm.bcast(obj, root=r)

    res = Engine(p).run(program)
    assert all(x == {"data": [0, 1, 2, 3, 4]} for x in res.returns)


@pytest.mark.parametrize("p", SIZES)
def test_reduce_sum_to_root(p):
    def program(ctx):
        return ctx.comm.reduce(ctx.rank + 1, SUM, root=0)

    res = Engine(p).run(program)
    assert res.returns[0] == p * (p + 1) // 2
    assert all(x is None for x in res.returns[1:])


def test_reduce_to_nonzero_root():
    def program(ctx):
        return ctx.comm.reduce(2**ctx.rank, SUM, root=2)

    res = Engine(5).run(program)
    assert res.returns[2] == 0b11111
    assert res.returns[0] is None


@pytest.mark.parametrize("op,expected", [(MAX, 6), (MIN, 0), (SUM, 21), (PROD, 0)])
def test_allreduce_ops(op, expected):
    def program(ctx):
        return ctx.comm.allreduce(ctx.rank, op)

    res = Engine(7).run(program)
    assert res.returns == [expected] * 7


def test_allreduce_bitwise():
    def program(ctx):
        return (
            ctx.comm.allreduce(1 << ctx.rank, BOR),
            ctx.comm.allreduce(0b111 << ctx.rank, BAND),
        )

    res = Engine(3).run(program)
    assert res.returns[0] == (0b111, 0b100)


def test_allreduce_numpy_elementwise():
    def program(ctx):
        v = np.full(4, ctx.rank, dtype=np.int64)
        return ctx.comm.allreduce(v, SUM)

    res = Engine(4).run(program)
    for arr in res.returns:
        assert np.array_equal(arr, np.full(4, 6))


@pytest.mark.parametrize("p", SIZES)
def test_gather_ordering(p):
    def program(ctx):
        return ctx.comm.gather(ctx.rank * ctx.rank, root=0)

    res = Engine(p).run(program)
    assert res.returns[0] == [r * r for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_allgather(p):
    def program(ctx):
        return ctx.comm.allgather(chr(ord("a") + ctx.rank))

    res = Engine(p).run(program)
    expected = [chr(ord("a") + r) for r in range(p)]
    assert all(x == expected for x in res.returns)


@pytest.mark.parametrize("p", SIZES)
def test_scatter(p):
    def program(ctx):
        objs = [i * 10 for i in range(ctx.comm.size)] if ctx.rank == 0 else None
        return ctx.comm.scatter(objs, root=0)

    res = Engine(p).run(program)
    assert res.returns == [r * 10 for r in range(p)]


def test_scatter_wrong_length_raises():
    def program(ctx):
        objs = [1] if ctx.rank == 0 else None
        ctx.comm.scatter(objs, root=0)

    with pytest.raises(RankFailedError):
        Engine(3).run(program)


@pytest.mark.parametrize("p", SIZES)
def test_alltoall_permutation(p):
    def program(ctx):
        objs = [(ctx.rank, d) for d in range(ctx.comm.size)]
        return ctx.comm.alltoall(objs)

    res = Engine(p).run(program)
    for r in range(p):
        assert res.returns[r] == [(s, r) for s in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_exscan_and_scan(p):
    def program(ctx):
        ex = ctx.comm.exscan(ctx.rank + 1, SUM)
        inc = ctx.comm.scan(ctx.rank + 1, SUM)
        return (ex, inc)

    res = Engine(p).run(program)
    for r in range(p):
        ex, inc = res.returns[r]
        assert inc == (r + 1) * (r + 2) // 2
        if r == 0:
            assert ex is None
        else:
            assert ex == r * (r + 1) // 2


def test_exscan_numpy_arrays():
    def program(ctx):
        v = np.array([ctx.rank, 1], dtype=np.int64)
        out = ctx.comm.exscan(v, SUM)
        return None if out is None else out.tolist()

    res = Engine(4).run(program)
    assert res.returns[0] is None
    assert res.returns[3] == [0 + 1 + 2, 3]


def test_split_groups_and_keys():
    def program(ctx):
        # Two groups by parity; order the odd group by descending rank.
        color = ctx.rank % 2
        key = -ctx.rank if color == 1 else ctx.rank
        sub = ctx.comm.split(color, key)
        members = sub.allgather(ctx.rank)
        return (sub.rank, sub.size, members)

    res = Engine(6).run(program)
    # Even group: ranks 0,2,4 ordered ascending.
    assert res.returns[0] == (0, 3, [0, 2, 4])
    assert res.returns[4] == (2, 3, [0, 2, 4])
    # Odd group: ranks 5,3,1 (descending key order).
    assert res.returns[5] == (0, 3, [5, 3, 1])
    assert res.returns[1] == (2, 3, [5, 3, 1])


def test_nested_split_grid_rows_cols():
    def program(ctx):
        # 3x3 grid: row and column communicators.
        x, y = divmod(ctx.rank, 3)
        row = ctx.comm.split(x, y)
        col = ctx.comm.split(y, x)
        return (row.allreduce(ctx.rank, SUM), col.allreduce(ctx.rank, SUM))

    res = Engine(9).run(program)
    for r in range(9):
        x, y = divmod(r, 3)
        row_sum = sum(x * 3 + c for c in range(3))
        col_sum = sum(rr * 3 + y for rr in range(3))
        assert res.returns[r] == (row_sum, col_sum)


def test_dup_isolates_collectives():
    def program(ctx):
        d = ctx.comm.dup()
        a = d.allreduce(1, SUM)
        b = ctx.comm.allreduce(2, SUM)
        return (a, b)

    res = Engine(4).run(program)
    assert res.returns == [(4, 8)] * 4


def test_mismatched_collectives_raise():
    def program(ctx):
        if ctx.rank == 0:
            # Waits for a "barrier" envelope from rank 1 but receives the
            # bcast envelope instead.
            ctx.comm.barrier()
        else:
            ctx.comm.bcast("x", root=1)

    with pytest.raises(RankFailedError) as ei:
        Engine(2).run(program)
    assert isinstance(ei.value.original, CollectiveMismatchError)


def test_collective_sequence_mismatch_raises():
    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.barrier()
            ctx.comm.bcast("x", root=0)
        else:
            # Skips the barrier: sequence numbers disagree.
            ctx.comm.bcast(None, root=0)

    with pytest.raises(RankFailedError):
        Engine(2).run(program)


def test_invalid_root_raises():
    def program(ctx):
        ctx.comm.bcast("x", root=5)

    with pytest.raises(RankFailedError):
        Engine(2).run(program)


def test_collectives_cost_time():
    def program(ctx):
        ctx.comm.allgather(np.zeros(1000, dtype=np.int64))
        return ctx.clock.now

    res = Engine(8).run(program)
    assert all(t > 0 for t in res.returns)
