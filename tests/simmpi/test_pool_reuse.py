"""One SuperstepPool, many sequential independent runs (the serve case).

The serve layer keeps a single long-lived pool for every cold job, so
cross-run hygiene is load-bearing: each engine run must reset pending
state, republish its own residents under a bumped generation, and leave
counts bit-identical to a fresh-pool run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TC2DConfig, count_triangles_2d
from repro.graph import rmat_graph
from repro.simmpi.errors import SimMPIError
from repro.simmpi.parallel import Resident, SuperstepPool

CFG = TC2DConfig(executor="parallel", workers=2)


@pytest.fixture(scope="module")
def pool():
    with SuperstepPool(workers=2) as p:
        yield p


def test_sequential_runs_share_pool_bit_identically(pool, fast_model):
    """Two different graphs through one pool == two fresh-pool runs."""
    g1, g2 = rmat_graph(8, seed=1), rmat_graph(8, seed=2)
    shared_1 = count_triangles_2d(
        g1, 4, CFG, model=fast_model, superstep=pool
    )
    shared_2 = count_triangles_2d(
        g2, 4, CFG, model=fast_model, superstep=pool
    )
    fresh_1 = count_triangles_2d(g1, 4, CFG, model=fast_model)
    fresh_2 = count_triangles_2d(g2, 4, CFG, model=fast_model)
    assert shared_1.count == fresh_1.count
    assert shared_2.count == fresh_2.count
    assert shared_1.tct_time == fresh_1.tct_time
    assert shared_2.counters_tct == fresh_2.counters_tct
    # Same graph again: still identical (no state bleed from run 2).
    again = count_triangles_2d(g1, 4, CFG, model=fast_model, superstep=pool)
    assert again.count == fresh_1.count
    assert again.ppt_time == fresh_1.ppt_time


def test_stats_deltas_accumulate_per_run(pool, fast_model):
    """stats_snapshot() deltas isolate one run's dispatch accounting."""
    g = rmat_graph(8, seed=3)
    before = pool.stats_snapshot()
    count_triangles_2d(g, 4, CFG, model=fast_model, superstep=pool)
    mid = pool.stats_snapshot()
    count_triangles_2d(g, 4, CFG, model=fast_model, superstep=pool)
    after = pool.stats_snapshot()
    d1 = mid["jobs"] - before["jobs"]
    d2 = after["jobs"] - mid["jobs"]
    assert d1 > 0
    # Identical runs dispatch identical job counts through a reused pool.
    assert d1 == d2
    assert after["dispatches"] > mid["dispatches"] > before["dispatches"]
    assert after["wall_s"] >= mid["wall_s"]


def test_resident_generation_isolates_tenants(pool, fast_model):
    """Engine runs bump the resident generation, so one tenant's
    published blocks can never be read by the next tenant's run."""
    pool.reset()
    gen0 = pool.resident_generation
    pool.put_resident(("tenant-a", 0), np.arange(16, dtype=np.int64))
    assert pool.has_resident(("tenant-a", 0))

    count_triangles_2d(
        rmat_graph(8, seed=4), 4, CFG, model=fast_model, superstep=pool
    )
    # The run's own reset dropped tenant-a's slot and bumped generation.
    assert pool.resident_generation > gen0
    assert not pool.has_resident(("tenant-a", 0))


def test_stale_resident_reference_fails_closed(pool):
    """A Resident reference from a previous generation must error, not
    silently read another run's bytes."""
    pool.reset()
    pool.put_resident("key", np.ones(8, dtype=np.int64))
    stale = Resident("key")
    pool.invalidate_residents()
    pool.put_resident("other", np.zeros(8, dtype=np.int64))
    with pytest.raises(SimMPIError, match="unpublished resident"):
        pool.submit(0, "tests.simmpi.test_parallel:probe", [stale], {})
    pool.reset()
