"""BlockHashMap: correctness of both build/lookup modes and the counters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import BlockHashMap


def test_capacity_rounds_to_pow2():
    assert BlockHashMap(5).capacity == 8
    assert BlockHashMap(8).capacity == 8
    assert BlockHashMap(0).capacity == 4


def test_build_too_many_keys_rejected():
    hm = BlockHashMap(4)
    with pytest.raises(ValueError):
        hm.build(np.arange(5))


def test_empty_build_and_lookup():
    hm = BlockHashMap(8)
    assert hm.build(np.empty(0, dtype=np.int64)) is True
    hits, steps = hm.lookup_many(np.array([1, 2, 3]))
    assert hits == 0


def test_fast_path_used_when_slots_distinct():
    hm = BlockHashMap(64)
    assert hm.build(np.array([1, 2, 3], dtype=np.int64)) is True
    assert hm.is_fast_mode
    assert hm.stats.insert_steps == hm.stats.inserts


def test_fast_path_fallback_on_slot_collision():
    hm = BlockHashMap(8)
    # 0 and 8 collide under & 7.
    assert hm.build(np.array([0, 8], dtype=np.int64), allow_fast=True) is False
    assert not hm.is_fast_mode
    hits, _ = hm.lookup_many(np.array([0, 8, 16], dtype=np.int64))
    assert hits == 2


def test_allow_fast_false_forces_probing():
    hm = BlockHashMap(64)
    assert hm.build(np.array([1, 2, 3], dtype=np.int64), allow_fast=False) is False
    hits, _ = hm.lookup_many(np.array([1, 2, 3, 4], dtype=np.int64))
    assert hits == 3


def test_rebuild_invalidates_previous_contents():
    hm = BlockHashMap(16)
    hm.build(np.array([1, 2, 3], dtype=np.int64))
    hm.build(np.array([7, 8], dtype=np.int64))
    hits, _ = hm.lookup_many(np.array([1, 2, 3, 7, 8], dtype=np.int64))
    assert hits == 2


def test_rebuild_alternating_modes():
    hm = BlockHashMap(8)
    hm.build(np.array([0, 8], dtype=np.int64))  # probed
    hm.build(np.array([1, 2], dtype=np.int64))  # fast
    assert hm.is_fast_mode
    hits, _ = hm.lookup_many(np.array([0, 8, 1, 2], dtype=np.int64))
    assert hits == 2


def test_probed_lookup_counts_collision_steps():
    hm = BlockHashMap(8)
    hm.build(np.array([0, 8, 16], dtype=np.int64), allow_fast=True)
    assert hm.stats.insert_steps > 3
    before = hm.stats.lookup_steps
    hits, steps = hm.lookup_many(np.array([16], dtype=np.int64))
    assert hits == 1
    assert steps >= 1
    assert hm.stats.lookup_steps - before == steps


def test_full_table_lookup_of_absent_key_terminates():
    hm = BlockHashMap(4)
    hm.build(np.array([0, 4, 8, 12], dtype=np.int64), allow_fast=True)
    hits, steps = hm.lookup_many(np.array([16], dtype=np.int64))
    assert hits == 0
    assert steps <= hm.capacity + 1


def test_hit_mask_matches_lookup_many():
    hm = BlockHashMap(32)
    keys = np.array([3, 17, 40], dtype=np.int64)
    hm.build(keys, allow_fast=False)
    qs = np.array([3, 4, 17, 40, 41], dtype=np.int64)
    mask = hm.hit_mask(qs)
    assert np.array_equal(mask, [True, False, True, True, False])


def test_contains_scalar():
    hm = BlockHashMap(16)
    hm.build(np.array([5], dtype=np.int64))
    assert hm.contains(5)
    assert not hm.contains(6)


def test_stats_merge():
    from repro.hashing import HashStats

    a = HashStats(builds=1, inserts=2, insert_steps=3, lookups=4, lookup_steps=5)
    b = HashStats(builds=1, fast_builds=1, inserts=1, insert_steps=1, lookups=1, lookup_steps=1)
    a.merge(b)
    assert (a.builds, a.fast_builds, a.inserts) == (2, 1, 3)
    assert (a.insert_steps, a.lookups, a.lookup_steps) == (4, 5, 6)


@settings(max_examples=100, deadline=None)
@given(
    keys=st.lists(st.integers(0, 2**40), max_size=40, unique=True),
    queries=st.lists(st.integers(0, 2**40), max_size=60),
    allow_fast=st.booleans(),
)
def test_property_membership_exact(keys, queries, allow_fast):
    keys_arr = np.array(keys, dtype=np.int64)
    qs = np.array(queries, dtype=np.int64)
    hm = BlockHashMap(max(4, 2 * len(keys)))
    hm.build(keys_arr, allow_fast=allow_fast)
    hits, _ = hm.lookup_many(qs)
    assert hits == int(np.isin(qs, keys_arr).sum())
    mask = hm.hit_mask(qs)
    assert np.array_equal(mask, np.isin(qs, keys_arr))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=30, unique=True))
def test_property_all_inserted_keys_found(keys):
    keys_arr = np.array(keys, dtype=np.int64)
    hm = BlockHashMap(2 * len(keys))
    hm.build(keys_arr)
    hits, _ = hm.lookup_many(keys_arr)
    assert hits == len(keys)
