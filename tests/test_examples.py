"""Smoke-run the fast example scripts end to end.

The long-running sweep examples are exercised indirectly through the
bench harness; here we run the quick ones exactly as a user would.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "OK: counts agree" in out


def test_trace_gantt(capsys, tmp_path):
    import json

    trace_file = tmp_path / "gantt.trace.json"
    run_example("trace_gantt.py", [str(trace_file)])
    out = capsys.readouterr().out
    assert "rank 8 |" in out
    assert "#" in out and "." in out
    # The example also exports a Perfetto/Chrome trace of the same run.
    assert "Perfetto" in out
    doc = json.loads(trace_file.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["ranks"] == 9
    phases = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert any(e["name"] == "tct" and e["cat"] == "phase" for e in phases)
    assert all({"ph", "pid", "tid", "ts"} <= set(e) for e in phases)


def test_compare_baselines_small(capsys):
    run_example("compare_baselines.py", ["g500-s12", "4"])
    out = capsys.readouterr().out
    assert "fastest overall" in out
    assert "WRONG" not in out


@pytest.mark.slow
def test_ktruss(capsys):
    run_example("ktruss.py")
    out = capsys.readouterr().out
    assert "maximum non-empty truss" in out


@pytest.mark.slow
def test_clustering(capsys):
    run_example("clustering_coefficients.py")
    out = capsys.readouterr().out
    assert "transitivity" in out


@pytest.mark.slow
def test_approximate_counting(capsys):
    run_example("approximate_counting.py")
    out = capsys.readouterr().out
    assert "exact count" in out
    assert "keep prob" in out


# -- documentation snippets ---------------------------------------------------
#
# The fenced code blocks in the user-facing docs are executable claims;
# run them so they can never rot.

REPO = EXAMPLES.parent
DOCS = REPO / "docs"


def fenced_blocks(path: Path, lang: str) -> list[str]:
    import re

    return re.findall(
        rf"```{lang}\n(.*?)```", path.read_text(), flags=re.S
    )


@pytest.fixture()
def small_datasets(monkeypatch):
    monkeypatch.setenv("REPRO_DATASET_SCALE", "0.0625")
    from repro.graph.datasets import clear_cache

    clear_cache()
    yield
    clear_cache()


def test_readme_quickstart_snippet():
    blocks = fenced_blocks(REPO / "README.md", "python")
    assert blocks, "README.md lost its quickstart python block"
    exec(compile(blocks[0], "README.md:quickstart", "exec"), {})


def test_datasets_doc_python_snippets(small_datasets, tmp_path):
    blocks = fenced_blocks(DOCS / "datasets.md", "python")
    assert len(blocks) >= 2, "docs/datasets.md lost its python examples"
    for i, block in enumerate(blocks):
        src = block.replace("/tmp/repro-store", str(tmp_path / "doc-store"))
        exec(compile(src, f"docs/datasets.md:python[{i}]", "exec"), {})


def test_datasets_doc_shell_snippets(small_datasets, tmp_path):
    import os
    import subprocess

    blocks = fenced_blocks(DOCS / "datasets.md", "bash")
    assert blocks, "docs/datasets.md lost its CLI walkthrough"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_DATASET_SCALE"] = "0.0625"
    for i, block in enumerate(blocks):
        script = block.replace(
            "/tmp/repro-store", str(tmp_path / "doc-store")
        )
        proc = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", script],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, (
            f"docs/datasets.md bash block {i} failed:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )


def test_autotune_doc_python_snippet():
    blocks = fenced_blocks(DOCS / "autotune.md", "python")
    assert blocks, "docs/autotune.md lost its library-API example"
    for i, block in enumerate(blocks):
        exec(compile(block, f"docs/autotune.md:python[{i}]", "exec"), {})


@pytest.mark.slow
def test_autotune_doc_shell_snippets(tmp_path):
    """Run every bash block in docs/autotune.md exactly as written.

    Deliberately at FULL dataset scale (no REPRO_DATASET_SCALE): the
    history-check block gates the smoke bench against the committed
    BENCH_autotune_baseline.json, whose triangle counts are full-scale.
    """
    import os
    import subprocess

    blocks = fenced_blocks(DOCS / "autotune.md", "bash")
    assert len(blocks) >= 3, "docs/autotune.md lost its CLI walkthrough"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_DATASET_SCALE", None)
    for i, block in enumerate(blocks):
        script = block.replace("/tmp/", f"{tmp_path}/")
        proc = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", script],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, (
            f"docs/autotune.md bash block {i} failed:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )


def test_cli_auto_respects_pinned_flags(capsys):
    """`count --auto -p 9` must plan around the pinned grid and say so."""
    from repro.cli import main

    rc = main(["count", "g500-s12", "--auto", "--auto-max-p", "9", "-p", "9"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "auto:" in out and "-p 9" in out
    assert "pinned: p" in out
