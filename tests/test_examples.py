"""Smoke-run the fast example scripts end to end.

The long-running sweep examples are exercised indirectly through the
bench harness; here we run the quick ones exactly as a user would.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "OK: counts agree" in out


def test_trace_gantt(capsys, tmp_path):
    import json

    trace_file = tmp_path / "gantt.trace.json"
    run_example("trace_gantt.py", [str(trace_file)])
    out = capsys.readouterr().out
    assert "rank 8 |" in out
    assert "#" in out and "." in out
    # The example also exports a Perfetto/Chrome trace of the same run.
    assert "Perfetto" in out
    doc = json.loads(trace_file.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["ranks"] == 9
    phases = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert any(e["name"] == "tct" and e["cat"] == "phase" for e in phases)
    assert all({"ph", "pid", "tid", "ts"} <= set(e) for e in phases)


def test_compare_baselines_small(capsys):
    run_example("compare_baselines.py", ["g500-s12", "4"])
    out = capsys.readouterr().out
    assert "fastest overall" in out
    assert "WRONG" not in out


@pytest.mark.slow
def test_ktruss(capsys):
    run_example("ktruss.py")
    out = capsys.readouterr().out
    assert "maximum non-empty truss" in out


@pytest.mark.slow
def test_clustering(capsys):
    run_example("clustering_coefficients.py")
    out = capsys.readouterr().out
    assert "transitivity" in out


@pytest.mark.slow
def test_approximate_counting(capsys):
    run_example("approximate_counting.py")
    out = capsys.readouterr().out
    assert "exact count" in out
    assert "keep prob" in out
